"""Shim for environments without the `wheel` package (offline installs).

`pip install -e . --no-build-isolation` needs to build an editable wheel;
when `wheel` is unavailable, `python setup.py develop` installs the same
editable egg-link using only setuptools.
"""

from setuptools import setup

setup()
