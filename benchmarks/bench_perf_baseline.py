"""Machine-readable perf baseline: serial vs parallel on the hot loops.

Writes ``BENCH_perf.json`` (repo root by default) as a
``repro.obs.manifest/v1`` run manifest whose ``results.workloads`` carry
one entry per workload::

    {"schema": "repro.obs.manifest/v1", "run_id": ..., "git": {...},
     "config": {"fast": ..., "cpu_count": ...}, "results": {"workloads": {
        "campaign_one_hop_packed": {"serial_seconds": ..., "parallel_seconds":
            ..., "workers": 4, "speedup": ...}, ...}}}

Every workload's *serial* leg is the pre-optimization configuration and
its *parallel* leg the shipped configuration, so the speedup reports what
the perf work delivers end-to-end:

* campaign — scalar exact estimator with per-experiment sequence
  regeneration (``estimate="exact-scalar"``, ``share_sequences=False``)
  @ 1 worker, vs the vectorized estimator with sweep-shared sequences
  @ N workers;
* trajectory_backend / tomography — the ``engine="scalar"`` trajectory
  simulator @ 1 worker, vs the batched engine @ N workers;
* live_overhead — the shipped campaign with the live telemetry plane
  off (``serial_seconds``) vs on (``parallel_seconds``), so the
  ``--check`` budget doubles as the exporter-overhead gate.

Determinism spot-checks always compare the *shipped* configuration at 1
worker against N workers (bitwise), never serial-leg vs parallel-leg —
those are different configurations and agree only statistically.  On
single-core containers the pool contributes nothing (there is nothing to
fan out over), and vectorization + amortization carry the speedup;
``cpu_count`` is recorded so readers can tell which regime produced the
numbers.

Run directly (not through pytest)::

    PYTHONPATH=src python benchmarks/bench_perf_baseline.py --fast
    PYTHONPATH=src python benchmarks/bench_perf_baseline.py --check 1.2
    PYTHONPATH=src python benchmarks/bench_perf_baseline.py --gate 5

``--check X`` exits nonzero if any workload's parallel leg is
slower than ``X`` times its serial leg — the CI perf-smoke gate,
implemented as a :mod:`repro.obs.diff` against a synthetic budget
baseline.  ``--gate N`` diffs this run against the last *N* history
records of the same name (``benchmarks/results/history.jsonl`` by
default) with the noise-aware comparator and exits nonzero on any
regression.  Every run appends its summary record to the history store
unless ``--no-history`` is given; gating against a record produced on a
dirty working tree prints a warning (regenerate the baseline from a
clean tree instead of committing drifting numbers).
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.characterization.campaign import (  # noqa: E402
    CharacterizationCampaign,
    CharacterizationPolicy,
)
from repro.device import ibmq_poughkeepsie  # noqa: E402
from repro.device.backend import NoisyBackend  # noqa: E402
from repro.experiments.common import (  # noqa: E402
    ExperimentConfig,
    ground_truth_report,
    prepare_circuit,
    tomography_error,
)
from repro.obs import (  # noqa: E402
    DiffThresholds,
    LivePlane,
    MetricsRegistry,
    RunHistory,
    RunManifest,
    RunRecord,
    default_fleet_rules,
    diff_records,
    format_diff,
    push_registry,
    write_manifest,
)
from repro.rb.clifford import clifford_group  # noqa: E402
from repro.rb.executor import RBConfig  # noqa: E402
from repro.workloads.swap import swap_benchmark  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"
DEFAULT_HISTORY = REPO_ROOT / "benchmarks" / "results" / "history.jsonl"


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def bench_campaign(workers: int, fast: bool) -> dict:
    """ONE_HOP_PACKED campaign: scalar serial vs vectorized parallel."""
    device = ibmq_poughkeepsie()
    rb = RBConfig.fast() if fast else RBConfig()
    clifford_group(2)  # build once, outside both timed legs

    serial_cfg = dataclasses.replace(rb, estimate="exact-scalar",
                                     share_sequences=False)
    serial_campaign = CharacterizationCampaign(device, rb_config=serial_cfg,
                                               seed=3)
    _, serial_seconds = _timed(lambda: serial_campaign.run(
        CharacterizationPolicy.ONE_HOP_PACKED, workers=1))

    campaign = CharacterizationCampaign(device, rb_config=rb, seed=3)
    pooled, parallel_seconds = _timed(lambda: campaign.run(
        CharacterizationPolicy.ONE_HOP_PACKED, workers=workers))

    # Determinism spot-check: the parallel report must equal the serial
    # run of the *same* (vectorized) configuration.
    single = campaign.run(CharacterizationPolicy.ONE_HOP_PACKED, workers=1)
    deterministic = (
        single.report.independent == pooled.report.independent
        and single.report.conditional == pooled.report.conditional
    )
    return {
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "workers": workers,
        "speedup": serial_seconds / parallel_seconds,
        "experiments": pooled.plan.num_experiments,
        "deterministic_across_worker_counts": deterministic,
        "notes": "serial = exact-scalar estimator, unshared sequences @ 1 "
                 "worker (pre-change); parallel = vectorized estimator, "
                 "shared sequences @ N workers (shipped)",
    }


def bench_trajectories(workers: int, fast: bool) -> dict:
    """Trajectory simulation of a scheduled SWAP circuit."""
    device = ibmq_poughkeepsie()
    report = ground_truth_report(device)
    bench = swap_benchmark(device.coupling, 0, 8)
    prepared = prepare_circuit("ParSched", bench.circuit, device, report)
    backend = NoisyBackend(device, day=0, seed=11)
    scalar_backend = NoisyBackend(device, day=0, seed=11,
                                  sim_engine="scalar")
    trajectories = 96 if fast else 480

    _, serial_seconds = _timed(lambda: scalar_backend.run(
        prepared, shots=1024, trajectories=trajectories, workers=1))
    pooled, parallel_seconds = _timed(lambda: backend.run(
        prepared, shots=1024, trajectories=trajectories, workers=workers))
    # Determinism spot-check on the shipped configuration only.
    single = backend.run(prepared, shots=1024, trajectories=trajectories,
                         workers=1)
    return {
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "workers": workers,
        "speedup": serial_seconds / parallel_seconds,
        "trajectories": trajectories,
        "deterministic_across_worker_counts": bool(
            (single.probabilities == pooled.probabilities).all()
        ),
        "notes": "serial = scalar trajectory engine @ 1 worker (pre-change); "
                 "parallel = batched engine @ N workers (shipped)",
    }


def bench_tomography(workers: int, fast: bool) -> dict:
    """Two-qubit state tomography: 9 basis settings."""
    device = ibmq_poughkeepsie()
    report = ground_truth_report(device)
    bench = swap_benchmark(device.coupling, 0, 8)
    prepared = prepare_circuit("XtalkSched", bench.circuit, device, report)
    backend = NoisyBackend(device, day=0)
    scalar_backend = NoisyBackend(device, day=0, sim_engine="scalar")
    config = ExperimentConfig(shots=1024, trajectories=32 if fast else 160)

    _, serial_seconds = _timed(lambda: tomography_error(
        scalar_backend, prepared, bench.meeting_pair, config, workers=1))
    pooled, parallel_seconds = _timed(lambda: tomography_error(
        backend, prepared, bench.meeting_pair, config, workers=workers))
    # Determinism spot-check on the shipped configuration only.
    single = tomography_error(backend, prepared, bench.meeting_pair, config,
                              workers=1)
    return {
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "workers": workers,
        "speedup": serial_seconds / parallel_seconds,
        "deterministic_across_worker_counts": single == pooled,
        "notes": "serial = scalar trajectory engine @ 1 worker (pre-change); "
                 "parallel = batched engine @ N workers (shipped)",
    }


def bench_live_overhead(workers: int, fast: bool) -> dict:
    """Live-telemetry-plane overhead on the campaign path: off vs on.

    Unlike the other workloads, both legs run the *shipped*
    configuration; the only variable is an active
    :class:`~repro.obs.live.LivePlane` (snapshot thread + heartbeats +
    exporters) around the ``parallel_seconds`` leg.  The two reports must
    be identical — the live plane is a pure observer — and
    ``overhead_ratio`` (on/off) is the number the ``--check`` budget
    gates.
    """
    device = ibmq_poughkeepsie()
    rb = RBConfig.fast() if fast else RBConfig()
    clifford_group(2)

    off_campaign = CharacterizationCampaign(device, rb_config=rb, seed=3)
    off, off_seconds = _timed(lambda: off_campaign.run(
        CharacterizationPolicy.ONE_HOP_PACKED, workers=workers))

    on_campaign = CharacterizationCampaign(device, rb_config=rb, seed=3)
    with tempfile.TemporaryDirectory(prefix="repro-bench-live-") as tmp:
        with LivePlane(tmp, interval=0.05, rules=default_fleet_rules(),
                       source="bench_perf"):
            on, on_seconds = _timed(lambda: on_campaign.run(
                CharacterizationPolicy.ONE_HOP_PACKED, workers=workers))

    identical = (
        off.report.independent == on.report.independent
        and off.report.conditional == on.report.conditional
    )
    return {
        "serial_seconds": off_seconds,
        "parallel_seconds": on_seconds,
        "workers": workers,
        "speedup": off_seconds / on_seconds,
        "overhead_ratio": on_seconds / off_seconds,
        "deterministic_across_worker_counts": identical,
        "notes": "serial = live plane off; parallel = identical campaign "
                 "under a LivePlane (0.05s snapshots + heartbeats + "
                 "exporters); overhead_ratio = on/off",
    }


WORKLOADS = {
    "campaign_one_hop_packed": bench_campaign,
    "trajectory_backend": bench_trajectories,
    "tomography": bench_tomography,
    "live_overhead": bench_live_overhead,
}


def check_budget_diff(workloads: dict, check: float):
    """The ``--check`` gate as a :mod:`repro.obs.diff`.

    Builds a synthetic *budget* baseline — every workload's parallel leg
    allowed ``check`` times its serial leg — and diffs the measured
    parallel legs against it with zero tolerance, so any leg over budget
    classifies as regressed.
    """
    budget = RunRecord(run_id="budget", name="bench_perf_budget", series={
        f"workloads.{name}.parallel_seconds":
            check * entry["serial_seconds"]
        for name, entry in workloads.items()
    })
    measured = RunRecord(run_id="measured", name="bench_perf_measured",
                         series={
                             f"workloads.{name}.parallel_seconds":
                                 entry["parallel_seconds"]
                             for name, entry in workloads.items()
                         })
    zero = DiffThresholds(rel=0.0, mad_scale=0.0, abs_floor=1e-9,
                          noise_floor_seconds=0.0)
    return diff_records(budget, measured, zero)


def _warn_if_dirty(record: RunRecord, label: str) -> None:
    """Satellite of the dirty-manifest policy: gating against numbers
    produced on an uncommitted tree is unreliable — say so."""
    if record.git_dirty:
        print(f"[bench_perf] WARNING: {label} (run {record.run_id}) was "
              "produced on a dirty working tree; regenerate from a clean "
              "tree before trusting the gate", file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="small protocol sizing (CI smoke mode)")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool size for the parallel legs (default 4)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT})")
    parser.add_argument("--check", type=float, default=None, metavar="X",
                        help="exit nonzero if any workload's parallel leg "
                             "is slower than X times its serial leg")
    parser.add_argument("--floor", action="append", default=[],
                        metavar="NAME=X",
                        help="exit nonzero if workload NAME's speedup is "
                             "below X (repeatable; e.g. "
                             "--floor campaign_one_hop_packed=3)")
    parser.add_argument("--gate", type=int, default=None, metavar="N",
                        help="diff this run against the last N history "
                             "records and exit nonzero on regressions")
    parser.add_argument("--history", type=Path, default=DEFAULT_HISTORY,
                        help=f"history store (default {DEFAULT_HISTORY})")
    parser.add_argument("--no-history", action="store_true",
                        help="do not append this run to the history store")
    args = parser.parse_args(argv)

    registry = MetricsRegistry()
    workloads = {}
    with push_registry(registry):
        for name, fn in WORKLOADS.items():
            print(f"[bench_perf] running {name} ...", flush=True)
            entry = fn(args.workers, args.fast)
            workloads[name] = entry
            print(f"[bench_perf]   serial {entry['serial_seconds']:.2f}s  "
                  f"parallel {entry['parallel_seconds']:.2f}s  "
                  f"speedup {entry['speedup']:.2f}x", flush=True)

    manifest = RunManifest.capture(
        name="bench_perf_baseline",
        config={"fast": args.fast, "cpu_count": os.cpu_count()},
        workers=args.workers,
        results={"workloads": workloads},
    )
    write_manifest(manifest, str(args.out))
    print(f"[bench_perf] wrote {args.out} (run {manifest.run_id})")

    record = RunRecord.from_artifacts(manifest=manifest.to_dict(),
                                      metrics=registry.snapshot())
    history = RunHistory(str(args.history))
    baseline_window = history.last(args.gate, name=record.name) \
        if args.gate else []
    if not args.no_history:
        history.append(record)
        print(f"[bench_perf] appended run {record.run_id} to {history.path} "
              f"({len(history)} records)")

    failures = []
    for name, entry in workloads.items():
        if not entry.get("deterministic_across_worker_counts", True):
            failures.append(f"{name}: results differ across worker counts")

    for spec in args.floor:
        name, _, floor_text = spec.partition("=")
        if not floor_text or name not in workloads:
            failures.append(f"--floor {spec!r}: unknown workload or missing "
                            f"value (workloads: {', '.join(WORKLOADS)})")
            continue
        floor = float(floor_text)
        speedup = workloads[name]["speedup"]
        if speedup < floor:
            failures.append(
                f"{name}: speedup {speedup:.2f}x below floor {floor:.2f}x"
            )

    if args.check is not None:
        _warn_if_dirty(record, "this run")
        diff = check_budget_diff(workloads, args.check)
        for regression in diff.regressions:
            failures.append(
                f"{regression.name}: {regression.candidate:.2f}s exceeds "
                f"{args.check:.2f}x serial budget "
                f"({regression.baseline:.2f}s)"
            )

    if args.gate:
        _warn_if_dirty(record, "this run")
        if not baseline_window:
            print(f"[bench_perf] gate: no prior {record.name!r} records in "
                  f"{history.path}; nothing to compare", file=sys.stderr)
        else:
            for prior in baseline_window:
                _warn_if_dirty(prior, "baseline record")
            diff = diff_records(baseline_window, record)
            print(format_diff(diff))
            for regression in diff.regressions:
                failures.append(
                    f"history gate: {regression.name} regressed "
                    f"({regression.baseline!r} -> {regression.candidate!r})"
                )

    for failure in failures:
        print(f"[bench_perf] FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
