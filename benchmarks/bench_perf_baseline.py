"""Machine-readable perf baseline: serial vs parallel on the hot loops.

Writes ``BENCH_perf.json`` (repo root by default) as a
``repro.obs.manifest/v1`` run manifest whose ``results.workloads`` carry
one entry per workload::

    {"schema": "repro.obs.manifest/v1", "run_id": ..., "git": {...},
     "config": {"fast": ..., "cpu_count": ...}, "results": {"workloads": {
        "campaign_one_hop_packed": {"serial_seconds": ..., "parallel_seconds":
            ..., "workers": 4, "speedup": ...}, ...}}}

The headline workload is the ONE_HOP_PACKED characterization campaign.  Its
*serial* leg is the pre-optimization configuration — the scalar exact
estimator (``estimate="exact-scalar"``) with one worker; the *parallel* leg
is the shipped configuration — the vectorized estimator fanned over the
process pool.  The speedup therefore reports what this change delivers
end-to-end: vectorization plus fan-out.  On single-core containers the pool
contributes nothing (there is nothing to fan out over), and the vectorized
estimator carries the speedup; ``cpu_count`` is recorded so readers can
tell which regime produced the numbers.

Run directly (not through pytest)::

    PYTHONPATH=src python benchmarks/bench_perf_baseline.py --fast
    PYTHONPATH=src python benchmarks/bench_perf_baseline.py --check 1.2

``--check X`` exits nonzero if the campaign workload's parallel leg is
slower than ``X`` times its serial leg — the CI perf-smoke gate.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.characterization.campaign import (  # noqa: E402
    CharacterizationCampaign,
    CharacterizationPolicy,
)
from repro.device import ibmq_poughkeepsie  # noqa: E402
from repro.device.backend import NoisyBackend  # noqa: E402
from repro.experiments.common import (  # noqa: E402
    ExperimentConfig,
    ground_truth_report,
    prepare_circuit,
    tomography_error,
)
from repro.obs import RunManifest, write_manifest  # noqa: E402
from repro.rb.clifford import clifford_group  # noqa: E402
from repro.rb.executor import RBConfig  # noqa: E402
from repro.workloads.swap import swap_benchmark  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def bench_campaign(workers: int, fast: bool) -> dict:
    """ONE_HOP_PACKED campaign: scalar serial vs vectorized parallel."""
    device = ibmq_poughkeepsie()
    rb = RBConfig.fast() if fast else RBConfig()
    clifford_group(2)  # build once, outside both timed legs

    serial_cfg = dataclasses.replace(rb, estimate="exact-scalar")
    serial_campaign = CharacterizationCampaign(device, rb_config=serial_cfg,
                                               seed=3)
    _, serial_seconds = _timed(lambda: serial_campaign.run(
        CharacterizationPolicy.ONE_HOP_PACKED, workers=1))

    campaign = CharacterizationCampaign(device, rb_config=rb, seed=3)
    pooled, parallel_seconds = _timed(lambda: campaign.run(
        CharacterizationPolicy.ONE_HOP_PACKED, workers=workers))

    # Determinism spot-check: the parallel report must equal the serial
    # run of the *same* (vectorized) configuration.
    single = campaign.run(CharacterizationPolicy.ONE_HOP_PACKED, workers=1)
    deterministic = (
        single.report.independent == pooled.report.independent
        and single.report.conditional == pooled.report.conditional
    )
    return {
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "workers": workers,
        "speedup": serial_seconds / parallel_seconds,
        "experiments": pooled.plan.num_experiments,
        "deterministic_across_worker_counts": deterministic,
        "notes": "serial = exact-scalar estimator @ 1 worker (pre-change); "
                 "parallel = vectorized estimator @ N workers (shipped)",
    }


def bench_trajectories(workers: int, fast: bool) -> dict:
    """Trajectory simulation of a scheduled SWAP circuit."""
    device = ibmq_poughkeepsie()
    report = ground_truth_report(device)
    bench = swap_benchmark(device.coupling, 0, 8)
    prepared = prepare_circuit("ParSched", bench.circuit, device, report)
    backend = NoisyBackend(device, day=0, seed=11)
    trajectories = 96 if fast else 480

    serial, serial_seconds = _timed(lambda: backend.run(
        prepared, shots=1024, trajectories=trajectories, workers=1))
    pooled, parallel_seconds = _timed(lambda: backend.run(
        prepared, shots=1024, trajectories=trajectories, workers=workers))
    return {
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "workers": workers,
        "speedup": serial_seconds / parallel_seconds,
        "trajectories": trajectories,
        "deterministic_across_worker_counts": bool(
            (serial.probabilities == pooled.probabilities).all()
        ),
    }


def bench_tomography(workers: int, fast: bool) -> dict:
    """Two-qubit state tomography: 9 basis settings."""
    device = ibmq_poughkeepsie()
    report = ground_truth_report(device)
    bench = swap_benchmark(device.coupling, 0, 8)
    prepared = prepare_circuit("XtalkSched", bench.circuit, device, report)
    backend = NoisyBackend(device, day=0)
    config = ExperimentConfig(shots=1024, trajectories=32 if fast else 160)

    serial, serial_seconds = _timed(lambda: tomography_error(
        backend, prepared, bench.meeting_pair, config, workers=1))
    pooled, parallel_seconds = _timed(lambda: tomography_error(
        backend, prepared, bench.meeting_pair, config, workers=workers))
    return {
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "workers": workers,
        "speedup": serial_seconds / parallel_seconds,
        "deterministic_across_worker_counts": serial == pooled,
    }


WORKLOADS = {
    "campaign_one_hop_packed": bench_campaign,
    "trajectory_backend": bench_trajectories,
    "tomography": bench_tomography,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="small protocol sizing (CI smoke mode)")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool size for the parallel legs (default 4)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT})")
    parser.add_argument("--check", type=float, default=None, metavar="X",
                        help="exit nonzero if the campaign workload's "
                             "parallel leg is slower than X times serial")
    args = parser.parse_args(argv)

    workloads = {}
    for name, fn in WORKLOADS.items():
        print(f"[bench_perf] running {name} ...", flush=True)
        entry = fn(args.workers, args.fast)
        workloads[name] = entry
        print(f"[bench_perf]   serial {entry['serial_seconds']:.2f}s  "
              f"parallel {entry['parallel_seconds']:.2f}s  "
              f"speedup {entry['speedup']:.2f}x", flush=True)

    manifest = RunManifest.capture(
        name="bench_perf_baseline",
        config={"fast": args.fast, "cpu_count": os.cpu_count()},
        workers=args.workers,
        results={"workloads": workloads},
    )
    write_manifest(manifest, str(args.out))
    print(f"[bench_perf] wrote {args.out} (run {manifest.run_id})")

    failures = []
    for name, entry in workloads.items():
        if not entry.get("deterministic_across_worker_counts", True):
            failures.append(f"{name}: results differ across worker counts")
    if args.check is not None:
        campaign = workloads["campaign_one_hop_packed"]
        limit = args.check * campaign["serial_seconds"]
        if campaign["parallel_seconds"] > limit:
            failures.append(
                "campaign_one_hop_packed: parallel leg "
                f"{campaign['parallel_seconds']:.2f}s exceeds "
                f"{args.check:.2f}x serial ({campaign['serial_seconds']:.2f}s)"
            )
    for failure in failures:
        print(f"[bench_perf] FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
