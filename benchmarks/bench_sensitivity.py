"""Extension: scheduler gap vs planted crosstalk strength.

Sweeps the conditional-error factor of one planted pair on a synthetic
line device.  Below the 3x detection threshold XtalkSched stays maximally
parallel (== ParSched); above it the improvement grows monotonically while
XtalkSched's own error stays flat — quantifying the paper's scaling
argument for software mitigation.
"""

from benchmarks.conftest import run_once
from repro.experiments import sensitivity
from repro.experiments.common import ExperimentConfig


def test_sensitivity_to_crosstalk_strength(benchmark, record_table, record_trace):
    config = ExperimentConfig(trajectories=150, seed=23)

    def run():
        return sensitivity.run_sensitivity(config=config)

    with record_trace("sensitivity_to_crosstalk_strength"):
        rows = run_once(benchmark, run)
    record_table("sensitivity", sensitivity.format_table(rows))

    by_factor = {r.factor: r for r in rows}
    # below the 3x classification threshold: no serialization, exact tie
    assert not by_factor[1.5].xtalk_serialized
    assert by_factor[1.5].improvement == 1.0
    # above it: serialized, and the gap grows with the factor
    assert by_factor[12.0].xtalk_serialized
    assert by_factor[12.0].improvement > by_factor[3.0].improvement
    assert by_factor[12.0].improvement > 2.0
    # XtalkSched's error is insensitive to the planted factor once it
    # serializes (it never executes the interfering overlap)
    serialized = [r.xtalk_error for r in rows if r.xtalk_serialized]
    assert max(serialized) - min(serialized) < 0.05
