"""Figure 8: QAOA cross entropy vs the crosstalk weight factor ω.

Sweeps ω over [0, 1] for the four crosstalk-prone Poughkeepsie regions and
checks the paper's shape: interior ω beats both endpoints (ParSched at
ω = 0, SerialSched-like at ω = 1) and approaches the crosstalk-free band.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig8_qaoa as fig8
from repro.experiments.common import ExperimentConfig


def test_fig8_qaoa_cross_entropy(benchmark, poughkeepsie, record_table, record_trace):
    config = ExperimentConfig(trajectories=150, seed=13)

    def run():
        return fig8.run_fig8(device=poughkeepsie, config=config)

    with record_trace("fig8_qaoa_cross_entropy"):
        result = run_once(benchmark, run)
    record_table("fig8_qaoa", fig8.format_table(result))

    # Figure 8 as an actual figure.
    from benchmarks.conftest import RESULTS_DIR
    from repro.visualize import line_chart_svg

    series = {
        str(region): result.series(region)
        for region in sorted({r.region for r in result.rows})
    }
    svg = line_chart_svg(series,
                         title="QAOA cross entropy vs crosstalk weight",
                         x_label="omega", y_label="cross entropy")
    (RESULTS_DIR / "fig8_qaoa.svg").write_text(svg)

    summary = fig8.summarize(result)
    regions = len({r.region for r in result.rows})
    # interior omega beats both endpoints on most regions
    assert summary.interior_beats_endpoints >= regions - 1
    # paper: geomean 1.8x loss improvement vs ParSched (up to 3.6x)
    assert summary.loss_improvement_vs_par > 1.2
    # theoretical ideal is a lower bound on everything measured
    assert all(r.cross_entropy >= result.theoretical_ideal - 0.05
               for r in result.rows)
