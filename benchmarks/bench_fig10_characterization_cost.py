"""Figure 10: characterization machine time under the four policies.

Plans (not executes) the campaigns and applies the paper's cost model:
>8 h for the all-pairs baseline, ~5x from measuring only 1-hop pairs,
~2x more from bin packing, and a final 4-7x from re-measuring only the
high-crosstalk pairs — landing under 15-20 minutes.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig10_characterization_cost as fig10


def test_fig10_characterization_cost(benchmark, devices, record_table, record_trace):
    def run():
        return fig10.run_fig10(devices=devices)

    with record_trace("fig10_characterization_cost"):
        rows = run_once(benchmark, run)
    record_table("fig10_characterization_cost", fig10.format_table(rows))

    for summary in fig10.summarize(rows):
        assert summary.baseline_hours > 8.0          # "over 8 hours"
        assert summary.final_minutes < 30.0          # "under fifteen minutes"
        assert 20 <= summary.total_reduction <= 80   # paper: 35-73x

    # per-policy stacked reductions, per device
    for device in {r.device for r in rows}:
        by_policy = {r.policy: r.num_experiments
                     for r in rows if r.device == device}
        base = by_policy["All pairs"]
        one_hop = by_policy["Opt 1: One hop"]
        packed = by_policy["Opt 2: One hop + bin packing"]
        high = by_policy["Opt 3: Only high crosstalk pairs"]
        assert base / one_hop > 2.5       # paper: ~5x
        assert one_hop / packed > 1.7     # paper: ~2x
        assert packed / high > 1.8        # paper: 4-7x
