"""Fleet benchmark: chaos-soak throughput and drift-tracking quality.

Runs the full :func:`repro.fleet.soak.run_soak` triple (fault-free
reference, chaos, kill-and-resume) and reports the fleet service's two
headline numbers:

* **throughput** — chaos-leg device-days per wall-clock second (how fast
  the online Opt-3 service re-characterizes a fleet under faults);
* **quality** — the chaos run's fleet scorecard: pooled recall/precision
  against the planted truth, worst-device ``drift_lag_days``, stable-day
  fraction, and the quarantine count.

A separate **live probe** then times an identical fault-free fleet with
the live telemetry plane off vs on (``fleet.live_off_seconds`` /
``fleet.live_on_seconds`` / ``fleet.live_overhead_ratio`` in the history
series) and fails outright if the two runs' published epochs are not
bitwise-identical — the exporter-overhead and pure-observer record for
every benchmarked revision.

Writes a ``repro.obs.manifest/v1`` document (check verdicts, injected
fault counts, scorecard) and appends a summary record to the shared
history store (``benchmarks/results/history.jsonl``) so fleet quality
diffs and gates like every other series.  Any failed soak check exits
nonzero regardless of gating — this benchmark *is* the acceptance
harness at benchmark size.

Run directly (not through pytest)::

    PYTHONPATH=src python benchmarks/bench_fleet.py --fast
    PYTHONPATH=src python benchmarks/bench_fleet.py --gate 5
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fleet.soak import SoakConfig, _controller, run_soak  # noqa: E402
from repro.obs import (  # noqa: E402
    LivePlane,
    MetricsRegistry,
    RunHistory,
    RunManifest,
    RunRecord,
    default_fleet_rules,
    diff_records,
    format_diff,
    push_registry,
)
from repro.rb.executor import RBConfig  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "benchmarks" / "results" / "BENCH_fleet.json"
DEFAULT_HISTORY = REPO_ROOT / "benchmarks" / "results" / "history.jsonl"


def live_probe(config: SoakConfig) -> tuple:
    """Exporter overhead on a clean fleet: live plane off vs on.

    Two fresh fault-free controllers run the same ticks; the second runs
    under a :class:`LivePlane` (0.1s snapshots + per-tick publishes).
    Returns the timing series and whether the published epochs were
    bitwise-identical across the two runs (they must be: the plane is a
    pure observer).
    """
    started = time.perf_counter()
    off = _controller(config).run(config.days)
    off_seconds = time.perf_counter() - started

    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as tmp:
        with LivePlane(tmp, interval=0.1, rules=default_fleet_rules(),
                       source="bench_fleet"):
            started = time.perf_counter()
            on = _controller(config).run(config.days)
            on_seconds = time.perf_counter() - started

    series = {
        "fleet.live_off_seconds": off_seconds,
        "fleet.live_on_seconds": on_seconds,
        "fleet.live_overhead_ratio": on_seconds / off_seconds,
    }
    return series, off.published_json() == on.published_json()


def run_benchmark(args) -> tuple:
    config = SoakConfig(
        devices=3 if args.fast else args.devices,
        days=4 if args.fast else args.days,
        qubits=5 if args.fast else args.qubits,
        seed=args.seed,
        workers=args.workers,
        fault_rate=args.fault_rate,
        rb_config=RBConfig(lengths=(2, 4, 8), num_sequences=2),
    )
    registry = MetricsRegistry()
    with push_registry(registry):
        result = run_soak(config)
        live_series, live_identical = live_probe(config)
    return config, result, registry, live_series, live_identical


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="small fleet sizing (CI smoke mode)")
    parser.add_argument("--devices", type=int, default=6)
    parser.add_argument("--days", type=int, default=5)
    parser.add_argument("--qubits", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=None,
                        help="per-campaign pool size (None: REPRO_WORKERS)")
    parser.add_argument("--fault-rate", type=float, default=0.22)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT})")
    parser.add_argument("--gate", type=int, default=None, metavar="N",
                        help="diff this run against the last N history "
                             "records and exit nonzero on regressions")
    parser.add_argument("--history", type=Path, default=DEFAULT_HISTORY,
                        help=f"history store (default {DEFAULT_HISTORY})")
    parser.add_argument("--no-history", action="store_true",
                        help="do not append this run to the history store")
    args = parser.parse_args(argv)

    print("[bench_fleet] running the soak triple "
          "(reference / chaos / kill-and-resume) ...", flush=True)
    config, result, registry, live_series, live_identical = \
        run_benchmark(args)
    print(result.format())
    print(f"[bench_fleet] live-plane overhead: "
          f"{live_series['fleet.live_overhead_ratio']:.3f}x "
          f"(off {live_series['fleet.live_off_seconds']:.2f}s, "
          f"on {live_series['fleet.live_on_seconds']:.2f}s), "
          f"epochs identical={live_identical}")

    metrics = result.scorecard.metrics
    series = {
        "fleet.device_days_per_sec": result.device_days_per_sec,
        "fleet.soak_seconds": result.seconds,
        "fleet.recall": metrics["recall"],
        "fleet.precision": metrics["precision"],
        "fleet.drift_lag_days": metrics["drift_lag_days"],
        "fleet.stable_days_fraction": metrics["stable_days_fraction"],
        "fleet.quarantined": metrics["quarantined"],
        "fleet.checks_failed": sum(
            1 for _n, passed, _d in result.checks if not passed
        ),
        **live_series,
    }
    manifest = RunManifest.capture(
        name="bench_fleet",
        config={
            "fast": args.fast, "devices": config.devices,
            "days": config.days, "qubits": config.qubits,
            "fault_rate": config.fault_rate,
            "cpu_count": os.cpu_count(),
        },
        workers=args.workers,
        results={
            "checks": {name: passed for name, passed, _d in result.checks},
            "injected": result.injected,
            "quarantined": list(result.quarantined),
            "scorecard": result.scorecard.to_dict(),
            **series,
        },
    )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    from repro.obs import write_manifest

    write_manifest(manifest, str(args.out))
    print(f"[bench_fleet] wrote {args.out} (run {manifest.run_id})")

    record = RunRecord.from_artifacts(
        manifest=manifest.to_dict(), metrics=registry.snapshot(),
        extra_series=series,
        documents={"scorecard": result.scorecard.to_dict()},
    )
    history = RunHistory(str(args.history))
    baseline_window = history.last(args.gate, name=record.name) \
        if args.gate else []
    if not args.no_history:
        history.append(record)
        print(f"[bench_fleet] appended run {record.run_id} to "
              f"{history.path} ({len(history)} records)")

    failures = [
        f"soak check failed: {name} ({detail})"
        for name, passed, detail in result.checks if not passed
    ]
    if not live_identical:
        failures.append(
            "live probe: published epochs differ with the live plane "
            "enabled — the plane must be a pure observer"
        )

    if args.gate:
        if record.git_dirty:
            print(f"[bench_fleet] WARNING: this run ({record.run_id}) was "
                  "produced on a dirty working tree; regenerate the "
                  "baseline from a clean tree", file=sys.stderr)
        if not baseline_window:
            print(f"[bench_fleet] gate: no prior {record.name!r} records "
                  f"in {history.path}; nothing to compare", file=sys.stderr)
        else:
            diff = diff_records(baseline_window, record)
            print(format_diff(diff))
            for regression in diff.regressions:
                failures.append(
                    f"history gate: {regression.name} regressed "
                    f"({regression.baseline!r} -> {regression.candidate!r})"
                )

    for failure in failures:
        print(f"[bench_fleet] FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
