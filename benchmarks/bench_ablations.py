"""Ablation studies for the design choices DESIGN.md calls out.

Four ablations, each isolating one mechanism:

1. **Scheduling policy** — adds the blanket hardware-disable policy of
   Rigetti/Bristlecone (serialize every nearby pair, no characterization)
   between ParSched and XtalkSched, quantifying the paper's Section 1
   argument that software selectivity beats disabling in hardware.
2. **Barrier realization** — XtalkSched with naive one-barrier-per-
   serialized-pair vs the iterative minimal realization.
3. **Solver** — exact branch-and-bound vs greedy dive on the same
   circuits: objective gap and compile time.
4. **RB estimator** — exact Walsh-characteristic survival vs Monte-Carlo
   stabilizer sampling: accuracy against the planted rates and wall time.
"""

import time

import numpy as np

from benchmarks.conftest import run_once
from repro.core.scheduling.baselines import disable_sched
from repro.core.scheduling.xtalk import XtalkScheduler
from repro.device.backend import NoisyBackend
from repro.experiments.common import (
    ExperimentConfig,
    ground_truth_report,
    prepare_circuit,
    swap_error_rate,
    tomography_error,
)
from repro.rb.executor import RBConfig, RBExecutor
from repro.workloads.swap import (
    crosstalk_affected_endpoints,
    crosstalk_route,
    swap_benchmark,
)
from repro.workloads.hidden_shift import hidden_shift_on_region


def test_ablation_scheduling_policies(benchmark, poughkeepsie, record_table, record_trace):
    """XtalkSched vs the blanket hardware-disable policy."""
    report = ground_truth_report(poughkeepsie)
    backend = NoisyBackend(poughkeepsie)
    config = ExperimentConfig(trajectories=150, seed=21)
    endpoints = crosstalk_affected_endpoints(
        poughkeepsie.coupling, report.high_pairs()
    )[:5]

    def run():
        rows = []
        for (s, d) in endpoints:
            route = crosstalk_route(poughkeepsie.coupling, s, d,
                                    report.high_pairs())
            bench = swap_benchmark(poughkeepsie.coupling, s, d, path=route)
            entry = {"pair": (s, d)}
            for scheduler in ("ParSched", "XtalkSched"):
                err, dur = swap_error_rate(backend, bench, scheduler, report,
                                           config)
                entry[scheduler] = (err, dur)
            disabled = disable_sched(bench.circuit, poughkeepsie.coupling)
            entry["DisableSched"] = (
                tomography_error(backend, disabled, bench.meeting_pair,
                                 config),
                backend.schedule_of(disabled).makespan(),
            )
            rows.append(entry)
        return rows

    with record_trace("ablation_scheduling_policies"):
        rows = run_once(benchmark, run)
    lines = [
        "Ablation 1: scheduling policies (error / duration)",
        f"{'pair':>10s} {'ParSched':>18s} {'DisableSched':>18s} "
        f"{'XtalkSched':>18s}",
    ]
    for r in rows:
        lines.append(
            f"{str(r['pair']):>10s} "
            f"{r['ParSched'][0]:8.3f}/{r['ParSched'][1]:8.0f} "
            f"{r['DisableSched'][0]:8.3f}/{r['DisableSched'][1]:8.0f} "
            f"{r['XtalkSched'][0]:8.3f}/{r['XtalkSched'][1]:8.0f}"
        )
    mean = lambda k: float(np.mean([r[k][0] for r in rows]))
    mean_dur = lambda k: float(np.mean([r[k][1] for r in rows]))
    lines.append(
        f"\nmean error: Par {mean('ParSched'):.3f}, Disable "
        f"{mean('DisableSched'):.3f}, Xtalk {mean('XtalkSched'):.3f}"
    )
    lines.append(
        f"mean duration: Par {mean_dur('ParSched'):.0f}, Disable "
        f"{mean_dur('DisableSched'):.0f}, Xtalk {mean_dur('XtalkSched'):.0f}"
    )
    record_table("ablation_scheduling_policies", "\n".join(lines))

    # Blanket disabling also avoids crosstalk, so it beats ParSched on
    # these circuits — but XtalkSched's selectivity and coherence-aware
    # ordering give it a clearly lower error rate still.
    assert mean("DisableSched") < mean("ParSched")
    assert mean("XtalkSched") < mean("DisableSched") - 0.02


def test_ablation_barrier_realization(benchmark, poughkeepsie, record_table, record_trace):
    """Iterative minimal barriers vs naive one-per-pair barriers."""
    report = ground_truth_report(poughkeepsie)
    backend = NoisyBackend(poughkeepsie)
    cal = poughkeepsie.calibration()
    circuits = {
        "hs_redundant": hidden_shift_on_region(
            poughkeepsie.coupling, (5, 10, 11, 12), redundant=True
        ),
        "swap_0_13": swap_benchmark(
            poughkeepsie.coupling, 0, 13, path=(0, 5, 10, 11, 12, 13)
        ).circuit,
    }

    def run():
        rows = []
        for name, circuit in circuits.items():
            entry = {"circuit": name}
            for minimal in (False, True):
                scheduler = XtalkScheduler(cal, report, omega=0.5,
                                           minimal_barriers=minimal)
                result = scheduler.schedule(circuit)
                hw = backend.schedule_of(result.circuit)
                barriers = sum(1 for i in result.circuit if i.is_barrier)
                entry["minimal" if minimal else "naive"] = (
                    barriers, hw.makespan()
                )
            rows.append(entry)
        return rows

    with record_trace("ablation_barrier_realization"):
        rows = run_once(benchmark, run)
    lines = [
        "Ablation 2: barrier realization (barriers / duration)",
        f"{'circuit':>14s} {'naive':>16s} {'minimal':>16s}",
    ]
    for r in rows:
        lines.append(
            f"{r['circuit']:>14s} "
            f"{r['naive'][0]:6d}/{r['naive'][1]:8.0f} "
            f"{r['minimal'][0]:6d}/{r['minimal'][1]:8.0f}"
        )
    record_table("ablation_barrier_realization", "\n".join(lines))

    for r in rows:
        assert r["minimal"][0] <= r["naive"][0]
        assert r["minimal"][1] <= r["naive"][1] + 1e-6


def test_ablation_solver_exact_vs_greedy(benchmark, poughkeepsie,
                                         record_table, record_trace):
    """Greedy dive objective gap vs the exact branch-and-bound."""
    report = ground_truth_report(poughkeepsie)
    cal = poughkeepsie.calibration()
    endpoints = crosstalk_affected_endpoints(
        poughkeepsie.coupling, report.high_pairs()
    )[:5]

    def run():
        rows = []
        for (s, d) in endpoints:
            route = crosstalk_route(poughkeepsie.coupling, s, d,
                                    report.high_pairs())
            circuit = swap_benchmark(poughkeepsie.coupling, s, d,
                                     path=route).circuit
            t0 = time.perf_counter()
            exact = XtalkScheduler(cal, report, omega=0.5).schedule(circuit)
            t_exact = time.perf_counter() - t0
            t0 = time.perf_counter()
            greedy = XtalkScheduler(cal, report, omega=0.5,
                                    exact_decision_limit=0).schedule(circuit)
            t_greedy = time.perf_counter() - t0
            rows.append({
                "pair": (s, d),
                "decisions": len(exact.candidate_pairs),
                "exact_obj": exact.solution.objective,
                "greedy_obj": greedy.solution.objective,
                "exact_s": t_exact,
                "greedy_s": t_greedy,
            })
        return rows

    with record_trace("ablation_solver_exact_vs_greedy"):
        rows = run_once(benchmark, run)
    lines = [
        "Ablation 3: exact B&B vs greedy dive",
        f"{'pair':>10s} {'decisions':>9s} {'exact obj':>11s} "
        f"{'greedy obj':>11s} {'exact s':>8s} {'greedy s':>9s}",
    ]
    for r in rows:
        lines.append(
            f"{str(r['pair']):>10s} {r['decisions']:9d} "
            f"{r['exact_obj']:11.3f} {r['greedy_obj']:11.3f} "
            f"{r['exact_s']:8.2f} {r['greedy_s']:9.2f}"
        )
    record_table("ablation_solver", "\n".join(lines))

    for r in rows:
        # the exact solution is never worse; greedy is close behind
        assert r["exact_obj"] <= r["greedy_obj"] + 1e-9
        gap = r["greedy_obj"] - r["exact_obj"]
        assert gap <= abs(r["exact_obj"]) * 0.15 + 0.5


def test_ablation_pulse_vs_barrier_isa(benchmark, poughkeepsie, record_table, record_trace):
    """Circuit-level (barrier) vs pulse-level (verbatim times) realization.

    The paper's footnote 2 notes OpenPulse offers finer control than
    barriers; this quantifies what the coarser ISA costs on the SWAP
    benchmarks: identical crosstalk avoidance, but the barrier realization
    re-times the circuit and can stretch it.
    """
    report = ground_truth_report(poughkeepsie)
    backend = NoisyBackend(poughkeepsie)
    cal = poughkeepsie.calibration()
    config = ExperimentConfig(trajectories=150, seed=29)
    endpoints = crosstalk_affected_endpoints(
        poughkeepsie.coupling, report.high_pairs()
    )[:4]

    def run():
        rows = []
        for (s, d) in endpoints:
            route = crosstalk_route(poughkeepsie.coupling, s, d,
                                    report.high_pairs())
            bench = swap_benchmark(poughkeepsie.coupling, s, d, path=route)
            entry = {"pair": (s, d)}
            # barrier ISA (default pipeline)
            err_b, dur_b = swap_error_rate(backend, bench, "XtalkSched",
                                           report, config)
            entry["barrier"] = (err_b, dur_b)
            # pulse ISA: execute the intended schedule verbatim; score with
            # Z-basis Bell error (both halves see the same metric)
            pulse = XtalkScheduler(cal, report, omega=0.5, isa="pulse")
            result = pulse.schedule(bench.circuit)
            entry["pulse_duration"] = result.intended_schedule.makespan()
            rows.append(entry)
        return rows

    with record_trace("ablation_pulse_vs_barrier_isa"):
        rows = run_once(benchmark, run)
    lines = [
        "Ablation 5: barrier vs pulse ISA (XtalkSched)",
        f"{'pair':>10s} {'barrier err/dur':>18s} {'pulse dur':>10s}",
    ]
    for r in rows:
        lines.append(
            f"{str(r['pair']):>10s} "
            f"{r['barrier'][0]:8.3f}/{r['barrier'][1]:8.0f} "
            f"{r['pulse_duration']:10.0f}"
        )
    record_table("ablation_pulse_isa", "\n".join(lines))

    for r in rows:
        # verbatim pulse timing never stretches beyond the barrier
        # realization's hardware re-schedule
        assert r["pulse_duration"] <= r["barrier"][1] + 1e-6


def test_ablation_route_around_vs_schedule_around(benchmark, poughkeepsie,
                                                  record_table, record_trace):
    """Routing-level mitigation vs scheduling-level mitigation.

    For endpoint pairs where an equally short crosstalk-free route exists,
    compare (a) ParSched on the crosstalk-crossing route, (b) XtalkSched
    on the same route (schedule around), and (c) ParSched on the
    min-crosstalk route (route around).  Both mitigations beat the naive
    baseline; they are complementary compiler levers.
    """
    from repro.transpiler.routing import min_crosstalk_path
    from repro.workloads.swap import plan_has_crosstalk
    from repro.transpiler.routing import meet_in_middle_plan

    report = ground_truth_report(poughkeepsie)
    backend = NoisyBackend(poughkeepsie)
    config = ExperimentConfig(trajectories=150, seed=27)
    highs = report.high_pairs()

    # endpoint pairs with both a crossing route and a clean alternative
    candidates = []
    for (s, d) in crosstalk_affected_endpoints(poughkeepsie.coupling, highs):
        dirty = crosstalk_route(poughkeepsie.coupling, s, d, highs)
        clean = min_crosstalk_path(poughkeepsie.coupling, s, d, highs)
        clean_plan = meet_in_middle_plan(poughkeepsie.coupling, s, d,
                                         path=clean)
        if dirty is not None and not plan_has_crosstalk(clean_plan, highs):
            candidates.append((s, d, dirty, clean))
        if len(candidates) == 4:
            break

    def run():
        rows = []
        for (s, d, dirty, clean) in candidates:
            dirty_bench = swap_benchmark(poughkeepsie.coupling, s, d,
                                         path=dirty)
            clean_bench = swap_benchmark(poughkeepsie.coupling, s, d,
                                         path=clean)
            naive, _ = swap_error_rate(backend, dirty_bench, "ParSched",
                                       report, config)
            scheduled, _ = swap_error_rate(backend, dirty_bench, "XtalkSched",
                                           report, config)
            rerouted, _ = swap_error_rate(backend, clean_bench, "ParSched",
                                          report, config)
            rows.append({"pair": (s, d), "naive": naive,
                         "schedule_around": scheduled,
                         "route_around": rerouted})
        return rows

    with record_trace("ablation_route_around_vs_schedule_around"):
        rows = run_once(benchmark, run)
    lines = [
        "Ablation 6: route-around vs schedule-around",
        f"{'pair':>10s} {'naive Par':>10s} {'XtalkSched':>11s} "
        f"{'rerouted Par':>13s}",
    ]
    for r in rows:
        lines.append(
            f"{str(r['pair']):>10s} {r['naive']:10.3f} "
            f"{r['schedule_around']:11.3f} {r['route_around']:13.3f}"
        )
    record_table("ablation_route_vs_schedule", "\n".join(lines))

    mean = lambda k: float(np.mean([r[k] for r in rows]))
    assert mean("schedule_around") < mean("naive")
    assert mean("route_around") < mean("naive")


def test_ablation_rb_estimators(benchmark, poughkeepsie, record_table, record_trace):
    """Exact Walsh-characteristic estimator vs Monte-Carlo sampling."""
    truth_ind = poughkeepsie.calibration().cnot_error_of(10, 15)
    truth_cond = poughkeepsie.crosstalk.conditional_error(
        (10, 15), (11, 12), poughkeepsie.calibration()
    )

    def run():
        out = {}
        for mode, cfg in [
            ("exact", RBConfig(num_sequences=20, estimate="exact")),
            ("exact-scalar", RBConfig(num_sequences=20,
                                      estimate="exact-scalar")),
            ("sampled", RBConfig(num_sequences=20, samples_per_sequence=24,
                                 estimate="sampled")),
        ]:
            executor = RBExecutor(poughkeepsie, config=cfg, seed=31)
            t0 = time.perf_counter()
            ind = executor.run_independent((10, 15)).error_rate((10, 15))
            cond = executor.run_pair((10, 15), (11, 12)).error_rate((10, 15))
            out[mode] = {
                "independent": ind,
                "conditional": cond,
                "seconds": time.perf_counter() - t0,
            }
        return out

    with record_trace("ablation_rb_estimators"):
        result = run_once(benchmark, run)
    lines = [
        "Ablation 4: RB survival estimators",
        f"{'estimator':>10s} {'E(10,15)':>10s} {'E(10,15|11,12)':>15s} "
        f"{'seconds':>8s}",
        f"{'truth':>10s} {truth_ind:10.4f} {truth_cond:15.4f} {'-':>8s}",
    ]
    for mode, r in result.items():
        lines.append(
            f"{mode:>10s} {r['independent']:10.4f} {r['conditional']:15.4f} "
            f"{r['seconds']:8.2f}"
        )
    record_table("ablation_rb_estimators", "\n".join(lines))

    for mode, r in result.items():
        assert r["independent"] == __import__("pytest").approx(truth_ind,
                                                               abs=0.012)
    assert result["exact"]["seconds"] < result["sampled"]["seconds"]
