"""Figure 3: crosstalk characterization maps for the three devices.

Runs the SRB measurement campaign over all 1-hop pairs of each device
(longer-range pairs are crosstalk-free by the paper's own finding and by
construction in the device model) and checks the detected high-crosstalk
pair set against the planted ground truth.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig3_characterization as fig3
from repro.rb.executor import RBConfig


def test_fig3_characterization_maps(benchmark, devices, record_table, record_trace):
    rb_config = RBConfig(shots=1024)  # exact estimator + paper shot noise

    def run():
        return fig3.run_fig3(devices=devices, rb_config=rb_config, seed=3)

    with record_trace("fig3_characterization_maps") as session:
        rows = run_once(benchmark, run)
        scorecard = fig3.fig3_scorecard(rows)
        session.documents["scorecard"] = scorecard.to_dict()
        session.results.update(scorecard.series())
    record_table("fig3_characterization", fig3.format_table(rows))
    print(f"\n{scorecard.format()}")

    # Also render the maps as SVG (Figure 3 as an actual figure).
    from benchmarks.conftest import RESULTS_DIR
    from repro.visualize import device_map_svg

    for device, row in zip(devices, rows):
        svg = device_map_svg(
            device,
            high_pairs=[frozenset(p) for p in row.detected_pairs],
            title=f"{device.name} (measured high-crosstalk pairs)",
        )
        (RESULTS_DIR / f"fig3_map_{device.name}.svg").write_text(svg)

    # Pooled characterization quality across every device.
    assert scorecard.metrics["recall"] >= 0.9
    assert scorecard.metrics["one_hop_exact"] == 1.0

    for row in rows:
        # Every planted pair must be detected (perfect recall), precision
        # must be high, and every detected pair must sit at 1 hop — the
        # three observations of the paper's Figure 3.
        assert row.false_negatives == 0, row.device
        assert row.false_positives <= 2, row.device
        assert row.all_detected_at_one_hop, row.device
        # Degradations reach the paper's order of magnitude (up to 11x).
        assert row.max_degradation > 3.0
