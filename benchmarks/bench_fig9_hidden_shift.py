"""Figure 9: Hidden Shift sensitivity to ω with/without redundant CNOTs.

Checks the paper's headline for the crosstalk-susceptible variant: any
ω in [0.2, 0.5] beats ω = 0 on every region, with multi-x best-case gains.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig9_hidden_shift as fig9
from repro.experiments.common import ExperimentConfig


def test_fig9_hidden_shift_omega_sensitivity(benchmark, poughkeepsie,
                                             record_table, record_trace):
    config = ExperimentConfig(trajectories=150, seed=15)

    def run():
        return fig9.run_fig9(device=poughkeepsie, config=config)

    with record_trace("fig9_hidden_shift_omega_sensitivity"):
        rows = run_once(benchmark, run)
    record_table("fig9_hidden_shift", fig9.format_table(rows))

    summary = fig9.summarize(rows)
    # redundant variant: mid-range omega beats omega=0 everywhere
    assert summary.redundant_midrange_wins == summary.regions
    # paper: best-case improvements as high as 3x
    assert summary.best_redundant_improvement > 1.5
    # redundant circuits are strictly more error-prone than plain ones
    for region in {r.region for r in rows}:
        plain0 = next(r.error_rate for r in rows
                      if r.region == region and not r.redundant and r.omega == 0.0)
        red0 = next(r.error_rate for r in rows
                    if r.region == region and r.redundant and r.omega == 0.0)
        assert red0 > plain0
