"""Section 9.4: XtalkSched compile-time scaling on supremacy circuits.

The paper compiles 6-18 qubit, 100-1000 gate random circuits in under 2
minutes (500 gates) / 15 minutes (1000 gates) with Z3; the reproduction's
branch-and-bound/greedy solver must stay inside those envelopes.
"""

import os

from benchmarks.conftest import run_once
from repro.experiments import scalability

FULL = os.environ.get("REPRO_FULL", "0") == "1"

INSTANCES = scalability.DEFAULT_INSTANCES if FULL else (
    (6, 100), (8, 200), (12, 300), (16, 500),
)


def test_scheduler_compile_time_scaling(benchmark, poughkeepsie, record_table, record_trace):
    def run():
        return scalability.run_scalability(device=poughkeepsie,
                                           instances=INSTANCES)

    with record_trace("scheduler_compile_time_scaling"):
        rows = run_once(benchmark, run)
    record_table("scalability", scalability.format_table(rows))

    for row in rows:
        if row.num_gates <= 500:
            assert row.compile_seconds < 120.0   # paper: < 2 minutes
        else:
            assert row.compile_seconds < 900.0   # paper: < 15 minutes
    # scaling is driven by gates, not qubits: the largest instance still
    # finishes within the paper's envelope even with hundreds of decisions
    assert max(r.num_decisions for r in rows) > 20
