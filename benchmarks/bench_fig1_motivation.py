"""Figure 1: the motivating example machine and its three schedules.

Checks the qualitative story the paper opens with: the default parallel
schedule suffers crosstalk, naive serialization trades it for decoherence
on the low-coherence qubit, and the desired schedule avoids both.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig1_motivation as fig1
from repro.experiments.common import ExperimentConfig


def test_fig1_tradeoff(benchmark, record_table, record_trace):
    config = ExperimentConfig(trajectories=300, seed=3)

    def run():
        return fig1.run_fig1(config=config)

    with record_trace("fig1_tradeoff"):
        result = run_once(benchmark, run)
    record_table("fig1_motivation", fig1.format_report(result))

    parallel = result.errors["(c) parallel"]
    naive = result.errors["(d) naive serial"]
    desired = result.errors["(e) XtalkSched"]
    # the desired schedule beats the crosstalk-suffering default clearly
    assert desired < parallel - 0.01
    # and never does worse than naive serialization
    assert desired <= naive + 0.01
    # the deterministic part of Figure 1e: minimal qubit-2 lifetime
    assert result.qubit2_lifetime["(e) XtalkSched"] <= \
        result.qubit2_lifetime["(d) naive serial"]
    assert result.qubit2_lifetime["(e) XtalkSched"] <= \
        result.qubit2_lifetime["(c) parallel"] + 1e-6
