"""Figure 4: daily drift of conditional error rates on IBMQ Poughkeepsie.

Tracks the paper's two named pairs over six days of SRB against the
drifting ground truth and verifies the paper's three observations:
conditional rates dominate independent rates every day, they drift by
multiple x, and the high-pair set stays stable.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig4_daily_drift as fig4
from repro.rb.executor import RBConfig


def test_fig4_daily_drift(benchmark, poughkeepsie, record_table, record_trace):
    rb_config = RBConfig(shots=1024)  # exact estimator + paper shot noise

    def run():
        return fig4.run_fig4(device=poughkeepsie, days=6,
                             rb_config=rb_config, seed=5)

    with record_trace("fig4_daily_drift") as session:
        rows = run_once(benchmark, run)
        scorecard = fig4.fig4_scorecard(rows)
        session.documents["scorecard"] = scorecard.to_dict()
        session.results.update(scorecard.series())
    record_table("fig4_daily_drift", fig4.format_table(rows))
    print(f"\n{scorecard.format()}")

    # Figure 4 as an actual figure.
    from benchmarks.conftest import RESULTS_DIR
    from repro.visualize import line_chart_svg

    series = {}
    for key in rows[0].conditional:
        series[key] = [(r.day, r.conditional[key]) for r in rows]
    for key in rows[0].independent:
        series[key] = [(r.day, r.independent[key]) for r in rows]
    svg = line_chart_svg(series, title="Daily crosstalk drift (Poughkeepsie)",
                         x_label="day", y_label="error rate")
    (RESULTS_DIR / "fig4_daily_drift.svg").write_text(svg)

    # The drift scorecard must recover the planted high pairs nearly
    # every (day, pair) decision — the characterization-quality gate.
    assert scorecard.metrics["recall"] >= 0.9
    assert scorecard.metrics["drift_lag_days"] <= 1.0

    summary = fig4.summarize(rows)
    assert summary.conditional_above_independent_every_day
    # Paper: up to 2x on this machine (3x across devices); measurement
    # noise on top of true drift can push slightly past that.
    assert 1.3 < summary.max_conditional_variation < 6.0
    assert summary.stable_high_pairs
