"""Figure 5: SWAP-circuit error rates (a-c) and program durations (d).

Each crosstalk-affected endpoint pair is compiled with the three schedulers
and scored by state tomography of the Bell pair the circuit prepares.  The
benchmark covers a subset of endpoint pairs per device by default (the full
66-circuit sweep is minutes-per-device; set REPRO_FULL=1 to run it all).
"""

import os

from benchmarks.conftest import run_once
from repro.experiments import fig5_swap_errors as fig5
from repro.experiments.common import ExperimentConfig

FULL = os.environ.get("REPRO_FULL", "0") == "1"


def test_fig5_swap_errors_and_durations(benchmark, devices, record_table, record_trace):
    config = ExperimentConfig(trajectories=120, seed=7)
    max_pairs = None if FULL else 6

    def run():
        return fig5.run_fig5(devices=devices, config=config,
                             max_pairs_per_device=max_pairs)

    with record_trace("fig5_swap_errors_and_durations"):
        rows = run_once(benchmark, run)
    record_table("fig5_swap_errors", fig5.format_table(rows))

    summary = fig5.summarize(rows)
    # Paper: max 5.6x / geomean 2x improvement over ParSched.
    assert summary.max_improvement_over_par > 2.0
    assert summary.geomean_improvement_over_par > 1.3
    # Paper: durations only modestly above ParSched (1.16x mean, 1.7x max).
    assert summary.mean_duration_ratio_vs_par < 1.4
    assert summary.max_duration_ratio_vs_par < 1.8
    # XtalkSched best or tied nearly everywhere.
    assert summary.wins >= 0.7 * summary.total
