"""Figure 7: XtalkSched error rates vs the crosstalk-free ideal.

For crosstalk-affected SWAP paths on Poughkeepsie, compares XtalkSched's
tomography error against the average best-schedule error of same-length
crosstalk-free paths — the paper's empirical near-optimality check.
"""

import os

from benchmarks.conftest import run_once
from repro.experiments import fig7_optimality as fig7
from repro.experiments.common import ExperimentConfig

FULL = os.environ.get("REPRO_FULL", "0") == "1"


def test_fig7_near_optimality(benchmark, poughkeepsie, record_table, record_trace):
    config = ExperimentConfig(trajectories=120, seed=11)
    max_pairs = None if FULL else 6

    def run():
        return fig7.run_fig7(device=poughkeepsie, config=config,
                             max_pairs=max_pairs,
                             max_ideal_paths_per_length=3)

    with record_trace("fig7_near_optimality"):
        rows = run_once(benchmark, run)
    record_table("fig7_optimality", fig7.format_table(rows))

    in_band = sum(1 for r in rows if r.within_band)
    # Paper: XtalkSched within 1% +- 16% of the crosstalk-free ideal.
    assert in_band >= 0.7 * len(rows)
