"""Shared infrastructure for the figure-reproduction benchmarks.

Every benchmark regenerates one table/figure of the paper (DESIGN.md §4
maps them).  Benchmarks run their driver exactly once (``pedantic`` with a
single round — the drivers are minutes-scale, not microbenchmarks), print
the reproduced table, and archive it under ``benchmarks/results/`` so the
numbers survive pytest's output capture.
"""

import contextlib
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record_table(results_dir):
    def _record(name: str, table: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(table + "\n")
        print(f"\n{table}\n[written to {path}]")

    return _record


@pytest.fixture
def record_trace(results_dir):
    """Run the block inside a :class:`repro.obs.Session` and archive its
    telemetry — span-tree trace, metric deltas, event log, and run
    manifest — next to the driver's table, plus a summary record in the
    ``results/history.jsonl`` run store::

        with record_trace("fig5") as session:
            rows = run()
            session.documents["scorecard"] = scorecard.to_dict()

    Inspect any of the written files with ``python -m repro.obs report``;
    diff two runs with ``python -m repro.obs diff``.
    """

    @contextlib.contextmanager
    def _record(name: str):
        from repro.obs import Session

        session = Session(name, history=str(results_dir / "history.jsonl"))
        with session:
            yield session
        paths = session.write(str(results_dir))
        print(f"\n[run {session.run_id}: telemetry written to "
              f"{paths['trace']} (+ metrics/manifest/events; summary "
              f"appended to history.jsonl)]")

    return _record


@pytest.fixture(scope="session")
def devices():
    from repro.device.presets import all_devices

    return all_devices()


@pytest.fixture(scope="session")
def poughkeepsie(devices):
    return devices[0]


def run_once(benchmark, fn):
    """Run a minutes-scale driver exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
