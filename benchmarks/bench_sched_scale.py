"""Device-scale scheduling benchmark: heavy-hex wall time + objective gap.

Writes ``BENCH_sched_scale.json`` (repo root by default) as a
``repro.obs.manifest/v1`` run manifest whose ``results.workloads`` carry
one entry per workload::

    {"schema": "repro.obs.manifest/v1", "run_id": ..., "git": {...},
     "config": {"fast": ...}, "results": {"workloads": {
        "sched_65q": {"seconds": ..., "strategy": "windowed",
                      "decisions": ..., "objective": ...,
                      "interrupt": ..., "fallback": ...}, ...,
        "objective_gap": {"exact_objective": ..., "windowed_gap": ...,
                          "portfolio_gap": ...}}}}

Two workload families:

* **scale** — a supremacy-style circuit on the heavy-hex stress presets
  (``ibm_hummingbird_65q``; ``ibm_eagle_127q`` outside ``--fast``),
  scheduled with ``strategy="auto"`` under a real ``max_solve_seconds``
  budget.  The benchmark fails if the schedule does not complete (every
  candidate pair assigned), or if the solve was interrupted without the
  budget fallback reason being recorded — degradation must never be
  silent.
* **gap** — on a small model where exact B&B is reachable, the windowed
  and portfolio strategies must land within 5% of the exact objective
  (they match it on this model), and the windowed schedule must be
  repeat-run identical.

Run directly (not through pytest)::

    PYTHONPATH=src python benchmarks/bench_sched_scale.py --fast
    PYTHONPATH=src python benchmarks/bench_sched_scale.py --gate 5

``--gate N`` diffs this run against the last *N* history records of the
same name (``benchmarks/results/history.jsonl`` by default) with the
noise-aware comparator and exits nonzero on any regression.  Every run
appends its summary record to the history store unless ``--no-history``
is given; gating against a record produced on a dirty working tree
prints a warning.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.circuit.circuit import QuantumCircuit  # noqa: E402
from repro.core.scheduling.xtalk import (  # noqa: E402
    STRATEGY_CODES,
    XtalkScheduler,
)
from repro.device import ibmq_poughkeepsie  # noqa: E402
from repro.device.presets import (  # noqa: E402
    ibm_eagle_127q,
    ibm_hummingbird_65q,
)
from repro.experiments.common import ground_truth_report  # noqa: E402
from repro.obs import (  # noqa: E402
    MetricsRegistry,
    RunHistory,
    RunManifest,
    RunRecord,
    diff_records,
    format_diff,
    push_registry,
    write_manifest,
)
from repro.workloads.supremacy import supremacy_circuit  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_sched_scale.json"
DEFAULT_HISTORY = REPO_ROOT / "benchmarks" / "results" / "history.jsonl"

#: Windowed/portfolio must land within 5% of the exact objective.
GAP_TOLERANCE = 0.05


def bench_scale(factory, qubits: int, num_gates: int, budget: float,
                seed: int) -> dict:
    """Schedule a supremacy-style circuit on a heavy-hex preset."""
    device = factory()
    report = ground_truth_report(device)
    circuit = supremacy_circuit(
        device.coupling, qubits=range(qubits), num_gates=num_gates, seed=seed)
    scheduler = XtalkScheduler(
        device.calibration(), report, omega=0.5,
        max_solve_seconds=budget, strategy="auto")
    started = time.perf_counter()
    result = scheduler.schedule(circuit)
    seconds = time.perf_counter() - started
    return {
        "seconds": seconds,
        "budget_seconds": budget,
        "gates": num_gates,
        "qubits": qubits,
        "strategy": result.strategy,
        "strategy_code": float(STRATEGY_CODES.get(result.strategy, -1)),
        "decisions": len(result.candidate_pairs),
        "assigned": len(result.solution.assignment),
        "objective": result.solution.objective,
        "interrupt": result.solution.interrupt,
        "fallback": result.fallback_reason,
        "nodes": result.solution.nodes_explored,
    }


def _gap_circuit() -> QuantumCircuit:
    """Concurrent CNOT layers small enough for exact B&B."""
    circ = QuantumCircuit(20, 4)
    for pair in ((5, 10), (11, 12), (0, 1), (16, 17), (3, 4), (13, 14)):
        circ.cx(*pair)
    for i, q in enumerate((10, 11, 0, 16)):
        circ.measure(q, i)
    return circ


def bench_gap() -> dict:
    """Objective-vs-exact gap of windowed/portfolio on a small model."""
    device = ibmq_poughkeepsie()
    report = ground_truth_report(device)
    circuit = _gap_circuit()

    def run(strategy: str):
        scheduler = XtalkScheduler(
            device.calibration(), report, omega=0.5, strategy=strategy)
        return scheduler.schedule(circuit)

    exact = run("monolithic")
    windowed = run("windowed")
    portfolio = run("portfolio")
    repeat = run("windowed")
    reference = exact.solution.objective

    def gap(result) -> float:
        return abs(result.solution.objective - reference) / abs(reference)

    return {
        "exact_is_exact": exact.solution.exact,
        "exact_objective": reference,
        "windowed_objective": windowed.solution.objective,
        "portfolio_objective": portfolio.solution.objective,
        "windowed_gap": gap(windowed),
        "portfolio_gap": gap(portfolio),
        "windowed_repeat_identical": (
            windowed.solution.assignment == repeat.solution.assignment
            and windowed.solution.times == repeat.solution.times
        ),
    }


def _warn_if_dirty(record: RunRecord, label: str) -> None:
    if record.git_dirty:
        print(f"[bench_sched] WARNING: {label} (run {record.run_id}) was "
              "produced on a dirty working tree; regenerate from a clean "
              "tree before trusting the gate", file=sys.stderr)


def check_workloads(workloads: dict) -> list:
    """The correctness gates: completion, recorded reasons, tight gaps."""
    failures = []
    for name, entry in workloads.items():
        if "decisions" not in entry:
            continue
        if entry["assigned"] != entry["decisions"]:
            failures.append(
                f"{name}: schedule incomplete "
                f"({entry['assigned']}/{entry['decisions']} decisions)")
        if entry["interrupt"] == "deadline" and \
                entry["fallback"] != "solve_budget:incumbent":
            failures.append(
                f"{name}: budget interrupt without a recorded fallback "
                f"reason (fallback={entry['fallback']!r})")
    gap = workloads.get("objective_gap")
    if gap is not None:
        if not gap["exact_is_exact"]:
            failures.append("objective_gap: reference solve was not exact")
        for key in ("windowed_gap", "portfolio_gap"):
            if gap[key] > GAP_TOLERANCE:
                failures.append(
                    f"objective_gap: {key} {gap[key]:.4f} exceeds "
                    f"{GAP_TOLERANCE:.2f}")
        if not gap["windowed_repeat_identical"]:
            failures.append(
                "objective_gap: windowed schedule differs across runs")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="65q only, smaller circuit and budget "
                             "(CI smoke mode)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT})")
    parser.add_argument("--gate", type=int, default=None, metavar="N",
                        help="diff this run against the last N history "
                             "records and exit nonzero on regressions")
    parser.add_argument("--history", type=Path, default=DEFAULT_HISTORY,
                        help=f"history store (default {DEFAULT_HISTORY})")
    parser.add_argument("--no-history", action="store_true",
                        help="do not append this run to the history store")
    args = parser.parse_args(argv)

    registry = MetricsRegistry()
    workloads = {}
    with push_registry(registry):
        print("[bench_sched] running objective_gap ...", flush=True)
        workloads["objective_gap"] = bench_gap()
        print(f"[bench_sched]   windowed gap "
              f"{workloads['objective_gap']['windowed_gap']:.4f}  "
              f"portfolio gap "
              f"{workloads['objective_gap']['portfolio_gap']:.4f}",
              flush=True)

        # 250 gates on the 65q preset crosses exact_decision_limit, so
        # even the fast CI case exercises the windowed path.
        scale_cases = [("sched_65q", ibm_hummingbird_65q, 65,
                        250 if args.fast else 350,
                        5.0 if args.fast else 10.0, 3)]
        if not args.fast:
            scale_cases.append(
                ("sched_127q", ibm_eagle_127q, 127, 500, 30.0, 7))
        for name, factory, qubits, gates, budget, seed in scale_cases:
            print(f"[bench_sched] running {name} "
                  f"({gates} gates, {budget:.0f}s budget) ...", flush=True)
            entry = bench_scale(factory, qubits, gates, budget, seed)
            workloads[name] = entry
            print(f"[bench_sched]   {entry['seconds']:.2f}s  "
                  f"strategy={entry['strategy']}  "
                  f"decisions={entry['decisions']}  "
                  f"interrupt={entry['interrupt']}  "
                  f"fallback={entry['fallback']}", flush=True)

    manifest = RunManifest.capture(
        name="bench_sched_scale",
        config={"fast": args.fast, "cpu_count": os.cpu_count()},
        results={"workloads": workloads},
    )
    write_manifest(manifest, str(args.out))
    print(f"[bench_sched] wrote {args.out} (run {manifest.run_id})")

    record = RunRecord.from_artifacts(manifest=manifest.to_dict(),
                                      metrics=registry.snapshot())
    history = RunHistory(str(args.history))
    baseline_window = history.last(args.gate, name=record.name) \
        if args.gate else []
    if not args.no_history:
        history.append(record)
        print(f"[bench_sched] appended run {record.run_id} to "
              f"{history.path} ({len(history)} records)")

    failures = check_workloads(workloads)

    if args.gate:
        _warn_if_dirty(record, "this run")
        if not baseline_window:
            print(f"[bench_sched] gate: no prior {record.name!r} records in "
                  f"{history.path}; nothing to compare", file=sys.stderr)
        else:
            for prior in baseline_window:
                _warn_if_dirty(prior, "baseline record")
            diff = diff_records(baseline_window, record)
            print(format_diff(diff))
            for regression in diff.regressions:
                failures.append(
                    f"history gate: {regression.name} regressed "
                    f"({regression.baseline!r} -> {regression.candidate!r})"
                )

    for failure in failures:
        print(f"[bench_sched] FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
