"""Figure 6: the three schedules for the 0 -> 13 SWAP path on Poughkeepsie.

Reproduces the paper's case study end to end: SerialSched fully serial,
ParSched overlapping the (5,10)|(11,12) crosstalk pair, XtalkSched
serializing exactly that pair and ordering SWAP 11,12 first to protect the
low-coherence qubit 10.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig6_example_schedules as fig6
from repro.experiments.common import ExperimentConfig


def test_fig6_case_study(benchmark, poughkeepsie, record_table, record_trace):
    config = ExperimentConfig(trajectories=250, seed=9)

    def run():
        return fig6.run_fig6(device=poughkeepsie, config=config)

    with record_trace("fig6_case_study"):
        result = run_once(benchmark, run)
    record_table("fig6_example_schedules", fig6.format_report(result))

    # Render each schedule as an SVG Gantt chart (Figure 6 as a figure).
    from benchmarks.conftest import RESULTS_DIR
    from repro.visualize import schedule_svg

    for name, schedule in result.schedules.items():
        svg = schedule_svg(schedule, qubits=[0, 5, 10, 11, 12, 13],
                           title=f"SWAP 0->13, {name}")
        (RESULTS_DIR / f"fig6_{name.lower()}.svg").write_text(svg)

    assert result.crosstalk_pair_overlaps["ParSched"]
    assert not result.crosstalk_pair_overlaps["XtalkSched"]
    assert result.swap_5_10_after_11_12
    assert result.errors["XtalkSched"] < result.errors["ParSched"]
    assert result.errors["XtalkSched"] < result.errors["SerialSched"]
    assert result.durations["ParSched"] < result.durations["XtalkSched"] \
        < result.durations["SerialSched"]
