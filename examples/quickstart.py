"""Quickstart: the full crosstalk-mitigation pipeline on one SWAP circuit.

Reproduces the paper's Figure 6 case study end to end:

1. characterize the device's crosstalk with simultaneous randomized
   benchmarking (Section 5);
2. compile the 0 -> 13 SWAP-path circuit with the three schedulers of
   Table 1 (SerialSched / ParSched / XtalkSched);
3. execute on the noisy device model and score each schedule by state
   tomography of the Bell pair the circuit prepares.

Run:  python examples/quickstart.py          (~1 minute)

``main(fast=True)`` shrinks the RB sizing and trajectory budget so the
example smoke-tests in seconds (the numbers get noisier; the story is the
same).
"""

from repro import (
    CharacterizationCampaign,
    CharacterizationPolicy,
    NoisyBackend,
    RBConfig,
    ibmq_poughkeepsie,
)
from repro.experiments.common import ExperimentConfig, swap_error_rate
from repro.workloads.swap import swap_benchmark


def main(fast: bool = False):
    device = ibmq_poughkeepsie()
    print(f"device: {device}\n")

    # ------------------------------------------------------------------
    # 1. Characterize crosstalk (1-hop pairs, bin-packed experiments).
    # ------------------------------------------------------------------
    print("characterizing crosstalk (SRB on 1-hop pairs, bin-packed)...")
    rb_config = RBConfig.fast() if fast else RBConfig(num_sequences=16)
    campaign = CharacterizationCampaign(device, rb_config=rb_config, seed=3)
    outcome = campaign.run(CharacterizationPolicy.ONE_HOP_PACKED)
    print(f"  {outcome.num_experiments} experiments "
          f"(would take ~{outcome.machine_minutes:.0f} min of machine time "
          f"at the paper's protocol sizing)")
    print(outcome.report.summary())
    print()

    # ------------------------------------------------------------------
    # 2+3. Schedule and execute the paper's case-study circuit.
    # ------------------------------------------------------------------
    bench = swap_benchmark(device.coupling, 0, 13, path=(0, 5, 10, 11, 12, 13))
    print(f"benchmark: SWAP path {bench.plan.path}, Bell pair on "
          f"{bench.meeting_pair}, {bench.circuit.two_qubit_gate_count()} CNOTs\n")

    backend = NoisyBackend(device)
    config = ExperimentConfig(trajectories=50 if fast else 200, seed=7)
    print(f"{'scheduler':14s} {'error rate':>10s} {'duration (ns)':>14s}")
    for scheduler in ("SerialSched", "ParSched", "XtalkSched"):
        error, duration = swap_error_rate(
            backend, bench, scheduler, outcome.report, config
        )
        print(f"{scheduler:14s} {error:10.3f} {duration:14.0f}")

    print("\nXtalkSched serializes the interfering SWAP(5,10) / SWAP(11,12)"
          "\npair and orders SWAP 11,12 first to protect low-coherence"
          "\nqubit 10 — lower error than both baselines at a modest duration"
          "\nincrease over ParSched.")


if __name__ == "__main__":
    main()
