"""A production-shaped workflow: characterize once, refresh daily, compile
with auto-tuned ω, and monitor drift.

Puts the library's higher-level pieces together the way a deployment
would:

1. day 0 — full 1-hop bin-packed campaign streaming results to a
   checkpoint; a simulated mid-campaign outage aborts the run, and the
   rerun resumes from the checkpoint, re-executing only the missing
   experiments; persist the report to JSON;
2. day 1 — cheap high-pairs-only refresh merged into the saved report;
   drift monitoring decides whether the cheap policy is still safe;
3. compile an application with `compile_circuit` using ω chosen by the
   compile-time success predictor (no hardware execution needed);
4. execute and compare against the ParSched baseline, printing the
   per-pass timing/counter trace of every campaign and compile.

The whole run executes inside a :class:`repro.obs.Session`, so one trace
tree, metrics snapshot, event log, and run manifest land next to the
persisted report — the telemetry a deployment would archive per run
(inspect them with ``python -m repro.obs report <file>``).

Run:  python examples/production_workflow.py      (~1 minute)

``main(fast=True)`` shrinks the RB sizing and trajectory budget for a
seconds-long smoke run.
"""

import tempfile
from pathlib import Path

from repro import (
    CharacterizationCampaign,
    CharacterizationPolicy,
    CrosstalkReport,
    NoisyBackend,
    RBConfig,
    compile_circuit,
    ibmq_poughkeepsie,
)
from repro.core.characterization.drift import diff_reports, format_diff
from repro.core.scheduling.predictor import tune_omega
from repro.circuit.circuit import QuantumCircuit
from repro.experiments.common import ExperimentConfig, run_distribution
from repro.metrics.distributions import success_probability
from repro.obs import Session
from repro.resilience import FatalTaskError, FaultInjector, FaultPlan
from repro.workloads.hidden_shift import expected_output, hidden_shift_on_region


def main(fast: bool = False):
    device = ibmq_poughkeepsie()
    rb_config = RBConfig.fast() if fast else RBConfig(num_sequences=16)
    campaign = CharacterizationCampaign(device, rb_config=rb_config, seed=9)
    work_dir = Path(tempfile.mkdtemp())
    session = Session(
        "production_workflow",
        config={"policy": "one_hop_packed", "fast": fast},
        seeds={"campaign": 9, "execution": 17},
    )
    with session:
        _workflow(device, campaign, work_dir, fast, session)
    paths = session.write(str(work_dir))
    print(f"\nrun telemetry archived (run {session.run_id}):")
    for kind, path in sorted(paths.items()):
        print(f"  {kind:8s} {path}")


def _workflow(device, campaign, work_dir, fast, session):
    # ------------------------------------------------------------------
    # Day 0: full campaign with checkpoint/resume, persisted.
    #
    # Completed SRB experiments stream to a JSON-lines checkpoint as the
    # campaign runs. We simulate a mid-campaign outage (an injected
    # non-retryable fault) and then resume: the rerun recognizes the
    # checkpointed experiments by content and re-executes only the
    # missing ones — the final report is identical to an uninterrupted
    # run.
    # ------------------------------------------------------------------
    print("day 0: full 1-hop campaign (with simulated outage)...")
    checkpoint = str(work_dir / "day0.ckpt.jsonl")
    outage = FaultInjector(FaultPlan.single("fatal", rate=0.1, seed=23))
    try:
        campaign.run(CharacterizationPolicy.ONE_HOP_PACKED, day=0,
                     checkpoint=checkpoint, faults=outage)
    except FatalTaskError:
        print(f"  outage after {outage.count} injected fault(s); "
              "partial results checkpointed")
    print("  resuming from checkpoint...")
    day0 = campaign.run(CharacterizationPolicy.ONE_HOP_PACKED, day=0,
                        checkpoint=checkpoint)
    print(f"  resumed: {day0.checkpoint_hits} of "
          f"{day0.plan.num_experiments} experiments served from the "
          "checkpoint")
    store = work_dir / "crosstalk_report.json"
    store.write_text(day0.report.to_json())
    print(f"  {len(day0.report.high_pairs())} high pairs found; report "
          f"saved to {store}")
    print("\n" + day0.trace.format())

    # ------------------------------------------------------------------
    # Day 1: cheap refresh + drift check.
    # ------------------------------------------------------------------
    print("\nday 1: high-pairs-only refresh...")
    prior = CrosstalkReport.from_json(store.read_text())
    day1 = campaign.run(CharacterizationPolicy.HIGH_ONLY, day=1, prior=prior)
    store.write_text(day1.report.to_json())
    print(format_diff(diff_reports(prior, day1.report)))

    # ------------------------------------------------------------------
    # Compile with auto-tuned omega.
    # ------------------------------------------------------------------
    report = day1.report
    circuit = hidden_shift_on_region(
        device.coupling, (5, 10, 11, 12), shift="1010", redundant=True
    )
    choice = tune_omega(circuit, device.calibration(1), report,
                        omegas=(0.0, 0.1, 0.35, 0.75, 1.0))
    print(f"\nauto-tuned omega = {choice.omega} "
          f"(predicted success {choice.prediction.total:.3f})")
    for omega, predicted in choice.sweep:
        print(f"  omega={omega:4.2f}: predicted success {predicted:.3f}")

    # ------------------------------------------------------------------
    # Execute tuned XtalkSched vs ParSched.
    # ------------------------------------------------------------------
    backend = NoisyBackend(device, day=1)
    config = ExperimentConfig(trajectories=60 if fast else 150, seed=17)
    expected = expected_output("1010")
    results = {}
    for scheduler, omega in (("par", 0.0), ("xtalk", choice.omega)):
        compiled = compile_circuit(circuit, device, report,
                                   scheduler=scheduler, omega=omega, day=1)
        probs = run_distribution(backend, compiled.circuit, config)
        from repro.experiments.common import distribution_as_dict

        success = success_probability(distribution_as_dict(probs), expected)
        results[scheduler] = (1 - success, compiled.duration)
        print(f"\n{scheduler}: error {1 - success:.3f}, "
              f"duration {compiled.duration:.0f} ns")
        print(compiled.trace.format())

    tolerance = 0.1 if fast else 0.02  # fewer trajectories, noisier rates
    assert results["xtalk"][0] <= results["par"][0] + tolerance
    print("\ntuned XtalkSched matches or beats ParSched, as predicted "
          "at compile time.")
    session.results["xtalk_error"] = results["xtalk"][0]
    session.results["par_error"] = results["par"][0]


if __name__ == "__main__":
    main()
