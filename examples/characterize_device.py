"""Fast crosstalk characterization: the four policies of Section 5.

Plans (and for the optimized policies, runs) the SRB campaigns on IBMQ
Poughkeepsie, showing the stacked cost reductions of the paper's Figure 10
and the daily workflow: a full 1-hop campaign once, then cheap daily
refreshes of only the high-crosstalk pairs.

Run:  python examples/characterize_device.py      (~1 minute)

``main(fast=True)`` uses the minimal RB sizing for a seconds-long smoke
run.
"""

from repro import (
    CharacterizationCampaign,
    CharacterizationPolicy,
    RBConfig,
    ibmq_poughkeepsie,
)
from repro.core.characterization.cost import PAPER_COST_MODEL


def main(fast: bool = False):
    device = ibmq_poughkeepsie()
    rb_config = RBConfig.fast() if fast else RBConfig(num_sequences=16)
    campaign = CharacterizationCampaign(device, rb_config=rb_config, seed=3)

    # ------------------------------------------------------------------
    # Cost of each policy (planning only; the cost model applies the
    # paper's protocol sizing of 100 sequences x 1024 trials).
    # ------------------------------------------------------------------
    print(f"{'policy':34s} {'experiments':>11s} {'machine time':>14s}")
    baseline_plan = campaign.plan(CharacterizationPolicy.ALL_PAIRS)
    one_hop_plan = campaign.plan(CharacterizationPolicy.ONE_HOP)
    packed_plan = campaign.plan(CharacterizationPolicy.ONE_HOP_PACKED)
    for label, plan in [
        ("all pairs (baseline)", baseline_plan),
        ("opt 1: one hop", one_hop_plan),
        ("opt 2: + bin packing", packed_plan),
    ]:
        hours = PAPER_COST_MODEL.hours(plan.num_experiments)
        print(f"{label:34s} {plan.num_experiments:11d} {hours:11.1f} h")

    # ------------------------------------------------------------------
    # Day 0: run the packed 1-hop campaign for a full picture.
    # ------------------------------------------------------------------
    print("\nday 0: full 1-hop campaign (bin-packed)...")
    full = campaign.run(CharacterizationPolicy.ONE_HOP_PACKED, day=0)
    print(full.report.summary())

    # ------------------------------------------------------------------
    # Day 1+: refresh only the high-crosstalk pairs (opt 3).
    # ------------------------------------------------------------------
    print("\nday 1: refresh only the high-crosstalk pairs (opt 3)...")
    daily = campaign.run(CharacterizationPolicy.HIGH_ONLY, day=1,
                         prior=full.report)
    minutes = PAPER_COST_MODEL.minutes(daily.num_experiments)
    print(f"  {daily.num_experiments} experiments "
          f"(~{minutes:.0f} min of machine time — the paper's <15 min)")
    print(daily.report.summary())

    reduction = baseline_plan.num_experiments / daily.num_experiments
    print(f"\ntotal reduction vs the all-pairs baseline: {reduction:.0f}x "
          f"(paper: 35-73x)")


if __name__ == "__main__":
    main()
