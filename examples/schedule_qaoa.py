"""Tuning the crosstalk weight factor ω for a QAOA application.

Sweeps XtalkSched's ω on a crosstalk-prone 4-qubit region of IBMQ
Poughkeepsie (the paper's Figure 8 study): ω = 0 is ParSched, ω = 1 is
pure crosstalk avoidance, and the sweet spot in between minimizes the
cross entropy of the measured output distribution against the noise-free
ideal.

Run:  python examples/schedule_qaoa.py      (~30 seconds)

``main(fast=True)`` sweeps three ω values with a reduced trajectory
budget for a seconds-long smoke run.
"""

from repro import NoisyBackend, XtalkScheduler, ibmq_poughkeepsie
from repro.experiments.common import (
    ExperimentConfig,
    distribution_as_dict,
    ground_truth_report,
    run_distribution,
)
from repro.metrics.distributions import cross_entropy, ideal_cross_entropy
from repro.sim.statevector import ideal_distribution
from repro.workloads.qaoa import qaoa_on_region

REGION = (5, 10, 11, 12)
OMEGAS = (0.0, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0)


def main(fast: bool = False):
    device = ibmq_poughkeepsie()
    omegas = (0.0, 0.35, 1.0) if fast else OMEGAS
    # For a real device you would run a characterization campaign here
    # (see examples/characterize_device.py); the ground-truth report keeps
    # this example fast.
    report = ground_truth_report(device)
    backend = NoisyBackend(device)
    config = ExperimentConfig(trajectories=60 if fast else 150, seed=13)

    circuit = qaoa_on_region(device.coupling, REGION, seed=11)
    ideal = ideal_distribution(circuit)
    floor = ideal_cross_entropy(ideal)
    print(f"QAOA on region {REGION}: {len(circuit)} instructions, "
          f"{circuit.two_qubit_gate_count()} CNOTs")
    print(f"noise-free cross entropy (lower bound): {floor:.3f}\n")

    print(f"{'omega':>6s} {'cross entropy':>14s} {'CE loss':>8s} "
          f"{'serialized pairs':>17s}")
    best = (None, float("inf"))
    for omega in omegas:
        scheduler = XtalkScheduler(device.calibration(), report, omega=omega)
        result = scheduler.schedule(circuit)
        probs = run_distribution(backend, result.circuit, config)
        ce = cross_entropy(distribution_as_dict(probs), ideal)
        print(f"{omega:6.2f} {ce:14.3f} {ce - floor:8.3f} "
              f"{len(result.serialized_pairs):17d}")
        if ce < best[1]:
            best = (omega, ce)

    print(f"\nbest omega: {best[0]} (cross entropy {best[1]:.3f}) — "
          f"an interior value beats both the ParSched (0.0) and the "
          f"fully-crosstalk-averse (1.0) endpoints.")


if __name__ == "__main__":
    main()
