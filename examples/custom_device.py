"""Building a custom device model and running the pipeline on it.

Shows every layer of the library working on hardware *you* define: a
12-qubit line with one planted high-crosstalk pair and one low-coherence
qubit.  The characterization campaign discovers the pair from SRB
measurements alone, and XtalkSched uses the result to beat ParSched on a
communication circuit crossing the noisy region.

Run:  python examples/custom_device.py      (~30 seconds)

``main(fast=True)`` trims the RB sizing and trajectory budget for a
seconds-long smoke run (still enough statistics to find the planted
pair).
"""

from repro import (
    CharacterizationCampaign,
    CharacterizationPolicy,
    NoisyBackend,
    RBConfig,
)
from repro.device.calibration import synthesize_calibration
from repro.device.crosstalk import CrosstalkModel, CrosstalkPair
from repro.device.device import Device
from repro.device.topology import line_coupling_map
from repro.experiments.common import ExperimentConfig, swap_error_rate
from repro.workloads.swap import swap_benchmark


def build_device() -> Device:
    coupling = line_coupling_map(12)
    calibration = synthesize_calibration(
        coupling,
        seed=21,
        slow_qubits={5: 7_000.0},       # one weak qubit in the middle
        heavy_tail_edges=1,
    )
    crosstalk = CrosstalkModel(
        coupling,
        # Gates (4,5) and (6,7) are 1 hop apart and interfere strongly.
        [CrosstalkPair((4, 5), (6, 7), factor_a=8.0, factor_b=6.0)],
        seed=99,
    )
    return Device("my_line_12q", coupling, calibration, crosstalk, seed=4)


def main(fast: bool = False):
    device = build_device()
    print(f"device: {device}")
    print(f"planted crosstalk pair: (4,5) | (6,7)\n")

    # Discover the pair from measurements alone.
    rb_config = (RBConfig(lengths=(2, 8, 20), num_sequences=12)
                 if fast else RBConfig(num_sequences=16))
    campaign = CharacterizationCampaign(device, rb_config=rb_config, seed=5)
    outcome = campaign.run(CharacterizationPolicy.ONE_HOP_PACKED)
    print(outcome.report.summary())

    detected = outcome.report.high_pairs()
    assert frozenset({(4, 5), (6, 7)}) in detected, "characterization missed it!"
    print("\ncharacterization found the planted pair from SRB data alone.\n")

    # A SWAP circuit whose two chains straddle the noisy region.
    bench = swap_benchmark(device.coupling, 2, 9)
    backend = NoisyBackend(device)
    config = ExperimentConfig(trajectories=50 if fast else 200, seed=6)
    print(f"SWAP benchmark 2 -> 9 (path {bench.plan.path}):")
    print(f"{'scheduler':14s} {'error rate':>10s} {'duration (ns)':>14s}")
    for scheduler in ("SerialSched", "ParSched", "XtalkSched"):
        error, duration = swap_error_rate(
            backend, bench, scheduler, outcome.report, config
        )
        print(f"{scheduler:14s} {error:10.3f} {duration:14.0f}")


if __name__ == "__main__":
    main()
