"""Shared fixtures.

Heavy objects (the 11520-element Clifford group, device presets, ground
truth reports) are session-scoped; RB/experiment configs are sized for test
speed, with correctness asserted through loose-but-meaningful tolerances.
"""

import numpy as np
import pytest

from repro.device.presets import (
    all_devices,
    ibmq_boeblingen,
    ibmq_johannesburg,
    ibmq_poughkeepsie,
)
from repro.experiments.common import ExperimentConfig, ground_truth_report
from repro.rb.executor import RBConfig


@pytest.fixture(scope="session")
def poughkeepsie():
    return ibmq_poughkeepsie()


@pytest.fixture(scope="session")
def johannesburg():
    return ibmq_johannesburg()


@pytest.fixture(scope="session")
def boeblingen():
    return ibmq_boeblingen()


@pytest.fixture(scope="session")
def devices():
    return all_devices()


@pytest.fixture(scope="session")
def pk_report(poughkeepsie):
    """Ground-truth (perfect) characterization of Poughkeepsie."""
    return ground_truth_report(poughkeepsie)


@pytest.fixture(scope="session")
def clifford_2q():
    from repro.rb.clifford import clifford_group

    return clifford_group(2)


@pytest.fixture(scope="session")
def clifford_1q():
    from repro.rb.clifford import clifford_group

    return clifford_group(1)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


@pytest.fixture()
def fast_rb_config():
    return RBConfig(lengths=(2, 6, 14), num_sequences=3, samples_per_sequence=8)


@pytest.fixture()
def fast_experiment_config():
    return ExperimentConfig(shots=512, trajectories=48, seed=11)
