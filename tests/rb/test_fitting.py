"""Tests for RB decay fitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rb.fitting import (
    RBFit,
    error_per_clifford_to_cnot,
    fit_rb_decay,
)


class TestFitRecovery:
    def test_exact_synthetic_decay(self):
        lengths = [2, 5, 10, 20, 40]
        a, f, b = 0.74, 0.97, 0.25
        survivals = [a * f ** m + b for m in lengths]
        fit = fit_rb_decay(lengths, survivals)
        assert fit.decay == pytest.approx(f, abs=1e-4)
        assert fit.amplitude == pytest.approx(a, abs=1e-3)
        assert fit.offset == pytest.approx(b, abs=1e-3)

    def test_noisy_decay_close(self):
        rng = np.random.default_rng(1)
        lengths = list(range(2, 60, 6))
        f = 0.95
        survivals = [
            0.75 * f ** m + 0.25 + rng.normal(0, 0.005) for m in lengths
        ]
        fit = fit_rb_decay(lengths, survivals)
        assert fit.decay == pytest.approx(f, abs=0.01)

    def test_error_per_clifford_two_qubits(self):
        fit = RBFit(0.75, 0.96, 0.25, num_qubits=2)
        assert fit.error_per_clifford == pytest.approx(0.04 * 0.75)

    def test_error_per_clifford_one_qubit(self):
        fit = RBFit(0.5, 0.98, 0.5, num_qubits=1)
        assert fit.error_per_clifford == pytest.approx(0.02 * 0.5)

    def test_error_per_cnot(self):
        fit = RBFit(0.75, 0.96, 0.25, num_qubits=2)
        assert fit.error_per_cnot() == pytest.approx(0.04 * 0.75 / 1.5)

    def test_survival_model(self):
        fit = RBFit(0.75, 0.9, 0.25, num_qubits=2)
        assert fit.survival(0) == pytest.approx(1.0)
        assert fit.survival(1e9) == pytest.approx(0.25)


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_rb_decay([1, 2, 3], [0.9, 0.8])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_rb_decay([1, 2], [0.9, 0.8])

    def test_conversion_validation(self):
        with pytest.raises(ValueError):
            error_per_clifford_to_cnot(0.01, 0.0)


class TestRobustness:
    def test_saturated_floor(self):
        lengths = [2, 10, 20, 40]
        survivals = [0.26, 0.25, 0.25, 0.25]
        fit = fit_rb_decay(lengths, survivals)
        assert 0.0 <= fit.decay <= 1.0
        assert fit.error_per_clifford > 0.05

    def test_perfect_survival(self):
        lengths = [2, 10, 20]
        fit = fit_rb_decay(lengths, [1.0, 1.0, 1.0])
        assert fit.error_per_clifford < 0.01


@settings(max_examples=25, deadline=None)
@given(
    decay=st.floats(0.85, 0.999),
    amp=st.floats(0.6, 0.75),
)
def test_recovers_random_parameters(decay, amp):
    lengths = [2, 6, 12, 24, 40, 60]
    survivals = [amp * decay ** m + 0.25 for m in lengths]
    fit = fit_rb_decay(lengths, survivals)
    assert fit.decay == pytest.approx(decay, abs=0.01)
