"""Tests for Clifford tableaus and group enumeration.

The 2-qubit group fixture is session-scoped (enumeration takes a few
seconds); the algebraic identities checked here are the foundations RB
correctness rests on.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rb.clifford import CliffordGroup, CliffordTableau, _gate_tableau
from repro.sim.statevector import Statevector
from repro.sim.unitaries import pauli_matrix


class TestGroupOrders:
    def test_single_qubit_group(self, clifford_1q):
        assert len(clifford_1q) == 24
        assert clifford_1q.average_cnot_count() == 0.0

    def test_two_qubit_group(self, clifford_2q):
        assert len(clifford_2q) == 11520

    def test_cnot_histogram(self, clifford_2q):
        histogram = Counter(el.cnot_count for el in clifford_2q.elements)
        assert histogram == {0: 576, 1: 5184, 2: 5184, 3: 576}

    def test_average_cnots_exactly_1_5(self, clifford_2q):
        # The divisor used to convert Clifford error to CNOT error (§8.1).
        assert clifford_2q.average_cnot_count() == pytest.approx(1.5)

    def test_unsupported_sizes(self):
        with pytest.raises(ValueError):
            CliffordGroup(3)


class TestTableauAlgebra:
    def test_identity(self):
        assert CliffordTableau.identity(2).is_identity()

    def test_compose_with_identity(self, clifford_2q, rng):
        identity = CliffordTableau.identity(2)
        el = clifford_2q.sample(rng)
        assert el.tableau.compose(identity) == el.tableau
        assert identity.compose(el.tableau) == el.tableau

    def test_inverse_both_sides(self, clifford_2q, rng):
        for _ in range(20):
            el = clifford_2q.sample(rng)
            inv = el.tableau.inverse()
            assert el.tableau.compose(inv).is_identity()
            assert inv.compose(el.tableau).is_identity()

    def test_inverse_is_group_member(self, clifford_2q, rng):
        for _ in range(10):
            el = clifford_2q.sample(rng)
            clifford_2q.index_of(el.tableau.inverse())  # must not raise

    def test_closure_under_composition(self, clifford_2q, rng):
        for _ in range(10):
            a = clifford_2q.sample(rng)
            b = clifford_2q.sample(rng)
            clifford_2q.index_of(a.tableau.compose(b.tableau))

    def test_associativity(self, clifford_2q, rng):
        for _ in range(5):
            a, b, c = (clifford_2q.sample(rng).tableau for _ in range(3))
            assert a.compose(b).compose(c) == a.compose(b.compose(c))

    def test_index_of_unknown_raises(self, clifford_2q):
        bogus = CliffordTableau(
            np.eye(4, dtype=np.uint8), np.array([1, 0, 0, 0], dtype=np.uint8)
        )
        # phase 1 on an X row is i*X, not Hermitian: not a group element
        with pytest.raises(KeyError):
            clifford_2q.index_of(bogus)


class TestDecompositions:
    def _tableau_from_gates(self, gates, num_qubits=2):
        tab = CliffordTableau.identity(num_qubits)
        for name, qubits in gates:
            tab = tab.apply_gate(name, qubits)
        return tab

    def test_decompositions_reproduce_tableau(self, clifford_2q, rng):
        for _ in range(25):
            el = clifford_2q.sample(rng)
            assert self._tableau_from_gates(el.gates) == el.tableau

    def test_identity_element_empty_decomposition(self, clifford_2q):
        idx = clifford_2q.index_of(CliffordTableau.identity(2))
        assert clifford_2q[idx].gates == ()

    def test_decomposition_gate_names(self, clifford_2q, rng):
        allowed = {"h", "s", "sdg", "cx"}
        for _ in range(10):
            el = clifford_2q.sample(rng)
            assert {name for name, _ in el.gates} <= allowed


class TestSemanticsAgainstUnitaries:
    def _unitary_from_gates(self, gates):
        u = np.eye(4, dtype=complex)
        for name, qubits in gates:
            sv_cols = []
            for i in range(4):
                s = Statevector.from_vector(np.eye(4)[i])
                s.apply_gate(name, qubits)
                sv_cols.append(s.vector)
            u = np.column_stack(sv_cols) @ u
        return u

    def test_conjugation_matches_matrix_algebra(self, clifford_2q, rng):
        labels = ["XI", "IX", "ZI", "IZ"]
        for _ in range(8):
            el = clifford_2q.sample(rng)
            u = self._unitary_from_gates(el.gates)
            for row, label in enumerate(labels):
                p = pauli_matrix(label)
                image = u @ p @ u.conj().T
                bits = el.tableau.mat[row]
                e = int(el.tableau.phase[row])
                x_label = "".join("X" if b else "I" for b in bits[:2])
                z_label = "".join("Z" if b else "I" for b in bits[2:])
                expected = (1j ** e) * pauli_matrix(x_label) @ pauli_matrix(z_label)
                assert np.allclose(image, expected), (el.index, label)


class TestGateTableaus:
    @pytest.mark.parametrize("name,qubits", [
        ("h", (0,)), ("s", (1,)), ("sdg", (0,)), ("x", (1,)), ("y", (0,)),
        ("z", (1,)), ("cx", (0, 1)), ("cx", (1, 0)), ("cz", (0, 1)),
        ("swap", (0, 1)),
    ])
    def test_gate_tableaus_invertible(self, name, qubits):
        tab = _gate_tableau(2, name, qubits)
        assert tab.compose(tab.inverse()).is_identity()

    def test_unknown_gate(self):
        with pytest.raises(KeyError):
            _gate_tableau(2, "t", (0,))

    def test_hh_is_identity(self):
        h = _gate_tableau(1, "h", (0,))
        assert h.compose(h).is_identity()

    def test_ssss_is_identity(self):
        s = _gate_tableau(1, "s", (0,))
        assert s.compose(s).compose(s).compose(s).is_identity()

    def test_s_sdg_cancel(self):
        s = _gate_tableau(1, "s", (0,))
        sdg = _gate_tableau(1, "sdg", (0,))
        assert s.compose(sdg).is_identity()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_uniform_sampling_covers_group(seed, clifford_2q):
    rng = np.random.default_rng(seed)
    indices = {clifford_2q.sample(rng).index for _ in range(64)}
    # 64 draws from 11520 elements collide rarely; expect near-distinct.
    assert len(indices) > 55
