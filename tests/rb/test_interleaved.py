"""Tests for interleaved randomized benchmarking."""

import pytest

from repro.rb.clifford import clifford_group
from repro.rb.executor import RBConfig
from repro.rb.interleaved import InterleavedRB, _interleave_cnot
from repro.rb.sequences import generate_rb_sequence
from repro.sim.stabilizer import StabilizerSimulator


class TestSequenceConstruction:
    def test_interleaved_closes_to_identity(self, clifford_2q, rng):
        base = generate_rb_sequence(clifford_2q, 6, rng)
        seq = _interleave_cnot(base, clifford_2q)
        sim = StabilizerSimulator(2)
        for name, qubits in seq.mapped_gates((0, 1)):
            sim.apply_gate(name, qubits)
        assert sim.survival_probability() == pytest.approx(1.0)

    def test_doubles_element_count(self, clifford_2q, rng):
        base = generate_rb_sequence(clifford_2q, 5, rng)
        seq = _interleave_cnot(base, clifford_2q)
        assert seq.length == 10  # m Cliffords + m interleaved CNOTs

    def test_interleaved_elements_alternate(self, clifford_2q, rng):
        base = generate_rb_sequence(clifford_2q, 4, rng)
        seq = _interleave_cnot(base, clifford_2q)
        cnot_idx = clifford_2q.index_of(
            clifford_2q.element_of(seq.elements[1].tableau).tableau
        )
        for k in range(1, len(seq.elements), 2):
            assert seq.elements[k].index == cnot_idx


class TestProtocol:
    @pytest.fixture(scope="class")
    def result_10_15(self, poughkeepsie):
        irb = InterleavedRB(poughkeepsie,
                            config=RBConfig(num_sequences=16), seed=3)
        return irb.run((10, 15)), poughkeepsie.calibration().cnot_error_of(10, 15)

    def test_measures_average_infidelity(self, result_10_15):
        result, planted = result_10_15
        # uniform-Pauli channel: average infidelity = 0.8 * p
        assert result.gate_error == pytest.approx(0.8 * planted, rel=0.5)

    def test_below_standard_upper_bound(self, result_10_15):
        result, _ = result_10_15
        assert result.gate_error <= result.standard_upper_bound * 1.15

    def test_fits_exposed(self, result_10_15):
        result, _ = result_10_15
        assert 0.9 < result.reference.decay <= 1.0
        assert 0.9 < result.interleaved.decay <= 1.0
        assert result.interleaved.decay <= result.reference.decay + 1e-6

    def test_distinguishes_good_and_bad_gates(self, poughkeepsie):
        irb = InterleavedRB(poughkeepsie,
                            config=RBConfig(num_sequences=12), seed=5)
        cal = poughkeepsie.calibration()
        edges = sorted(cal.cnot_error, key=cal.cnot_error.get)
        best, worst = edges[0], edges[-1]
        r_best = irb.run(best).gate_error
        r_worst = irb.run(worst).gate_error
        assert r_worst > r_best
