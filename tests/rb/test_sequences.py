"""Tests for RB sequence generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rb.sequences import generate_rb_sequence
from repro.sim.stabilizer import StabilizerSimulator


class TestGeneration:
    def test_length(self, clifford_2q, rng):
        seq = generate_rb_sequence(clifford_2q, 7, rng)
        assert seq.length == 7
        assert len(seq.layers()) == 8  # m Cliffords + inverse

    def test_invalid_length(self, clifford_2q, rng):
        with pytest.raises(ValueError):
            generate_rb_sequence(clifford_2q, 0, rng)

    def test_closes_to_identity_tableau(self, clifford_2q, rng):
        for m in (1, 3, 10):
            seq = generate_rb_sequence(clifford_2q, m, rng)
            product = seq.elements[0].tableau
            for el in seq.elements[1:]:
                product = product.compose(el.tableau)
            assert product.compose(seq.inverse.tableau).is_identity()

    def test_total_cnots(self, clifford_2q, rng):
        seq = generate_rb_sequence(clifford_2q, 5, rng)
        assert seq.total_cnots() == sum(
            el.cnot_count for el in (*seq.elements, seq.inverse)
        )

    def test_mapped_gates_relabel_qubits(self, clifford_2q, rng):
        seq = generate_rb_sequence(clifford_2q, 2, rng)
        gates = seq.mapped_gates((7, 13))
        for _, qubits in gates:
            assert set(qubits) <= {7, 13}


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000), length=st.integers(1, 12))
def test_noiseless_execution_returns_to_ground(seed, length, clifford_2q):
    rng = np.random.default_rng(seed)
    seq = generate_rb_sequence(clifford_2q, length, rng)
    sim = StabilizerSimulator(2)
    for name, qubits in seq.mapped_gates((0, 1)):
        sim.apply_gate(name, qubits)
    assert sim.survival_probability() == pytest.approx(1.0)
