"""Tests for noisy RB/SRB execution against the planted ground truth."""

import numpy as np
import pytest

from repro.rb.executor import RBConfig, RBExecutor


@pytest.fixture()
def executor(poughkeepsie):
    config = RBConfig(lengths=(2, 6, 14, 26), num_sequences=6,
                      samples_per_sequence=16)
    return RBExecutor(poughkeepsie, config=config, seed=17)


class TestConfig:
    def test_presets(self):
        fast = RBConfig.fast()
        paper = RBConfig.paper()
        assert fast.num_sequences < paper.num_sequences
        assert paper.shots == 1024

    def test_executions(self):
        cfg = RBConfig(lengths=(2, 4), num_sequences=10, shots=100)
        assert cfg.executions() == 2 * 10 * 100


class TestValidation:
    def test_duplicate_edge_rejected(self, executor):
        with pytest.raises(ValueError, match="twice"):
            executor.run_units([((0, 1), (0, 1))])

    def test_overlapping_qubits_rejected(self, executor):
        with pytest.raises(ValueError, match="overlap"):
            executor.run_units([((0, 1),), ((1, 2),)])


class TestErrorRecovery:
    def test_independent_rate_close_to_truth(self, executor, poughkeepsie):
        result = executor.run_independent((10, 15))
        truth = poughkeepsie.calibration().cnot_error_of(10, 15)  # 1%
        assert result.error_rate((10, 15)) == pytest.approx(truth, abs=0.01)

    def test_conditional_rate_elevated_for_planted_pair(self, executor,
                                                        poughkeepsie):
        solo = executor.run_independent((10, 15))
        pair = executor.run_pair((10, 15), (11, 12))
        independent = solo.error_rate((10, 15))
        conditional = pair.error_rate((10, 15))
        assert conditional > 3 * independent

    def test_no_crosstalk_for_far_pair(self, executor, poughkeepsie):
        pair = executor.run_pair((0, 1), (16, 17))
        truth = poughkeepsie.calibration().cnot_error_of(0, 1)
        assert pair.error_rate((0, 1)) < 4 * truth  # background + fit noise

    def test_survivals_decay_with_length(self, executor):
        result = executor.run_independent((13, 14))
        values = result.survivals[(13, 14)]
        assert values[0] > values[-1]

    def test_context_recorded(self, executor):
        result = executor.run_pair((10, 15), (11, 12))
        assert result.context[(10, 15)] == ((11, 12),)

    def test_parallel_units_isolated_when_far(self, executor, poughkeepsie):
        """Bin-packed units >= 2 hops apart must not perturb each other.

        This is the premise Optimization 2 relies on.
        """
        packed = executor.run_units([((0, 1), (2, 3)), ((16, 17), (18, 19))])
        # (16,17)|(18,19) is not planted on Poughkeepsie; rate stays low.
        truth = poughkeepsie.calibration().cnot_error_of(16, 17)
        assert packed.error_rate((16, 17)) < 5 * max(truth, 0.01)

    def test_shot_noise_mode(self, poughkeepsie):
        config = RBConfig(lengths=(2, 6, 14), num_sequences=3,
                          samples_per_sequence=8, shots=256)
        executor = RBExecutor(poughkeepsie, config=config, seed=3)
        result = executor.run_independent((0, 1))
        for value in result.survivals[(0, 1)]:
            assert 0.0 <= value <= 1.0


class TestSingleQubitUnits:
    """1-qubit RB targets — the original addressability protocol [16]."""

    def test_single_qubit_rb_runs(self, poughkeepsie):
        executor = RBExecutor(poughkeepsie,
                              config=RBConfig(num_sequences=12), seed=5)
        result = executor.run_independent((4,))
        rate = result.error_rate((4,))
        truth = poughkeepsie.calibration().single_qubit_error[4]
        # tiny rates: order of magnitude is the claim
        assert 0.0 <= rate < 10 * truth

    def test_single_qubit_rates_are_an_order_below_cnots(self, poughkeepsie):
        """The paper's justification for ignoring 1q gates in the
        crosstalk model (Section 7.2)."""
        executor = RBExecutor(poughkeepsie,
                              config=RBConfig(num_sequences=12), seed=6)
        r1 = executor.run_independent((4,)).error_rate((4,))
        r2 = executor.run_independent((0, 1)).error_rate((0, 1))
        assert r1 < r2 / 5

    def test_spectator_immunity(self, poughkeepsie):
        """A 1q target next to a driven CNOT pair keeps its error rate —
        1q gates neither cause nor suffer crosstalk in this model."""
        executor = RBExecutor(poughkeepsie,
                              config=RBConfig(num_sequences=12), seed=7)
        solo = executor.run_independent((4,)).error_rate((4,))
        with_pair = executor.run_units([((4,),), ((0, 1), (2, 3))])
        accompanied = with_pair.error_rate((4,))
        assert accompanied == pytest.approx(solo, abs=0.002)
        # and the CNOT pair still sees its (planted-free) conditional rates
        assert with_pair.error_rate((0, 1)) < 0.06

    def test_mixed_unit_validation(self, poughkeepsie):
        executor = RBExecutor(poughkeepsie,
                              config=RBConfig.fast(), seed=8)
        with pytest.raises(ValueError, match="overlap"):
            executor.run_units([((4,),), ((4, 9),)])

    def test_bad_target_shape(self, poughkeepsie):
        executor = RBExecutor(poughkeepsie, config=RBConfig.fast(), seed=9)
        with pytest.raises(ValueError, match="targets"):
            executor.run_units([((0, 1, 2),)])

    def test_sampled_mode_supports_single_qubits(self, poughkeepsie):
        config = RBConfig(lengths=(2, 8, 16), num_sequences=3,
                          samples_per_sequence=20, estimate="sampled")
        executor = RBExecutor(poughkeepsie, config=config, seed=10)
        result = executor.run_independent((4,))
        for v in result.survivals[(4,)]:
            assert 0.0 <= v <= 1.0


class TestEstimators:
    def test_unknown_estimate_mode_rejected(self, poughkeepsie):
        config = RBConfig(estimate="magic")
        executor = RBExecutor(poughkeepsie, config=config, seed=1)
        with pytest.raises(ValueError, match="unknown estimate"):
            executor.run_independent((0, 1))

    def test_exact_matches_sampled_mean(self, poughkeepsie):
        """The exact Walsh-characteristic estimator is the expectation the
        Monte-Carlo stabilizer sampler converges to."""
        lengths = (4, 8, 12)
        exact_cfg = RBConfig(lengths=lengths, num_sequences=10,
                             estimate="exact")
        sampled_cfg = RBConfig(lengths=lengths, num_sequences=10,
                               samples_per_sequence=300, estimate="sampled")
        # Same seed -> identical random sequences between the two runs is
        # NOT guaranteed (draw counts differ), so compare averaged results
        # across a few seeds.
        diffs = []
        for seed in (11, 12, 13):
            r_exact = RBExecutor(poughkeepsie, config=exact_cfg,
                                 seed=seed).run_pair((13, 14), (18, 19))
            r_sampled = RBExecutor(poughkeepsie, config=sampled_cfg,
                                   seed=seed).run_pair((13, 14), (18, 19))
            for a, b in zip(r_exact.survivals[(13, 14)],
                            r_sampled.survivals[(13, 14)]):
                diffs.append(a - b)
        assert abs(np.mean(diffs)) < 0.05

    def test_exact_survival_in_unit_interval(self, poughkeepsie):
        config = RBConfig(lengths=(2, 10, 30), num_sequences=4)
        executor = RBExecutor(poughkeepsie, config=config, seed=5)
        result = executor.run_pair((10, 15), (11, 12))
        for edge_vals in result.survivals.values():
            for v in edge_vals:
                assert 0.0 <= v <= 1.0

    def test_exact_noiseless_survival_is_one(self, poughkeepsie):
        """With every error channel off, exact survival is exactly 1."""
        import copy

        device = copy.deepcopy(poughkeepsie)
        cal = device.calibration()
        for edge in cal.cnot_error:
            cal.cnot_error[edge] = 0.0
        for q in cal.single_qubit_error:
            cal.single_qubit_error[q] = 0.0
        device.crosstalk._factor_cache.clear()
        config = RBConfig(lengths=(2, 5, 8), num_sequences=3,
                          include_single_qubit_errors=False)
        executor = RBExecutor(device, config=config, seed=2)
        result = executor.run_independent((0, 1))
        for v in result.survivals[(0, 1)]:
            assert v == pytest.approx(1.0)
