"""The vectorized exact estimator must match the scalar reference (satellite).

``estimate="exact"`` batches error sites per class (CNOT, single-qubit,
idle) into numpy Walsh-character products; ``estimate="exact-scalar"`` is
the pre-vectorization site-by-site loop.  Identical mathematics — so fitted
error rates must agree to 1e-12 across every noise-model configuration.
"""

import dataclasses

import numpy as np
import pytest

from repro.rb.executor import RBConfig, RBExecutor

_BASE = RBConfig(lengths=(2, 6, 14), num_sequences=3)

_NOISE_CASES = [
    dict(include_decoherence=False, include_single_qubit_errors=True),
    dict(include_decoherence=True, include_single_qubit_errors=True),
    dict(include_decoherence=False, include_single_qubit_errors=False),
    dict(include_decoherence=True, include_single_qubit_errors=False),
]


def _run(device, config, units):
    executor = RBExecutor(device, day=0, config=config, seed=5)
    return executor.run_units(units)


def _assert_parity(fast, ref, units):
    # The estimator outputs (per-length mean survivals) must agree to
    # 1e-12.  The *fitted* rates go through scipy's curve_fit, whose
    # ftol/xtol (~1e-8) amplify sub-ulp survival differences, so they are
    # compared at the fit's own tolerance.
    for target in fast.survivals:
        assert np.allclose(fast.survivals[target], ref.survivals[target],
                           atol=1e-12, rtol=0.0)
    for unit in units:
        for gate in unit:
            assert fast.error_rate(gate) == pytest.approx(
                ref.error_rate(gate), rel=1e-5, abs=1e-9
            )


@pytest.mark.parametrize("noise", _NOISE_CASES, ids=lambda c: "decay={include_decoherence},1q={include_single_qubit_errors}".format(**c))
def test_vectorized_matches_scalar_srb_pair(poughkeepsie, noise):
    units = [((0, 1), (2, 3))]
    fast = _run(poughkeepsie, dataclasses.replace(_BASE, estimate="exact", **noise), units)
    ref = _run(poughkeepsie, dataclasses.replace(_BASE, estimate="exact-scalar", **noise), units)
    _assert_parity(fast, ref, units)


def test_vectorized_matches_scalar_single_qubit_rb(poughkeepsie):
    units = [((4,), (9,))]
    fast = _run(poughkeepsie, dataclasses.replace(_BASE, estimate="exact"), units)
    ref = _run(poughkeepsie, dataclasses.replace(_BASE, estimate="exact-scalar"), units)
    _assert_parity(fast, ref, units)


def test_scalar_mode_dispatches(poughkeepsie):
    config = dataclasses.replace(_BASE, estimate="exact-scalar")
    executor = RBExecutor(poughkeepsie, day=0, config=config, seed=5)
    result = executor.run_units([((0, 1),)])
    assert 0.0 <= result.error_rate((0, 1)) < 0.5


def test_survival_curves_match_exactly(poughkeepsie):
    # Stronger than the fitted rates: the per-length mean survivals agree.
    fast_exec = RBExecutor(poughkeepsie, day=0, config=_BASE, seed=5)
    ref_exec = RBExecutor(
        poughkeepsie, day=0,
        config=dataclasses.replace(_BASE, estimate="exact-scalar"), seed=5,
    )
    units = [((0, 1), (2, 3))]
    fast = fast_exec.run_units(units)
    ref = ref_exec.run_units(units)
    for target in fast.survivals:
        assert np.allclose(fast.survivals[target], ref.survivals[target],
                           atol=1e-12, rtol=0.0)
