"""Run manifests: capture, schema, and disk round-trip."""

import pytest

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    git_revision,
    new_run_id,
    read_manifest,
    write_manifest,
)


class TestCapture:
    def test_run_ids_are_unique(self):
        assert new_run_id() != new_run_id()

    def test_capture_records_environment_and_git(self):
        manifest = RunManifest.capture(
            name="demo", config={"policy": "one_hop"},
            seeds={"campaign": 7}, workers=4,
        )
        assert manifest.name == "demo"
        assert manifest.config == {"policy": "one_hop"}
        assert manifest.seeds == {"campaign": 7}
        assert manifest.workers == 4
        assert "python" in manifest.environment
        # this test runs inside the repo checkout, so git facts resolve
        assert manifest.git is not None
        assert len(manifest.git["sha"]) == 40

    def test_git_revision_none_outside_repo(self, tmp_path):
        assert git_revision(cwd=str(tmp_path)) is None


class TestRoundTrip:
    def test_document_schema(self):
        doc = RunManifest.capture(name="x").to_dict()
        assert doc["schema"] == MANIFEST_SCHEMA
        assert {"run_id", "created_at", "config", "seeds", "workers",
                "git", "environment", "results"} <= set(doc)

    def test_disk_round_trip(self, tmp_path):
        manifest = RunManifest.capture(
            name="rt", config={"a": 1}, seeds={"s": 2}, workers=3,
            results={"epsilon": 0.01},
        )
        path = str(tmp_path / "manifest.json")
        write_manifest(manifest, path)
        rebuilt = read_manifest(path)
        assert rebuilt.to_dict() == manifest.to_dict()

    def test_reader_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            RunManifest.from_dict({"schema": "other/v1"})
