"""Run history store: summarization, append/read, retention, corruption."""

import json

import pytest

from repro.obs.history import (
    HISTORY_SCHEMA,
    RunHistory,
    RunRecord,
    flatten_numeric,
    format_history_report,
    load_run_record,
    summarize_manifest,
    summarize_metrics,
    summarize_trace,
)
from repro.obs.manifest import RunManifest
from repro.obs.trace import Span, Trace


class TestFlattenNumeric:
    def test_nested_dicts_flatten_to_dotted_names(self):
        doc = {"a": {"b": 1, "c": 2.5}, "d": 3}
        assert flatten_numeric(doc) == {"a.b": 1.0, "a.c": 2.5, "d": 3.0}

    def test_bools_become_zero_one(self):
        assert flatten_numeric({"ok": True, "bad": False}) == \
            {"ok": 1.0, "bad": 0.0}

    def test_non_numeric_leaves_dropped(self):
        doc = {"s": "text", "l": [1, 2], "n": None, "x": 4}
        assert flatten_numeric(doc) == {"x": 4.0}


class TestSummaries:
    def test_manifest_results_and_workers(self):
        doc = {"results": {"workloads": {"tomography": {"speedup": 1.5}}},
               "workers": 4}
        series = summarize_manifest(doc)
        assert series["results.workloads.tomography.speedup"] == 1.5
        assert series["workers"] == 4.0

    def test_metrics_counters_gauges_histograms(self):
        doc = {
            "counters": {"rb.experiments": 12},
            "gauges": {"parallel.mode": 2},
            "histograms": {"rb.experiment_seconds": {
                "count": 4, "sum": 2.0, "max": 0.9}},
        }
        series = summarize_metrics(doc)
        assert series["rb.experiments"] == 12.0
        assert series["parallel.mode"] == 2.0
        assert series["rb.experiment_seconds.count"] == 4.0
        assert series["rb.experiment_seconds.mean"] == 0.5
        assert series["rb.experiment_seconds.max"] == 0.9

    def test_trace_total_and_top_level_spans(self):
        trace = Trace(pipeline="run", spans=[
            Span(name="plan", seconds=0.25),
            Span(name="merge", seconds=0.75),
        ])
        series = summarize_trace(trace)
        assert series["trace.total_seconds"] == pytest.approx(1.0)
        assert series["trace.span.plan.seconds"] == 0.25


class TestRunRecord:
    def test_round_trip(self):
        record = RunRecord(run_id="r1", name="bench",
                           git={"sha": "abc", "dirty": False}, workers=2,
                           series={"x.seconds": 1.0},
                           documents={"scorecard": {"schema": "s"}})
        back = RunRecord.from_dict(record.to_dict())
        assert back == record
        assert back.git_sha == "abc"
        assert back.git_dirty is False

    def test_from_dict_rejects_foreign_schema(self):
        with pytest.raises(ValueError, match="not a history record"):
            RunRecord.from_dict({"schema": "other/v1", "run_id": "r"})

    def test_from_artifacts_merges_all_sources(self):
        manifest = RunManifest.capture(name="run", workers=2,
                                       results={"headline": 3.0})
        record = RunRecord.from_artifacts(
            manifest=manifest.to_dict(),
            metrics={"counters": {"c": 1}, "gauges": {}, "histograms": {}},
            trace=Trace(pipeline="run", spans=[Span(name="s", seconds=0.1)]),
            extra_series={"extra": 7.0},
            documents={"doc": {"k": "v"}},
        )
        assert record.name == "run"
        assert record.series["results.headline"] == 3.0
        assert record.series["c"] == 1.0
        assert record.series["trace.span.s.seconds"] == 0.1
        assert record.series["extra"] == 7.0
        assert record.documents == {"doc": {"k": "v"}}


class TestLoadRunRecord:
    def test_loads_manifest_path(self, tmp_path):
        manifest = RunManifest.capture(name="m", results={"v": 1.0})
        path = tmp_path / "m_manifest.json"
        path.write_text(manifest.to_json())
        record = load_run_record(str(path))
        assert record.name == "m"
        assert record.series["results.v"] == 1.0

    def test_jsonl_path_returns_last_record(self, tmp_path):
        store = RunHistory(str(tmp_path / "h.jsonl"))
        store.append(RunRecord(run_id="r1", name="n"))
        store.append(RunRecord(run_id="r2", name="n"))
        assert load_run_record(store.path).run_id == "r2"

    def test_empty_store_raises(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            load_run_record(str(tmp_path / "missing.jsonl"))

    def test_unknown_schema_raises(self):
        with pytest.raises(ValueError, match="cannot interpret"):
            load_run_record({"schema": "mystery/v9"})


class TestRunHistory:
    def test_append_and_read_back(self, tmp_path):
        store = RunHistory(str(tmp_path / "sub" / "h.jsonl"))
        store.append(RunRecord(run_id="r1", name="a",
                               series={"x.seconds": 1.0}))
        store.append(RunRecord(run_id="r2", name="b"))
        records = store.records()
        assert [r.run_id for r in records] == ["r1", "r2"]
        assert len(store) == 2

    def test_missing_store_reads_empty(self, tmp_path):
        assert RunHistory(str(tmp_path / "nope.jsonl")).records() == []

    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "h.jsonl"
        good = json.dumps(RunRecord(run_id="r1", name="a").to_dict())
        path.write_text(good + "\nnot json{{\n"
                        + json.dumps({"schema": "foreign/v1"}) + "\n")
        store = RunHistory(str(path))
        assert [r.run_id for r in store.records()] == ["r1"]
        assert store.corrupt_lines == 2

    def test_query_by_name_and_sha(self, tmp_path):
        store = RunHistory(str(tmp_path / "h.jsonl"))
        store.append(RunRecord(run_id="r1", name="a", git={"sha": "s1"}))
        store.append(RunRecord(run_id="r2", name="b", git={"sha": "s1"}))
        store.append(RunRecord(run_id="r3", name="a", git={"sha": "s2"}))
        assert [r.run_id for r in store.query(name="a")] == ["r1", "r3"]
        assert [r.run_id for r in store.query(sha="s1")] == ["r1", "r2"]
        assert [r.run_id for r in store.query(name="a", limit=1)] == ["r3"]

    def test_last_returns_newest(self, tmp_path):
        store = RunHistory(str(tmp_path / "h.jsonl"))
        for i in range(5):
            store.append(RunRecord(run_id=f"r{i}", name="a"))
        assert [r.run_id for r in store.last(2)] == ["r3", "r4"]

    def test_compact_keeps_newest_per_name(self, tmp_path):
        store = RunHistory(str(tmp_path / "h.jsonl"))
        for i in range(6):
            store.append(RunRecord(run_id=f"a{i}", name="a"))
        store.append(RunRecord(run_id="b0", name="b"))
        dropped = store.compact(keep_last=2)
        assert dropped == 4
        records = store.records()
        assert [r.run_id for r in records] == ["a4", "a5", "b0"]

    def test_compact_noop_when_under_limit(self, tmp_path):
        store = RunHistory(str(tmp_path / "h.jsonl"))
        store.append(RunRecord(run_id="r1", name="a"))
        assert store.compact(keep_last=5) == 0

    def test_compact_rejects_bad_limit(self, tmp_path):
        with pytest.raises(ValueError):
            RunHistory(str(tmp_path / "h.jsonl")).compact(keep_last=0)

    def test_compact_drops_corrupt_lines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        good = json.dumps(RunRecord(run_id="r1", name="a").to_dict())
        path.write_text("garbage\n" + good + "\n")
        store = RunHistory(str(path))
        store.records()
        store.compact(keep_last=10)
        assert "garbage" not in path.read_text()


class TestFormatHistoryReport:
    def test_renders_one_line_per_record(self, tmp_path):
        store = RunHistory(str(tmp_path / "h.jsonl"))
        store.append(RunRecord(run_id="r1", name="bench",
                               git={"sha": "abcdef012345", "dirty": True},
                               series={"x": 1.0},
                               documents={"scorecard": {}}))
        text = format_history_report(store)
        assert "r1" in text
        assert "bench" in text
        assert "abcdef0123*" in text  # dirty marker
        assert "scorecard" in text

    def test_empty_store_message(self, tmp_path):
        text = format_history_report(str(tmp_path / "none.jsonl"))
        assert "no matching records" in text


def test_schema_constant_round_trips():
    assert RunRecord(run_id="r", name="n").to_dict()["schema"] == \
        HISTORY_SCHEMA
