"""Structured event logging: sinks, run-id stamping, JSONL round-trip."""

import pytest

from repro.obs.events import (
    EventLog,
    current_run_id,
    event_sink,
    install_sink,
    log_event,
    read_events,
    remove_sink,
)


class TestEventLog:
    def test_records_name_timestamp_and_fields(self):
        log = EventLog()
        record = log.log("campaign.start", policy="one_hop", device="fp")
        assert record["event"] == "campaign.start"
        assert record["ts"] > 0
        assert record["policy"] == "one_hop"
        assert record["device"] == "fp"

    def test_run_id_stamped_when_present(self):
        log = EventLog(run_id="abc")
        assert log.log("e")["run_id"] == "abc"
        assert "run_id" not in EventLog().log("e")

    def test_of_filters_by_name(self):
        log = EventLog()
        log.log("a")
        log.log("b")
        log.log("a", n=2)
        assert [e.get("n") for e in log.of("a")] == [None, 2]


class TestSinks:
    def test_log_event_noop_without_sink(self):
        log_event("nobody.listening", x=1)  # must not raise

    def test_log_event_reaches_installed_sink(self):
        with event_sink() as sink:
            log_event("hello", n=3)
        assert len(sink) == 1
        assert sink.events[0]["n"] == 3

    def test_stacked_sinks_both_receive(self):
        with event_sink() as outer:
            with event_sink() as inner:
                log_event("e")
        assert len(outer) == len(inner) == 1

    def test_events_stop_after_removal(self):
        with event_sink() as sink:
            log_event("in")
        log_event("out")
        assert [e["event"] for e in sink] == ["in"]


class TestSinkInstallRemoveEdgeCases:
    def test_duplicate_install_delivers_twice(self):
        sink = EventLog()
        install_sink(sink)
        install_sink(sink)
        try:
            log_event("e")
        finally:
            remove_sink(sink)
            remove_sink(sink)
        assert len(sink) == 2

    def test_remove_drops_one_instance_at_a_time(self):
        sink = EventLog()
        install_sink(sink)
        install_sink(sink)
        remove_sink(sink)
        try:
            log_event("e")
        finally:
            remove_sink(sink)
        assert len(sink) == 1

    def test_remove_never_installed_is_noop(self):
        remove_sink(EventLog())  # must not raise

    def test_remove_twice_is_safe(self):
        sink = EventLog()
        install_sink(sink)
        remove_sink(sink)
        remove_sink(sink)  # must not raise
        log_event("gone")
        assert len(sink) == 0

    def test_event_sink_accepts_provided_sink(self):
        mine = EventLog(run_id="mine")
        with event_sink(mine) as sink:
            assert sink is mine
            log_event("e")
        assert len(mine) == 1

    def test_sink_removed_on_exception(self):
        sink = EventLog()
        with pytest.raises(RuntimeError):
            with event_sink(sink):
                raise RuntimeError("boom")
        log_event("after")
        assert len(sink) == 0

    def test_current_run_id_prefers_innermost(self):
        assert current_run_id() is None
        with event_sink(EventLog(run_id="outer")):
            with event_sink(EventLog()):  # no run_id: skipped
                assert current_run_id() == "outer"
            with event_sink(EventLog(run_id="inner")):
                assert current_run_id() == "inner"
            assert current_run_id() == "outer"
        assert current_run_id() is None


class TestJsonlRoundTrip:
    def test_write_and_read_back(self, tmp_path):
        log = EventLog(run_id="r1")
        log.log("a", x=1)
        log.log("b", y=[1, 2])
        path = str(tmp_path / "events.jsonl")
        log.write(path)
        records = read_events(path)
        assert [r["event"] for r in records] == ["a", "b"]
        assert records[0]["run_id"] == "r1"
        assert records[1]["y"] == [1, 2]

    def test_empty_log_writes_empty_file(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        EventLog().write(path)
        assert read_events(path) == []


class TestCorruptLineTolerance:
    def _dirty_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"event": "a"}\n'
            "%% not json %%\n"
            "[1, 2, 3]\n"          # valid JSON, not an object
            '{"event": "b"}\n'
        )
        return str(path)

    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        from repro.obs.registry import MetricsRegistry, push_registry

        with push_registry(MetricsRegistry()) as registry:
            records = read_events(self._dirty_file(tmp_path))
            assert [r["event"] for r in records] == ["a", "b"]
            assert registry.counter("obs.events.corrupt_lines").value == 2

    def test_strict_restores_raise_on_garbage(self, tmp_path):
        with pytest.raises(ValueError):
            read_events(self._dirty_file(tmp_path), strict=True)

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "a"}\n{"event": "b", "x"')
        from repro.obs.registry import MetricsRegistry, push_registry

        with push_registry(MetricsRegistry()) as registry:
            records = read_events(str(path))
            assert [r["event"] for r in records] == ["a"]
            assert registry.counter("obs.events.corrupt_lines").value == 1
