"""Structured event logging: sinks, run-id stamping, JSONL round-trip."""

from repro.obs.events import EventLog, event_sink, log_event, read_events


class TestEventLog:
    def test_records_name_timestamp_and_fields(self):
        log = EventLog()
        record = log.log("campaign.start", policy="one_hop", device="fp")
        assert record["event"] == "campaign.start"
        assert record["ts"] > 0
        assert record["policy"] == "one_hop"
        assert record["device"] == "fp"

    def test_run_id_stamped_when_present(self):
        log = EventLog(run_id="abc")
        assert log.log("e")["run_id"] == "abc"
        assert "run_id" not in EventLog().log("e")

    def test_of_filters_by_name(self):
        log = EventLog()
        log.log("a")
        log.log("b")
        log.log("a", n=2)
        assert [e.get("n") for e in log.of("a")] == [None, 2]


class TestSinks:
    def test_log_event_noop_without_sink(self):
        log_event("nobody.listening", x=1)  # must not raise

    def test_log_event_reaches_installed_sink(self):
        with event_sink() as sink:
            log_event("hello", n=3)
        assert len(sink) == 1
        assert sink.events[0]["n"] == 3

    def test_stacked_sinks_both_receive(self):
        with event_sink() as outer:
            with event_sink() as inner:
                log_event("e")
        assert len(outer) == len(inner) == 1

    def test_events_stop_after_removal(self):
        with event_sink() as sink:
            log_event("in")
        log_event("out")
        assert [e["event"] for e in sink] == ["in"]


class TestJsonlRoundTrip:
    def test_write_and_read_back(self, tmp_path):
        log = EventLog(run_id="r1")
        log.log("a", x=1)
        log.log("b", y=[1, 2])
        path = str(tmp_path / "events.jsonl")
        log.write(path)
        records = read_events(path)
        assert [r["event"] for r in records] == ["a", "b"]
        assert records[0]["run_id"] == "r1"
        assert records[1]["y"] == [1, 2]

    def test_empty_log_writes_empty_file(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        EventLog().write(path)
        assert read_events(path) == []
