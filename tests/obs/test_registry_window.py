"""DeltaWindow: exact per-window histogram extremes in deltas."""

from repro.obs.registry import MetricsRegistry, push_registry
from repro.obs.session import Session


class TestDeltaWindowExactness:
    def test_window_minmax_excludes_prior_observations(self):
        registry = MetricsRegistry()
        # Lifetime extremes set before the window opens...
        registry.observe("h", 0.001)
        registry.observe("h", 100.0)
        with registry.delta_window() as window:
            registry.observe("h", 2.0)
            registry.observe("h", 5.0)
            delta = window.delta()
        hist = delta["histograms"]["h"]
        # ...must not leak into the window's delta: a bare snapshot diff
        # could only report (0.001, 100.0) here.
        assert (hist["min"], hist["max"]) == (2.0, 5.0)
        assert hist["count"] == 2
        assert hist["sum"] == 7.0

    def test_plain_diff_is_lossy_where_window_is_exact(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.001)
        before = registry.snapshot()
        window = registry.delta_window()
        registry.observe("h", 2.0)
        lossy = MetricsRegistry.diff(before, registry.snapshot())
        exact = window.delta()
        window.close()
        # The regression this API fixes: diff() can only carry the
        # cumulative min, the window knows the true per-window one.
        assert lossy["histograms"]["h"]["min"] == 0.001
        assert exact["histograms"]["h"]["min"] == 2.0

    def test_untouched_histogram_absent_from_delta(self):
        registry = MetricsRegistry()
        registry.observe("h", 1.0)
        with registry.delta_window() as window:
            assert "h" not in window.delta()["histograms"]

    def test_window_sees_histograms_created_after_open(self):
        registry = MetricsRegistry()
        with registry.delta_window() as window:
            registry.observe("new.hist", 3.0)
            hist = window.delta()["histograms"]["new.hist"]
        assert (hist["min"], hist["max"]) == (3.0, 3.0)

    def test_closed_window_stops_tracking(self):
        registry = MetricsRegistry()
        window = registry.delta_window()
        registry.observe("h", 1.0)
        window.close()
        window.close()  # idempotent
        registry.observe("h", 50.0)
        # Post-close observations are no longer noted.
        assert window._extremes["h"] == [1.0, 1.0]

    def test_concurrent_windows_are_independent(self):
        registry = MetricsRegistry()
        outer = registry.delta_window()
        registry.observe("h", 10.0)
        inner = registry.delta_window()
        registry.observe("h", 1.0)
        inner_hist = inner.delta()["histograms"]["h"]
        outer_hist = outer.delta()["histograms"]["h"]
        inner.close()
        outer.close()
        assert (inner_hist["min"], inner_hist["max"]) == (1.0, 1.0)
        assert (outer_hist["min"], outer_hist["max"]) == (1.0, 10.0)

    def test_merged_delta_reconstructs_parent_extremes(self):
        # The pool-worker contract: parent merges a window delta and the
        # merged extremes are the union of parent and window values.
        parent = MetricsRegistry()
        parent.observe("h", 4.0)
        worker = MetricsRegistry()
        worker.observe("h", 999.0)  # pre-window lifetime noise
        with worker.delta_window() as window:
            worker.observe("h", 0.5)
            parent.merge(window.delta())
        hist = parent.histogram("h").snapshot()
        assert (hist["min"], hist["max"]) == (0.5, 4.0)
        assert hist["count"] == 2


class TestSessionUsesWindows:
    def test_session_metrics_extremes_are_session_scoped(self, tmp_path):
        with push_registry(MetricsRegistry()) as registry:
            registry.observe("h", 123.0)  # before the session
            with Session("window_test") as session:
                registry.observe("h", 1.0)
                registry.observe("h", 2.0)
            hist = session.metrics["histograms"]["h"]
            assert (hist["min"], hist["max"]) == (1.0, 2.0)
            assert hist["count"] == 2
