"""MetricsRegistry under concurrency: exact totals, safe merges/windows."""

import threading

from repro.obs.registry import MetricsRegistry

THREADS = 8
PER_THREAD = 500


def _hammer(target, barrier):
    barrier.wait()
    target()


def _run_threads(target):
    barrier = threading.Barrier(THREADS)
    threads = [threading.Thread(target=_hammer, args=(target, barrier))
               for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestConcurrentInstruments:
    def test_counter_increments_are_exact(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(PER_THREAD):
                registry.inc("hits")

        _run_threads(work)
        assert registry.counter("hits").value == THREADS * PER_THREAD

    def test_histogram_totals_are_exact(self):
        registry = MetricsRegistry()

        def work():
            for i in range(PER_THREAD):
                registry.observe("h", float(i % 10))

        _run_threads(work)
        hist = registry.histogram("h").snapshot()
        assert hist["count"] == THREADS * PER_THREAD
        assert sum(hist["bucket_counts"]) == hist["count"]
        assert (hist["min"], hist["max"]) == (0.0, 9.0)

    def test_lazy_instrument_creation_races_to_one_instance(self):
        registry = MetricsRegistry()
        instances = []
        lock = threading.Lock()

        def work():
            counter = registry.counter("shared")
            with lock:
                instances.append(counter)
            counter.inc()

        _run_threads(work)
        assert len(set(map(id, instances))) == 1
        assert registry.counter("shared").value == THREADS


class TestConcurrentMerge:
    def test_worker_deltas_merge_exactly(self):
        # The pool contract, thread-shaped: N "workers" each produce a
        # window delta against their own registry; the parent merge must
        # lose nothing regardless of interleaving.
        parent = MetricsRegistry()
        merge_lock = threading.Lock()

        def work():
            worker = MetricsRegistry()
            with worker.delta_window() as window:
                for i in range(PER_THREAD):
                    worker.inc("tasks")
                    worker.observe("seconds", 0.001 * (i + 1))
                delta = window.delta()
            with merge_lock:
                parent.merge(delta)

        _run_threads(work)
        assert parent.counter("tasks").value == THREADS * PER_THREAD
        hist = parent.histogram("seconds").snapshot()
        assert hist["count"] == THREADS * PER_THREAD
        assert hist["min"] == 0.001
        assert abs(hist["max"] - 0.001 * PER_THREAD) < 1e-12

    def test_window_open_while_observers_hammer(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def observe_forever():
            value = 0
            while not stop.is_set():
                registry.observe("h", float(value % 100))
                value += 1

        noise = [threading.Thread(target=observe_forever) for _ in range(4)]
        for thread in noise:
            thread.start()
        try:
            for _ in range(50):
                with registry.delta_window() as window:
                    registry.observe("h", -1.0)  # window-unique minimum
                    delta = window.delta()
                hist = delta["histograms"]["h"]
                assert hist["min"] == -1.0
                assert hist["count"] >= 1
                assert sum(hist["bucket_counts"]) == hist["count"]
        finally:
            stop.set()
            for thread in noise:
                thread.join()
