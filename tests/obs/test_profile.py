"""Deterministic span profiler: attribution, exports, fan-out skew."""

import pytest

from repro.obs.profile import (
    PROFILE_SCHEMA,
    TraceProfile,
    collapsed_stacks,
    fanout_skew,
    format_profile_report,
    histogram_percentile,
    profile_trace,
    speedscope_document,
    validate_speedscope,
)
from repro.obs.trace import Span, Trace


@pytest.fixture()
def trace():
    """root(1.0s) -> a(0.6) -> b(0.2); root -> a(0.1); self times:
    root 0.3, a 0.5 (0.4 + 0.1), b 0.2."""
    return Trace(pipeline="run", run_id="r1", spans=[
        Span(name="root", seconds=1.0, children=[
            Span(name="a", seconds=0.6, children=[
                Span(name="b", seconds=0.2),
            ]),
            Span(name="a", seconds=0.1),
        ]),
    ])


class TestProfileTrace:
    def test_self_and_total_attribution(self, trace):
        profile = profile_trace(trace)
        assert profile.total_seconds == pytest.approx(1.0)
        assert profile.stats["root"].self_seconds == pytest.approx(0.3)
        assert profile.stats["root"].total_seconds == pytest.approx(1.0)
        assert profile.stats["a"].count == 2
        assert profile.stats["a"].self_seconds == pytest.approx(0.5)
        assert profile.stats["a"].total_seconds == pytest.approx(0.7)
        assert profile.stats["b"].self_seconds == pytest.approx(0.2)

    def test_ranked_orders_by_self_time(self, trace):
        names = [s.name for s in profile_trace(trace).ranked("self")]
        assert names == ["a", "root", "b"]
        with pytest.raises(ValueError):
            profile_trace(trace).ranked("wat")

    def test_deterministic(self, trace):
        assert profile_trace(trace).to_dict() == \
            profile_trace(trace).to_dict()

    def test_document_round_trip(self, trace):
        doc = profile_trace(trace).to_dict()
        assert doc["schema"] == PROFILE_SCHEMA
        back = TraceProfile.from_dict(doc)
        assert back.stats["a"].self_seconds == pytest.approx(0.5)
        assert "profile" in format_profile_report(doc)
        with pytest.raises(ValueError, match="not a profile"):
            TraceProfile.from_dict({"schema": "x"})

    def test_format_lists_heaviest_first(self, trace):
        text = profile_trace(trace).format()
        assert text.index(" a ") < text.index("root")


class TestCollapsedStacks:
    def test_paths_weighted_by_self_micros(self, trace):
        lines = collapsed_stacks(trace).splitlines()
        weights = dict(line.rsplit(" ", 1) for line in lines)
        assert weights["root"] == "300000"
        assert weights["root;a"] == "500000"
        assert weights["root;a;b"] == "200000"


class TestSpeedscope:
    def test_export_validates_against_schema(self, trace):
        """Acceptance: the speedscope export conforms to its JSON schema."""
        doc = speedscope_document(trace)
        assert validate_speedscope(doc) == []
        assert doc["profiles"][0]["endValue"] == pytest.approx(1.0)
        frames = [f["name"] for f in doc["shared"]["frames"]]
        assert frames == ["root", "a", "b"]

    def test_validator_catches_corruption(self, trace):
        doc = speedscope_document(trace)
        doc["profiles"][0]["events"][0]["type"] = "X"
        problems = validate_speedscope(doc)
        assert any("not in" in p for p in problems)

    def test_validator_catches_unbalanced_events(self, trace):
        doc = speedscope_document(trace)
        doc["profiles"][0]["events"].pop()  # drop the final close
        assert any("unclosed" in p for p in validate_speedscope(doc))

    def test_validator_catches_missing_required(self):
        problems = validate_speedscope({"$schema": "s"})
        assert any("missing required" in p for p in problems)


class TestHistogramPercentile:
    HIST = {"bounds": [0.1, 1.0, 10.0], "bucket_counts": [5, 4, 1],
            "count": 10, "sum": 6.0, "max": 7.5}

    def test_walks_cumulative_buckets(self):
        assert histogram_percentile(self.HIST, 0.5) == 0.1
        assert histogram_percentile(self.HIST, 0.9) == 1.0
        assert histogram_percentile(self.HIST, 1.0) == 10.0

    def test_empty_histogram_is_zero(self):
        assert histogram_percentile({"count": 0}, 0.5) == 0.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            histogram_percentile(self.HIST, 1.5)


class TestFanoutSkew:
    def test_reports_exec_and_queue_stats(self):
        doc = {"histograms": {
            "parallel.task.exec_seconds": {
                "bounds": [0.1, 1.0], "bucket_counts": [3, 1],
                "count": 4, "sum": 1.0, "max": 0.6},
            "parallel.task.queue_seconds": {
                "bounds": [0.1, 1.0], "bucket_counts": [4, 0],
                "count": 4, "sum": 0.2, "max": 0.08},
        }}
        skew = fanout_skew(doc)
        assert skew["exec"]["count"] == 4
        assert skew["exec"]["mean_seconds"] == pytest.approx(0.25)
        assert skew["imbalance"] == pytest.approx(0.6 / 0.25)
        assert skew["queue"]["max_seconds"] == pytest.approx(0.08)

    def test_serial_run_returns_none(self):
        assert fanout_skew({"histograms": {}}) is None
