"""Scorecards: pair normalization, quality math, drift lag, round-trips."""

import pytest

from repro.obs.history import RunHistory, RunRecord
from repro.obs.scorecard import (
    SCORECARD_SCHEMA,
    DetectionQuality,
    DriftDay,
    Scorecard,
    campaign_scorecard,
    detection_quality,
    drift_scorecard,
    format_scorecard_report,
    normalize_pair,
    normalize_pairs,
    schedule_audit_scorecard,
)


class TestNormalizePair:
    def test_frozensets_lists_and_tuples_agree(self):
        expected = ((0, 1), (2, 3))
        assert normalize_pair(frozenset([(2, 3), (0, 1)])) == expected
        assert normalize_pair([[3, 2], [1, 0]]) == expected
        assert normalize_pair(((0, 1), (2, 3))) == expected

    def test_normalize_pairs_dedupes(self):
        pairs = [frozenset([(0, 1), (2, 3)]), [[2, 3], [0, 1]]]
        assert normalize_pairs(pairs) == (((0, 1), (2, 3)),)


class TestDetectionQuality:
    def test_counts_and_rates(self):
        q = detection_quality(
            detected=[((0, 1), (2, 3)), ((4, 5), (6, 7))],
            truth=[((0, 1), (2, 3)), ((8, 9), (10, 11))],
        )
        assert (q.true_positives, q.false_positives, q.false_negatives) == \
            (1, 1, 1)
        assert q.recall == 0.5
        assert q.precision == 0.5

    def test_empty_sets_score_perfect(self):
        q = DetectionQuality(0, 0, 0)
        assert q.recall == 1.0
        assert q.precision == 1.0

    def test_to_metrics_prefix(self):
        metrics = DetectionQuality(1, 0, 0).to_metrics("pairs")
        assert metrics["pairs.recall"] == 1.0


class TestCampaignScorecard:
    def test_builds_metrics_and_details(self):
        card = campaign_scorecard(
            "fig3", detected_pairs=[((0, 1), (2, 3))],
            truth_pairs=[((0, 1), (2, 3))], run_id="r1",
            experiments=12, pairs_measured=6, stale_units=1,
            extra_metrics={"machine_hours": 0.5},
        )
        assert card.kind == "campaign"
        assert card.metrics["recall"] == 1.0
        assert card.metrics["experiments"] == 12.0
        assert card.metrics["coverage.stale"] == 1.0
        assert card.metrics["machine_hours"] == 0.5
        assert card.details["detected_pairs"] == [[[0, 1], [2, 3]]]


class TestDriftScorecard:
    TRUTH = [((0, 1), (2, 3)), ((4, 5), (6, 7))]

    def test_perfect_tracking_has_zero_lag(self):
        days = [DriftDay.build(d, self.TRUTH, self.TRUTH) for d in range(4)]
        card = drift_scorecard("drift", days)
        assert card.metrics["recall"] == 1.0
        assert card.metrics["drift_lag_days"] == 0.0
        assert card.metrics["stable_days_fraction"] == 1.0

    def test_lag_is_longest_consecutive_miss_streak(self):
        # Pair B missed on days 1 and 2 (streak 2), detected again on 3.
        days = [
            DriftDay.build(0, self.TRUTH, self.TRUTH),
            DriftDay.build(1, self.TRUTH[:1], self.TRUTH),
            DriftDay.build(2, self.TRUTH[:1], self.TRUTH),
            DriftDay.build(3, self.TRUTH, self.TRUTH),
        ]
        card = drift_scorecard("drift", days)
        assert card.metrics["drift_lag_days"] == 2.0
        assert card.metrics["stable_days_fraction"] == 0.5
        assert card.metrics["recall"] == pytest.approx(6 / 8)
        assert [d["missed"] for d in card.details["per_day"]] == [0, 1, 1, 0]

    def test_empty_days_raise(self):
        with pytest.raises(ValueError):
            drift_scorecard("drift", [])


class TestScheduleAuditScorecard:
    def test_rate_and_fallbacks(self):
        card = schedule_audit_scorecard("sched", serializations_taken=2,
                                        serializations_warranted=4,
                                        fallbacks=1)
        assert card.metrics["serialization_rate"] == 0.5
        assert card.metrics["fallbacks"] == 1.0

    def test_no_candidates_is_full_rate(self):
        card = schedule_audit_scorecard("sched", serializations_taken=0,
                                        serializations_warranted=0)
        assert card.metrics["serialization_rate"] == 1.0


class TestDocumentRoundTrip:
    def test_to_from_dict_exact(self):
        card = campaign_scorecard("c", [((0, 1), (2, 3))],
                                  [((0, 1), (2, 3))], run_id="r9")
        back = Scorecard.from_dict(card.to_dict())
        assert back == card
        assert card.to_dict()["schema"] == SCORECARD_SCHEMA

    def test_from_dict_rejects_foreign_schema(self):
        with pytest.raises(ValueError, match="not a scorecard"):
            Scorecard.from_dict({"schema": "x/v1"})

    def test_series_prefixes_metrics(self):
        card = schedule_audit_scorecard("s", serializations_taken=1,
                                        serializations_warranted=1)
        assert card.series()["scorecard.serialization_rate"] == 1.0

    def test_format_renders_metrics(self):
        card = drift_scorecard("d", [DriftDay.build(0, [], [])])
        text = format_scorecard_report(card.to_dict())
        assert "drift_lag_days" in text

    def test_round_trips_through_history_store(self, tmp_path):
        """Acceptance: a scorecard document survives the history store."""
        card = drift_scorecard(
            "fig4", [DriftDay.build(0, [((0, 1), (2, 3))],
                                    [((0, 1), (2, 3))])], run_id="r1")
        store = RunHistory(str(tmp_path / "h.jsonl"))
        store.append(RunRecord(run_id="r1", name="fig4",
                               series=card.series(),
                               documents={"scorecard": card.to_dict()}))
        record = store.records()[-1]
        back = Scorecard.from_dict(record.documents["scorecard"])
        assert back == card
        assert record.series["scorecard.recall"] == 1.0


class TestFig4DriftScorecard:
    def test_fast_fig4_run_scores_high_recall(self):
        """Acceptance: the fig4 drift experiment recovers the planted
        high-crosstalk pairs with >= 0.9 recall."""
        from repro.experiments.fig4_daily_drift import (
            fig4_scorecard,
            run_fig4,
        )
        from repro.rb.executor import RBConfig

        rows = run_fig4(days=2, rb_config=RBConfig.fast())
        card = fig4_scorecard(rows)
        assert card.kind == "drift"
        assert card.metrics["recall"] >= 0.9
        assert card.metrics["days"] == 2.0
