"""MetricsRegistry: instruments, snapshots, thread and process safety."""

import threading

import pytest

from repro.obs.registry import (
    METRICS_SCHEMA,
    MetricsRegistry,
    get_registry,
    push_registry,
)
from repro.parallel import ParallelEngine


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("a.b")
        reg.inc("a.b", 2.5)
        assert reg.counter("a.b").snapshot() == 3.5

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("a").inc(-1.0)

    def test_gauge_is_a_level(self):
        reg = MetricsRegistry()
        reg.set("g", 5.0)
        reg.set("g", 2.0)
        assert reg.gauge("g").snapshot() == 2.0

    def test_histogram_tracks_distribution(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.bucket_counts == [1, 1, 1]
        assert hist.min == 0.5 and hist.max == 50.0
        assert hist.mean == pytest.approx(55.5 / 3)

    def test_same_name_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_name_unique_across_kinds(self):
        reg = MetricsRegistry()
        reg.counter("taken")
        with pytest.raises(ValueError):
            reg.gauge("taken")


class TestSnapshots:
    def test_snapshot_schema_and_shape(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set("g", 7)
        reg.observe("h", 0.5)
        snap = reg.snapshot()
        assert snap["schema"] == METRICS_SCHEMA
        assert snap["counters"] == {"c": 2.0}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_diff_subtracts_counters_keeps_gauges(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set("g", 1)
        before = reg.snapshot()
        reg.inc("c", 3)
        reg.set("g", 9)
        delta = MetricsRegistry.diff(before, reg.snapshot())
        assert delta["counters"] == {"c": 3.0}
        assert delta["gauges"] == {"g": 9.0}

    def test_diff_histograms(self):
        reg = MetricsRegistry()
        reg.observe("h", 0.5)
        before = reg.snapshot()
        reg.observe("h", 0.5)
        reg.observe("h", 0.5)
        delta = MetricsRegistry.diff(before, reg.snapshot())
        assert delta["histograms"]["h"]["count"] == 2
        assert delta["histograms"]["h"]["sum"] == pytest.approx(1.0)

    def test_merge_round_trip(self):
        source = MetricsRegistry()
        source.inc("c", 4)
        source.set("g", 3)
        source.observe("h", 2.0)
        target = MetricsRegistry()
        target.inc("c", 1)
        target.observe("h", 0.5)
        target.merge(source.snapshot())
        assert target.counter("c").snapshot() == 5.0
        assert target.gauge("g").snapshot() == 3.0
        hist = target.histogram("h")
        assert hist.count == 2
        assert hist.min == 0.5 and hist.max == 2.0

    def test_empty_diff_drops_unchanged(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        snap = reg.snapshot()
        delta = MetricsRegistry.diff(snap, snap)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self):
        reg = MetricsRegistry()
        counter = reg.counter("n")

        def worker():
            for _ in range(5000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.snapshot() == 8 * 5000


def _registry_task(context, item):
    """Module-level task: writes to the (worker-local) default registry."""
    get_registry().inc("test.tasks")
    get_registry().observe("test.seconds", 0.01 * item)
    return item * 2


class TestProcessSafety:
    """Worker-process metric deltas must merge back into the parent."""

    @pytest.mark.parametrize("workers", [1, 3])
    def test_registry_totals_worker_count_invariant(self, workers):
        with push_registry() as reg:
            with ParallelEngine(workers=workers, name="t") as engine:
                results = engine.map(_registry_task, list(range(6)))
        assert results == [i * 2 for i in range(6)]
        assert reg.counter("test.tasks").snapshot() == 6.0
        assert reg.histogram("test.seconds").count == 6
        # engine-side metrics also land process-wide
        assert reg.counter("parallel.tasks").snapshot() == 6.0
        assert reg.histogram("parallel.task.exec_seconds").count == 6

    def test_queue_timing_recorded_in_pool_mode(self):
        with push_registry() as reg:
            # disable the serial-fallback heuristic: queue timings only
            # exist when tasks genuinely cross the pool
            with ParallelEngine(workers=2, name="t",
                                min_parallel_seconds=0.0) as engine:
                engine.map(_registry_task, list(range(4)))
        hist = reg.histogram("parallel.task.queue_seconds")
        assert hist.count == 4
        assert hist.min >= 0.0
