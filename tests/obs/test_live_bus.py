"""TelemetryBus: bounded fan-out, drop accounting, event/span tees."""

import threading

import pytest

from repro.obs import span
from repro.obs.live.bus import DEFAULT_CAPACITY, BusEventSink, TelemetryBus
from repro.obs.live.plane import LivePlane, get_plane
from repro.obs.registry import MetricsRegistry, push_registry


class TestPublishSubscribe:
    def test_subscriber_receives_envelope(self):
        bus = TelemetryBus()
        sub = bus.subscribe()
        bus.publish("event", {"event": "x", "n": 1})
        [envelope] = sub.poll()
        assert envelope["kind"] == "event"
        assert envelope["record"] == {"event": "x", "n": 1}
        assert envelope["ts"] > 0

    def test_publish_without_subscribers_is_counted_not_lost(self):
        with push_registry(MetricsRegistry()) as registry:
            bus = TelemetryBus()
            bus.publish("event", {"event": "x"})
            assert bus.published == 1
            assert registry.counter("obs.live.published").value == 1

    def test_fan_out_to_every_subscriber(self):
        bus = TelemetryBus()
        subs = [bus.subscribe() for _ in range(3)]
        bus.publish("snapshot", {"seq": 0})
        assert all(len(sub.poll()) == 1 for sub in subs)

    def test_kind_filter(self):
        bus = TelemetryBus()
        only_spans = bus.subscribe(kinds=["span"])
        everything = bus.subscribe()
        bus.publish("event", {"event": "x"})
        bus.publish("span", {"name": "s"})
        assert [e["kind"] for e in only_spans.poll()] == ["span"]
        assert [e["kind"] for e in everything.poll()] == ["event", "span"]

    def test_unsubscribe_stops_delivery(self):
        bus = TelemetryBus()
        sub = bus.subscribe()
        sub.close()
        bus.publish("event", {"event": "x"})
        assert sub.poll() == []
        sub.close()  # idempotent

    def test_poll_max_items_drains_incrementally(self):
        bus = TelemetryBus()
        sub = bus.subscribe()
        for i in range(5):
            bus.publish("event", {"n": i})
        assert len(sub.poll(max_items=2)) == 2
        assert len(sub.poll()) == 3

    def test_wait_wakes_on_publish(self):
        bus = TelemetryBus()
        sub = bus.subscribe()
        assert sub.wait(timeout=0.01) is False
        timer = threading.Timer(0.05, bus.publish, ("event", {"n": 1}))
        timer.start()
        try:
            assert sub.wait(timeout=2.0) is True
        finally:
            timer.cancel()

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TelemetryBus(capacity=0)

    def test_default_capacity(self):
        assert TelemetryBus().capacity == DEFAULT_CAPACITY


class TestDropAccounting:
    def test_overflow_drops_oldest_and_counts(self):
        with push_registry(MetricsRegistry()) as registry:
            bus = TelemetryBus(capacity=2)
            sub = bus.subscribe()
            for i in range(5):
                bus.publish("event", {"n": i})
            kept = [e["record"]["n"] for e in sub.poll()]
            assert kept == [3, 4]  # ring keeps the newest
            assert sub.dropped == 3
            assert bus.dropped == 3
            assert registry.counter("obs.live.dropped").value == 3

    def test_slow_subscriber_does_not_affect_fast_one(self):
        bus = TelemetryBus()
        slow = bus.subscribe(capacity=1)
        fast = bus.subscribe(capacity=100)
        for i in range(10):
            bus.publish("event", {"n": i})
        assert len(fast.poll()) == 10
        assert fast.dropped == 0
        assert slow.dropped == 9


class TestTees:
    def test_bus_event_sink_tees_log_event(self):
        bus = TelemetryBus()
        sub = bus.subscribe(kinds=["event"])
        sink = BusEventSink(bus)
        record = sink.log("campaign.start", policy="one_hop")
        assert record["event"] == "campaign.start"
        [envelope] = sub.poll()
        assert envelope["record"]["policy"] == "one_hop"

    def test_sink_carries_no_run_id(self):
        # Must never shadow a session's sink in current_run_id().
        assert BusEventSink(TelemetryBus()).run_id is None

    def test_plane_tees_spans_onto_bus(self):
        with push_registry(MetricsRegistry()):
            plane = LivePlane(interval=0)
            sub = plane.bus.subscribe(kinds=["span"])
            with plane:
                with span("outer"):
                    with span("inner"):
                        pass
            names = [e["record"]["name"] for e in sub.poll()]
            assert "inner" in names and "outer" in names

    def test_get_plane_tracks_innermost(self):
        with push_registry(MetricsRegistry()):
            assert get_plane() is None
            plane = LivePlane(interval=0)
            with plane:
                assert get_plane() is plane
            assert get_plane() is None

    def test_plane_is_not_reentrant(self):
        with push_registry(MetricsRegistry()):
            plane = LivePlane(interval=0)
            with plane:
                with pytest.raises(RuntimeError):
                    plane.__enter__()
