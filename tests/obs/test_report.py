"""Report formatting paths and the ``python -m repro.obs`` CLI contract."""

import json

import pytest

from repro.obs.__main__ import EXIT_ERROR, EXIT_GATE, main
from repro.obs.diff import diff_records
from repro.obs.history import RunHistory, RunRecord
from repro.obs.manifest import RunManifest
from repro.obs.profile import profile_trace
from repro.obs.report import (
    format_record_report,
    load_report_document,
    report,
    report_json,
)
from repro.obs.scorecard import drift_scorecard, DriftDay
from repro.obs.trace import Span, Trace


@pytest.fixture()
def trace_doc():
    return Trace(pipeline="run", run_id="r1", spans=[
        Span(name="root", seconds=0.5, counters={"n": 3.0},
             children=[Span(name="leaf", seconds=0.2)]),
    ]).to_dict()


@pytest.fixture()
def record():
    return RunRecord(run_id="r1", name="bench",
                     git={"sha": "abcdef0123456789", "dirty": True},
                     series={"x.seconds": 1.5},
                     documents={"scorecard": {}})


class TestReportDispatch:
    def test_trace_renders_span_tree(self, trace_doc):
        text = report(trace_doc)
        assert "root" in text and "leaf" in text and "ms" in text

    def test_metrics_snapshot(self):
        doc = {"schema": "repro.obs.metrics/v1",
               "counters": {"c": 2.0}, "gauges": {"g": 1.0},
               "histograms": {"h": {"count": 2, "sum": 1.0,
                                    "min": 0.4, "max": 0.6}}}
        text = report(doc)
        assert "counters" in text and "gauges" in text and "h:" in text

    def test_manifest(self):
        doc = RunManifest.capture(name="m", results={"v": 1.0}).to_dict()
        assert "run" in report(doc)

    def test_diff_document(self):
        diff = diff_records(
            RunRecord(run_id="a", name="n", series={"x.seconds": 1.0}),
            RunRecord(run_id="b", name="n", series={"x.seconds": 3.0}))
        assert "regressed" in report(diff.to_dict())

    def test_profile_document(self, trace_doc):
        assert "profile" in report(profile_trace(trace_doc).to_dict())

    def test_scorecard_document(self):
        card = drift_scorecard("d", [DriftDay.build(0, [], [])])
        assert "drift_lag_days" in report(card.to_dict())

    def test_history_record_document(self, record):
        text = report(record.to_dict())
        assert "bench" in text and "x.seconds" in text

    def test_history_store_path(self, tmp_path, record):
        store = RunHistory(str(tmp_path / "h.jsonl"))
        store.append(record)
        assert "bench" in report(store.path)

    def test_format_record_report_marks_dirty(self, record):
        text = format_record_report(record)
        assert "abcdef0123*" in text
        assert "documents: scorecard" in text


class TestJsonOutput:
    def test_load_report_document_requires_schema(self):
        with pytest.raises(ValueError, match="schema"):
            load_report_document({"no": "schema"})

    def test_jsonl_store_wraps_records(self, tmp_path, record):
        store = RunHistory(str(tmp_path / "h.jsonl"))
        store.append(record)
        doc = load_report_document(store.path)
        assert doc["schema"] == "repro.obs.history/v1"
        assert len(doc["records"]) == 1

    def test_report_json_is_an_array(self, tmp_path, record):
        path = tmp_path / "r.json"
        path.write_text(json.dumps(record.to_dict()))
        parsed = json.loads(report_json([str(path)]))
        assert isinstance(parsed, list)
        assert parsed[0]["run_id"] == "r1"


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


class TestCliExitCodes:
    def test_report_text_ok(self, tmp_path, trace_doc, capsys):
        path = _write(tmp_path, "t.json", trace_doc)
        assert main(["report", path]) == 0
        assert "root" in capsys.readouterr().out

    def test_report_json_format(self, tmp_path, trace_doc, capsys):
        path = _write(tmp_path, "t.json", trace_doc)
        assert main(["report", "--format", "json", path]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed[0]["schema"] == "repro.obs.trace/v2"

    def test_report_missing_file_is_exit_1(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.json")]) == EXIT_ERROR
        assert "error" in capsys.readouterr().err

    def test_diff_two_files_unchanged_exits_zero(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json",
                   RunRecord(run_id="a", name="n",
                             series={"x.seconds": 1.0}).to_dict())
        b = _write(tmp_path, "b.json",
                   RunRecord(run_id="b", name="n",
                             series={"x.seconds": 1.01}).to_dict())
        assert main(["diff", a, b, "--gate"]) == 0

    def test_diff_gate_regression_exits_two(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json",
                   RunRecord(run_id="a", name="n",
                             series={"x.seconds": 1.0}).to_dict())
        b = _write(tmp_path, "b.json",
                   RunRecord(run_id="b", name="n",
                             series={"x.seconds": 3.0}).to_dict())
        assert main(["diff", a, b, "--gate"]) == EXIT_GATE
        err = capsys.readouterr().err
        assert "1 series regressed" in err

    def test_diff_without_gate_reports_but_exits_zero(self, tmp_path,
                                                      capsys):
        a = _write(tmp_path, "a.json",
                   RunRecord(run_id="a", name="n",
                             series={"x.seconds": 1.0}).to_dict())
        b = _write(tmp_path, "b.json",
                   RunRecord(run_id="b", name="n",
                             series={"x.seconds": 3.0}).to_dict())
        assert main(["diff", a, b]) == 0
        assert "regressed" in capsys.readouterr().out

    def test_diff_against_history_window(self, tmp_path, capsys):
        """Acceptance: injected 2x slowdown vs a synthetic history fixture
        exits nonzero; a same-valued run diffs as unchanged."""
        store = RunHistory(str(tmp_path / "h.jsonl"))
        for i in range(5):
            store.append(RunRecord(run_id=f"r{i}", name="bench",
                                   series={"wall.seconds": 10.0 + 0.1 * i}))
        slow = _write(tmp_path, "slow.json",
                      RunRecord(run_id="slow", name="bench",
                                series={"wall.seconds": 20.0}).to_dict())
        same = _write(tmp_path, "same.json",
                      RunRecord(run_id="same", name="bench",
                                series={"wall.seconds": 10.2}).to_dict())
        assert main(["diff", slow, "--history", store.path,
                     "--last", "5", "--gate"]) == EXIT_GATE
        assert main(["diff", same, "--history", store.path,
                     "--last", "5", "--gate"]) == 0

    def test_diff_empty_history_is_exit_1(self, tmp_path, capsys):
        cand = _write(tmp_path, "c.json",
                      RunRecord(run_id="c", name="bench").to_dict())
        empty = str(tmp_path / "empty.jsonl")
        assert main(["diff", cand, "--history", empty]) == EXIT_ERROR

    def test_diff_missing_candidate_is_exit_1(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json",
                   RunRecord(run_id="a", name="n").to_dict())
        assert main(["diff", a]) == EXIT_ERROR

    def test_diff_warns_on_dirty_tree(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json",
                   RunRecord(run_id="a", name="n", git={"dirty": True},
                             series={"x.seconds": 1.0}).to_dict())
        b = _write(tmp_path, "b.json",
                   RunRecord(run_id="b", name="n",
                             series={"x.seconds": 1.0}).to_dict())
        assert main(["diff", a, b]) == 0
        assert "dirty working tree" in capsys.readouterr().err

    def test_profile_text_and_speedscope_out(self, tmp_path, trace_doc,
                                             capsys):
        path = _write(tmp_path, "t.json", trace_doc)
        assert main(["profile", path]) == 0
        assert "self ms" in capsys.readouterr().out
        out = str(tmp_path / "p.speedscope.json")
        assert main(["profile", path, "--format", "speedscope",
                     "--out", out]) == 0
        doc = json.loads(open(out).read())
        assert doc["profiles"][0]["type"] == "evented"

    def test_profile_collapsed_format(self, tmp_path, trace_doc, capsys):
        path = _write(tmp_path, "t.json", trace_doc)
        assert main(["profile", path, "--format", "collapsed"]) == 0
        assert "root;leaf" in capsys.readouterr().out

    def test_profile_missing_file_is_exit_1(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "no.json")]) == EXIT_ERROR

    def test_history_list_and_compact(self, tmp_path, record, capsys):
        store = RunHistory(str(tmp_path / "h.jsonl"))
        for i in range(4):
            store.append(RunRecord(run_id=f"r{i}", name="bench"))
        assert main(["history", store.path, "--last", "2"]) == 0
        assert main(["history", store.path, "--compact", "2"]) == 0
        out = capsys.readouterr().out
        assert "dropped 2 record(s)" in out
        assert len(store) == 2

    def test_history_bad_compact_is_exit_1(self, tmp_path, capsys):
        store = RunHistory(str(tmp_path / "h.jsonl"))
        store.append(RunRecord(run_id="r", name="n"))
        assert main(["history", store.path, "--compact", "0"]) == EXIT_ERROR
