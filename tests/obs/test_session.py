"""Session integration: one campaign + one compile produce, via repro.obs
alone, a nested v2 trace, a metrics delta snapshot, an event log, and a run
manifest — and the report CLI renders them (the ISSUE 3 acceptance
scenario)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.compiler import compile_circuit
from repro.core.characterization.campaign import (
    CharacterizationCampaign,
    CharacterizationPolicy,
)
from repro.obs import Session, read_manifest, read_trace, span
from repro.obs.events import read_events
from repro.obs.registry import push_registry
from repro.rb.executor import RBConfig

REPO_ROOT = Path(__file__).resolve().parents[2]


def bench_circuit():
    circuit = QuantumCircuit(6, 6)
    for a, b in [(0, 1), (2, 3), (4, 5), (1, 2), (3, 4)]:
        circuit.cx(a, b)
    for q in range(6):
        circuit.measure(q, q)
    return circuit


@pytest.fixture(scope="module")
def finished_session(poughkeepsie, tmp_path_factory):
    """One campaign run + one xtalk compile captured by a Session."""
    campaign = CharacterizationCampaign(
        poughkeepsie, rb_config=RBConfig.fast(), workers=1
    )
    with push_registry():
        with Session("acceptance", config={"policy": "one_hop_packed"},
                     seeds={"campaign": 0}, workers=1) as session:
            outcome = campaign.run(CharacterizationPolicy.ONE_HOP_PACKED)
            compile_circuit(bench_circuit(), poughkeepsie,
                            report=outcome.report, scheduler="xtalk")
            session.results["experiments"] = outcome.num_experiments
    out_dir = tmp_path_factory.mktemp("session")
    paths = session.write(str(out_dir))
    return session, paths


class TestSessionTree:
    def test_span_tree_covers_all_layers(self, finished_session):
        session, _ = finished_session
        names = [s.name for s in session.trace.walk()]
        # pipeline passes
        assert "schedule[xtalk]" in names
        assert "routing" in names
        # parallel task fan-outs
        assert any(n.startswith("parallel.map[") for n in names)
        # SMT solve nested under the scheduling pass
        schedule = session.trace.span("schedule[xtalk]")
        assert "smt.solve" in [c.name for c in schedule.children]

    def test_trace_carries_solver_and_parallel_counters(self, finished_session):
        session, _ = finished_session
        assert session.trace.counter("smt.solve.seconds") > 0.0
        assert session.trace.counter("smt.solve.constraints") > 0.0
        assert session.trace.counter("parallel.map.tasks") > 0.0

    def test_metrics_delta_covers_campaign_and_solver(self, finished_session):
        session, _ = finished_session
        counters = session.metrics["counters"]
        assert counters["campaign.runs"] == 1.0
        assert counters["rb.experiments"] > 0.0
        assert counters["smt.solves"] >= 1.0
        assert counters["pipeline.runs"] == 1.0

    def test_event_log_brackets_the_run(self, finished_session):
        session, _ = finished_session
        events = [e["event"] for e in session.event_log]
        assert events[0] == "session.start"
        assert events[-1] == "session.end"
        assert "campaign.start" in events and "campaign.end" in events
        assert "smt.solve" in events and "pipeline.run" in events
        assert all(e["run_id"] == session.run_id for e in session.event_log)

    def test_campaign_event_carries_device_fingerprint(self, finished_session):
        session, _ = finished_session
        (start,) = session.event_log.of("campaign.start")
        assert len(start["device"]) == 64  # sha-256 hex


class TestArtifacts:
    def test_trace_file_round_trips(self, finished_session):
        session, paths = finished_session
        trace = read_trace(paths["trace"])
        assert trace.run_id == session.run_id
        assert trace.span("smt.solve").seconds > 0.0

    def test_manifest_file(self, finished_session):
        session, paths = finished_session
        manifest = read_manifest(paths["manifest"])
        assert manifest.run_id == session.run_id
        assert manifest.config == {"policy": "one_hop_packed"}
        assert manifest.workers == 1
        assert manifest.results["experiments"] > 0

    def test_events_file(self, finished_session):
        session, paths = finished_session
        records = read_events(paths["events"])
        assert len(records) == len(session.event_log)

    def test_metrics_file(self, finished_session):
        _, paths = finished_session
        doc = json.loads(Path(paths["metrics"]).read_text())
        assert doc["schema"] == "repro.obs.metrics/v1"

    def test_write_before_exit_raises(self):
        session = Session("unfinished")
        with pytest.raises(RuntimeError):
            session.write("/tmp/nowhere")


class TestReportCli:
    def run_cli(self, *args):
        env_path = str(REPO_ROOT / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.obs", "report", *args],
            capture_output=True, text=True,
            env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
        )

    def test_renders_trace_tree_and_top_counters(self, finished_session):
        _, paths = finished_session
        proc = self.run_cli(paths["trace"])
        assert proc.returncode == 0, proc.stderr
        assert "smt.solve" in proc.stdout
        assert "parallel.map[" in proc.stdout
        assert "counters" in proc.stdout

    def test_renders_manifest_and_metrics(self, finished_session):
        session, paths = finished_session
        proc = self.run_cli(paths["manifest"], paths["metrics"])
        assert proc.returncode == 0, proc.stderr
        assert session.run_id in proc.stdout
        assert "campaign.runs" in proc.stdout

    def test_missing_file_exits_nonzero(self):
        proc = self.run_cli("/nonexistent/trace.json")
        assert proc.returncode == 1
        assert "error" in proc.stderr


class TestSessionIsolation:
    def test_sessions_do_not_leak_span_stack(self):
        with Session("s1"):
            pass
        with span("free") as record:
            pass
        assert record.children == []

    def test_exception_inside_session_recorded(self):
        with pytest.raises(RuntimeError):
            with Session("boom") as session:
                raise RuntimeError("x")
        (end,) = session.event_log.of("session.end")
        assert "RuntimeError" in end["error"]
        assert session.trace is not None
