"""Noise-aware run diffing: classification, windows, gating, rendering."""

import pytest

from repro.obs.diff import (
    DIFF_SCHEMA,
    DiffThresholds,
    RunDiff,
    diff_records,
    diff_series,
    direction_of,
    format_diff,
    format_diff_report,
)
from repro.obs.history import RunRecord


class TestDirectionOf:
    def test_seconds_and_failures_are_lower_better(self):
        assert direction_of("trace.total_seconds") == -1
        assert direction_of("resilience.task_failures") == -1
        assert direction_of("rb.experiment_seconds.max") == -1

    def test_speedup_and_recall_are_higher_better(self):
        assert direction_of("workloads.tomography.speedup") == 1
        assert direction_of("scorecard.recall") == 1

    def test_unknown_names_have_no_direction(self):
        assert direction_of("campaign.experiments") == 0


class TestDiffSeries:
    def test_within_band_is_unchanged(self):
        d = diff_series("x.seconds", [1.0], 1.1)
        assert d.classification == "unchanged"

    def test_large_increase_of_lower_better_regresses(self):
        d = diff_series("x.seconds", [1.0], 2.0)
        assert d.classification == "regressed"
        assert d.ratio == pytest.approx(2.0)

    def test_large_decrease_of_lower_better_improves(self):
        assert diff_series("x.seconds", [1.0], 0.4).classification == \
            "improved"

    def test_direction_flips_for_higher_better(self):
        assert diff_series("x.speedup", [1.0], 2.0).classification == \
            "improved"
        assert diff_series("x.speedup", [2.0], 1.0).classification == \
            "regressed"

    def test_unknown_direction_never_gates(self):
        d = diff_series("mystery.metric", [1.0], 100.0)
        assert d.classification == "indeterminate"

    def test_added_and_removed(self):
        assert diff_series("x.seconds", [], 1.0).classification == "added"
        assert diff_series("x.seconds", [1.0], None).classification == \
            "removed"

    def test_mad_band_absorbs_window_noise(self):
        # Window scatter ~0.1 around 1.0; a candidate inside the MAD band
        # must not regress even with a tight relative tolerance.
        window = [0.9, 1.0, 1.1, 0.95, 1.05]
        thresholds = DiffThresholds(rel=0.01, mad_scale=4.0)
        d = diff_series("x.seconds", window, 1.15, thresholds)
        assert d.classification == "unchanged"

    def test_subsecond_jitter_is_below_the_wall_clock_floor(self):
        # 32 ms on a 0.12 s workload is 1.26x — past the relative band,
        # but pure scheduler jitter; the seconds floor absorbs it.
        d = diff_series("workloads.tomography.parallel_seconds",
                        [0.124], 0.156)
        assert d.classification == "unchanged"

    def test_wall_clock_floor_only_applies_to_seconds_series(self):
        d = diff_series("scorecard.recall", [1.0], 0.70)
        assert d.classification == "regressed"

    def test_wall_clock_floor_can_be_disabled(self):
        thresholds = DiffThresholds(rel=0.0, mad_scale=0.0,
                                    noise_floor_seconds=0.0)
        d = diff_series("x.seconds", [0.124], 0.156, thresholds)
        assert d.classification == "regressed"

    def test_identical_counter_is_exactly_unchanged(self):
        d = diff_series("campaign.experiments", [36.0, 36.0, 36.0], 36.0)
        assert d.classification == "unchanged"
        assert d.delta == 0.0


def _record(run_id, series):
    return RunRecord(run_id=run_id, name="bench", series=series)


class TestDiffRecords:
    def test_two_run_diff_classifies_all_series(self):
        base = _record("r1", {"a.seconds": 1.0, "b.speedup": 2.0, "c": 5.0})
        cand = _record("r2", {"a.seconds": 2.2, "b.speedup": 2.0, "d": 1.0})
        diff = diff_records(base, cand)
        by_name = {s.name: s.classification for s in diff.series}
        assert by_name == {"a.seconds": "regressed", "b.speedup": "unchanged",
                           "c": "removed", "d": "added"}

    def test_empty_window_raises(self):
        with pytest.raises(ValueError, match="empty"):
            diff_records([], _record("r", {}))

    def test_injected_2x_slowdown_gates_nonzero(self):
        """Acceptance: a synthetic 2x slowdown against a 5-run window must
        trip the gate; an identical re-run must not."""
        window = [_record(f"r{i}", {"campaign.run_seconds.sum": v})
                  for i, v in enumerate([10.0, 10.2, 9.9, 10.1, 10.0])]
        slow = _record("slow", {"campaign.run_seconds.sum": 20.0})
        diff = diff_records(window, slow)
        assert [s.name for s in diff.regressions] == \
            ["campaign.run_seconds.sum"]
        assert diff.gate_exit_code() == 2

        same = _record("same", {"campaign.run_seconds.sum": 10.05})
        assert diff_records(window, same).gate_exit_code() == 0

    def test_window_label_names_median(self):
        window = [_record(f"r{i}", {"x": 1.0}) for i in range(3)]
        diff = diff_records(window, _record("c", {"x": 1.0}))
        assert "median of 3 runs" in diff.baseline_name

    def test_improvements_listed(self):
        diff = diff_records(_record("r1", {"x.seconds": 2.0}),
                            _record("r2", {"x.seconds": 0.5}))
        assert [s.name for s in diff.improvements] == ["x.seconds"]
        assert diff.gate_exit_code() == 0


class TestRendering:
    def test_format_diff_marks_regressions(self):
        diff = diff_records(_record("r1", {"x.seconds": 1.0}),
                            _record("r2", {"x.seconds": 3.0}))
        text = format_diff(diff)
        assert "regressed" in text
        assert "x.seconds" in text

    def test_unchanged_hidden_by_default_shown_on_request(self):
        diff = diff_records(_record("r1", {"x.seconds": 1.0}),
                            _record("r2", {"x.seconds": 1.0}))
        assert "x.seconds" not in format_diff(diff)
        assert "x.seconds" in format_diff(diff, show_unchanged=True)

    def test_document_round_trip(self):
        diff = diff_records(_record("r1", {"x.seconds": 1.0}),
                            _record("r2", {"x.seconds": 3.0}))
        doc = diff.to_dict()
        assert doc["schema"] == DIFF_SCHEMA
        assert doc["summary"]["regressed"] == 1
        assert "regressed" in format_diff_report(doc)
