"""Trace v2: span nesting, serialization, and the v1 compat reader."""

import json

import pytest

from repro.obs.trace import (
    TRACE_COLLECTION_SCHEMA,
    TRACE_SCHEMA,
    TRACE_SCHEMA_V1,
    Span,
    SpanRecorder,
    Trace,
    current_span,
    read_trace,
    read_traces,
    span,
)


class TestSpanNesting:
    def test_nested_spans_form_a_tree(self):
        with span("outer") as outer:
            with span("middle") as middle:
                with span("inner") as inner:
                    inner.add("n", 1)
            with span("sibling"):
                pass
        assert [c.name for c in outer.children] == ["middle", "sibling"]
        assert [c.name for c in middle.children] == ["inner"]
        assert outer.seconds >= middle.seconds >= inner.seconds >= 0.0

    def test_current_span_tracks_innermost(self):
        assert current_span() is None
        with span("a") as a:
            assert current_span() is a
            with span("b") as b:
                assert current_span() is b
            assert current_span() is a
        assert current_span() is None

    def test_stack_unwinds_on_exception(self):
        with pytest.raises(RuntimeError):
            with span("outer"):
                with span("inner"):
                    raise RuntimeError("boom")
        assert current_span() is None

    def test_walk_and_total_counters(self):
        with span("root") as root:
            root.add("x", 1)
            with span("leaf") as leaf:
                leaf.add("x", 2)
                leaf.add("y", 5)
        assert [s.name for s in root.walk()] == ["root", "leaf"]
        assert root.total_counters() == {"x": 3.0, "y": 5.0}

    def test_recorder_spans_nest_under_enclosing_span(self):
        recorder = SpanRecorder("inner-trace")
        with span("outer") as outer:
            with recorder.span("stage"):
                pass
        assert [c.name for c in outer.children] == ["stage"]
        assert [s.name for s in recorder.trace.spans] == ["stage"]


class TestV2Serialization:
    def make_trace(self):
        recorder = SpanRecorder("demo")
        with recorder.span("a") as a:
            a.add("k", 2)
            with span("a.child") as child:
                child.add("k", 1)
        trace = recorder.trace
        trace.run_id = "abc123"
        trace.meta["device"] = "fp"
        return trace

    def test_document_shape(self):
        doc = self.make_trace().to_dict()
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["name"] == "demo"
        assert doc["run_id"] == "abc123"
        assert doc["meta"] == {"device": "fp"}
        (span_doc,) = doc["spans"]
        assert [c["name"] for c in span_doc["spans"]] == ["a.child"]

    def test_counters_recursive(self):
        trace = self.make_trace()
        assert trace.counter("k") == 3.0

    def test_v2_round_trip(self):
        trace = self.make_trace()
        rebuilt = read_trace(trace.to_json())
        assert rebuilt.to_dict() == trace.to_dict()

    def test_span_lookup_descends(self):
        trace = self.make_trace()
        assert trace.span("a.child").counters == {"k": 1.0}


class TestV1CompatReader:
    V1_DOC = {
        "schema": TRACE_SCHEMA_V1,
        "pipeline": "compile[xtalk]",
        "total_seconds": 0.5,
        "counters": {"smt.solve_seconds": 0.25},
        "passes": [
            {"name": "routing", "seconds": 0.25,
             "counters": {"routing.swaps_inserted": 4.0}},
            {"name": "schedule[xtalk]", "seconds": 0.25,
             "counters": {"smt.solve_seconds": 0.25}},
        ],
    }

    def test_reads_v1_document(self):
        trace = read_trace(self.V1_DOC)
        assert trace.pipeline == trace.name == "compile[xtalk]"
        assert trace.pass_names == ["routing", "schedule[xtalk]"]
        assert trace.counter("routing.swaps_inserted") == 4.0

    def test_reads_v1_json_text_and_file(self, tmp_path):
        text = json.dumps(self.V1_DOC)
        assert read_trace(text).pipeline == "compile[xtalk]"
        path = tmp_path / "trace.json"
        path.write_text(text)
        assert read_trace(str(path)).pipeline == "compile[xtalk]"

    def test_v1_reserializes_as_v2(self):
        doc = read_trace(self.V1_DOC).to_dict()
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["name"] == "compile[xtalk]"
        assert [s["name"] for s in doc["spans"]] == [
            "routing", "schedule[xtalk]",
        ]

    def test_reads_v1_collection(self):
        collection = {
            "schema": "repro.pipeline.trace-collection/v1",
            "num_traces": 2,
            "traces": [self.V1_DOC, self.V1_DOC],
        }
        traces = read_traces(collection)
        assert len(traces) == 2
        assert all(t.pipeline == "compile[xtalk]" for t in traces)

    def test_reads_v2_collection(self):
        trace = Trace(pipeline="t", spans=[Span("s", 0.1)])
        collection = {
            "schema": TRACE_COLLECTION_SCHEMA,
            "traces": [trace.to_dict()],
        }
        (rebuilt,) = read_traces(collection)
        assert rebuilt.pipeline == "t"

    def test_single_trace_reads_as_one_element_list(self):
        (trace,) = read_traces(self.V1_DOC)
        assert trace.pipeline == "compile[xtalk]"

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            read_trace({"schema": "bogus/v9", "name": "x"})
