"""Snapshots, alert lifecycle, Prometheus export, and the tail/top CLI."""

import json
import threading

import pytest

from repro.obs.__main__ import EXIT_ERROR, main
from repro.obs.events import event_sink
from repro.obs.live.alerts import (
    AlertEngine,
    AlertRule,
    breaker_open_rule,
    budget_rule,
    default_fleet_rules,
    drift_lag_rule,
    queue_latency_rule,
    task_failure_rule,
)
from repro.obs.live.bus import TelemetryBus
from repro.obs.live.export import (
    prometheus_exposition,
    validate_exposition,
    write_prometheus,
)
from repro.obs.live.snapshot import (
    SNAPSHOT_SCHEMA,
    SnapshotPublisher,
    SnapshotWriter,
    build_series,
    read_snapshots,
    tail_records,
)
from repro.obs.registry import MetricsRegistry, push_registry


def _snapshot(seq, **series):
    return {"schema": SNAPSHOT_SCHEMA, "seq": seq, "series": series}


class TestBuildSeries:
    def test_histograms_contribute_p95(self):
        registry = MetricsRegistry()
        for value in (0.01, 0.02, 0.03):
            registry.observe("task.seconds", value)
        registry.inc("tasks", 3)
        registry.set("level", 7.0)
        series = build_series(registry.snapshot())
        assert series["tasks"] == 3
        assert series["level"] == 7.0
        assert series["task.seconds.count"] == 3
        assert series["task.seconds.p95"] > 0


class TestPublisher:
    def test_publish_builds_versioned_document(self):
        with push_registry(MetricsRegistry()) as registry:
            registry.inc("fleet.ticks", 2)
            publisher = SnapshotPublisher(bus=TelemetryBus(), interval=0,
                                          source="test")
            first = publisher.publish()
            second = publisher.publish()
            assert first["schema"] == SNAPSHOT_SCHEMA
            assert first["source"] == "test"
            assert (first["seq"], second["seq"]) == (0, 1)
            assert first["series"]["fleet.ticks"] == 2
            assert first["alerts"] == {"firing": [], "transitions": []}
            assert registry.counter("obs.live.snapshots").value == 2

    def test_snapshots_tee_onto_bus(self):
        with push_registry(MetricsRegistry()):
            bus = TelemetryBus()
            sub = bus.subscribe(kinds=["snapshot"])
            SnapshotPublisher(bus=bus, interval=0).publish()
            [envelope] = sub.poll()
            assert envelope["record"]["schema"] == SNAPSHOT_SCHEMA

    def test_background_thread_publishes_and_stops(self):
        with push_registry(MetricsRegistry()):
            bus = TelemetryBus()
            sub = bus.subscribe(kinds=["snapshot"])
            publisher = SnapshotPublisher(bus=bus, interval=0.01)
            publisher.start()
            try:
                assert sub.wait(timeout=5.0)
            finally:
                publisher.stop()
            publisher.stop()  # idempotent

    def test_alert_transition_emits_obs_alert_event(self):
        with push_registry(MetricsRegistry()) as registry:
            registry.set("fleet.max_staleness", 5.0)
            engine = AlertEngine([drift_lag_rule(days=2)])
            publisher = SnapshotPublisher(bus=TelemetryBus(), interval=0,
                                          alerts=engine)
            with event_sink() as sink:
                publisher.publish()
            [event] = sink.of("obs.alert")
            assert event["alert"] == "drift_lag"
            assert event["state"] == "firing"
            assert registry.counter("obs.live.alerts").value == 1


class TestWriterAndReaders:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "snapshots.jsonl")
        with SnapshotWriter(path) as writer:
            writer.append(_snapshot(0))
            writer.append(_snapshot(1))
        assert [s["seq"] for s in read_snapshots(path)] == [0, 1]

    def test_read_snapshots_skips_foreign_schemas(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            json.dumps(_snapshot(0)) + "\n"
            + json.dumps({"schema": "other/v1"}) + "\n"
        )
        assert [s["seq"] for s in read_snapshots(str(path))] == [0]

    def test_tail_counts_corrupt_and_torn_lines(self, tmp_path):
        path = tmp_path / "dirty.jsonl"
        path.write_text(
            json.dumps(_snapshot(0)) + "\n"
            + "{not json}\n"
            + json.dumps([1, 2]) + "\n"        # parses, not an object
            + json.dumps(_snapshot(1)) + "\n"
            + '{"torn": '                       # no newline: torn tail
        )
        with push_registry(MetricsRegistry()) as registry:
            records = list(tail_records(str(path)))
            assert [r["seq"] for r in records] == [0, 1]
            assert registry.counter("obs.events.corrupt_lines").value == 3

    def test_follow_sees_concurrent_appends(self, tmp_path):
        path = str(tmp_path / "live.jsonl")
        with SnapshotWriter(path) as writer:
            writer.append(_snapshot(0))

            def _append_later():
                writer.append(_snapshot(1))

            timer = threading.Timer(0.05, _append_later)
            timer.start()
            try:
                seen = []
                for record in tail_records(path, follow=True, poll=0.01,
                                           max_seconds=5.0):
                    seen.append(record["seq"])
                    if len(seen) == 2:
                        break
            finally:
                timer.cancel()
        assert seen == [0, 1]


class TestAlertEngine:
    def test_sustain_window_delays_firing(self):
        engine = AlertEngine([AlertRule("hot", "temp", 10, sustain=2)])
        assert engine.evaluate(_snapshot(0, temp=11)) == []
        [fired] = engine.evaluate(_snapshot(1, temp=12))
        assert (fired["alert"], fired["state"]) == ("hot", "firing")
        assert engine.firing == ["hot"]

    def test_resolve_sustain_and_lifecycle_counts(self):
        engine = AlertEngine([AlertRule("hot", "temp", 10,
                                        resolve_sustain=2)])
        engine.evaluate(_snapshot(0, temp=11))
        assert engine.evaluate(_snapshot(1, temp=5)) == []
        [resolved] = engine.evaluate(_snapshot(2, temp=5))
        assert resolved["state"] == "resolved"
        summary = engine.summary()
        assert summary["firing"] == []
        assert summary["rules"]["hot"] == {"fired": 1, "resolved": 1,
                                           "firing": False}

    def test_missing_series_leaves_state_untouched(self):
        engine = AlertEngine([AlertRule("hot", "temp", 10)])
        engine.evaluate(_snapshot(0, temp=11))
        assert engine.evaluate(_snapshot(1)) == []  # no resolve either
        assert engine.firing == ["hot"]

    def test_delta_rule_rates_a_counter(self):
        engine = AlertEngine([task_failure_rule(per_snapshot=2)])
        name = "resilience.task_failures"
        assert engine.evaluate(_snapshot(0, **{name: 10.0})) == []
        assert engine.evaluate(_snapshot(1, **{name: 11.0})) == []
        [fired] = engine.evaluate(_snapshot(2, **{name: 13.0}))
        assert fired["state"] == "firing"

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            AlertRule("bad", "s", 1, op="~=")
        with pytest.raises(ValueError):
            AlertRule("bad", "s", 1, sustain=0)
        with pytest.raises(ValueError):
            AlertEngine([AlertRule("dup", "s", 1), AlertRule("dup", "t", 1)])

    def test_default_fleet_rules_cover_the_failure_classes(self):
        names = {rule.name for rule in default_fleet_rules()}
        assert names == {"drift_lag", "breaker_open", "task_failures",
                         "queue_latency", "budget_exhausted"}
        assert breaker_open_rule().series == "fleet.breakers_open"
        assert queue_latency_rule().series == \
            "parallel.task.queue_seconds.p95"
        assert budget_rule().op == "<="


class TestPrometheusExport:
    def test_exposition_renders_and_validates(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("fleet.ticks", 3)
        registry.set("fleet.staleness[dev-0]", 0)
        registry.set("fleet.staleness[dev-1]", 2)
        registry.observe("task.seconds", 0.01)
        registry.observe("task.seconds", 3.0)
        text = prometheus_exposition(registry.snapshot())
        assert validate_exposition(text) == []
        assert "fleet_ticks 3" in text
        assert 'fleet_staleness{item="dev-0"} 0' in text
        assert 'task_seconds_bucket{le="+Inf"} 2' in text
        assert "task_seconds_count 2" in text
        written = write_prometheus(str(tmp_path / "m.prom"),
                                   registry.snapshot())
        assert written == text

    def test_validator_rejects_garbage(self):
        assert validate_exposition("not a metric line at all !!\n")
        assert validate_exposition("orphan_sample 1\n")  # no TYPE

    def test_validator_rejects_non_monotonic_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\nh_count 3\n"
        )
        assert any("non-decreasing" in p for p in validate_exposition(text))


class TestTailTopCli:
    def _write_stream(self, tmp_path):
        path = tmp_path / "snapshots.jsonl"
        records = [
            _snapshot(0, **{"fleet.day": 0.0, "parallel.tasks": 4.0}),
            "{corrupt",
            _snapshot(1, **{"fleet.day": 1.0, "fleet.max_staleness": 3.0}),
        ]
        lines = [r if isinstance(r, str) else json.dumps(r)
                 for r in records]
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_tail_renders_digest_lines(self, tmp_path, capsys):
        path = self._write_stream(tmp_path)
        assert main(["tail", path]) == 0
        out = capsys.readouterr().out
        assert "[   0]" in out and "[   1]" in out
        assert "day=1" in out and "max_staleness=3" in out

    def test_tail_last_n(self, tmp_path, capsys):
        path = self._write_stream(tmp_path)
        assert main(["tail", path, "--last", "1"]) == 0
        out = capsys.readouterr().out
        assert "[   1]" in out and "[   0]" not in out

    def test_tail_json_format(self, tmp_path, capsys):
        path = self._write_stream(tmp_path)
        assert main(["tail", path, "--format", "json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert [json.loads(l)["seq"] for l in lines] == [0, 1]

    def test_top_renders_board(self, tmp_path, capsys):
        path = str(tmp_path / "snapshots.jsonl")
        document = _snapshot(3, **{"fleet.day": 2.0,
                                   "fleet.breakers_open": 1.0})
        document["heartbeats"] = {
            "campaign[high_only]": {"beats": 7, "ts": 1.0,
                                    "done": 5, "total": 9},
        }
        document["alerts"] = {"firing": ["breaker_open"],
                              "transitions": []}
        with open(path, "w") as handle:
            handle.write(json.dumps(document) + "\n")
        assert main(["top", path]) == 0
        out = capsys.readouterr().out
        assert "fleet.day" in out
        assert "campaign[high_only]" in out
        assert "breaker_open" in out

    def test_top_empty_stream_is_an_error(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["top", str(path)]) == EXIT_ERROR
