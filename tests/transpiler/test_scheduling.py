"""Tests for ASAP/ALAP/serial scheduling and the hardware-timing model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import CircuitDag
from repro.device.calibration import GateDurations
from repro.transpiler.scheduling import (
    alap_schedule,
    asap_schedule,
    fully_barriered,
    hardware_schedule,
    serial_schedule,
)

DUR = GateDurations(single_qubit=50.0, cx={}, measurement=1000.0, default_cx=200.0)


def measured_pair_circuit():
    circ = QuantumCircuit(4, 2)
    circ.h(0)
    circ.cx(0, 1)
    circ.cx(2, 3)
    circ.measure(1, 0)
    circ.measure(3, 1)
    return circ


class TestAsap:
    def test_respects_dependencies(self):
        circ = measured_pair_circuit()
        sched = asap_schedule(circ, DUR)
        assert sched.validate_dependencies(CircuitDag(circ))

    def test_starts_at_zero(self):
        circ = measured_pair_circuit()
        sched = asap_schedule(circ, DUR)
        assert min(t.start for t in sched) == 0.0

    def test_chain_timing(self):
        circ = QuantumCircuit(1).h(0).x(0).z(0)
        sched = asap_schedule(circ, DUR)
        assert [t.start for t in sched] == [0.0, 50.0, 100.0]


class TestAlap:
    def test_measures_aligned(self):
        circ = measured_pair_circuit()
        sched = alap_schedule(circ, DUR)
        measures = [t for t in sched if t.instruction.is_measure]
        assert len({t.start for t in measures}) == 1

    def test_right_alignment_pushes_gates_late(self):
        circ = measured_pair_circuit()
        asap = asap_schedule(circ, DUR)
        alap = alap_schedule(circ, DUR)
        # the short chain's cx starts later under ALAP
        cx23_asap = next(t for t in asap if t.instruction.qubits == (2, 3))
        cx23_alap = next(t for t in alap if t.instruction.qubits == (2, 3))
        assert cx23_alap.start > cx23_asap.start

    def test_makespan_not_stretched(self):
        circ = measured_pair_circuit()
        assert alap_schedule(circ, DUR).makespan() == pytest.approx(
            asap_schedule(circ, DUR).makespan()
        )

    def test_dependencies_still_valid(self):
        circ = measured_pair_circuit()
        sched = alap_schedule(circ, DUR)
        assert sched.validate_dependencies(CircuitDag(circ))

    def test_without_alignment(self):
        circ = measured_pair_circuit()
        sched = alap_schedule(circ, DUR, align_measurements=False)
        assert sched.validate_dependencies(CircuitDag(circ))


class TestSerial:
    def test_no_two_qubit_overlaps(self):
        circ = measured_pair_circuit()
        sched = serial_schedule(circ, DUR)
        assert sched.overlapping_two_qubit_pairs() == ()

    def test_gates_strictly_sequential(self):
        circ = measured_pair_circuit()
        sched = serial_schedule(circ, DUR)
        gates = sorted(
            (t for t in sched if not t.instruction.is_measure),
            key=lambda t: t.start,
        )
        for prev, nxt in zip(gates, gates[1:]):
            assert nxt.start >= prev.end - 1e-9

    def test_measures_simultaneous_at_end(self):
        circ = measured_pair_circuit()
        sched = serial_schedule(circ, DUR)
        measures = [t for t in sched if t.instruction.is_measure]
        gate_end = max(t.end for t in sched if not t.instruction.is_measure)
        for m in measures:
            assert m.start == pytest.approx(gate_end)

    def test_longest_makespan(self):
        circ = measured_pair_circuit()
        assert serial_schedule(circ, DUR).makespan() >= \
            hardware_schedule(circ, DUR).makespan()


class TestHardwareSchedule:
    def test_barriers_enforce_order(self):
        circ = QuantumCircuit(4, 2)
        circ.cx(0, 1)
        circ.barrier(0, 1, 2, 3)
        circ.cx(2, 3)
        circ.measure(1, 0)
        circ.measure(3, 1)
        sched = hardware_schedule(circ, DUR)
        cx01 = next(t for t in sched if t.instruction.qubits == (0, 1))
        cx23 = next(t for t in sched if t.instruction.qubits == (2, 3))
        assert cx01.end <= cx23.start + 1e-9

    def test_without_barriers_gates_overlap(self):
        circ = measured_pair_circuit()
        sched = hardware_schedule(circ, DUR)
        assert sched.overlapping_two_qubit_pairs() == ((1, 2),)


class TestFullyBarriered:
    def test_serializes_everything(self):
        circ = measured_pair_circuit()
        serial = fully_barriered(circ)
        sched = hardware_schedule(serial, DUR)
        assert sched.overlapping_two_qubit_pairs() == ()

    def test_measures_kept_at_end(self):
        circ = measured_pair_circuit()
        serial = fully_barriered(circ)
        names = [i.name for i in serial]
        assert names[-2:] == ["measure", "measure"]

    def test_gate_multiset_preserved(self):
        circ = measured_pair_circuit()
        serial = fully_barriered(circ)
        original = [i for i in circ if not i.is_barrier]
        kept = [i for i in serial if not i.is_barrier]
        assert sorted(i.name for i in original) == sorted(i.name for i in kept)


def random_measured_circuit(rng, num_qubits, num_gates):
    circ = QuantumCircuit(num_qubits, num_qubits)
    for _ in range(num_gates):
        r = rng.random()
        if r < 0.1:
            size = int(rng.integers(1, num_qubits + 1))
            qubits = rng.choice(num_qubits, size=size, replace=False)
            circ.barrier(*(int(q) for q in qubits))
        elif r < 0.5:
            circ.h(int(rng.integers(num_qubits)))
        else:
            a, b = rng.choice(num_qubits, 2, replace=False)
            circ.cx(int(a), int(b))
    for q in range(num_qubits):
        circ.measure(q, q)
    return circ


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_all_schedulers_respect_dependencies(seed):
    rng = np.random.default_rng(seed)
    circ = random_measured_circuit(rng, 4, 20)
    dag = CircuitDag(circ)
    for scheduler in (asap_schedule, alap_schedule, hardware_schedule):
        assert scheduler(circ, DUR).validate_dependencies(dag)
    assert serial_schedule(circ, DUR).validate_dependencies(dag)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_alap_never_earlier_than_asap(seed):
    rng = np.random.default_rng(seed)
    circ = random_measured_circuit(rng, 4, 15)
    asap = asap_schedule(circ, DUR)
    alap = alap_schedule(circ, DUR)
    for a, l in zip(asap, alap):
        if a.instruction.is_directive:
            continue
        assert l.start >= a.start - 1e-6
