"""Tests for basis decomposition."""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.sim.statevector import simulate_statevector
from repro.transpiler.decompose import count_physical_cnots, decompose_to_basis


class TestSwapDecomposition:
    def test_swap_becomes_three_cx(self):
        circ = QuantumCircuit(2).swap(0, 1)
        lowered = decompose_to_basis(circ)
        assert [i.name for i in lowered] == ["cx", "cx", "cx"]
        assert lowered[0].qubits == (0, 1)
        assert lowered[1].qubits == (1, 0)
        assert lowered[2].qubits == (0, 1)

    @pytest.mark.parametrize("input_state", range(4))
    def test_swap_equivalence(self, input_state):
        prep = QuantumCircuit(2)
        if input_state & 1:
            prep.x(0)
        if input_state & 2:
            prep.x(1)
        original = prep.copy().swap(0, 1)
        lowered = decompose_to_basis(original)
        v1 = simulate_statevector(original).vector
        v2 = simulate_statevector(lowered).vector
        assert np.allclose(v1, v2)

    def test_swap_equivalence_on_superposition(self):
        circ = QuantumCircuit(2).h(0).t(0).swap(0, 1)
        v1 = simulate_statevector(circ).vector
        v2 = simulate_statevector(decompose_to_basis(circ)).vector
        assert np.allclose(v1, v2)


class TestCzDecomposition:
    def test_cz_becomes_h_cx_h(self):
        lowered = decompose_to_basis(QuantumCircuit(2).cz(0, 1))
        assert [i.name for i in lowered] == ["h", "cx", "h"]

    def test_cz_equivalence(self):
        circ = QuantumCircuit(2).h(0).h(1).cz(0, 1)
        v1 = simulate_statevector(circ).vector
        v2 = simulate_statevector(decompose_to_basis(circ)).vector
        assert np.allclose(v1, v2)


class TestPassthrough:
    def test_other_gates_unchanged(self):
        circ = QuantumCircuit(2, 1).h(0).cx(0, 1).measure(0, 0)
        lowered = decompose_to_basis(circ)
        assert lowered == circ

    def test_labels_propagate(self):
        circ = QuantumCircuit(2)
        circ.add("swap", 0, 1, label="tagged")
        lowered = decompose_to_basis(circ)
        assert all(i.label == "tagged" for i in lowered)


class TestCounting:
    def test_count_physical_cnots(self):
        circ = QuantumCircuit(3).swap(0, 1).cz(1, 2).cx(0, 1)
        assert count_physical_cnots(circ) == 5
