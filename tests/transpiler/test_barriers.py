"""Tests for barrier-based schedule realization."""

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.device.calibration import GateDurations
from repro.transpiler.barriers import (
    reorder_and_barrier,
    reorder_with_barriers,
    strip_barriers,
)
from repro.transpiler.scheduling import hardware_schedule

DUR = GateDurations(single_qubit=50.0, cx={}, measurement=1000.0, default_cx=200.0)


def pair_circuit():
    circ = QuantumCircuit(4, 2)
    circ.cx(0, 1)   # 0
    circ.cx(2, 3)   # 1
    circ.measure(1, 0)  # 2
    circ.measure(3, 1)  # 3
    return circ


class TestReorder:
    def test_identity_order_no_pairs(self):
        circ = pair_circuit()
        out, positions = reorder_with_barriers(circ, [0, 1, 2, 3], [])
        assert strip_barriers(out) == circ
        assert positions == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_invalid_order_rejected(self):
        circ = pair_circuit()
        with pytest.raises(ValueError):
            reorder_and_barrier(circ, [0, 1, 2], [])
        with pytest.raises(ValueError):
            reorder_and_barrier(circ, [0, 0, 2, 3], [])

    def test_serialized_pair_gets_barrier(self):
        circ = pair_circuit()
        out, positions = reorder_with_barriers(circ, [0, 1, 2, 3], [(0, 1)])
        barriers = [i for i in out if i.is_barrier]
        assert len(barriers) == 1
        assert barriers[0].qubits == (0, 1, 2, 3)
        # hardware schedule must now serialize the two CNOTs
        sched = hardware_schedule(out, DUR)
        a = sched[positions[0]]
        b = sched[positions[1]]
        assert not a.overlaps(b)

    def test_barrier_respects_order_argument(self):
        circ = pair_circuit()
        # emit cx(2,3) first: barrier must land before cx(0,1)
        out, positions = reorder_with_barriers(circ, [1, 0, 2, 3], [(0, 1)])
        sched = hardware_schedule(out, DUR)
        assert sched[positions[1]].end <= sched[positions[0]].start + 1e-9

    def test_positions_map_accounts_for_barriers(self):
        circ = pair_circuit()
        out, positions = reorder_with_barriers(circ, [0, 1, 2, 3], [(0, 1)])
        for original, new in positions.items():
            assert out[new].name == circ[original].name
            assert out[new].qubits == circ[original].qubits

    def test_multiple_pairs_one_barrier_each(self):
        circ = QuantumCircuit(6, 0)
        circ.cx(0, 1)
        circ.cx(2, 3)
        circ.cx(4, 5)
        out, _ = reorder_with_barriers(circ, [0, 1, 2], [(0, 1), (1, 2)])
        assert sum(1 for i in out if i.is_barrier) == 2


class TestStripBarriers:
    def test_removes_all_barriers(self):
        circ = QuantumCircuit(2).h(0).barrier().x(1).barrier(0)
        stripped = strip_barriers(circ)
        assert [i.name for i in stripped] == ["h", "x"]

    def test_no_barriers_is_copy(self):
        circ = QuantumCircuit(2).h(0)
        stripped = strip_barriers(circ)
        assert stripped == circ
        assert stripped is not circ
