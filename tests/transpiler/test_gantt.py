"""Tests for the ASCII Gantt rendering of schedules."""

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.device.calibration import GateDurations
from repro.transpiler.scheduling import hardware_schedule

DUR = GateDurations(single_qubit=50.0, cx={}, measurement=1000.0, default_cx=200.0)


def build_schedule():
    circ = QuantumCircuit(4, 2)
    circ.h(0)
    circ.cx(0, 1)
    circ.cx(2, 3)
    circ.measure(1, 0)
    circ.measure(3, 1)
    return hardware_schedule(circ, DUR)


class TestGantt:
    def test_one_row_per_active_qubit(self):
        chart = build_schedule().gantt()
        lines = chart.splitlines()
        assert len(lines) == 5  # header + q0..q3
        assert lines[1].startswith("q0")
        assert lines[4].startswith("q3")

    def test_marks_present(self):
        chart = build_schedule().gantt()
        assert "#" in chart   # cx spans
        assert "=" in chart   # the h gate
        assert "M" in chart   # measurements

    def test_qubit_subset(self):
        chart = build_schedule().gantt(qubits=[1, 3])
        lines = chart.splitlines()
        assert len(lines) == 3
        assert lines[1].startswith("q1")

    def test_header_shows_makespan(self):
        sched = build_schedule()
        chart = sched.gantt()
        assert f"{sched.makespan():.0f} ns" in chart.splitlines()[0]

    def test_idle_time_dotted(self):
        # qubit 0 finishes early, then idles until... actually it has no
        # measurement; use qubit 2 whose cx is right-aligned: the chart
        # should show dots only inside lifetimes, spaces outside.
        chart = build_schedule().gantt(width=40)
        q2_row = [l for l in chart.splitlines() if l.startswith("q2")][0]
        body = q2_row[5:]
        assert body.strip()  # something drawn
        # right-aligned: leading whitespace before the lifetime starts
        assert body[0] == " "

    def test_custom_width(self):
        chart = build_schedule().gantt(width=30)
        for line in chart.splitlines()[1:]:
            assert len(line) <= 30 + 5
