"""Tests for SWAP routing: plans, Bell-state preparation, general routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.circuit import QuantumCircuit
from repro.device.topology import grid_coupling_map, line_coupling_map
from repro.sim.statevector import simulate_statevector
from repro.transpiler.decompose import decompose_to_basis
from repro.transpiler.routing import (
    meet_in_middle_plan,
    route_circuit,
    swap_path_circuit,
)


class TestMeetInMiddlePlan:
    def test_adjacent_qubits_need_no_swaps(self):
        line = line_coupling_map(4)
        plan = meet_in_middle_plan(line, 1, 2)
        assert plan.left_swaps == ()
        assert plan.right_swaps == ()
        assert plan.cnot == (1, 2)

    def test_distance_two(self):
        line = line_coupling_map(4)
        plan = meet_in_middle_plan(line, 0, 2)
        assert plan.left_swaps == ()
        assert plan.right_swaps == ((2, 1),)
        assert plan.cnot == (0, 1)

    def test_paper_example_0_13(self, poughkeepsie):
        # The paper's Figure 6 route, pinned explicitly (the device has a
        # second shortest path through (7,12)).
        plan = meet_in_middle_plan(
            poughkeepsie.coupling, 0, 13, path=(0, 5, 10, 11, 12, 13)
        )
        assert plan.left_swaps == ((0, 5), (5, 10))
        assert plan.right_swaps == ((13, 12), (12, 11))
        assert plan.cnot == (10, 11)

    def test_explicit_path_validated(self, poughkeepsie):
        with pytest.raises(ValueError, match="source to dest"):
            meet_in_middle_plan(poughkeepsie.coupling, 0, 13, path=(0, 5, 10))
        with pytest.raises(ValueError, match="coupling edge"):
            meet_in_middle_plan(poughkeepsie.coupling, 0, 13,
                                path=(0, 5, 12, 13))

    def test_default_path_is_deterministic(self, poughkeepsie):
        p1 = meet_in_middle_plan(poughkeepsie.coupling, 0, 13)
        p2 = meet_in_middle_plan(poughkeepsie.coupling, 0, 13)
        assert p1.path == p2.path
        assert len(p1.path) == 6

    def test_same_qubit_rejected(self):
        line = line_coupling_map(4)
        with pytest.raises(ValueError):
            meet_in_middle_plan(line, 2, 2)

    def test_swap_counts_balanced(self):
        line = line_coupling_map(10)
        plan = meet_in_middle_plan(line, 0, 9)
        assert abs(len(plan.left_swaps) - len(plan.right_swaps)) <= 1
        assert len(plan.left_swaps) + len(plan.right_swaps) == 8


class TestSwapPathCircuit:
    @pytest.mark.parametrize("dist", [1, 2, 3, 4, 5])
    def test_prepares_bell_state_on_meeting_pair(self, dist):
        line = line_coupling_map(6)
        circ = swap_path_circuit(line, 0, dist)
        plan = meet_in_middle_plan(line, 0, dist)
        state = simulate_statevector(decompose_to_basis(circ))
        qa, qb = plan.cnot
        probs = state.probabilities([qa, qb])
        assert probs[0] == pytest.approx(0.5, abs=1e-9)
        assert probs[3] == pytest.approx(0.5, abs=1e-9)

    def test_swap_count_matches_distance(self):
        line = line_coupling_map(8)
        circ = swap_path_circuit(line, 0, 7)
        assert circ.count_ops()["swap"] == 6
        assert circ.count_ops()["cx"] == 1


class TestRouteCircuit:
    def test_adjacent_gates_untouched(self):
        line = line_coupling_map(3)
        circ = QuantumCircuit(3).cx(0, 1).cx(1, 2)
        routed, layout = route_circuit(circ, line)
        assert routed.count_ops().get("swap", 0) == 0
        assert layout == [0, 1, 2]

    def test_distant_gate_gets_swaps(self):
        line = line_coupling_map(4)
        circ = QuantumCircuit(4).cx(0, 3)
        routed, layout = route_circuit(circ, line)
        assert routed.count_ops()["swap"] == 2
        # every 2q gate lands on an edge
        for instr in routed:
            if instr.is_two_qubit:
                assert line.has_edge(*instr.qubits)

    def test_layout_tracks_permutation(self):
        line = line_coupling_map(4)
        circ = QuantumCircuit(4).cx(0, 3)
        routed, layout = route_circuit(circ, line)
        assert sorted(layout) == [0, 1, 2, 3]

    def test_initial_layout_length_checked(self):
        line = line_coupling_map(3)
        with pytest.raises(ValueError):
            route_circuit(QuantumCircuit(2).cx(0, 1), line, initial_layout=[0])

    def test_semantics_preserved_on_line(self):
        """Routed circuit acts like the original up to the final layout."""
        line = line_coupling_map(4)
        logical = QuantumCircuit(4).h(0).cx(0, 3).cx(1, 2)
        routed, layout = route_circuit(logical, line)
        state_logical = simulate_statevector(logical)
        state_routed = simulate_statevector(decompose_to_basis(routed))
        # compare probability of logical qubit q being 1 with the physical
        # qubit layout[q]
        for q in range(4):
            assert state_logical.probability_of_one(q) == pytest.approx(
                state_routed.probability_of_one(layout[q]), abs=1e-9
            )

    def test_barrier_and_measure_remapped(self):
        line = line_coupling_map(3)
        circ = QuantumCircuit(3, 1).h(0).barrier(0, 1).measure(0, 0)
        routed, _ = route_circuit(circ, line, initial_layout=[2, 1, 0])
        assert routed[0].qubits == (2,)
        assert routed[1].qubits == (2, 1)
        assert routed[2].qubits == (2,)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_routing_random_circuits_on_grid(seed):
    rng = np.random.default_rng(seed)
    grid = grid_coupling_map(2, 3)
    circ = QuantumCircuit(6)
    for _ in range(12):
        a, b = rng.choice(6, 2, replace=False)
        circ.cx(int(a), int(b))
    routed, layout = route_circuit(circ, grid)
    assert sorted(layout) == list(range(6))
    for instr in routed:
        if instr.is_two_qubit and instr.name == "cx":
            assert grid.has_edge(*instr.qubits)
