"""Tests for noise-aware region selection."""

import pytest

from repro.device.topology import line_coupling_map
from repro.experiments.common import ground_truth_report
from repro.transpiler.layout import (
    best_path_region,
    enumerate_path_regions,
    rank_path_regions,
    score_region,
)


class TestEnumeration:
    def test_line_paths(self):
        line = line_coupling_map(5)
        regions = enumerate_path_regions(line, 3)
        assert regions == [(0, 1, 2), (1, 2, 3), (2, 3, 4)]

    def test_poughkeepsie_4q_regions(self, poughkeepsie):
        regions = enumerate_path_regions(poughkeepsie.coupling, 4)
        assert (5, 10, 11, 12) in regions
        for region in regions:
            for a, b in zip(region, region[1:]):
                assert poughkeepsie.coupling.has_edge(a, b)
            assert region[0] < region[-1]

    def test_too_long_raises_in_best(self):
        line = line_coupling_map(3)
        with pytest.raises(ValueError):
            best_path_region(line, None, 5)  # no path; calibration unused


class TestScoring:
    def test_components_nonnegative(self, poughkeepsie, pk_report):
        score = score_region((5, 10, 11, 12), poughkeepsie.coupling,
                             poughkeepsie.calibration(), pk_report)
        assert score.gate_error > 0
        assert score.crosstalk_penalty > 0  # (5,10)|(11,12) is planted
        assert score.coherence_penalty > 0
        assert score.readout_error > 0
        assert score.total == pytest.approx(
            score.gate_error + score.crosstalk_penalty
            + score.coherence_penalty + score.readout_error
        )

    def test_clean_region_has_no_crosstalk_penalty(self, poughkeepsie,
                                                   pk_report):
        score = score_region((0, 1, 2, 3), poughkeepsie.coupling,
                             poughkeepsie.calibration(), pk_report)
        # background-level conditionals only; penalty near zero
        assert score.crosstalk_penalty < 0.02

    def test_without_report_no_crosstalk_term(self, poughkeepsie):
        score = score_region((5, 10, 11, 12), poughkeepsie.coupling,
                             poughkeepsie.calibration(), report=None)
        assert score.crosstalk_penalty == 0.0


class TestSelection:
    def test_best_region_avoids_crosstalk_and_slow_qubits(self, poughkeepsie,
                                                          pk_report):
        best = best_path_region(poughkeepsie.coupling,
                                poughkeepsie.calibration(), 4, pk_report)
        assert 10 not in best.region  # the <6 us qubit
        # the crosstalk-prone middle regions lose to cleaner rows
        assert best.region != (5, 10, 11, 12)

    def test_ranking_sorted(self, poughkeepsie, pk_report):
        ranked = rank_path_regions(poughkeepsie.coupling,
                                   poughkeepsie.calibration(), 4, pk_report,
                                   top=5)
        totals = [s.total for s in ranked]
        assert totals == sorted(totals)
        assert len(ranked) == 5

    def test_crosstalk_report_changes_choice(self, poughkeepsie, pk_report):
        """With the report, crosstalk-prone regions rank strictly worse."""
        cal = poughkeepsie.calibration()
        with_report = score_region((5, 10, 11, 12), poughkeepsie.coupling,
                                   cal, pk_report)
        without = score_region((5, 10, 11, 12), poughkeepsie.coupling, cal,
                               None)
        assert with_report.total > without.total