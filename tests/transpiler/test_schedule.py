"""Tests for the timed-schedule data structure."""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import CircuitDag
from repro.device.calibration import GateDurations
from repro.transpiler.schedule import Schedule, TimedInstruction

DUR = GateDurations(single_qubit=50.0, cx={}, measurement=1000.0, default_cx=200.0)


def timed(name, qubits, start, duration, index=0, clbit=None):
    from repro.circuit.gates import Instruction

    return TimedInstruction(index, Instruction(name, qubits, clbit=clbit),
                            start, duration)


class TestTimedInstruction:
    def test_end(self):
        t = timed("h", (0,), 10.0, 50.0)
        assert t.end == 60.0

    def test_overlap_detection(self):
        a = timed("cx", (0, 1), 0.0, 200.0)
        b = timed("cx", (2, 3), 100.0, 200.0, index=1)
        c = timed("cx", (2, 3), 200.0, 200.0, index=2)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)  # touching boundaries do not overlap

    def test_format(self):
        assert "cx q0, q1" in timed("cx", (0, 1), 0.0, 200.0).format()


class TestSchedule:
    def build(self):
        circ = QuantumCircuit(4, 2)
        circ.h(0)              # 0: 50ns
        circ.cx(0, 1)          # 1: 200ns
        circ.cx(2, 3)          # 2: 200ns
        circ.measure(1, 0)     # 3
        circ.measure(3, 1)     # 4
        starts = [0.0, 50.0, 0.0, 250.0, 250.0]
        return circ, Schedule(circ, DUR, starts)

    def test_length_checked(self):
        circ = QuantumCircuit(2).h(0)
        with pytest.raises(ValueError):
            Schedule(circ, DUR, [0.0, 1.0])

    def test_negative_start_rejected(self):
        circ = QuantumCircuit(2).h(0)
        with pytest.raises(ValueError):
            Schedule(circ, DUR, [-5.0])

    def test_makespan(self):
        _, sched = self.build()
        assert sched.makespan() == 1250.0

    def test_qubit_timeline_sorted(self):
        _, sched = self.build()
        names = [t.instruction.name for t in sched.qubit_timeline(1)]
        assert names == ["cx", "measure"]

    def test_qubit_lifetime(self):
        _, sched = self.build()
        # qubit 0: h at 0 to cx end at 250
        assert sched.qubit_lifetime(0) == 250.0
        # qubit 3: cx 0-200, measure 250-1250
        assert sched.qubit_lifetime(3) == 1250.0
        assert sched.qubit_lifetime(2) == 200.0

    def test_lifetime_empty_qubit(self):
        circ = QuantumCircuit(3).h(0)
        sched = Schedule(circ, DUR, [0.0])
        assert sched.qubit_lifetime(2) == 0.0

    def test_idle_windows(self):
        _, sched = self.build()
        assert sched.idle_windows(3) == ((200.0, 250.0),)
        assert sched.idle_windows(0) == ()

    def test_overlapping_two_qubit_pairs(self):
        _, sched = self.build()
        assert sched.overlapping_two_qubit_pairs() == ((1, 2),)

    def test_simultaneous_partners(self):
        _, sched = self.build()
        partners = sched.simultaneous_partners(1)
        assert [p.index for p in partners] == [2]
        with pytest.raises(ValueError):
            sched.simultaneous_partners(0)  # h is not a 2q gate

    def test_validate_dependencies(self):
        circ, sched = self.build()
        dag = CircuitDag(circ)
        assert sched.validate_dependencies(dag)
        bad = Schedule(circ, DUR, [0.0, 0.0, 0.0, 250.0, 250.0])
        assert not bad.validate_dependencies(dag)

    def test_shifted(self):
        _, sched = self.build()
        moved = sched.shifted(100.0)
        assert moved.makespan() == sched.makespan() + 100.0

    def test_format_lists_qubits(self):
        _, sched = self.build()
        text = sched.format()
        assert "makespan" in text
        assert "q0" in text

    def test_barriers_excluded_from_timeline(self):
        circ = QuantumCircuit(2).h(0).barrier().h(0)
        sched = Schedule(circ, DUR, [0.0, 50.0, 50.0])
        assert len(sched.qubit_timeline(0)) == 2
