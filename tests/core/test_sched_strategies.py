"""Scheduling strategies: windowed/portfolio parity, determinism, scale.

The acceptance bar for the device-scale refactor:

* on models small enough for exact B&B, windowed and portfolio schedules
  land within 5% of the exact objective (here they match it exactly);
* every strategy is worker-count invariant (``REPRO_WORKERS=1,2,4``) and
  repeat-run stable;
* a supremacy-style circuit on a heavy-hex stress preset schedules to
  completion under a real ``max_solve_seconds`` budget via
  ``strategy="auto"`` with interrupt/fallback reasons recorded — no
  crash, no silent ParSched downgrade.
"""

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.scheduling.xtalk import (
    STRATEGIES,
    XtalkScheduler,
)
from repro.device.presets import ibm_hummingbird_65q
from repro.experiments.common import ground_truth_report
from repro.obs.events import event_sink
from repro.workloads.supremacy import supremacy_circuit


def busy_circuit():
    """Several concurrent CNOT layers so the solver has real decisions."""
    circ = QuantumCircuit(20, 4)
    circ.cx(5, 10)
    circ.cx(11, 12)
    circ.cx(0, 1)
    circ.cx(16, 17)
    circ.cx(3, 4)
    circ.cx(13, 14)
    for i, q in enumerate((10, 11, 0, 16)):
        circ.measure(q, i)
    return circ


def schedule_with(poughkeepsie, pk_report, **kwargs):
    scheduler = XtalkScheduler(
        poughkeepsie.calibration(), pk_report, omega=0.5, **kwargs)
    return scheduler.schedule(busy_circuit())


class TestStrategyKnob:
    def test_unknown_strategy_rejected(self, poughkeepsie, pk_report):
        with pytest.raises(ValueError, match="strategy"):
            XtalkScheduler(
                poughkeepsie.calibration(), pk_report, strategy="psychic")

    def test_auto_stays_monolithic_within_limit(self, poughkeepsie, pk_report):
        result = schedule_with(poughkeepsie, pk_report, strategy="auto")
        assert result.strategy == "monolithic"
        assert result.solution.exact

    def test_auto_switches_to_windowed_above_limit(
            self, poughkeepsie, pk_report):
        result = schedule_with(
            poughkeepsie, pk_report, strategy="auto", exact_decision_limit=1)
        assert result.strategy == "windowed"

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_all_strategies_produce_valid_schedules(
            self, poughkeepsie, pk_report, strategy):
        result = schedule_with(poughkeepsie, pk_report, strategy=strategy)
        assert result.circuit is not None
        assert len(result.option_labels) == len(result.candidate_pairs)
        assert result.fallback_reason is None

    def test_audit_event_carries_strategy(self, poughkeepsie, pk_report):
        with event_sink() as sink:
            schedule_with(poughkeepsie, pk_report, strategy="windowed")
        events = sink.of("schedule.audit")
        assert events[-1]["strategy"] == "windowed"

    def test_scorecard_grades_windowed_like_monolithic(
            self, poughkeepsie, pk_report):
        mono = schedule_with(poughkeepsie, pk_report, strategy="monolithic")
        win = schedule_with(poughkeepsie, pk_report, strategy="windowed")
        card_m = mono.audit_scorecard().metrics
        card_w = win.audit_scorecard().metrics
        for key in ("serializations_taken", "serializations_warranted",
                    "serialization_rate", "fallbacks"):
            assert card_m[key] == card_w[key]
        assert win.audit_scorecard().details["strategy"] == "windowed"
        assert card_w["strategy_code"] == 1.0


class TestObjectiveParity:
    """Windowed/portfolio within 5% of exact on small models (abs-scaled:
    the log-error objective is negative)."""

    def test_windowed_and_portfolio_match_exact(
            self, poughkeepsie, pk_report):
        exact = schedule_with(poughkeepsie, pk_report, strategy="monolithic")
        assert exact.solution.exact
        reference = exact.solution.objective
        for strategy in ("windowed", "portfolio"):
            result = schedule_with(poughkeepsie, pk_report, strategy=strategy)
            assert abs(result.solution.objective - reference) <= \
                0.05 * abs(reference)

    def test_tiny_windows_still_within_5pct(self, poughkeepsie, pk_report):
        exact = schedule_with(poughkeepsie, pk_report, strategy="monolithic")
        result = schedule_with(
            poughkeepsie, pk_report, strategy="windowed",
            exact_decision_limit=1)
        assert abs(result.solution.objective - exact.solution.objective) <= \
            0.05 * abs(exact.solution.objective)


class TestDeterminism:
    @pytest.mark.parametrize("strategy", ["windowed", "portfolio"])
    def test_repeated_runs_bitwise_identical(
            self, poughkeepsie, pk_report, strategy):
        a = schedule_with(poughkeepsie, pk_report, strategy=strategy)
        b = schedule_with(poughkeepsie, pk_report, strategy=strategy)
        assert a.solution.assignment == b.solution.assignment
        assert a.solution.objective == b.solution.objective
        assert a.option_labels == b.option_labels
        assert a.solution.times == b.solution.times

    @pytest.mark.parametrize("workers", ["1", "2", "4"])
    def test_schedules_worker_count_invariant(
            self, poughkeepsie, pk_report, workers, monkeypatch):
        """REPRO_WORKERS must not change any strategy's schedule."""
        monkeypatch.setenv("REPRO_WORKERS", workers)
        results = {}
        for strategy in ("windowed", "portfolio"):
            result = schedule_with(poughkeepsie, pk_report, strategy=strategy)
            results[strategy] = (
                result.solution.assignment,
                result.solution.objective,
                result.option_labels,
            )
        monkeypatch.delenv("REPRO_WORKERS")
        baseline = {}
        for strategy in ("windowed", "portfolio"):
            result = schedule_with(poughkeepsie, pk_report, strategy=strategy)
            baseline[strategy] = (
                result.solution.assignment,
                result.solution.objective,
                result.option_labels,
            )
        assert results == baseline


class TestWarmStart:
    def test_previous_schedule_seeds_next_epoch(self, poughkeepsie, pk_report):
        first = schedule_with(poughkeepsie, pk_report, strategy="monolithic")
        hint = first.warm_start_hint()
        assert hint  # busy_circuit has real decisions
        assert all(name.startswith("pair_") for name in hint)
        warm = schedule_with(
            poughkeepsie, pk_report, strategy="portfolio", warm_start=first)
        assert warm.solution.objective == pytest.approx(
            first.solution.objective)

    def test_mapping_accepted_directly(self, poughkeepsie, pk_report):
        first = schedule_with(poughkeepsie, pk_report, strategy="monolithic")
        warm = schedule_with(
            poughkeepsie, pk_report, strategy="portfolio",
            warm_start=dict(first.warm_start_hint()))
        assert warm.fallback_reason is None


@pytest.fixture(scope="module")
def hummingbird():
    return ibm_hummingbird_65q()


@pytest.fixture(scope="module")
def hummingbird_report(hummingbird):
    return ground_truth_report(hummingbird)


class TestDeviceScale:
    """Heavy-hex stress: completion under budget, reasons recorded."""

    def test_65q_supremacy_auto_under_budget(
            self, hummingbird, hummingbird_report):
        circuit = supremacy_circuit(
            hummingbird.coupling, qubits=range(65), num_gates=150, seed=3)
        scheduler = XtalkScheduler(
            hummingbird.calibration(), hummingbird_report, omega=0.5,
            max_solve_seconds=10.0, strategy="auto")
        result = scheduler.schedule(circuit)
        # Completion, not a crash; auto resolved to a real strategy.
        assert result.strategy in ("monolithic", "windowed")
        assert len(result.option_labels) == len(result.candidate_pairs)
        # Any degradation is recorded, never silent: an interrupted solve
        # must carry the budget fallback reason (and still be realized).
        if result.solution.interrupt == "deadline":
            assert result.fallback_reason == "solve_budget:incumbent"
        else:
            assert result.fallback_reason is None

    def test_65q_zero_budget_degrades_with_reason(
            self, hummingbird, hummingbird_report):
        circuit = supremacy_circuit(
            hummingbird.coupling, qubits=range(65), num_gates=120, seed=5)
        scheduler = XtalkScheduler(
            hummingbird.calibration(), hummingbird_report, omega=0.5,
            max_solve_seconds=0.0, strategy="auto")
        result = scheduler.schedule(circuit)
        assert result.fallback_reason == "solve_budget:incumbent"
        assert result.solution.interrupt == "deadline"
        assert len(result.solution.assignment) == len(result.candidate_pairs)
