"""Tests for characterization campaign planning and execution."""

import pytest

from repro.core.characterization.campaign import (
    CharacterizationCampaign,
    CharacterizationPolicy,
)
from repro.core.characterization.cost import PAPER_COST_MODEL
from repro.experiments.common import ground_truth_report
from repro.rb.executor import RBConfig


@pytest.fixture()
def campaign(poughkeepsie, fast_rb_config):
    return CharacterizationCampaign(poughkeepsie, rb_config=fast_rb_config, seed=2)


class TestPlanning:
    def test_all_pairs_counts(self, campaign):
        plan = campaign.plan(CharacterizationPolicy.ALL_PAIRS)
        # 221 pairs + 23 independent experiments on Poughkeepsie
        assert len(plan.pair_experiments) == 221
        assert len(plan.independent_experiments) == 23
        assert plan.num_experiments == 244

    def test_one_hop_reduction(self, campaign):
        all_pairs = campaign.plan(CharacterizationPolicy.ALL_PAIRS)
        one_hop = campaign.plan(CharacterizationPolicy.ONE_HOP)
        # Optimization 1: ~5x fewer pair experiments
        assert len(one_hop.pair_experiments) * 4 < len(all_pairs.pair_experiments)

    def test_packing_reduction(self, campaign):
        one_hop = campaign.plan(CharacterizationPolicy.ONE_HOP)
        packed = campaign.plan(CharacterizationPolicy.ONE_HOP_PACKED)
        assert packed.num_experiments < one_hop.num_experiments / 1.7
        # same units measured
        assert packed.units_measured() == one_hop.units_measured()

    def test_high_only_needs_prior(self, campaign):
        with pytest.raises(ValueError, match="prior"):
            campaign.plan(CharacterizationPolicy.HIGH_ONLY)

    def test_high_only_counts(self, campaign, poughkeepsie, pk_report):
        plan = campaign.plan(CharacterizationPolicy.HIGH_ONLY, prior=pk_report)
        assert plan.units_measured() == len(pk_report.high_pairs())
        packed = campaign.plan(CharacterizationPolicy.ONE_HOP_PACKED)
        assert plan.num_experiments < packed.num_experiments

    def test_policy_ordering_matches_figure10(self, campaign, pk_report):
        counts = []
        for policy in (
            CharacterizationPolicy.ALL_PAIRS,
            CharacterizationPolicy.ONE_HOP,
            CharacterizationPolicy.ONE_HOP_PACKED,
            CharacterizationPolicy.HIGH_ONLY,
        ):
            prior = pk_report if policy is CharacterizationPolicy.HIGH_ONLY else None
            counts.append(campaign.plan(policy, prior=prior).num_experiments)
        assert counts == sorted(counts, reverse=True)

    def test_total_reduction_in_paper_band(self, campaign, pk_report):
        baseline = campaign.plan(CharacterizationPolicy.ALL_PAIRS).num_experiments
        final = campaign.plan(
            CharacterizationPolicy.HIGH_ONLY, prior=pk_report
        ).num_experiments
        assert 20 <= baseline / final <= 80  # paper: 35-73x across devices


class TestCostModel:
    def test_paper_baseline_hours(self, campaign):
        plan = campaign.plan(CharacterizationPolicy.ALL_PAIRS)
        hours = PAPER_COST_MODEL.hours(plan.num_experiments)
        assert hours > 8.0  # "over 8 hours"

    def test_final_policy_under_30_minutes(self, campaign, pk_report):
        plan = campaign.plan(CharacterizationPolicy.HIGH_ONLY, prior=pk_report)
        assert PAPER_COST_MODEL.minutes(plan.num_experiments) < 30.0

    def test_executions_match_paper_scale(self, campaign):
        plan = campaign.plan(CharacterizationPolicy.ALL_PAIRS)
        executions = PAPER_COST_MODEL.executions(plan.num_experiments)
        assert 15_000_000 < executions < 30_000_000  # paper: 22.6M


class TestExecution:
    def test_high_only_run_merges_prior(self, poughkeepsie, fast_rb_config,
                                        pk_report):
        campaign = CharacterizationCampaign(
            poughkeepsie, rb_config=fast_rb_config, seed=2
        )
        outcome = campaign.run(
            CharacterizationPolicy.HIGH_ONLY, day=1, prior=pk_report
        )
        report = outcome.report
        # all prior measurements still present
        assert len(report.conditional) >= len(pk_report.conditional)
        # refreshed pairs measured on day 1
        assert report.day == 1

    def test_one_hop_packed_run_finds_planted_pairs(self, poughkeepsie):
        config = RBConfig(lengths=(2, 4, 8, 16, 28, 40), num_sequences=10,
                          samples_per_sequence=24)
        campaign = CharacterizationCampaign(poughkeepsie, rb_config=config, seed=3)
        outcome = campaign.run(CharacterizationPolicy.ONE_HOP_PACKED)
        detected = set(outcome.report.high_pairs())
        planted = set(poughkeepsie.true_high_pairs())
        # every planted pair detected (false positives tolerated: the
        # paper's 3x cut has the same property under measurement noise)
        assert planted <= detected
