"""Tests for characterization drift monitoring."""

import pytest

from repro.core.characterization.drift import diff_reports, format_diff
from repro.core.characterization.report import CrosstalkReport


def make_report(pairs, day=0):
    """pairs: {((a), (b)): (cond_ab, cond_ba, indep_a, indep_b)}"""
    report = CrosstalkReport(day=day)
    for (a, b), (cab, cba, ia, ib) in pairs.items():
        report.record_independent(a, ia)
        report.record_independent(b, ib)
        report.record_conditional(a, b, cab)
        report.record_conditional(b, a, cba)
    return report


HIGH = ((0, 1), (2, 3))
OTHER = ((4, 5), (6, 7))


class TestDiff:
    def test_stable_set(self):
        old = make_report({HIGH: (0.08, 0.06, 0.01, 0.01)})
        new = make_report({HIGH: (0.10, 0.05, 0.01, 0.01)}, day=1)
        diff = diff_reports(old, new)
        assert diff.set_stable
        assert diff.stable == (frozenset(HIGH),)
        assert not diff.needs_full_recharacterization()
        assert diff.max_drift == pytest.approx(0.10 / 0.08)

    def test_appeared_pair(self):
        old = make_report({HIGH: (0.08, 0.06, 0.01, 0.01),
                           OTHER: (0.012, 0.011, 0.01, 0.01)})
        new = make_report({HIGH: (0.08, 0.06, 0.01, 0.01),
                           OTHER: (0.09, 0.011, 0.01, 0.01)}, day=1)
        diff = diff_reports(old, new)
        assert diff.appeared == (frozenset(OTHER),)
        assert not diff.set_stable
        assert diff.needs_full_recharacterization()

    def test_vanished_pair(self):
        old = make_report({HIGH: (0.08, 0.06, 0.01, 0.01)})
        new = make_report({HIGH: (0.015, 0.012, 0.01, 0.01)}, day=1)
        diff = diff_reports(old, new)
        assert diff.vanished == (frozenset(HIGH),)
        assert diff.needs_full_recharacterization()

    def test_large_drift_triggers_recharacterization(self):
        old = make_report({HIGH: (0.04, 0.04, 0.01, 0.01)})
        new = make_report({HIGH: (0.30, 0.04, 0.01, 0.01)}, day=1)
        diff = diff_reports(old, new)
        assert diff.set_stable
        assert diff.max_drift == pytest.approx(7.5)
        assert diff.needs_full_recharacterization()
        assert not diff.needs_full_recharacterization(drift_threshold=10.0)

    def test_downward_drift_counts(self):
        old = make_report({HIGH: (0.30, 0.30, 0.01, 0.01)})
        new = make_report({HIGH: (0.06, 0.30, 0.01, 0.01)}, day=1)
        diff = diff_reports(old, new)
        assert diff.max_drift == pytest.approx(5.0)

    def test_empty_reports(self):
        diff = diff_reports(CrosstalkReport(), CrosstalkReport(day=1))
        assert diff.set_stable
        assert diff.max_drift == 1.0
        assert not diff.needs_full_recharacterization()

    def test_format(self):
        old = make_report({HIGH: (0.08, 0.06, 0.01, 0.01)})
        new = make_report({OTHER: (0.09, 0.08, 0.01, 0.01)}, day=1)
        text = format_diff(diff_reports(old, new))
        assert "NEW" in text
        assert "GONE" in text
        assert "recommended: True" in text


class TestAgainstDeviceDrift:
    def test_daily_ground_truth_is_stable(self, poughkeepsie):
        """The planted drift keeps the high-pair set stable day over day —
        the property that makes Optimization 3 safe on this device."""
        from repro.experiments.common import ground_truth_report

        day0 = ground_truth_report(poughkeepsie, day=0)
        day3 = ground_truth_report(poughkeepsie, day=3)
        diff = diff_reports(day0, day3)
        assert diff.set_stable
        assert diff.max_drift < 3.5
