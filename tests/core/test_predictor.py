"""Tests for the success predictor and omega auto-tuning."""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.scheduling.baselines import par_sched, serial_sched
from repro.core.scheduling.predictor import (
    OmegaChoice,
    predict_success,
    tune_omega,
)
from repro.device.backend import NoisyBackend
from repro.experiments.common import (
    ExperimentConfig,
    ground_truth_report,
    prepare_circuit,
    swap_error_rate,
)
from repro.transpiler.scheduling import hardware_schedule
from repro.workloads.swap import swap_benchmark


def pair_circuit():
    circ = QuantumCircuit(20, 2)
    circ.cx(5, 10)
    circ.cx(11, 12)
    circ.measure(10, 0)
    circ.measure(11, 1)
    return circ


class TestPredictSuccess:
    def test_breakdown_multiplies(self, poughkeepsie, pk_report):
        cal = poughkeepsie.calibration()
        hw = hardware_schedule(pair_circuit(), cal.durations)
        pred = predict_success(hw, cal, pk_report)
        assert pred.total == pytest.approx(
            pred.gate_success * pred.decoherence_success * pred.readout_success
        )
        assert 0.0 < pred.total < 1.0

    def test_overlapping_high_pair_predicted_worse(self, poughkeepsie,
                                                   pk_report):
        cal = poughkeepsie.calibration()
        parallel = hardware_schedule(pair_circuit(), cal.durations)
        serial = hardware_schedule(serial_sched(pair_circuit()), cal.durations)
        p_par = predict_success(parallel, cal, pk_report)
        p_ser = predict_success(serial, cal, pk_report)
        assert p_ser.gate_success > p_par.gate_success

    def test_readout_toggle(self, poughkeepsie, pk_report):
        cal = poughkeepsie.calibration()
        hw = hardware_schedule(pair_circuit(), cal.durations)
        with_ro = predict_success(hw, cal, pk_report, include_readout=True)
        without = predict_success(hw, cal, pk_report, include_readout=False)
        assert without.readout_success == 1.0
        assert with_ro.readout_success < 1.0

    def test_prediction_tracks_measurement(self, poughkeepsie, pk_report):
        """Predicted ordering of schedules must match measured ordering."""
        cal = poughkeepsie.calibration()
        backend = NoisyBackend(poughkeepsie)
        bench = swap_benchmark(poughkeepsie.coupling, 0, 13,
                               path=(0, 5, 10, 11, 12, 13))
        config = ExperimentConfig(trajectories=200, seed=3)
        measured = {}
        predicted = {}
        for scheduler in ("ParSched", "XtalkSched"):
            prepared = prepare_circuit(scheduler, bench.circuit, poughkeepsie,
                                       pk_report)
            hw = backend.schedule_of(prepared)
            predicted[scheduler] = predict_success(hw, cal, pk_report).total
            measured[scheduler], _ = swap_error_rate(
                backend, bench, scheduler, pk_report, config
            )
        # higher predicted success <=> lower measured error
        assert (predicted["XtalkSched"] > predicted["ParSched"]) == \
            (measured["XtalkSched"] < measured["ParSched"])


class TestExplainSchedule:
    def test_lists_crosstalk_culprit(self, poughkeepsie, pk_report):
        from repro.core.scheduling.predictor import explain_schedule

        cal = poughkeepsie.calibration()
        hw = hardware_schedule(pair_circuit(), cal.durations)
        text = explain_schedule(hw, cal, pk_report)
        assert "crosstalk with cx(11, 12)" in text or \
            "crosstalk with cx(5, 10)" in text
        assert "predicted success" in text

    def test_serial_schedule_has_no_culprits(self, poughkeepsie, pk_report):
        from repro.core.scheduling.predictor import explain_schedule

        cal = poughkeepsie.calibration()
        hw = hardware_schedule(serial_sched(pair_circuit()), cal.durations)
        text = explain_schedule(hw, cal, pk_report)
        assert "crosstalk with" not in text

    def test_top_limits_output(self, poughkeepsie, pk_report):
        from repro.core.scheduling.predictor import explain_schedule

        cal = poughkeepsie.calibration()
        hw = hardware_schedule(pair_circuit(), cal.durations)
        text = explain_schedule(hw, cal, pk_report, top=1)
        body = [l for l in text.splitlines() if l.startswith("  ")]
        assert len(body) <= 2  # one entry + possible "... and N smaller"


class TestTuneOmega:
    def test_returns_best_of_sweep(self, poughkeepsie, pk_report):
        cal = poughkeepsie.calibration()
        choice = tune_omega(pair_circuit(), cal, pk_report,
                            omegas=(0.0, 0.35, 1.0))
        assert isinstance(choice, OmegaChoice)
        assert len(choice.sweep) == 3
        best_sweep = max(choice.sweep, key=lambda t: t[1])
        assert choice.omega == best_sweep[0]
        assert choice.prediction.total == pytest.approx(best_sweep[1])

    def test_crosstalk_circuit_prefers_nonzero_omega(self, poughkeepsie,
                                                     pk_report):
        cal = poughkeepsie.calibration()
        bench = swap_benchmark(poughkeepsie.coupling, 0, 13,
                               path=(0, 5, 10, 11, 12, 13))
        choice = tune_omega(bench.circuit, cal, pk_report,
                            omegas=(0.0, 0.35, 0.75))
        assert choice.omega > 0.0
        assert choice.scheduled.serialized_pairs
