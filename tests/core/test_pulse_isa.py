"""Tests for the pulse-level ISA scheduling mode (paper footnote 2)."""

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.scheduling.xtalk import XtalkScheduler
from repro.device.backend import NoisyBackend
from repro.device.topology import normalize_edge
from repro.workloads.swap import swap_benchmark


def pair_circuit():
    circ = QuantumCircuit(20, 2)
    circ.cx(5, 10)
    circ.cx(11, 12)
    circ.measure(10, 0)
    circ.measure(11, 1)
    return circ


class TestPulseScheduling:
    def test_isa_validated(self, poughkeepsie, pk_report):
        with pytest.raises(ValueError, match="isa"):
            XtalkScheduler(poughkeepsie.calibration(), pk_report,
                           isa="microwave")

    def test_no_barriers_emitted(self, poughkeepsie, pk_report):
        scheduler = XtalkScheduler(poughkeepsie.calibration(), pk_report,
                                   omega=0.5, isa="pulse")
        result = scheduler.schedule(pair_circuit())
        assert not any(i.is_barrier for i in result.circuit)
        assert result.serialized_pairs  # still chose to serialize

    def test_intended_schedule_separates_pair(self, poughkeepsie, pk_report):
        scheduler = XtalkScheduler(poughkeepsie.calibration(), pk_report,
                                   omega=0.5, isa="pulse")
        result = scheduler.schedule(pair_circuit())
        ops = {normalize_edge(t.instruction.qubits): t
               for t in result.intended_schedule.two_qubit_ops()}
        assert not ops[(5, 10)].overlaps(ops[(11, 12)])

    def test_run_schedule_executes_intended_times(self, poughkeepsie,
                                                  pk_report):
        scheduler = XtalkScheduler(poughkeepsie.calibration(), pk_report,
                                   omega=0.5, isa="pulse")
        result = scheduler.schedule(pair_circuit())
        backend = NoisyBackend(poughkeepsie, seed=7)
        execution = backend.run_schedule(result.intended_schedule, shots=256,
                                         trajectories=32)
        assert sum(execution.counts.values()) == 256
        # executed verbatim: the result's schedule IS the intended one
        assert execution.schedule is result.intended_schedule

    def test_run_schedule_requires_measurements(self, poughkeepsie,
                                                pk_report):
        from repro.device.calibration import GateDurations
        from repro.transpiler.schedule import Schedule

        circ = QuantumCircuit(20).h(0)
        sched = Schedule(circ, poughkeepsie.calibration().durations, [0.0])
        backend = NoisyBackend(poughkeepsie)
        with pytest.raises(ValueError, match="measure"):
            backend.run_schedule(sched)

    def test_pulse_error_rates_match_intended_overlaps(self, poughkeepsie,
                                                       pk_report):
        """With pulse execution, the charged rates follow the intended
        schedule's overlaps — serialization pays off without barriers."""
        backend = NoisyBackend(poughkeepsie)
        cal = poughkeepsie.calibration()
        scheduler = XtalkScheduler(cal, pk_report, omega=0.5, isa="pulse")
        result = scheduler.schedule(pair_circuit())
        rates = backend.gate_error_rates(result.intended_schedule)
        for t in result.intended_schedule.two_qubit_ops():
            edge = normalize_edge(t.instruction.qubits)
            assert rates[t.index] == pytest.approx(cal.cnot_error_of(*edge))

    def test_pulse_duration_not_worse_than_barrier(self, poughkeepsie,
                                                   pk_report):
        """Barrier realization can only add coarse constraints; the pulse
        intended schedule is never longer on the case-study circuit."""
        bench = swap_benchmark(poughkeepsie.coupling, 0, 13,
                               path=(0, 5, 10, 11, 12, 13))
        cal = poughkeepsie.calibration()
        backend = NoisyBackend(poughkeepsie)
        pulse = XtalkScheduler(cal, pk_report, omega=0.5, isa="pulse")
        barrier = XtalkScheduler(cal, pk_report, omega=0.5, isa="barrier")
        pulse_dur = pulse.schedule(bench.circuit).intended_schedule.makespan()
        barrier_dur = backend.schedule_of(
            barrier.schedule(bench.circuit).circuit
        ).makespan()
        assert pulse_dur <= barrier_dur + 1e-6
