"""Tests for the extension baselines: DisableSched and crosstalk-aware
routing."""

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.scheduling.baselines import disable_sched
from repro.device.backend import NoisyBackend
from repro.device.topology import normalize_edge
from repro.transpiler.routing import meet_in_middle_plan, min_crosstalk_path
from repro.workloads.swap import plan_has_crosstalk


class TestDisableSched:
    def _parallel_circuit(self):
        """Two 1-hop CNOT pairs plus a far pair."""
        circ = QuantumCircuit(20, 2)
        circ.cx(5, 10)
        circ.cx(11, 12)   # 1 hop from (5,10): must be disabled
        circ.cx(16, 17)   # far from both: stays parallel
        circ.measure(10, 0)
        circ.measure(11, 1)
        return circ

    def test_nearby_pairs_serialized(self, poughkeepsie):
        prepared = disable_sched(self._parallel_circuit(),
                                 poughkeepsie.coupling)
        backend = NoisyBackend(poughkeepsie)
        hw = backend.schedule_of(prepared)
        ops = {normalize_edge(t.instruction.qubits): t
               for t in hw.two_qubit_ops()}
        assert not ops[(5, 10)].overlaps(ops[(11, 12)])

    def test_far_pairs_untouched(self, poughkeepsie):
        prepared = disable_sched(self._parallel_circuit(),
                                 poughkeepsie.coupling)
        backend = NoisyBackend(poughkeepsie)
        hw = backend.schedule_of(prepared)
        ops = {normalize_edge(t.instruction.qubits): t
               for t in hw.two_qubit_ops()}
        # (16,17) is far from (11,12): blanket policy still allows overlap
        assert ops[(16, 17)].overlaps(ops[(11, 12)]) or \
            ops[(16, 17)].overlaps(ops[(5, 10)])

    def test_serializes_without_characterization(self, poughkeepsie):
        """DisableSched consults only the topology — every 1-hop pair is
        serialized, crosstalk or not (that is the policy's weakness)."""
        circ = QuantumCircuit(20, 2)
        circ.cx(0, 1)
        circ.cx(2, 3)  # 1 hop but NOT a planted crosstalk pair
        circ.measure(0, 0)
        circ.measure(2, 1)
        prepared = disable_sched(circ, poughkeepsie.coupling)
        backend = NoisyBackend(poughkeepsie)
        hw = backend.schedule_of(prepared)
        ops = {normalize_edge(t.instruction.qubits): t
               for t in hw.two_qubit_ops()}
        assert not ops[(0, 1)].overlaps(ops[(2, 3)])

    def test_gate_multiset_preserved(self, poughkeepsie):
        circ = self._parallel_circuit()
        prepared = disable_sched(circ, poughkeepsie.coupling)
        original = sorted(i.format() for i in circ if not i.is_barrier)
        kept = sorted(i.format() for i in prepared if not i.is_barrier)
        assert original == kept


class TestMinCrosstalkPath:
    def test_avoids_high_pairs_when_possible(self, poughkeepsie, pk_report):
        highs = pk_report.high_pairs()
        # 0 -> 13 has two shortest routes; one crosses (5,10)|(11,12),
        # the other goes through (7,12) but crosses (7,12)|(13,14)...
        # min_crosstalk_path picks whichever crosses fewest pairs.
        path = min_crosstalk_path(poughkeepsie.coupling, 0, 13, highs)
        plan = meet_in_middle_plan(poughkeepsie.coupling, 0, 13, path=path)
        default_plan = meet_in_middle_plan(
            poughkeepsie.coupling, 0, 13, path=(0, 5, 10, 11, 12, 13)
        )
        def crossings(p):
            return sum(1 for pair in highs if plan_has_crosstalk(p, [pair]))
        assert crossings(plan) <= crossings(default_plan)

    def test_no_high_pairs_gives_deterministic_shortest(self, poughkeepsie):
        path = min_crosstalk_path(poughkeepsie.coupling, 0, 13, [])
        assert path == tuple(poughkeepsie.coupling.shortest_path(0, 13))

    def test_path_is_shortest(self, poughkeepsie, pk_report):
        for (s, d) in [(0, 13), (5, 12), (15, 19)]:
            path = min_crosstalk_path(poughkeepsie.coupling, s, d,
                                      pk_report.high_pairs())
            assert len(path) - 1 == poughkeepsie.coupling.qubit_distance(s, d)
