"""Tests for the characterization report."""

import pytest

from repro.core.characterization.report import CrosstalkReport


@pytest.fixture()
def report():
    r = CrosstalkReport()
    r.record_independent((0, 1), 0.01)
    r.record_independent((2, 3), 0.02)
    r.record_independent((4, 5), 0.015)
    r.record_conditional((0, 1), (2, 3), 0.08)   # 8x: high
    r.record_conditional((2, 3), (0, 1), 0.03)   # 1.5x
    r.record_conditional((2, 3), (4, 5), 0.025)  # 1.25x: low both ways
    r.record_conditional((4, 5), (2, 3), 0.02)
    return r


class TestLookups:
    def test_edge_normalization(self, report):
        assert report.independent_error((1, 0)) == 0.01
        assert report.conditional_error((1, 0), (3, 2)) == 0.08

    def test_missing_independent_raises(self, report):
        with pytest.raises(KeyError):
            report.independent_error((6, 7))

    def test_unmeasured_conditional_falls_back(self, report):
        assert report.conditional_error((0, 1), (4, 5)) == 0.01

    def test_ratio(self, report):
        assert report.ratio((0, 1), (2, 3)) == pytest.approx(8.0)
        assert report.ratio((2, 3), (0, 1)) == pytest.approx(1.5)


class TestClassification:
    def test_high_pair_is_or_of_directions(self, report):
        assert report.is_high_pair((0, 1), (2, 3))
        assert report.is_high_pair((2, 3), (0, 1))

    def test_low_pair(self, report):
        assert not report.is_high_pair((2, 3), (4, 5))

    def test_unmeasured_pair_not_high(self, report):
        assert not report.is_high_pair((0, 1), (4, 5))

    def test_high_pairs_list(self, report):
        pairs = report.high_pairs()
        assert pairs == (frozenset({(0, 1), (2, 3)}),)

    def test_measured_pairs(self, report):
        assert len(report.measured_pairs()) == 2

    def test_custom_threshold(self):
        r = CrosstalkReport(high_ratio=1.2)
        r.record_independent((0, 1), 0.01)
        r.record_independent((2, 3), 0.01)
        r.record_conditional((0, 1), (2, 3), 0.013)
        r.record_conditional((2, 3), (0, 1), 0.013)
        assert r.is_high_pair((0, 1), (2, 3))


class TestMerge:
    def test_merged_with_overrides(self, report):
        fresh = CrosstalkReport(day=4)
        fresh.record_conditional((0, 1), (2, 3), 0.05)
        merged = report.merged_with(fresh)
        assert merged.conditional_error((0, 1), (2, 3)) == 0.05
        # untouched values survive
        assert merged.conditional_error((2, 3), (4, 5)) == 0.025
        assert merged.day == 4
        # original unchanged
        assert report.conditional_error((0, 1), (2, 3)) == 0.08


class TestSummary:
    def test_summary_mentions_high_pairs(self, report):
        text = report.summary()
        assert "HIGH" in text
        assert "(0, 1)" in text


class TestJsonPersistence:
    def test_round_trip(self, report):
        back = CrosstalkReport.from_json(report.to_json())
        assert back.independent == report.independent
        assert back.conditional == report.conditional
        assert back.high_ratio == report.high_ratio
        assert back.day == report.day
        assert back.high_pairs() == report.high_pairs()

    def test_json_is_valid(self, report):
        import json

        data = json.loads(report.to_json())
        assert "independent" in data
        assert "conditional" in data

    def test_daily_workflow_round_trip(self, report):
        """Save after the full campaign, reload for tomorrow's refresh."""
        saved = report.to_json()
        fresh = CrosstalkReport(day=1)
        fresh.record_conditional((0, 1), (2, 3), 0.06)
        merged = CrosstalkReport.from_json(saved).merged_with(fresh)
        assert merged.conditional_error((0, 1), (2, 3)) == 0.06
        assert merged.conditional_error((2, 3), (4, 5)) == 0.025
