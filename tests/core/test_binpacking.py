"""Tests for the randomized first-fit experiment packer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.characterization.binpacking import (
    first_fit,
    pack_pairs_first_fit,
    validate_packing,
)
from repro.device.topology import line_coupling_map


class TestFirstFit:
    def test_compatible_units_share_bin(self):
        line = line_coupling_map(16)
        units = [((0, 1), (2, 3)), ((8, 9), (10, 11))]
        bins = first_fit(line, units)
        assert len(bins) == 1

    def test_incompatible_units_split(self):
        line = line_coupling_map(10)
        units = [((0, 1), (2, 3)), ((4, 5), (6, 7))]
        bins = first_fit(line, units)
        assert len(bins) == 2


class TestPackPairs:
    def test_empty(self):
        line = line_coupling_map(4)
        assert pack_pairs_first_fit(line, []) == []

    def test_restart_validation(self):
        line = line_coupling_map(4)
        with pytest.raises(ValueError):
            pack_pairs_first_fit(line, [((0, 1), (2, 3))], restarts=0)

    def test_all_units_packed_once(self, poughkeepsie):
        units = [tuple(sorted(p)) for p in poughkeepsie.coupling.one_hop_gate_pairs()]
        bins = pack_pairs_first_fit(poughkeepsie.coupling, units, seed=1)
        packed = [u for b in bins for u in b]
        assert sorted(packed) == sorted(units)

    def test_packing_is_valid(self, poughkeepsie):
        units = [tuple(sorted(p)) for p in poughkeepsie.coupling.one_hop_gate_pairs()]
        bins = pack_pairs_first_fit(poughkeepsie.coupling, units, seed=1)
        assert validate_packing(poughkeepsie.coupling, bins)

    def test_packing_reduces_experiments(self, poughkeepsie):
        """Optimization 2's claim: roughly 2x fewer experiments."""
        units = [tuple(sorted(p)) for p in poughkeepsie.coupling.one_hop_gate_pairs()]
        bins = pack_pairs_first_fit(poughkeepsie.coupling, units, seed=1)
        assert len(bins) <= len(units) / 1.8

    def test_deterministic_for_seed(self, poughkeepsie):
        units = [tuple(sorted(p)) for p in poughkeepsie.coupling.one_hop_gate_pairs()]
        a = pack_pairs_first_fit(poughkeepsie.coupling, units, seed=7)
        b = pack_pairs_first_fit(poughkeepsie.coupling, units, seed=7)
        assert a == b

    def test_single_gate_units_packable(self, poughkeepsie):
        units = [(edge,) for edge in poughkeepsie.coupling.edges]
        bins = pack_pairs_first_fit(poughkeepsie.coupling, units, seed=2)
        assert validate_packing(poughkeepsie.coupling, bins)
        assert len(bins) < len(units)


class TestValidatePacking:
    def test_detects_bad_bin(self):
        line = line_coupling_map(10)
        bad = [[((0, 1), (2, 3)), ((4, 5), (6, 7))]]
        assert not validate_packing(line, bad)

    def test_accepts_good_bins(self):
        line = line_coupling_map(16)
        good = [[((0, 1), (2, 3))], [((4, 5), (6, 7))]]
        assert validate_packing(line, good)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_random_subsets_always_pack_validly(seed, poughkeepsie):
    rng = np.random.default_rng(seed)
    all_units = [tuple(sorted(p))
                 for p in poughkeepsie.coupling.one_hop_gate_pairs()]
    size = int(rng.integers(1, len(all_units) + 1))
    chosen = [all_units[i] for i in rng.choice(len(all_units), size, replace=False)]
    bins = pack_pairs_first_fit(poughkeepsie.coupling, chosen, restarts=4,
                                seed=seed)
    assert validate_packing(poughkeepsie.coupling, bins)
    packed = sorted(u for b in bins for u in b)
    assert packed == sorted(chosen)
