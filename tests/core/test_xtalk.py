"""Tests for the XtalkSched scheduler."""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import CircuitDag
from repro.core.scheduling.baselines import par_sched, serial_sched
from repro.core.scheduling.xtalk import XtalkScheduler
from repro.device.backend import NoisyBackend
from repro.device.topology import normalize_edge
from repro.transpiler.barriers import strip_barriers
from repro.workloads.swap import swap_benchmark


@pytest.fixture()
def scheduler(poughkeepsie, pk_report):
    return XtalkScheduler(poughkeepsie.calibration(), pk_report, omega=0.5)


def pair_circuit():
    """Two concurrent CNOTs on the planted pair (5,10)|(11,12)."""
    circ = QuantumCircuit(20, 2)
    circ.cx(5, 10)
    circ.cx(11, 12)
    circ.measure(10, 0)
    circ.measure(11, 1)
    return circ


class TestBasics:
    def test_omega_validated(self, poughkeepsie, pk_report):
        with pytest.raises(ValueError):
            XtalkScheduler(poughkeepsie.calibration(), pk_report, omega=1.5)

    def test_finds_planted_decision(self, scheduler):
        result = scheduler.schedule(pair_circuit())
        assert len(result.candidate_pairs) == 1
        pair = result.candidate_pairs[0]
        assert pair.conditional_i > 0
        assert result.compile_seconds >= 0

    def test_no_decision_for_clean_pairs(self, scheduler):
        circ = QuantumCircuit(20, 2)
        circ.cx(0, 1)
        circ.cx(16, 17)
        circ.measure(0, 0)
        circ.measure(16, 1)
        result = scheduler.schedule(circ)
        assert result.candidate_pairs == ()
        # output has no barriers: hardware parallelism untouched
        assert not any(i.is_barrier for i in result.circuit)

    def test_serializes_planted_pair(self, scheduler, poughkeepsie):
        result = scheduler.schedule(pair_circuit())
        assert result.serialized_pairs  # chose to serialize
        backend = NoisyBackend(poughkeepsie)
        hw = backend.schedule_of(result.circuit)
        ops = {normalize_edge(t.instruction.qubits): t for t in hw.two_qubit_ops()}
        assert not ops[(5, 10)].overlaps(ops[(11, 12)])

    def test_gate_multiset_preserved(self, scheduler):
        circ = pair_circuit()
        result = scheduler.schedule(circ)
        original = sorted(i.format() for i in circ if not i.is_barrier)
        final = sorted(i.format() for i in result.circuit if not i.is_barrier)
        assert original == final

    def test_output_order_topologically_valid(self, scheduler):
        circ = pair_circuit()
        result = scheduler.schedule(circ)
        stripped = strip_barriers(result.circuit)
        # every qubit's operations appear in the same relative order
        dag_in = CircuitDag(circ)
        dag_out = CircuitDag(stripped)
        for q in circ.active_qubits():
            in_names = [circ[i].format() for i in dag_in.qubit_chain(q)]
            out_names = [stripped[i].format() for i in dag_out.qubit_chain(q)]
            assert in_names == out_names

    def test_intended_schedule_respects_dependencies(self, scheduler):
        circ = pair_circuit()
        result = scheduler.schedule(circ)
        dag = CircuitDag(strip_barriers(circ))
        assert result.intended_schedule.validate_dependencies(dag)

    def test_input_barriers_are_stripped_and_rescheduled(self, scheduler):
        """XtalkSched owns ordering: pre-existing barriers are removed and
        the circuit is re-optimized from scratch."""
        circ = pair_circuit()
        barriered = QuantumCircuit(20, 2)
        barriered.cx(5, 10)
        barriered.barrier()
        barriered.cx(11, 12)
        barriered.measure(10, 0)
        barriered.measure(11, 1)
        result = scheduler.schedule(barriered)
        plain = scheduler.schedule(circ)
        assert len(result.candidate_pairs) == len(plain.candidate_pairs) == 1


class TestOmegaExtremes:
    def test_omega_zero_is_parsched(self, poughkeepsie, pk_report):
        scheduler = XtalkScheduler(poughkeepsie.calibration(), pk_report, omega=0.0)
        circ = pair_circuit()
        result = scheduler.schedule(circ)
        assert result.candidate_pairs == ()
        assert strip_barriers(result.circuit) == strip_barriers(par_sched(circ))

    def test_omega_one_serializes_all_candidates(self, poughkeepsie, pk_report):
        scheduler = XtalkScheduler(poughkeepsie.calibration(), pk_report, omega=1.0)
        result = scheduler.schedule(pair_circuit())
        assert len(result.serialized_pairs) == len(result.candidate_pairs) == 1

    def test_interior_omega_solution_is_optimal(self, poughkeepsie, pk_report):
        """The exact solver must beat (or tie) both all-serial and
        all-overlap assignments on its own objective."""
        scheduler = XtalkScheduler(poughkeepsie.calibration(), pk_report,
                                   omega=0.3)
        result = scheduler.schedule(pair_circuit())
        assert result.solution.exact
        # Reconstruct the model's option costs via the solution artifacts:
        # chosen objective must be minimal among the three pure options.
        # (The decision has exactly 3 options on this one-pair circuit.)
        assert len(result.candidate_pairs) == 1
        chosen = result.solution.objective
        # Re-solve with omega extremes to get the endpoints' objectives
        # evaluated under the SAME omega=0.3 objective is not directly
        # available; instead assert internal consistency:
        assert result.solution.constant_part + result.solution.linear_part == \
            pytest.approx(chosen)


class TestCaseStudy:
    def test_figure6_ordering(self, poughkeepsie, pk_report):
        """XtalkSched must place SWAP 11,12 before SWAP 5,10 to protect
        the low-coherence qubit 10 (paper Figure 6)."""
        bench = swap_benchmark(poughkeepsie.coupling, 0, 13,
                               path=(0, 5, 10, 11, 12, 13))
        scheduler = XtalkScheduler(poughkeepsie.calibration(), pk_report,
                                   omega=0.5)
        result = scheduler.schedule(bench.circuit)
        backend = NoisyBackend(poughkeepsie)
        hw = backend.schedule_of(result.circuit)
        start_5_10 = min(t.start for t in hw.two_qubit_ops()
                         if normalize_edge(t.instruction.qubits) == (5, 10))
        start_11_12 = min(t.start for t in hw.two_qubit_ops()
                          if normalize_edge(t.instruction.qubits) == (11, 12))
        assert start_11_12 < start_5_10

    def test_figure6_no_crosstalk_overlap(self, poughkeepsie, pk_report):
        bench = swap_benchmark(poughkeepsie.coupling, 0, 13,
                               path=(0, 5, 10, 11, 12, 13))
        scheduler = XtalkScheduler(poughkeepsie.calibration(), pk_report,
                                   omega=0.5)
        result = scheduler.schedule(bench.circuit)
        backend = NoisyBackend(poughkeepsie)
        hw = backend.schedule_of(result.circuit)
        ops_a = [t for t in hw.two_qubit_ops()
                 if normalize_edge(t.instruction.qubits) == (5, 10)]
        ops_b = [t for t in hw.two_qubit_ops()
                 if normalize_edge(t.instruction.qubits) == (11, 12)]
        assert not any(a.overlaps(b) for a in ops_a for b in ops_b)

    def test_duration_between_par_and_serial(self, poughkeepsie, pk_report):
        bench = swap_benchmark(poughkeepsie.coupling, 0, 13,
                               path=(0, 5, 10, 11, 12, 13))
        scheduler = XtalkScheduler(poughkeepsie.calibration(), pk_report,
                                   omega=0.5)
        backend = NoisyBackend(poughkeepsie)
        dur_x = backend.schedule_of(scheduler.schedule(bench.circuit).circuit).makespan()
        dur_p = backend.schedule_of(par_sched(bench.circuit)).makespan()
        dur_s = backend.schedule_of(serial_sched(bench.circuit)).makespan()
        assert dur_p <= dur_x <= dur_s


class TestBaselines:
    def test_par_sched_is_copy(self):
        circ = pair_circuit()
        prepared = par_sched(circ)
        assert strip_barriers(prepared) == circ
        assert prepared is not circ

    def test_serial_sched_serializes(self, poughkeepsie):
        circ = pair_circuit()
        prepared = serial_sched(circ)
        backend = NoisyBackend(poughkeepsie)
        hw = backend.schedule_of(prepared)
        assert hw.overlapping_two_qubit_pairs() == ()
