"""Property-based fuzzing of XtalkSched on random hardware circuits.

For any random circuit over Poughkeepsie's coupling edges and any ω, the
scheduler's output must satisfy the hard invariants:

* same gate multiset, per-qubit gate order preserved;
* the realized hardware schedule never overlaps a pair the solver decided
  to serialize;
* the intended schedule respects the dependency DAG;
* the model's objective parts are internally consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import CircuitDag
from repro.core.scheduling.xtalk import XtalkScheduler
from repro.device.backend import NoisyBackend
from repro.transpiler.barriers import strip_barriers


def random_hardware_circuit(rng, device, num_gates):
    """A random hardware-compliant measured circuit."""
    edges = device.coupling.edges
    circ = QuantumCircuit(device.num_qubits, device.num_qubits)
    for _ in range(num_gates):
        if rng.random() < 0.35:
            circ.h(int(rng.integers(device.num_qubits)))
        else:
            a, b = edges[rng.integers(len(edges))]
            if rng.random() < 0.5:
                a, b = b, a
            circ.cx(int(a), int(b))
    # measure a few active qubits
    active = circ.active_qubits()
    measured = list(active[: min(4, len(active))])
    for i, q in enumerate(measured):
        circ.measure(q, i)
    return circ


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 100_000),
       omega=st.sampled_from([0.1, 0.35, 0.5, 0.9, 1.0]))
def test_scheduler_invariants_on_random_circuits(seed, omega, poughkeepsie,
                                                 pk_report):
    rng = np.random.default_rng(seed)
    circuit = random_hardware_circuit(rng, poughkeepsie,
                                      int(rng.integers(8, 22)))
    scheduler = XtalkScheduler(poughkeepsie.calibration(), pk_report,
                               omega=omega)
    result = scheduler.schedule(circuit)

    # 1. gate multiset preserved
    original = sorted(i.format() for i in circuit if not i.is_barrier)
    final = sorted(i.format() for i in result.circuit if not i.is_barrier)
    assert original == final

    # 2. per-qubit order preserved
    stripped = strip_barriers(result.circuit)
    dag_in = CircuitDag(strip_barriers(circuit))
    dag_out = CircuitDag(stripped)
    for q in circuit.active_qubits():
        in_chain = [strip_barriers(circuit)[i].format()
                    for i in dag_in.qubit_chain(q)]
        out_chain = [stripped[i].format() for i in dag_out.qubit_chain(q)]
        assert in_chain == out_chain

    # 3. serialized pairs never overlap in the realized schedule
    backend = NoisyBackend(poughkeepsie)
    hw = backend.schedule_of(result.circuit)
    if result.serialized_pairs:
        # locate original gates in the final circuit by matching formats in
        # order (robust: instruction identity is preserved)
        base = strip_barriers(circuit)
        final_ops = [i for i in result.circuit if not i.is_barrier]
        # map original index -> final timed op via multiset matching
        position_of = {}
        used = set()
        for orig_idx, instr in enumerate(base):
            for pos, candidate in enumerate(result.circuit):
                if pos in used or candidate.is_barrier:
                    continue
                if candidate == instr:
                    position_of[orig_idx] = pos
                    used.add(pos)
                    break
        for (i, j) in result.serialized_pairs:
            a = hw[position_of[i]]
            b = hw[position_of[j]]
            assert not a.overlaps(b), (seed, omega, i, j)

    # 4. intended schedule respects dependencies
    assert result.intended_schedule.validate_dependencies(
        CircuitDag(strip_barriers(circuit))
    )

    # 5. objective consistency
    assert result.solution.objective == pytest.approx(
        result.solution.constant_part + result.solution.linear_part
    )
