"""Smoke tests for the example scripts.

Each example must import cleanly, expose a ``main(fast=...)`` callable
whose fast mode actually completes, and carry a docstring that says what
it does and how long it takes.  (Full, default-sized example runs remain
minutes-scale and are exercised manually / in CI-nightly.)
"""

import importlib.util
import inspect
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_module(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    module = load_module(path)
    main = getattr(module, "main", None)
    assert callable(main), path.name
    assert "fast" in inspect.signature(main).parameters, (
        f"{path.name}: main() must accept fast= for the smoke run"
    )
    assert module.__doc__ and "Run:" in module.__doc__, path.name


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_in_fast_mode(path, capsys):
    """Every example completes end to end with ``main(fast=True)``."""
    module = load_module(path)
    module.main(fast=True)
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name}: fast run produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "characterize_device", "schedule_qaoa",
            "custom_device", "production_workflow"} <= names
