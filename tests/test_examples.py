"""Smoke tests for the example scripts.

Each example must import cleanly and expose a ``main`` callable; the
docstring must say what it does and how long it takes.  (Full example runs
are exercised manually / in CI-nightly — they are minutes-scale.)
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_module(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    module = load_module(path)
    assert callable(getattr(module, "main", None)), path.name
    assert module.__doc__ and "Run:" in module.__doc__, path.name


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "characterize_device", "schedule_qaoa",
            "custom_device", "production_workflow"} <= names
