"""Tests for the one-call compilation pipeline."""

import pytest

from repro import compile_circuit
from repro.circuit.circuit import QuantumCircuit
from repro.device.backend import NoisyBackend
from repro.device.topology import normalize_edge
from repro.sim.statevector import ideal_distribution
from repro.workloads.states import ghz_chain_circuit


def logical_circuit():
    """A logical circuit needing routing (0 and 13 are far apart)."""
    circ = QuantumCircuit(20, 2)
    circ.h(0)
    circ.cx(0, 13)
    circ.measure(0, 0)
    circ.measure(13, 1)
    return circ


class TestCompile:
    def test_routes_and_lowers(self, poughkeepsie, pk_report):
        result = compile_circuit(logical_circuit(), poughkeepsie, pk_report)
        for instr in result.circuit:
            if instr.is_two_qubit:
                assert instr.name == "cx"
                assert poughkeepsie.coupling.has_edge(*instr.qubits)
        assert result.duration > 0
        assert len(result.layout) == 20

    def test_all_schedulers(self, poughkeepsie, pk_report):
        durations = {}
        for scheduler in ("par", "serial", "disable", "xtalk"):
            result = compile_circuit(logical_circuit(), poughkeepsie,
                                     pk_report, scheduler=scheduler)
            durations[scheduler] = result.duration
            assert result.scheduler == scheduler
        assert durations["par"] <= durations["xtalk"]
        assert durations["xtalk"] <= durations["serial"]

    def test_xtalk_requires_report(self, poughkeepsie):
        with pytest.raises(ValueError, match="report"):
            compile_circuit(logical_circuit(), poughkeepsie, scheduler="xtalk")

    def test_unknown_scheduler(self, poughkeepsie, pk_report):
        with pytest.raises(ValueError, match="unknown scheduler"):
            compile_circuit(logical_circuit(), poughkeepsie, pk_report,
                            scheduler="magic")

    def test_serialized_pairs_exposed(self, poughkeepsie, pk_report):
        circ = QuantumCircuit(20, 2)
        circ.cx(5, 10)
        circ.cx(11, 12)
        circ.measure(10, 0)
        circ.measure(11, 1)
        result = compile_circuit(circ, poughkeepsie, pk_report)
        assert result.serialized_pairs
        par = compile_circuit(circ, poughkeepsie, pk_report, scheduler="par")
        assert par.serialized_pairs == ()

    def test_compiled_circuit_executes(self, poughkeepsie, pk_report):
        result = compile_circuit(logical_circuit(), poughkeepsie, pk_report)
        backend = NoisyBackend(poughkeepsie, seed=4)
        execution = backend.run(result.circuit, shots=512, trajectories=32)
        assert sum(execution.counts.values()) == 512
        # Bell state: correlated outcomes dominate
        correlated = execution.counts.get("00", 0) + execution.counts.get("11", 0)
        assert correlated > 350

    def test_initial_layout(self, poughkeepsie, pk_report):
        circ = ghz_chain_circuit(4)
        circ.num_clbits = 4
        for q in range(4):
            circ.measure(q, q)
        result = compile_circuit(circ, poughkeepsie, pk_report,
                                 initial_layout=[5, 10, 11, 12])
        used = {q for i in result.circuit for q in i.qubits
                if not i.is_barrier}
        assert used <= {5, 10, 11, 12}

    def test_semantics_preserved_noiselessly(self, poughkeepsie, pk_report):
        circ = ghz_chain_circuit(3)
        circ.num_clbits = 3
        for q in range(3):
            circ.measure(q, q)
        result = compile_circuit(circ, poughkeepsie, pk_report,
                                 initial_layout=[0, 1, 2])
        from repro.transpiler.barriers import strip_barriers

        dist = ideal_distribution(strip_barriers(result.circuit))
        assert set(dist) == {"000", "111"}
