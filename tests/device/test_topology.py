"""Tests for coupling maps and the gate-hop metric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.topology import (
    CouplingMap,
    grid_coupling_map,
    line_coupling_map,
    normalize_edge,
)


class TestNormalizeEdge:
    def test_sorts(self):
        assert normalize_edge((3, 1)) == (1, 3)
        assert normalize_edge([1, 3]) == (1, 3)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            normalize_edge((2, 2))


class TestCouplingMap:
    def test_line(self):
        line = line_coupling_map(4)
        assert line.edges == ((0, 1), (1, 2), (2, 3))
        assert line.qubit_distance(0, 3) == 3
        assert line.shortest_path(0, 3) == [0, 1, 2, 3]

    def test_grid(self):
        grid = grid_coupling_map(2, 3)
        assert grid.num_qubits == 6
        assert grid.has_edge(0, 3)
        assert grid.qubit_distance(0, 5) == 3

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError, match="connected"):
            CouplingMap(4, [(0, 1), (2, 3)])

    def test_out_of_range_edge(self):
        with pytest.raises(ValueError):
            CouplingMap(2, [(0, 5)])

    def test_neighbors(self):
        line = line_coupling_map(3)
        assert line.neighbors(1) == (0, 2)


class TestGateDistance:
    def test_sharing_qubit_is_zero(self):
        line = line_coupling_map(4)
        assert line.gate_distance((0, 1), (1, 2)) == 0

    def test_adjacent_gates_one_hop(self):
        line = line_coupling_map(4)
        assert line.gate_distance((0, 1), (2, 3)) == 1

    def test_far_gates(self):
        line = line_coupling_map(6)
        assert line.gate_distance((0, 1), (4, 5)) == 3

    def test_symmetric(self):
        line = line_coupling_map(6)
        assert line.gate_distance((0, 1), (3, 4)) == line.gate_distance((3, 4), (0, 1))


class TestPairEnumeration:
    def test_simultaneous_pairs_exclude_shared_qubits(self):
        line = line_coupling_map(4)
        pairs = line.simultaneous_gate_pairs()
        assert frozenset(((0, 1), (2, 3))) in pairs
        assert all(
            len({q for e in pair for q in e}) == 4 for pair in pairs
        )

    def test_one_hop_pairs_subset(self):
        line = line_coupling_map(6)
        one_hop = set(line.one_hop_gate_pairs())
        all_pairs = set(line.simultaneous_gate_pairs())
        assert one_hop <= all_pairs
        assert frozenset(((0, 1), (2, 3))) in one_hop
        assert frozenset(((0, 1), (4, 5))) not in one_hop

    def test_line_pair_count(self):
        # 5 edges on a 6-line; pairs not sharing a qubit:
        line = line_coupling_map(6)
        assert len(line.simultaneous_gate_pairs()) == 6


class TestCompatibility:
    def test_compatible_far_pairs(self):
        line = line_coupling_map(12)
        pair_a = ((0, 1), (2, 3))
        pair_b = ((7, 8), (9, 10))
        assert line.pairs_compatible(pair_a, pair_b, min_hops=2)

    def test_incompatible_close_pairs(self):
        line = line_coupling_map(8)
        pair_a = ((0, 1), (2, 3))
        pair_b = ((4, 5), (6, 7))
        assert not line.pairs_compatible(pair_a, pair_b, min_hops=2)

    def test_single_gate_units(self):
        line = line_coupling_map(8)
        assert line.pairs_compatible(((0, 1),), ((4, 5),), min_hops=2)
        assert not line.pairs_compatible(((0, 1),), ((2, 3),), min_hops=2)


@settings(max_examples=20, deadline=None)
@given(rows=st.integers(2, 4), cols=st.integers(2, 4))
def test_grid_distances_match_manhattan(rows, cols):
    grid = grid_coupling_map(rows, cols)
    for a in range(grid.num_qubits):
        for b in range(grid.num_qubits):
            ra, ca = divmod(a, cols)
            rb, cb = divmod(b, cols)
            assert grid.qubit_distance(a, b) == abs(ra - rb) + abs(ca - cb)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(4, 10))
def test_line_gate_distance_formula(n):
    line = line_coupling_map(n)
    edges = line.edges
    for i, e1 in enumerate(edges):
        for e2 in edges[i + 1:]:
            expected = max(0, e2[0] - e1[1])
            assert line.gate_distance(e1, e2) == expected
