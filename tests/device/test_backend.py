"""Tests for the noisy executor (hardware stand-in)."""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.device.backend import NoisyBackend
from repro.device.topology import normalize_edge


@pytest.fixture()
def backend(poughkeepsie):
    return NoisyBackend(poughkeepsie, seed=5)


def parallel_pair_circuit():
    """Two CNOTs on the planted high pair (5,10)|(11,12), then measure."""
    circ = QuantumCircuit(20, 2)
    circ.cx(5, 10)
    circ.cx(11, 12)
    circ.measure(10, 0)
    circ.measure(11, 1)
    return circ


class TestScheduling:
    def test_schedule_is_right_aligned_with_common_readout(self, backend):
        circ = QuantumCircuit(20, 2).h(0).cx(0, 1)
        circ.measure(0, 0)
        circ.measure(1, 1)
        sched = backend.schedule_of(circ)
        measures = [t for t in sched if t.instruction.is_measure]
        assert len({t.start for t in measures}) == 1

    def test_barriers_respected(self, backend):
        circ = QuantumCircuit(20, 2)
        circ.cx(5, 10)
        circ.barrier(5, 10, 11, 12)
        circ.cx(11, 12)
        circ.measure(10, 0)
        circ.measure(11, 1)
        sched = backend.schedule_of(circ)
        ops = {normalize_edge(t.instruction.qubits): t
               for t in sched.two_qubit_ops()}
        assert ops[(5, 10)].end <= ops[(11, 12)].start + 1e-6


class TestGateErrorRates:
    def test_parallel_high_pair_gets_conditional_rates(self, backend, poughkeepsie):
        sched = backend.schedule_of(parallel_pair_circuit())
        rates = backend.gate_error_rates(sched)
        cal = poughkeepsie.calibration()
        ops = {normalize_edge(t.instruction.qubits): t
               for t in sched.two_qubit_ops()}
        assert ops[(5, 10)].overlaps(ops[(11, 12)])
        assert rates[ops[(5, 10)].index] > 2 * cal.cnot_error_of(5, 10)
        assert rates[ops[(11, 12)].index] > 2 * cal.cnot_error_of(11, 12)

    def test_serialized_pair_gets_independent_rates(self, backend, poughkeepsie):
        circ = QuantumCircuit(20, 2)
        circ.cx(5, 10)
        circ.barrier(5, 10, 11, 12)
        circ.cx(11, 12)
        circ.measure(10, 0)
        circ.measure(11, 1)
        sched = backend.schedule_of(circ)
        rates = backend.gate_error_rates(sched)
        cal = poughkeepsie.calibration()
        for t in sched.two_qubit_ops():
            edge = normalize_edge(t.instruction.qubits)
            assert rates[t.index] == pytest.approx(cal.cnot_error_of(*edge))

    def test_far_parallel_gates_independent(self, backend, poughkeepsie):
        circ = QuantumCircuit(20, 2)
        circ.cx(0, 1)
        circ.cx(16, 17)
        circ.measure(0, 0)
        circ.measure(16, 1)
        sched = backend.schedule_of(circ)
        rates = backend.gate_error_rates(sched)
        cal = poughkeepsie.calibration()
        for t in sched.two_qubit_ops():
            edge = normalize_edge(t.instruction.qubits)
            assert rates[t.index] <= cal.cnot_error_of(*edge) * 1.2

    def test_single_qubit_rates(self, backend, poughkeepsie):
        circ = QuantumCircuit(20, 1).h(4)
        circ.measure(4, 0)
        sched = backend.schedule_of(circ)
        rates = backend.gate_error_rates(sched)
        cal = poughkeepsie.calibration()
        h_op = next(t for t in sched if t.instruction.name == "h")
        assert rates[h_op.index] == cal.single_qubit_error[4]


class TestLowering:
    def test_decay_events_only_for_idle_gaps(self, backend):
        circ = QuantumCircuit(20, 2)
        circ.h(5)
        circ.cx(5, 10)
        circ.measure(5, 0)
        circ.measure(10, 1)
        sched = backend.schedule_of(circ)
        events, qubit_map, measures = backend.lower(sched)
        gate_events = [e for e in events if e.kind == "gate"]
        assert len(gate_events) == 2  # h + cx; measures are not gate events
        assert measures == [(0, 5), (1, 10)]
        # contiguous schedule: no decay events expected here
        decay_events = [e for e in events if e.kind == "decay"]
        assert not decay_events

    def test_idle_window_produces_decay(self, backend):
        circ = QuantumCircuit(20, 2)
        circ.h(5)
        circ.cx(5, 10)
        circ.cx(5, 6)  # qubit 10 idles while this runs
        circ.measure(10, 0)
        circ.measure(5, 1)
        sched = backend.schedule_of(circ)
        events, qubit_map, _ = backend.lower(sched)
        decay_qubits = {e.qubits[0] for e in events if e.kind == "decay"}
        assert qubit_map[10] in decay_qubits

    def test_lower_compacts_qubits(self, backend):
        circ = QuantumCircuit(20, 2)
        circ.cx(16, 17)
        circ.measure(16, 0)
        circ.measure(17, 1)
        events, qubit_map, _ = backend.lower(backend.schedule_of(circ))
        assert set(qubit_map) == {16, 17}
        assert set(qubit_map.values()) == {0, 1}


class TestRun:
    def test_requires_measurement(self, backend):
        with pytest.raises(ValueError, match="measure"):
            backend.run(QuantumCircuit(20).h(0))

    def test_counts_and_probabilities(self, backend):
        circ = QuantumCircuit(20, 1).x(3)
        circ.measure(3, 0)
        result = backend.run(circ, shots=256, trajectories=8)
        assert sum(result.counts.values()) == 256
        assert result.probabilities.sum() == pytest.approx(1.0, abs=1e-6)
        # dominated by "1" but readout error flips some
        assert result.counts.get("1", 0) > 200

    def test_readout_error_toggle(self, backend):
        circ = QuantumCircuit(20, 1).x(3)
        circ.measure(3, 0)
        clean = backend.run(circ, shots=512, trajectories=8, readout_error=False)
        assert clean.probabilities[1] > 0.995

    def test_duration_reported(self, backend):
        circ = QuantumCircuit(20, 1).x(3)
        circ.measure(3, 0)
        result = backend.run(circ, shots=16, trajectories=4)
        assert result.duration > 3000  # at least the readout duration

    def test_crosstalk_hurts_parallel_execution(self, backend):
        """The planted pair must measurably degrade parallel execution."""
        parallel = parallel_pair_circuit()
        serial = QuantumCircuit(20, 2)
        serial.cx(5, 10)
        serial.barrier(5, 10, 11, 12)
        serial.cx(11, 12)
        serial.measure(10, 0)
        serial.measure(11, 1)
        p_par = backend.run(parallel, shots=4096, trajectories=600,
                            readout_error=False).probabilities
        p_ser = backend.run(serial, shots=4096, trajectories=600,
                            readout_error=False).probabilities
        # ideal output is |00>; crosstalk reduces its probability
        assert p_ser[0] > p_par[0] + 0.02
