"""Heavy-hex lattice generator and the 65q/127q stress presets."""

import pytest

from repro.device.presets import ibm_eagle_127q, ibm_hummingbird_65q
from repro.device.topology import heavy_hex_coupling_map


class TestLatticeCounts:
    """Published sizes: Hummingbird 65q/72 edges, Eagle 127q/144 edges."""

    @pytest.mark.parametrize("rows,cols,qubits,edges", [
        (5, 11, 65, 72),    # Hummingbird r2 (ibmq_manhattan)
        (7, 15, 127, 144),  # Eagle r1 (ibm_washington)
    ])
    def test_published_sizes(self, rows, cols, qubits, edges):
        cm = heavy_hex_coupling_map(rows, cols)
        assert cm.num_qubits == qubits
        assert len(cm.edges) == edges

    def test_untrimmed_keeps_corners(self):
        trimmed = heavy_hex_coupling_map(5, 11)
        full = heavy_hex_coupling_map(5, 11, trim_corners=False)
        assert full.num_qubits == trimmed.num_qubits + 2

    def test_degree_at_most_three(self):
        cm = heavy_hex_coupling_map(7, 15)
        assert max(dict(cm.graph.degree).values()) <= 3

    def test_validation(self):
        with pytest.raises(ValueError, match="rows"):
            heavy_hex_coupling_map(1, 11)
        with pytest.raises(ValueError, match="columns"):
            heavy_hex_coupling_map(5, 2)
        with pytest.raises(ValueError, match="odd row count"):
            heavy_hex_coupling_map(4, 11)

    def test_even_rows_allowed_without_trim(self):
        cm = heavy_hex_coupling_map(4, 11, trim_corners=False)
        assert cm.num_qubits == 4 * 11 + 3 * 3


class TestOneHopPairs:
    @pytest.mark.parametrize("rows,cols", [(5, 11), (7, 15)])
    def test_one_hop_pairs_exist_and_are_one_hop(self, rows, cols):
        cm = heavy_hex_coupling_map(rows, cols)
        pairs = cm.one_hop_gate_pairs()
        assert pairs
        for pair in pairs[:25]:
            assert cm.gate_distance(*tuple(pair)) == 1

    def test_one_hop_counts_deterministic(self):
        assert len(heavy_hex_coupling_map(5, 11).one_hop_gate_pairs()) == \
            len(heavy_hex_coupling_map(5, 11).one_hop_gate_pairs())


class TestDistanceQueries:
    def test_chain_neighbours_distance_one(self):
        cm = heavy_hex_coupling_map(5, 11)
        a, b = cm.edges[0]
        assert cm.qubit_distance(a, b) == 1

    def test_row_chain_distances(self):
        # First row (row-major ids 0..cols-2 after trimming its last qubit)
        cm = heavy_hex_coupling_map(5, 11)
        assert cm.qubit_distance(0, 5) == 5

    def test_cross_device_distance_symmetric_and_bounded(self):
        cm = heavy_hex_coupling_map(7, 15)
        far = cm.num_qubits - 1
        assert cm.qubit_distance(0, far) == cm.qubit_distance(far, 0)
        # Diameter stays graph-like: well under qubit count, over row length
        assert 10 <= cm.qubit_distance(0, far) <= 40

    def test_gate_distance_zero_means_shared_qubit(self):
        cm = heavy_hex_coupling_map(5, 11)
        edges = cm.edges
        shared = next(
            (e1, e2) for i, e1 in enumerate(edges) for e2 in edges[i + 1:]
            if set(e1) & set(e2)
        )
        assert cm.gate_distance(*shared) == 0


class TestStressPresets:
    @pytest.mark.parametrize("factory,qubits,pairs", [
        (ibm_hummingbird_65q, 65, 10),
        (ibm_eagle_127q, 127, 16),
    ])
    def test_presets_build_with_ground_truth(self, factory, qubits, pairs):
        device = factory()
        assert device.coupling.num_qubits == qubits
        assert len(device.crosstalk.pairs) == pairs
        # Every planted pair must be at exactly 1 hop (the locality
        # regime) — CrosstalkModel validates this, but assert explicitly.
        for pair in device.crosstalk.pairs:
            assert device.coupling.gate_distance(pair.edge_a, pair.edge_b) == 1

    def test_planted_pairs_edge_disjoint(self):
        device = ibm_eagle_127q()
        seen = set()
        for pair in device.crosstalk.pairs:
            assert pair.edge_a not in seen
            assert pair.edge_b not in seen
            seen.update((pair.edge_a, pair.edge_b))

    def test_presets_deterministic(self):
        a, b = ibm_hummingbird_65q(), ibm_hummingbird_65q()
        assert a.coupling.edges == b.coupling.edges
        assert [(p.edge_a, p.edge_b) for p in a.crosstalk.pairs] == \
            [(p.edge_a, p.edge_b) for p in b.crosstalk.pairs]
