"""Tests for calibration data and synthesis."""

import pytest

from repro.circuit.gates import Instruction
from repro.device.calibration import (
    Calibration,
    GateDurations,
    synthesize_calibration,
)
from repro.device.topology import line_coupling_map


class TestGateDurations:
    def setup_method(self):
        self.durations = GateDurations(
            single_qubit=50.0,
            cx={(0, 1): 300.0},
            measurement=3000.0,
            default_cx=400.0,
        )

    def test_single_qubit(self):
        assert self.durations.of(Instruction("h", (0,))) == 50.0

    def test_cx_per_edge(self):
        assert self.durations.of(Instruction("cx", (0, 1))) == 300.0
        assert self.durations.of(Instruction("cx", (1, 0))) == 300.0

    def test_cx_default(self):
        assert self.durations.of(Instruction("cx", (2, 3))) == 400.0

    def test_measure(self):
        assert self.durations.of(Instruction("measure", (0,), clbit=0)) == 3000.0

    def test_barrier_zero(self):
        assert self.durations.of(Instruction("barrier", (0, 1))) == 0.0

    def test_delay_uses_param(self):
        assert self.durations.of(Instruction("delay", (0,), (123.0,))) == 123.0

    def test_cx_duration_helper(self):
        assert self.durations.cx_duration(1, 0) == 300.0


class TestCalibration:
    def test_synthesized_ranges(self):
        coupling = line_coupling_map(8)
        cal = synthesize_calibration(coupling, seed=1)
        for edge, err in cal.cnot_error.items():
            assert 0.001 < err < 0.08
        for q in range(8):
            assert 0 < cal.single_qubit_error[q] < 0.002
            assert 0.01 < cal.readout_error[q] < 0.1
            assert cal.t2[q] <= 2 * cal.t1[q] + 1e-9
            assert cal.t1[q] > 0

    def test_slow_qubits_planted(self):
        coupling = line_coupling_map(6)
        cal = synthesize_calibration(coupling, seed=2, slow_qubits={3: 5000.0})
        assert cal.t1[3] == 5000.0
        assert cal.coherence_limit(3) <= 5000.0

    def test_heavy_tail_edges(self):
        coupling = line_coupling_map(10)
        cal = synthesize_calibration(coupling, seed=3, heavy_tail_edges=2)
        heavy = [e for e, err in cal.cnot_error.items() if err > 0.035]
        assert len(heavy) == 2

    def test_deterministic_by_seed(self):
        coupling = line_coupling_map(6)
        a = synthesize_calibration(coupling, seed=9)
        b = synthesize_calibration(coupling, seed=9)
        assert a.cnot_error == b.cnot_error
        assert a.t1 == b.t1

    def test_cnot_error_lookup(self):
        coupling = line_coupling_map(4)
        cal = synthesize_calibration(coupling, seed=0)
        assert cal.cnot_error_of(1, 0) == cal.cnot_error[(0, 1)]
        with pytest.raises(KeyError):
            cal.cnot_error_of(0, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Calibration(
                cnot_error={(0, 1): 1.5},
                single_qubit_error={},
                readout_error={},
                t1={0: 1.0},
                t2={0: 1.0},
                durations=GateDurations(),
            )
        with pytest.raises(ValueError):
            Calibration(
                cnot_error={},
                single_qubit_error={},
                readout_error={},
                t1={0: -1.0},
                t2={0: 1.0},
                durations=GateDurations(),
            )

    def test_average_cnot_error(self):
        coupling = line_coupling_map(5)
        cal = synthesize_calibration(coupling, seed=4)
        avg = cal.average_cnot_error()
        assert min(cal.cnot_error.values()) <= avg <= max(cal.cnot_error.values())
