"""Tests for the ground-truth crosstalk model."""

import pytest

from repro.device.calibration import synthesize_calibration
from repro.device.crosstalk import (
    MAX_CONDITIONAL_ERROR,
    CrosstalkModel,
    CrosstalkPair,
)
from repro.device.topology import line_coupling_map


@pytest.fixture()
def line_model():
    coupling = line_coupling_map(8)
    pairs = [CrosstalkPair((0, 1), (2, 3), factor_a=6.0, factor_b=4.0)]
    return coupling, CrosstalkModel(coupling, pairs, seed=42)


class TestCrosstalkPair:
    def test_normalizes_edges(self):
        pair = CrosstalkPair((1, 0), (3, 2), 5.0, 5.0)
        assert pair.edge_a == (0, 1)
        assert pair.edge_b == (2, 3)

    def test_factor_on(self):
        pair = CrosstalkPair((0, 1), (2, 3), 6.0, 4.0)
        assert pair.factor_on((1, 0)) == 6.0
        assert pair.factor_on((2, 3)) == 4.0
        with pytest.raises(KeyError):
            pair.factor_on((4, 5))

    def test_factors_below_one_rejected(self):
        with pytest.raises(ValueError):
            CrosstalkPair((0, 1), (2, 3), 0.5, 4.0)

    def test_identical_edges_rejected(self):
        with pytest.raises(ValueError):
            CrosstalkPair((0, 1), (1, 0), 2.0, 2.0)


class TestCrosstalkModel:
    def test_pairs_must_be_one_hop(self):
        coupling = line_coupling_map(8)
        with pytest.raises(ValueError, match="1 hop"):
            CrosstalkModel(
                coupling,
                [CrosstalkPair((0, 1), (5, 6), 4.0, 4.0)],
            )

    def test_duplicate_pairs_rejected(self):
        coupling = line_coupling_map(8)
        with pytest.raises(ValueError, match="duplicate"):
            CrosstalkModel(
                coupling,
                [
                    CrosstalkPair((0, 1), (2, 3), 4.0, 4.0),
                    CrosstalkPair((2, 3), (0, 1), 5.0, 5.0),
                ],
            )

    def test_high_pair_lookup(self, line_model):
        _, model = line_model
        assert model.is_high_pair((0, 1), (2, 3))
        assert model.is_high_pair((3, 2), (1, 0))
        assert not model.is_high_pair((2, 3), (4, 5))

    def test_factor_for_high_pair_reflects_base(self, line_model):
        _, model = line_model
        factor = model.conditional_factor((0, 1), (2, 3), day=0)
        # factor_a = 6 with drift clipped to [0.5, 2.8]
        assert 6.0 * 0.5 <= factor <= 6.0 * 2.8

    def test_background_factor_for_one_hop_non_pair(self, line_model):
        _, model = line_model
        assert model.conditional_factor((2, 3), (4, 5)) == model.background_factor

    def test_no_crosstalk_beyond_one_hop(self, line_model):
        _, model = line_model
        assert model.conditional_factor((0, 1), (4, 5)) == 1.0
        assert model.conditional_factor((0, 1), (6, 7)) == 1.0

    def test_zero_distance_rejected(self, line_model):
        _, model = line_model
        with pytest.raises(ValueError):
            model.conditional_factor((0, 1), (1, 2))
        with pytest.raises(ValueError):
            model.conditional_factor((0, 1), (0, 1))

    def test_drift_deterministic_per_day(self, line_model):
        _, model = line_model
        f1 = model.conditional_factor((0, 1), (2, 3), day=3)
        f2 = model.conditional_factor((0, 1), (2, 3), day=3)
        assert f1 == f2

    def test_drift_varies_across_days(self, line_model):
        _, model = line_model
        factors = {model.conditional_factor((0, 1), (2, 3), day=d) for d in range(8)}
        assert len(factors) > 3

    def test_drift_bounded(self, line_model):
        _, model = line_model
        base = 6.0
        for day in range(20):
            f = model.conditional_factor((0, 1), (2, 3), day=day)
            assert base * 0.5 <= f <= base * 2.8

    def test_conditional_error_capped(self, line_model):
        coupling, model = line_model
        cal = synthesize_calibration(coupling, seed=0)
        cal.cnot_error[(0, 1)] = 0.2
        err = model.conditional_error((0, 1), (2, 3), cal)
        assert err <= MAX_CONDITIONAL_ERROR

    def test_worst_conditional_error(self, line_model):
        coupling, model = line_model
        cal = synthesize_calibration(coupling, seed=0)
        indep = cal.cnot_error_of(0, 1)
        # no partners: independent rate
        assert model.worst_conditional_error((0, 1), [], cal) == indep
        # far partner: still independent
        far = model.worst_conditional_error((0, 1), [(4, 5)], cal)
        assert far == pytest.approx(indep)
        # high-crosstalk partner dominates
        worst = model.worst_conditional_error((0, 1), [(4, 5), (2, 3)], cal)
        assert worst > 2 * indep

    def test_high_pair_keys_sorted(self, line_model):
        _, model = line_model
        keys = model.high_pair_keys()
        assert len(keys) == 1
        assert keys[0] == frozenset({(0, 1), (2, 3)})
