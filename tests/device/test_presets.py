"""Invariants of the three device presets (anchored to the paper)."""

import pytest

from repro.workloads.qaoa import QAOA_REGIONS


class TestPoughkeepsie:
    def test_size_and_pair_count(self, poughkeepsie):
        assert poughkeepsie.num_qubits == 20
        assert len(poughkeepsie.coupling.edges) == 23
        # Matches the paper's 221 simultaneously drivable pairs.
        assert len(poughkeepsie.coupling.simultaneous_gate_pairs()) == 221

    def test_five_planted_pairs(self, poughkeepsie):
        assert len(poughkeepsie.crosstalk.pairs) == 5

    def test_figure4_pairs_planted(self, poughkeepsie):
        assert poughkeepsie.crosstalk.is_high_pair((10, 15), (11, 12))
        assert poughkeepsie.crosstalk.is_high_pair((13, 14), (18, 19))

    def test_figure4_magnitudes(self, poughkeepsie):
        cal = poughkeepsie.calibration()
        # CNOT 10,15: ~1% independent, conditional an order of magnitude up.
        assert cal.cnot_error_of(10, 15) == pytest.approx(0.01)
        cond = poughkeepsie.crosstalk.conditional_error((10, 15), (11, 12), cal)
        assert cond > 5 * cal.cnot_error_of(10, 15)

    def test_all_pairs_at_one_hop(self, poughkeepsie):
        for pair in poughkeepsie.crosstalk.pairs:
            assert poughkeepsie.coupling.gate_distance(pair.edge_a, pair.edge_b) == 1

    def test_slow_qubit_10(self, poughkeepsie):
        cal = poughkeepsie.calibration()
        assert cal.coherence_limit(10) < 6000.0
        others = [cal.coherence_limit(q) for q in range(20) if q != 10]
        assert min(others) > 2 * cal.coherence_limit(10)

    def test_qaoa_regions_are_paths_and_crosstalk_prone(self, poughkeepsie):
        for region in QAOA_REGIONS:
            for a, b in zip(region, region[1:]):
                assert poughkeepsie.coupling.has_edge(a, b)
            outer_a = tuple(sorted(region[:2]))
            outer_b = tuple(sorted(region[2:]))
            assert poughkeepsie.crosstalk.is_high_pair(outer_a, outer_b)


class TestAllDevices:
    def test_names_unique(self, devices):
        names = [d.name for d in devices]
        assert len(set(names)) == 3

    def test_error_ranges_match_paper(self, devices):
        for device in devices:
            cal = device.calibration()
            errors = list(cal.cnot_error.values())
            assert 0.004 < min(errors)
            assert max(errors) < 0.07
            # average ~1.8% in the paper; allow a generous band
            assert 0.008 < cal.average_cnot_error() < 0.035

    def test_planted_pairs_all_one_hop(self, devices):
        for device in devices:
            for pair in device.crosstalk.pairs:
                assert device.coupling.gate_distance(pair.edge_a, pair.edge_b) == 1

    def test_daily_calibration_drifts_but_caches(self, devices):
        device = devices[0]
        day0 = device.calibration(0)
        day1 = device.calibration(1)
        assert day0 is device.calibration(0)
        changed = [
            edge for edge in day0.cnot_error
            if day0.cnot_error[edge] != day1.cnot_error[edge]
        ]
        assert changed  # independent errors drift mildly
        # but T1/T2 are stable
        assert day0.t1 == day1.t1

    def test_readout_model_matches_calibration(self, devices):
        device = devices[0]
        cal = device.calibration()
        ro = device.readout_model()
        assert ro.p1_given_0[3] == cal.readout_error[3]

    def test_true_high_pairs_exposed_for_eval(self, devices):
        for device in devices:
            keys = device.true_high_pairs()
            assert len(keys) == len(device.crosstalk.pairs)
