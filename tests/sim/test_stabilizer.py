"""Tests for the CHP stabilizer simulator, cross-validated against the
dense statevector engine on random Clifford circuits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stabilizer import StabilizerSimulator
from repro.sim.statevector import Statevector

_GATES_1Q = ["h", "s", "sdg", "x", "y", "z", "id"]
_GATES_2Q = ["cx", "cz", "swap"]


def random_clifford_ops(rng, num_qubits, num_gates):
    ops = []
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < 0.4:
            a, b = rng.choice(num_qubits, 2, replace=False)
            ops.append((_GATES_2Q[rng.integers(3)], (int(a), int(b))))
        else:
            ops.append((_GATES_1Q[rng.integers(len(_GATES_1Q))],
                        (int(rng.integers(num_qubits)),)))
    return ops


class TestBasics:
    def test_initial_state_survival(self):
        sim = StabilizerSimulator(3)
        assert sim.survival_probability() == pytest.approx(1.0)

    def test_x_flips_survival(self):
        sim = StabilizerSimulator(2)
        sim.x_gate(0)
        assert sim.survival_probability() == 0.0
        assert sim.probability_of_outcome({0: 1, 1: 0}) == pytest.approx(1.0)

    def test_h_gives_half(self):
        sim = StabilizerSimulator(1)
        sim.h(0)
        assert sim.probability_of_outcome({0: 0}) == pytest.approx(0.5)

    def test_bell_joint_probabilities(self):
        sim = StabilizerSimulator(2)
        sim.h(0)
        sim.cx(0, 1)
        assert sim.probability_of_outcome({0: 0, 1: 0}) == pytest.approx(0.5)
        assert sim.probability_of_outcome({0: 0, 1: 1}) == 0.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            StabilizerSimulator(0)

    def test_cx_requires_distinct(self):
        sim = StabilizerSimulator(2)
        with pytest.raises(ValueError):
            sim.cx(1, 1)

    def test_unknown_gate(self):
        sim = StabilizerSimulator(1)
        with pytest.raises(KeyError):
            sim.apply_gate("t", (0,))

    def test_copy_is_independent(self):
        sim = StabilizerSimulator(1)
        other = sim.copy()
        other.x_gate(0)
        assert sim.survival_probability() == pytest.approx(1.0)
        assert other.survival_probability() == 0.0


class TestMeasurement:
    def test_deterministic_measurement(self):
        sim = StabilizerSimulator(1)
        sim.x_gate(0)
        assert sim.is_deterministic(0)
        assert sim.measure(0) == 1

    def test_random_measurement_collapses(self):
        rng = np.random.default_rng(2)
        sim = StabilizerSimulator(1, rng)
        sim.h(0)
        assert not sim.is_deterministic(0)
        outcome = sim.measure(0)
        assert sim.is_deterministic(0)
        assert sim.measure(0) == outcome

    def test_forced_outcome(self):
        sim = StabilizerSimulator(1)
        sim.h(0)
        assert sim.measure(0, forced_outcome=1) == 1
        assert sim.measure(0) == 1

    def test_forcing_deterministic_wrong_value_raises(self):
        sim = StabilizerSimulator(1)
        with pytest.raises(ValueError):
            sim.measure(0, forced_outcome=1)

    def test_ghz_correlations(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            sim = StabilizerSimulator(3, rng)
            sim.h(0)
            sim.cx(0, 1)
            sim.cx(1, 2)
            a = sim.measure(0)
            assert sim.measure(1) == a
            assert sim.measure(2) == a

    def test_apply_pauli_string(self):
        sim = StabilizerSimulator(3)
        sim.apply_pauli("XIZ", (0, 1, 2))
        assert sim.probability_of_outcome({0: 1, 1: 0, 2: 0}) == pytest.approx(1.0)

    def test_apply_pauli_length_mismatch(self):
        sim = StabilizerSimulator(2)
        with pytest.raises(ValueError):
            sim.apply_pauli("XX", (0,))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_matches_statevector_on_random_cliffords(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 5))
    ops = random_clifford_ops(rng, n, 25)
    stab = StabilizerSimulator(n)
    sv = Statevector(n)
    for name, qubits in ops:
        stab.apply_gate(name, qubits)
        sv.apply_gate(name, qubits)
    # Compare the probability of a few random outcomes.
    for _ in range(4):
        bits = {q: int(rng.integers(2)) for q in range(n)}
        p_stab = stab.probability_of_outcome(bits)
        idx = sum(bits[q] << q for q in range(n))
        p_sv = float(np.abs(sv.vector[idx]) ** 2)
        assert abs(p_stab - p_sv) < 1e-9


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_survival_probability_is_power_of_half_or_zero(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 5))
    sim = StabilizerSimulator(n)
    for name, qubits in random_clifford_ops(rng, n, 20):
        sim.apply_gate(name, qubits)
    p = sim.survival_probability()
    assert p == 0.0 or abs(np.log2(p) - round(np.log2(p))) < 1e-9
