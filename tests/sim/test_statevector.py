"""Unit and property tests for the statevector engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.circuit import QuantumCircuit
from repro.sim.statevector import (
    Statevector,
    ideal_distribution,
    simulate_statevector,
)
from repro.sim.unitaries import gate_unitary


class TestBasics:
    def test_initial_state(self):
        sv = Statevector(3)
        assert np.isclose(abs(sv.vector[0]), 1.0)
        assert np.isclose(sv.norm(), 1.0)

    def test_size_limits(self):
        with pytest.raises(ValueError):
            Statevector(0)
        with pytest.raises(ValueError):
            Statevector(25)

    def test_from_vector_round_trip(self):
        vec = np.zeros(8)
        vec[5] = 1.0  # |101> : q0=1, q2=1
        sv = Statevector.from_vector(vec)
        assert np.allclose(sv.vector, vec)
        assert sv.probability_of_one(0) == pytest.approx(1.0)
        assert sv.probability_of_one(1) == pytest.approx(0.0)
        assert sv.probability_of_one(2) == pytest.approx(1.0)

    def test_from_vector_bad_length(self):
        with pytest.raises(ValueError):
            Statevector.from_vector(np.ones(3))


class TestGateApplication:
    def test_x_flips(self):
        sv = Statevector(2)
        sv.apply_gate("x", [1])
        assert np.isclose(abs(sv.vector[2]), 1.0)

    def test_matrix_shape_checked(self):
        sv = Statevector(2)
        with pytest.raises(ValueError):
            sv.apply_matrix(np.eye(2), [0, 1])

    def test_duplicate_qubits_rejected(self):
        sv = Statevector(2)
        with pytest.raises(ValueError):
            sv.apply_matrix(np.eye(4), [0, 0])

    def test_cx_control_is_first_operand(self):
        sv = Statevector(2)
        sv.apply_gate("x", [0])
        sv.apply_gate("cx", [0, 1])
        assert np.isclose(abs(sv.vector[3]), 1.0)
        sv2 = Statevector(2)
        sv2.apply_gate("x", [1])
        sv2.apply_gate("cx", [0, 1])
        assert np.isclose(abs(sv2.vector[2]), 1.0)  # control 0 unset

    def test_nonadjacent_two_qubit_gate(self):
        sv = Statevector(3)
        sv.apply_gate("x", [2])
        sv.apply_gate("cx", [2, 0])
        assert np.isclose(abs(sv.vector[5]), 1.0)  # q0 and q2 set

    def test_matches_explicit_full_matrix(self, rng):
        # Apply a random 2q unitary on qubits (2, 0) of 3 and compare with
        # a manually-built 8x8 operator.
        from scipy.stats import unitary_group

        u = unitary_group.rvs(4, random_state=1234)
        sv = Statevector(3)
        for q in range(3):
            sv.apply_gate("h", [q])
        sv.apply_matrix(u, [2, 0])

        full = np.zeros((8, 8), dtype=complex)
        for i in range(8):
            b0, b1, b2 = i & 1, (i >> 1) & 1, (i >> 2) & 1
            col_in = b2 + 2 * b0  # little-endian over (q2, q0)
            for out in range(4):
                o2, o0 = out & 1, (out >> 1) & 1
                j = o0 + 2 * b1 + 4 * o2
                full[j, i] = u[out, col_in]
        expected = full @ (np.ones(8) / np.sqrt(8))
        assert np.allclose(sv.vector, expected)


class TestMeasurement:
    def test_probabilities_subset_order(self):
        sv = Statevector(2)
        sv.apply_gate("x", [1])
        assert np.allclose(sv.probabilities([1]), [0, 1])
        assert np.allclose(sv.probabilities([0]), [1, 0])
        assert np.allclose(sv.probabilities([1, 0]), [0, 1, 0, 0])

    def test_project_collapses(self):
        sv = Statevector(1)
        sv.apply_gate("h", [0])
        sv.project(0, 1)
        assert np.isclose(abs(sv.vector[1]), 1.0)

    def test_measure_statistics(self):
        rng = np.random.default_rng(0)
        ones = 0
        for _ in range(200):
            sv = Statevector(1, rng)
            sv.apply_gate("h", [0])
            ones += sv.measure(0)
        assert 60 < ones < 140

    def test_bell_measurements_correlated(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            sv = Statevector(2, rng)
            sv.apply_gate("h", [0])
            sv.apply_gate("cx", [0, 1])
            assert sv.measure(0) == sv.measure(1)

    def test_sample_counts_keys(self):
        sv = Statevector(2)
        sv.apply_gate("x", [0])
        counts = sv.sample_counts(100)
        # q0=1 should be rightmost bit
        assert counts == {"01": 100}

    def test_fidelity(self):
        a = Statevector(2)
        b = Statevector(2)
        assert a.fidelity(b) == pytest.approx(1.0)
        b.apply_gate("x", [0])
        assert a.fidelity(b) == pytest.approx(0.0)

    def test_density_matrix(self):
        sv = Statevector(1)
        sv.apply_gate("h", [0])
        rho = sv.density_matrix()
        assert np.allclose(rho, 0.5 * np.ones((2, 2)))


class TestCircuitSimulation:
    def test_ghz_distribution(self):
        circ = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        circ.measure_all()
        dist = ideal_distribution(circ)
        assert set(dist) == {"000", "111"}
        assert dist["000"] == pytest.approx(0.5)

    def test_distribution_uses_measured_qubits(self):
        circ = QuantumCircuit(3, 1).x(2).measure(2, 0)
        dist = ideal_distribution(circ)
        assert dist == {"1": pytest.approx(1.0)}

    def test_barriers_and_measures_skipped(self):
        circ = QuantumCircuit(2, 2).h(0).barrier().measure(0, 0)
        state = simulate_statevector(circ)
        assert np.isclose(state.norm(), 1.0)


_GATES_1Q = ["h", "x", "y", "z", "s", "t", "sx"]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_random_circuits_preserve_norm(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 5))
    sv = Statevector(n)
    for _ in range(30):
        if n >= 2 and rng.random() < 0.4:
            a, b = rng.choice(n, 2, replace=False)
            sv.apply_gate(["cx", "cz", "swap"][rng.integers(3)], [int(a), int(b)])
        else:
            sv.apply_gate(_GATES_1Q[rng.integers(len(_GATES_1Q))],
                          [int(rng.integers(n))])
    assert np.isclose(sv.norm(), 1.0, atol=1e-9)
    probs = sv.probabilities()
    assert np.isclose(probs.sum(), 1.0, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_probabilities_marginalize_consistently(seed):
    rng = np.random.default_rng(seed)
    sv = Statevector(3)
    for _ in range(15):
        if rng.random() < 0.5:
            a, b = rng.choice(3, 2, replace=False)
            sv.apply_gate("cx", [int(a), int(b)])
        else:
            sv.apply_gate("h", [int(rng.integers(3))])
    joint = sv.probabilities([0, 1, 2])
    for q in range(3):
        marginal = sv.probabilities([q])
        from_joint = np.zeros(2)
        for i, p in enumerate(joint):
            from_joint[(i >> q) & 1] += p
        assert np.allclose(marginal, from_joint, atol=1e-9)
