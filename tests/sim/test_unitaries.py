"""Unit tests for the gate unitary library."""

import math

import numpy as np
import pytest

from repro.sim import unitaries
from repro.sim.unitaries import (
    gate_unitary,
    pauli_matrix,
    two_qubit_pauli_labels,
)

ALL_FIXED = ["id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
             "cx", "cz", "swap"]


@pytest.mark.parametrize("name", ALL_FIXED)
def test_fixed_gates_are_unitary(name):
    u = gate_unitary(name)
    assert np.allclose(u @ u.conj().T, np.eye(u.shape[0]))


@pytest.mark.parametrize("name", ["rx", "ry", "rz", "u1"])
@pytest.mark.parametrize("angle", [0.0, 0.3, math.pi, -2.5])
def test_single_param_gates_are_unitary(name, angle):
    u = gate_unitary(name, (angle,))
    assert np.allclose(u @ u.conj().T, np.eye(2))


def test_u2_u3_relation():
    assert np.allclose(
        gate_unitary("u2", (0.4, 1.2)),
        gate_unitary("u3", (math.pi / 2, 0.4, 1.2)),
    )


def test_u2_hadamard():
    # u2(0, pi) is the Hadamard up to global phase.
    u = gate_unitary("u2", (0.0, math.pi))
    h = gate_unitary("h")
    phase = u[0, 0] / h[0, 0]
    assert np.allclose(u, phase * h)


def test_s_squared_is_z():
    s = gate_unitary("s")
    assert np.allclose(s @ s, gate_unitary("z"))


def test_sx_squared_is_x():
    sx = gate_unitary("sx")
    assert np.allclose(sx @ sx, gate_unitary("x"))


def test_rz_vs_u1_phase_relation():
    theta = 0.77
    rz = gate_unitary("rz", (theta,))
    u1 = gate_unitary("u1", (theta,))
    phase = np.exp(1j * theta / 2)
    assert np.allclose(u1, phase * rz)


def test_cx_truth_table():
    cx = gate_unitary("cx")
    # little-endian: basis index b1*2 + b0, control is qubit 0 (first listed)
    assert cx[1, 1] == 0  # |01> (q0=1) maps away
    assert cx[3, 1] == 1  # control set -> target flipped
    assert cx[0, 0] == 1
    assert cx[2, 2] == 1


def test_swap_conjugates_cx():
    cx = gate_unitary("cx")
    swap = gate_unitary("swap")
    reversed_cx = swap @ cx @ swap
    # reversed cx = control on second listed qubit
    expected = np.zeros((4, 4))
    for b0 in (0, 1):
        for b1 in (0, 1):
            i = b1 * 2 + b0
            j = ((b1 ^ 0) * 2 + (b0 ^ b1))  # control q1, target q0
            expected[j, i] = 1
    assert np.allclose(reversed_cx, expected)


def test_directives_have_no_unitary():
    with pytest.raises(KeyError):
        gate_unitary("barrier")
    with pytest.raises(KeyError):
        gate_unitary("measure")


class TestPauliMatrix:
    def test_single_labels(self):
        assert np.allclose(pauli_matrix("X"), unitaries.X)
        assert np.allclose(pauli_matrix("Z"), unitaries.Z)

    def test_two_qubit_label_ordering(self):
        # label position 0 acts on qubit 0 (least significant).
        xz = pauli_matrix("XZ")
        manual = np.kron(unitaries.Z, unitaries.X)
        assert np.allclose(xz, manual)

    def test_paulis_are_involutive(self):
        for label in two_qubit_pauli_labels(include_identity=True):
            p = pauli_matrix(label)
            assert np.allclose(p @ p, np.eye(4))

    def test_pauli_labels_count(self):
        assert len(two_qubit_pauli_labels()) == 15
        assert len(two_qubit_pauli_labels(include_identity=True)) == 16
        assert "II" not in two_qubit_pauli_labels()

    def test_pauli_traces_vanish(self):
        for label in two_qubit_pauli_labels():
            assert abs(np.trace(pauli_matrix(label))) < 1e-12
