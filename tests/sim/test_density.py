"""Tests for the exact density-matrix engine, cross-validating the
Monte-Carlo trajectory executor against its channel-exact limit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.channels import ReadoutModel, decay_probabilities
from repro.sim.density import DensityMatrix, exact_output_distribution
from repro.sim.statevector import Statevector
from repro.sim.trajectory import NoisyOp, TrajectorySimulator
from repro.sim.unitaries import gate_unitary


class TestBasics:
    def test_initial_state(self):
        rho = DensityMatrix(2)
        assert rho.trace() == pytest.approx(1.0)
        assert rho.purity() == pytest.approx(1.0)
        assert rho.matrix[0, 0] == pytest.approx(1.0)

    def test_size_limits(self):
        with pytest.raises(ValueError):
            DensityMatrix(0)
        with pytest.raises(ValueError):
            DensityMatrix(11)

    def test_unitary_preserves_purity(self):
        rho = DensityMatrix(2)
        rho.apply_unitary(gate_unitary("h"), (0,))
        rho.apply_unitary(gate_unitary("cx"), (0, 1))
        assert rho.purity() == pytest.approx(1.0)
        probs = rho.probabilities([0, 1])
        assert probs[0] == pytest.approx(0.5)
        assert probs[3] == pytest.approx(0.5)

    def test_matches_statevector_on_unitaries(self):
        rng = np.random.default_rng(3)
        ops = []
        for _ in range(15):
            if rng.random() < 0.5:
                ops.append(("h", (int(rng.integers(3)),)))
            else:
                a, b = rng.choice(3, 2, replace=False)
                ops.append(("cx", (int(a), int(b))))
        rho = DensityMatrix(3)
        sv = Statevector(3)
        for name, qubits in ops:
            rho.apply_unitary(gate_unitary(name), qubits)
            sv.apply_gate(name, qubits)
        assert np.allclose(rho.matrix, sv.density_matrix(), atol=1e-9)

    def test_depolarizing_mixes(self):
        rho = DensityMatrix(1)
        rho.apply_noisy_op(NoisyOp.gate("id", (0,), error_prob=0.75))
        # p=0.75 single-qubit depolarizing on |0>: fully mixed Z expectation
        assert rho.expectation("Z", (0,)) == pytest.approx(1 - 0.75 * 4 / 3)
        assert rho.trace() == pytest.approx(1.0)

    def test_amplitude_damping_channel(self):
        rho = DensityMatrix(1)
        rho.apply_unitary(gate_unitary("x"), (0,))
        rho.apply_noisy_op(NoisyOp.decay(0, gamma=0.4, p_z=0.0))
        probs = rho.probabilities([0])
        assert probs[1] == pytest.approx(0.6)

    def test_dephasing_kills_coherence(self):
        rho = DensityMatrix(1)
        rho.apply_unitary(gate_unitary("h"), (0,))
        rho.apply_noisy_op(NoisyOp.decay(0, gamma=0.0, p_z=0.5))
        assert rho.expectation("X", (0,)) == pytest.approx(0.0, abs=1e-9)
        assert rho.probabilities([0])[1] == pytest.approx(0.5)

    def test_expectation_on_subset(self):
        rho = DensityMatrix(3)
        rho.apply_unitary(gate_unitary("x"), (2,))
        assert rho.expectation("Z", (2,)) == pytest.approx(-1.0)
        assert rho.expectation("Z", (0,)) == pytest.approx(1.0)


class TestTrajectoryCrossValidation:
    def _random_stream(self, rng, num_qubits, length):
        ops = []
        for _ in range(length):
            r = rng.random()
            if r < 0.35:
                ops.append(NoisyOp.gate(
                    ["h", "s", "t", "x"][rng.integers(4)],
                    (int(rng.integers(num_qubits)),),
                    error_prob=float(rng.uniform(0, 0.05)),
                ))
            elif r < 0.7 and num_qubits >= 2:
                a, b = rng.choice(num_qubits, 2, replace=False)
                ops.append(NoisyOp.gate("cx", (int(a), int(b)),
                                        error_prob=float(rng.uniform(0, 0.1))))
            else:
                gamma, p_z = decay_probabilities(
                    float(rng.uniform(100, 2000)), 20_000.0, 15_000.0
                )
                ops.append(NoisyOp.decay(int(rng.integers(num_qubits)),
                                         gamma, p_z))
        return ops

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_trajectory_converges_to_exact(self, seed):
        rng = np.random.default_rng(seed)
        n = 2
        ops = self._random_stream(rng, n, 10)
        exact = exact_output_distribution(ops, n, list(range(n)))
        sim = TrajectorySimulator(n, seed=seed + 1)
        sampled = sim.output_distribution(ops, list(range(n)),
                                          trajectories=3000)
        assert np.abs(exact - sampled).max() < 0.05

    def test_exact_with_readout(self):
        ops = [NoisyOp.gate("x", (0,))]
        ro = ReadoutModel.uniform(2, 0.1)
        probs = exact_output_distribution(ops, 2, [0], readout=ro)
        assert probs[0] == pytest.approx(0.1)
        assert probs[1] == pytest.approx(0.9)

    def test_trace_preserved_through_stream(self):
        rng = np.random.default_rng(7)
        ops = self._random_stream(rng, 3, 25)
        rho = DensityMatrix(3)
        for op in ops:
            rho.apply_noisy_op(op)
            assert rho.trace() == pytest.approx(1.0, abs=1e-9)
