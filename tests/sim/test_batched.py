"""Batched-vs-scalar trajectory parity and bitwise batch invariance.

The contract the backend's determinism story rests on (ISSUE 7):

* the batched engine and the ``engine="scalar"`` reference produce
  distributions agreeing to 1e-12 (they draw identical per-trajectory
  streams; only the floating-point evaluation strategy differs);
* the *accumulated* distribution of one engine is bitwise identical for
  every batch size — each trajectory's contribution depends only on its
  global index, and rows are summed sequentially;
* routed through the backend, probabilities are bitwise identical for
  worker counts {1, 2, 4}.
"""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.device.backend import (
    MAX_TRAJECTORY_CHUNK,
    MIN_TRAJECTORY_CHUNK,
    NoisyBackend,
    plan_trajectory_chunks,
    resolve_sim_engine,
)
from repro.obs.registry import get_registry
from repro.sim.trajectory import (
    BatchedTrajectorySimulator,
    NoisyOp,
    trajectory_seed,
)


def _noisy_ops():
    """A stream exercising every event type: unitaries, depolarizing
    errors on 1q and 2q gates, amplitude damping, and dephasing."""
    return [
        NoisyOp.gate("h", (0,)),
        NoisyOp.gate("cx", (0, 1), error_prob=0.05),
        NoisyOp.decay(0, 0.04, 0.02),
        NoisyOp.gate("rz", (1,), params=(0.7,), error_prob=0.03),
        NoisyOp.decay(1, 0.05, 0.0),
        NoisyOp.gate("cx", (1, 2), error_prob=0.08),
        NoisyOp.decay(2, 0.0, 0.06),
        NoisyOp.gate("x", (2,)),
        NoisyOp.gate("cx", (0, 2), error_prob=0.02),
    ]


class TestEngineParity:
    def test_scalar_batched_parity_1e12(self):
        ops = _noisy_ops()
        batched = BatchedTrajectorySimulator(3, seed=17)
        scalar = BatchedTrajectorySimulator(3, seed=17, engine="scalar")
        b = batched.accumulate(ops, [0, 1, 2], 64)
        s = scalar.accumulate(ops, [0, 1, 2], 64)
        assert np.max(np.abs(b - s)) < 1e-12

    def test_decay_statistics_parity_1e12(self):
        # Decay-only stream: expectation values (P(1) per qubit) from the
        # two engines must agree to 1e-12 trajectory for trajectory.
        ops = [
            NoisyOp.gate("h", (0,)),
            NoisyOp.gate("h", (1,)),
            NoisyOp.decay(0, 0.3, 0.1),
            NoisyOp.decay(1, 0.15, 0.25),
            NoisyOp.decay(0, 0.2, 0.0),
        ]
        batched = BatchedTrajectorySimulator(2, seed=23)
        scalar = BatchedTrajectorySimulator(2, seed=23, engine="scalar")
        b = batched.output_distribution(ops, [0, 1], trajectories=200)
        s = scalar.output_distribution(ops, [0, 1], trajectories=200)
        assert np.max(np.abs(b - s)) < 1e-12
        # expectation value of each qubit being |1>
        for q in (0, 1):
            exp_b = sum(p for i, p in enumerate(b) if (i >> q) & 1)
            exp_s = sum(p for i, p in enumerate(s) if (i >> q) & 1)
            assert exp_b == pytest.approx(exp_s, abs=1e-12)

    def test_measured_qubit_reordering_matches(self):
        ops = _noisy_ops()
        batched = BatchedTrajectorySimulator(3, seed=5)
        scalar = BatchedTrajectorySimulator(3, seed=5, engine="scalar")
        b = batched.accumulate(ops, [2, 0], 32)
        s = scalar.accumulate(ops, [2, 0], 32)
        assert np.max(np.abs(b - s)) < 1e-12

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            BatchedTrajectorySimulator(2, engine="gpu")


class TestBatchSizeInvariance:
    @pytest.mark.parametrize("engine", ["batched", "scalar"])
    def test_bitwise_identical_across_batch_sizes(self, engine):
        ops = _noisy_ops()
        full = BatchedTrajectorySimulator(3, seed=11, engine=engine)
        reference = full.accumulate(ops, [0, 1, 2], 53)
        for batch_size in (1, 7, 32):
            sim = BatchedTrajectorySimulator(3, seed=11, engine=engine)
            got = sim.accumulate(ops, [0, 1, 2], 53, batch_size=batch_size)
            assert np.array_equal(got, reference), batch_size

    def test_trajectory_streams_keyed_on_global_index(self):
        root = np.random.SeedSequence(42)
        # The stream of trajectory i never depends on how many siblings
        # exist: it is a pure function of (root, i).
        a = np.random.default_rng(trajectory_seed(root, 5)).random(4)
        b = np.random.default_rng(trajectory_seed(root, 5)).random(4)
        c = np.random.default_rng(trajectory_seed(root, 6)).random(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_windowed_budget_matches_merge_order(self):
        # Splitting a budget into windows and merging in window order is
        # reproducible: the same plan gives the same bits every time.
        ops = _noisy_ops()
        sim = BatchedTrajectorySimulator(3, seed=11)
        plan = [(0, 20), (20, 20), (40, 13)]
        merged_1 = np.zeros(8)
        for start, count in plan:
            merged_1 += sim.accumulate(ops, [0, 1, 2], count,
                                       first_trajectory=start)
        merged_2 = np.zeros(8)
        for start, count in plan:
            merged_2 += sim.accumulate(ops, [0, 1, 2], count,
                                       first_trajectory=start)
        assert np.array_equal(merged_1, merged_2)

    def test_batch_metrics_recorded(self):
        registry = get_registry()
        before = registry.snapshot()["counters"].get("sim.batch.batches", 0.0)
        sim = BatchedTrajectorySimulator(2, seed=1)
        sim.accumulate([NoisyOp.gate("h", (0,))], [0], 20, batch_size=8)
        after = registry.snapshot()["counters"]["sim.batch.batches"]
        assert after - before == 3.0  # 8 + 8 + 4


class TestChunkPlanner:
    def test_small_budget_is_single_chunk(self):
        assert plan_trajectory_chunks(40, 2) == [(0, 40)]
        assert plan_trajectory_chunks(1, 20) == [(0, 1)]

    def test_plan_covers_budget_without_overlap(self):
        for trajectories in (1, 16, 255, 256, 257, 600, 1000):
            for n in (1, 2, 10, 18, 21):
                plan = plan_trajectory_chunks(trajectories, n)
                assert plan[0][0] == 0
                assert sum(count for _, count in plan) == trajectories
                for (s0, c0), (s1, _) in zip(plan, plan[1:]):
                    assert s1 == s0 + c0

    def test_chunk_size_shrinks_with_qubit_count(self):
        wide = plan_trajectory_chunks(1000, 2)   # 2**21 >> 2 caps at 256
        narrow = plan_trajectory_chunks(1000, 18)  # 2**21 >> 18 = 8 -> 16
        assert wide[0][1] == MAX_TRAJECTORY_CHUNK
        assert narrow[0][1] == MIN_TRAJECTORY_CHUNK

    def test_plan_never_depends_on_worker_count(self):
        # The planner takes no worker argument at all; assert the plan is
        # a pure function of its two inputs.
        assert plan_trajectory_chunks(600, 2) == plan_trajectory_chunks(600, 2)

    def test_rejects_empty_budget(self):
        with pytest.raises(ValueError):
            plan_trajectory_chunks(0, 2)


class TestBackendWorkerCounts:
    def _bell(self, device):
        qc = QuantumCircuit(device.num_qubits, 2, "bell")
        qc.h(0)
        qc.cx(0, 1)
        qc.measure(0, 0)
        qc.measure(1, 1)
        return qc

    def test_bitwise_identical_across_worker_counts(self, poughkeepsie):
        backend = NoisyBackend(poughkeepsie, day=0, seed=29)
        circuit = self._bell(poughkeepsie)
        # 600 trajectories = 3 chunks at the bell circuit's chunk size, so
        # multi-worker runs genuinely fan out.
        reference = backend.run(circuit, shots=64, trajectories=600,
                                workers=1)
        for workers in (2, 4):
            got = backend.run(circuit, shots=64, trajectories=600,
                              workers=workers)
            assert np.array_equal(reference.probabilities, got.probabilities)
            assert reference.counts == got.counts

    def test_engine_gauge_recorded(self, poughkeepsie):
        backend = NoisyBackend(poughkeepsie, day=0, seed=29)
        backend.run(self._bell(poughkeepsie), shots=16, trajectories=8)
        assert get_registry().snapshot()["gauges"]["sim.engine"] == 1.0

    def test_scalar_engine_backend_parity(self, poughkeepsie):
        circuit = self._bell(poughkeepsie)
        batched = NoisyBackend(poughkeepsie, day=0, seed=29)
        scalar = NoisyBackend(poughkeepsie, day=0, seed=29,
                              sim_engine="scalar")
        b = batched.run(circuit, shots=64, trajectories=48)
        s = scalar.run(circuit, shots=64, trajectories=48)
        assert np.max(np.abs(b.probabilities - s.probabilities)) < 1e-12

    def test_resolve_sim_engine_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "scalar")
        assert resolve_sim_engine() == "scalar"
        monkeypatch.delenv("REPRO_SIM_ENGINE")
        assert resolve_sim_engine() == "batched"
        with pytest.raises(ValueError):
            resolve_sim_engine("gpu")
