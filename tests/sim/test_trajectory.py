"""Tests for the Monte-Carlo trajectory executor."""

import math

import numpy as np
import pytest

from repro.sim.channels import ReadoutModel, decay_probabilities
from repro.sim.trajectory import NoisyOp, TrajectorySimulator


class TestNoisyOp:
    def test_gate_constructor(self):
        op = NoisyOp.gate("cx", (0, 1), error_prob=0.1)
        assert op.kind == "gate"
        assert op.error_prob == 0.1

    def test_decay_constructor(self):
        op = NoisyOp.decay(2, 0.05, 0.01)
        assert op.kind == "decay"
        assert op.qubits == (2,)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            NoisyOp("noise", (0,))

    def test_decay_single_qubit_only(self):
        with pytest.raises(ValueError):
            NoisyOp("decay", (0, 1))

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            NoisyOp.gate("x", (0,), error_prob=1.5)
        with pytest.raises(ValueError):
            NoisyOp.decay(0, -0.1, 0.0)


class TestNoiselessExecution:
    def test_bell_distribution(self):
        sim = TrajectorySimulator(2, seed=0)
        ops = [NoisyOp.gate("h", (0,)), NoisyOp.gate("cx", (0, 1))]
        probs = sim.output_distribution(ops, [0, 1], trajectories=4)
        assert probs[0] == pytest.approx(0.5)
        assert probs[3] == pytest.approx(0.5)

    def test_run_counts_sum_to_shots(self):
        sim = TrajectorySimulator(1, seed=1)
        counts = sim.run([NoisyOp.gate("h", (0,))], [0], shots=500,
                         trajectories=8)
        assert sum(counts.values()) == 500

    def test_trajectories_must_be_positive(self):
        sim = TrajectorySimulator(1, seed=0)
        with pytest.raises(ValueError):
            sim.output_distribution([], [0], trajectories=0)


class TestNoisePhysics:
    def test_t1_decay_converges_to_exponential(self):
        t1 = 50e3
        duration = 50e3
        gamma, p_z = decay_probabilities(duration, t1, 2 * t1)
        ops = [NoisyOp.gate("x", (0,)), NoisyOp.decay(0, gamma, p_z)]
        sim = TrajectorySimulator(1, seed=3)
        probs = sim.output_distribution(ops, [0], trajectories=4000)
        assert probs[1] == pytest.approx(math.exp(-1.0), abs=0.03)

    def test_dephasing_destroys_coherence_not_population(self):
        # |+> under pure dephasing keeps P(1) = 0.5 but loses <X>.
        ops = [NoisyOp.gate("h", (0,)), NoisyOp.decay(0, 0.0, 0.5),
               NoisyOp.gate("h", (0,))]
        sim = TrajectorySimulator(1, seed=5)
        probs = sim.output_distribution(ops, [0], trajectories=4000)
        # p_z = 0.5 means fully dephased: H|+/-> mixture -> uniform
        assert probs[1] == pytest.approx(0.5, abs=0.04)

    def test_depolarizing_rate_on_identity_gate(self):
        p = 0.3
        ops = [NoisyOp.gate("id", (0,), error_prob=p)]
        sim = TrajectorySimulator(1, seed=7)
        probs = sim.output_distribution(ops, [0], trajectories=6000)
        # error applies X, Y, or Z with equal chance; 2/3 of errors flip.
        assert probs[1] == pytest.approx(p * 2 / 3, abs=0.03)

    def test_two_qubit_depolarizing_spreads(self):
        p = 1.0  # always an error
        ops = [NoisyOp.gate("cx", (0, 1), error_prob=p)]
        sim = TrajectorySimulator(2, seed=9)
        probs = sim.output_distribution(ops, [0, 1], trajectories=4000)
        # 15 Paulis uniformly: 00 remains only for ZI, IZ, ZZ -> 3/15
        assert probs[0] == pytest.approx(3 / 15, abs=0.03)

    def test_decay_on_ground_state_is_identity(self):
        ops = [NoisyOp.decay(0, 0.9, 0.0)]
        sim = TrajectorySimulator(1, seed=11)
        probs = sim.output_distribution(ops, [0], trajectories=50)
        assert probs[0] == pytest.approx(1.0)


class TestReadout:
    def test_readout_applied_to_distribution(self):
        ro = ReadoutModel.uniform(1, 0.1)
        sim = TrajectorySimulator(1, seed=13)
        probs = sim.output_distribution(
            [NoisyOp.gate("x", (0,))], [0], trajectories=5, readout=ro
        )
        assert probs[0] == pytest.approx(0.1)
        assert probs[1] == pytest.approx(0.9)

    def test_readout_restricted_to_measured_qubits(self):
        ro = ReadoutModel((0.0, 0.25), (0.0, 0.25))
        sim = TrajectorySimulator(2, seed=15)
        probs = sim.output_distribution(
            [NoisyOp.gate("x", (1,))], [1], trajectories=5, readout=ro
        )
        assert probs[0] == pytest.approx(0.25)
