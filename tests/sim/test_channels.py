"""Unit and property tests for noise channels."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.channels import (
    ReadoutModel,
    amplitude_damping_kraus,
    counts_to_distribution,
    decay_probabilities,
    depolarizing_kraus,
    distribution_to_counts,
    phase_damping_kraus,
    two_qubit_depolarizing_paulis,
)


def assert_trace_preserving(kraus_ops):
    dim = kraus_ops[0].shape[0]
    total = sum(k.conj().T @ k for k in kraus_ops)
    assert np.allclose(total, np.eye(dim), atol=1e-12)


class TestKraus:
    @pytest.mark.parametrize("p", [0.0, 0.01, 0.3, 1.0])
    @pytest.mark.parametrize("n", [1, 2])
    def test_depolarizing_trace_preserving(self, p, n):
        assert_trace_preserving(depolarizing_kraus(p, n))

    def test_depolarizing_kraus_count(self):
        assert len(depolarizing_kraus(0.1, 1)) == 4
        assert len(depolarizing_kraus(0.1, 2)) == 16

    @pytest.mark.parametrize("gamma", [0.0, 0.2, 0.9, 1.0])
    def test_amplitude_damping_trace_preserving(self, gamma):
        assert_trace_preserving(amplitude_damping_kraus(gamma))

    @pytest.mark.parametrize("lam", [0.0, 0.5, 1.0])
    def test_phase_damping_trace_preserving(self, lam):
        assert_trace_preserving(phase_damping_kraus(lam))

    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError):
            depolarizing_kraus(1.5)
        with pytest.raises(ValueError):
            amplitude_damping_kraus(-0.1)
        with pytest.raises(ValueError):
            phase_damping_kraus(2.0)

    def test_amplitude_damping_action(self):
        # |1><1| decays to (1-g)|1><1| + g|0><0|.
        gamma = 0.3
        rho = np.array([[0.0, 0.0], [0.0, 1.0]], dtype=complex)
        out = sum(k @ rho @ k.conj().T for k in amplitude_damping_kraus(gamma))
        assert out[0, 0] == pytest.approx(gamma)
        assert out[1, 1] == pytest.approx(1 - gamma)

    def test_depolarizing_contracts_bloch_vector(self):
        p = 0.2
        rho = np.array([[1.0, 0.0], [0.0, 0.0]], dtype=complex)  # |0><0|
        out = sum(k @ rho @ k.conj().T for k in depolarizing_kraus(p, 1))
        # Z expectation shrinks by (1 - 4p/3) for this parametrization.
        z_exp = float(np.real(out[0, 0] - out[1, 1]))
        assert z_exp == pytest.approx(1 - 4 * p / 3)


class TestDecayProbabilities:
    def test_zero_duration(self):
        assert decay_probabilities(0.0, 50e3, 70e3) == (0.0, 0.0)

    def test_one_t1(self):
        gamma, _ = decay_probabilities(50e3, 50e3, 100e3)
        assert gamma == pytest.approx(1 - math.exp(-1))

    def test_t2_at_limit_means_no_dephasing(self):
        _, p_z = decay_probabilities(10e3, 50e3, 100e3)  # T2 = 2*T1
        assert p_z == 0.0

    def test_pure_dephasing_positive_when_t2_small(self):
        _, p_z = decay_probabilities(10e3, 50e3, 20e3)
        assert 0.0 < p_z < 0.5

    def test_monotone_in_duration(self):
        g1, z1 = decay_probabilities(5e3, 40e3, 30e3)
        g2, z2 = decay_probabilities(20e3, 40e3, 30e3)
        assert g2 > g1
        assert z2 > z1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            decay_probabilities(-1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            decay_probabilities(1.0, 0.0, 1.0)


class TestReadoutModel:
    def test_uniform_and_ideal(self):
        ro = ReadoutModel.uniform(3, 0.05)
        assert ro.num_qubits == 3
        ideal = ReadoutModel.ideal(2)
        assert np.allclose(ideal.confusion_matrix([0, 1]), np.eye(4))

    def test_validation(self):
        with pytest.raises(ValueError):
            ReadoutModel((0.1,), (0.1, 0.2))
        with pytest.raises(ValueError):
            ReadoutModel((1.5,), (0.1,))

    def test_confusion_matrix_1q(self):
        ro = ReadoutModel((0.1,), (0.2,))
        m = ro.confusion_matrix_1q(0)
        assert m[1, 0] == pytest.approx(0.1)  # read 1 given 0
        assert m[0, 1] == pytest.approx(0.2)  # read 0 given 1
        assert np.allclose(m.sum(axis=0), 1.0)

    def test_joint_confusion_is_column_stochastic(self):
        ro = ReadoutModel((0.1, 0.03), (0.2, 0.07))
        m = ro.confusion_matrix([0, 1])
        assert np.allclose(m.sum(axis=0), 1.0)

    def test_apply_to_distribution(self):
        ro = ReadoutModel.uniform(1, 0.1)
        out = ro.apply_to_distribution(np.array([1.0, 0.0]), [0])
        assert np.allclose(out, [0.9, 0.1])

    def test_apply_checks_length(self):
        ro = ReadoutModel.uniform(2, 0.1)
        with pytest.raises(ValueError):
            ro.apply_to_distribution(np.array([1.0, 0.0]), [0, 1])

    def test_restrict(self):
        ro = ReadoutModel((0.1, 0.2, 0.3), (0.4, 0.5, 0.6))
        sub = ro.restrict([2, 0])
        assert sub.p1_given_0 == (0.3, 0.1)
        assert sub.p0_given_1 == (0.6, 0.4)


class TestCountConversions:
    def test_counts_to_distribution(self):
        probs = counts_to_distribution({"00": 75, "11": 25}, 2)
        assert probs[0] == pytest.approx(0.75)
        assert probs[3] == pytest.approx(0.25)

    def test_counts_validation(self):
        with pytest.raises(ValueError):
            counts_to_distribution({}, 2)
        with pytest.raises(ValueError):
            counts_to_distribution({"0": 5}, 2)

    def test_distribution_to_counts_total(self):
        rng = np.random.default_rng(0)
        counts = distribution_to_counts(np.array([0.5, 0.5]), 1000, rng)
        assert sum(counts.values()) == 1000

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_round_trip_preserves_mass(self, seed):
        rng = np.random.default_rng(seed)
        probs = rng.random(8)
        probs /= probs.sum()
        counts = distribution_to_counts(probs, 5000, rng)
        back = counts_to_distribution(counts, 3)
        assert np.allclose(back.sum(), 1.0)
        assert np.abs(back - probs).max() < 0.05


def test_two_qubit_depolarizing_paulis_complete():
    labels = two_qubit_depolarizing_paulis()
    assert len(labels) == 15
    assert len(set(labels)) == 15
