"""Content-keyed result cache: hits, misses, eviction, and key content."""

import dataclasses

import pytest

from repro.device.presets import ibmq_poughkeepsie
from repro.experiments.common import campaign_cache, characterized_report
from repro.pipeline.cache import (
    ResultCache,
    campaign_cache_key,
    device_fingerprint,
)
from repro.rb.executor import RBConfig


class TestResultCache:
    def test_hit_miss_accounting(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_get_or_compute(self):
        cache = ResultCache(max_entries=4)
        calls = []
        value = cache.get_or_compute("k", lambda: calls.append(1) or "v")
        again = cache.get_or_compute("k", lambda: calls.append(1) or "v2")
        assert value == again == "v"
        assert calls == [1]

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a": now "b" is least recent
        cache.put("c", 3)
        assert cache.keys() == ["a", "c"]
        assert cache.stats.evictions == 1
        assert "b" not in cache

    def test_max_entries_positive(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestContentKeys:
    def test_fingerprint_is_stable(self, poughkeepsie):
        assert device_fingerprint(poughkeepsie) == \
            device_fingerprint(ibmq_poughkeepsie())

    def test_fingerprint_sees_content(self, poughkeepsie):
        renamed = ibmq_poughkeepsie()
        renamed.name = "poughkeepsie-prime"
        assert device_fingerprint(renamed) != device_fingerprint(poughkeepsie)

    def test_key_includes_rb_config(self, poughkeepsie):
        """The historical bug: (name, day, seed) ignored the RB sizing."""
        small = RBConfig(num_sequences=3)
        large = dataclasses.replace(small, num_sequences=30)
        k1 = campaign_cache_key(poughkeepsie, day=0, seed=7, rb_config=small)
        k2 = campaign_cache_key(poughkeepsie, day=0, seed=7, rb_config=large)
        assert k1 != k2
        assert k1 == campaign_cache_key(poughkeepsie, day=0, seed=7,
                                        rb_config=RBConfig(num_sequences=3))

    def test_key_includes_day_seed_policy(self, poughkeepsie):
        config = RBConfig(num_sequences=3)
        base = campaign_cache_key(poughkeepsie, day=0, seed=7, rb_config=config)
        assert base != campaign_cache_key(poughkeepsie, day=1, seed=7,
                                          rb_config=config)
        assert base != campaign_cache_key(poughkeepsie, day=0, seed=8,
                                          rb_config=config)
        assert base != campaign_cache_key(poughkeepsie, day=0, seed=7,
                                          rb_config=config, policy="one_hop")


class TestCharacterizedReportMemo:
    def test_same_inputs_hit_cache(self, poughkeepsie, fast_rb_config):
        campaign_cache.clear()
        r1 = characterized_report(poughkeepsie, rb_config=fast_rb_config, seed=5)
        r2 = characterized_report(poughkeepsie, rb_config=fast_rb_config, seed=5)
        assert r1 is r2
        # The cached outcome carries the campaign's per-stage trace.
        assert r1.trace.pass_names == [
            "plan", "independent_rb", "pair_srb", "merge",
        ]
        assert r1.trace.counter("rb.experiments") > 0

    def test_different_rb_config_recomputes(self, poughkeepsie,
                                            fast_rb_config):
        campaign_cache.clear()
        r1 = characterized_report(poughkeepsie, rb_config=fast_rb_config, seed=5)
        other = dataclasses.replace(fast_rb_config, num_sequences=4)
        r2 = characterized_report(poughkeepsie, rb_config=other, seed=5)
        assert r1 is not r2


class TestSingleFlight:
    """Concurrency safety of get_or_compute (lock + single-flight)."""

    def test_concurrent_misses_compute_once(self):
        import threading

        cache = ResultCache(max_entries=4)
        calls = []
        gate = threading.Event()

        def compute():
            calls.append(threading.get_ident())
            gate.wait(timeout=5.0)
            return "value"

        results = [None] * 8

        def worker(i):
            results[i] = cache.get_or_compute("k", compute)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        # Let followers pile up on the in-flight entry, then release the
        # leader's computation.
        import time
        time.sleep(0.05)
        gate.set()
        for t in threads:
            t.join(timeout=5.0)
        assert results == ["value"] * 8
        assert len(calls) == 1          # single-flight: one compute
        assert cache.stats.misses == 1  # only the leader missed
        assert cache.stats.hits >= 7    # followers count as hits

    def test_leader_exception_propagates_to_followers(self):
        import threading

        cache = ResultCache(max_entries=4)
        gate = threading.Event()

        def compute():
            gate.wait(timeout=5.0)
            raise RuntimeError("leader failed")

        errors = []

        def worker():
            try:
                cache.get_or_compute("k", compute)
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        import time
        time.sleep(0.05)
        gate.set()
        for t in threads:
            t.join(timeout=5.0)
        assert errors == ["leader failed"] * 4
        # A failed computation caches nothing; the next call recomputes.
        assert cache.get_or_compute("k", lambda: "recovered") == "recovered"

    def test_distinct_keys_compute_concurrently(self):
        import threading

        cache = ResultCache(max_entries=4)
        started = threading.Barrier(2, timeout=5.0)

        def make(value):
            def compute():
                # Both computations must be in flight at once: if the lock
                # were held during compute(), this barrier would deadlock.
                started.wait()
                return value
            return compute

        results = {}

        def worker(key):
            results[key] = cache.get_or_compute(key, make(key))

        threads = [threading.Thread(target=worker, args=(k,)) for k in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        assert results == {"a": "a", "b": "b"}

    def test_plain_operations_remain_correct(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        assert "a" in cache
        assert len(cache) == 1
        assert cache.keys() == ["a"]
        cache.clear()
        assert len(cache) == 0


class TestSingleFlightRecovery:
    """A failed compute() must never wedge the in-flight latch."""

    def test_exception_clears_latch_for_next_caller(self):
        cache = ResultCache()
        calls = []

        def failing():
            calls.append(1)
            raise RuntimeError("compute blew up")

        with pytest.raises(RuntimeError, match="blew up"):
            cache.get_or_compute("k", failing)

        # The next caller must recompute, not block forever or receive a
        # cached error.
        assert cache.get_or_compute("k", lambda: 42) == 42
        assert len(calls) == 1
        assert cache.get("k") == 42

    def test_sequential_failures_each_recompute(self):
        cache = ResultCache()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ValueError("transient")
            return "finally"

        for _ in range(2):
            with pytest.raises(ValueError):
                cache.get_or_compute("k", flaky)
        assert cache.get_or_compute("k", flaky) == "finally"
        assert len(attempts) == 3

    def test_latch_cleared_even_for_base_exception(self):
        cache = ResultCache()

        def interrupted():
            raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            cache.get_or_compute("k", interrupted)
        assert cache.get_or_compute("k", lambda: 1) == 1

    def test_reentrant_compute_raises_instead_of_deadlocking(self):
        cache = ResultCache()

        def recursive():
            return cache.get_or_compute("k", recursive)

        with pytest.raises(RuntimeError, match="re-entrant"):
            cache.get_or_compute("k", recursive)
        # and the latch is cleared afterwards
        assert cache.get_or_compute("k", lambda: "ok") == "ok"
