"""Pass ordering, context threading, and policy resolution."""

import pytest

from repro.pipeline.context import PassContext
from repro.pipeline.passes import (
    DecomposePass,
    HardwareSchedulePass,
    LayoutPass,
    Pass,
    RoutingPass,
    XtalkSchedulePass,
    canonical_policy,
    compile_passes,
    scheduling_pass,
)
from repro.pipeline.runner import Pipeline, build_compile_pipeline
from repro.workloads.swap import swap_benchmark


@pytest.fixture()
def swap_circuit(poughkeepsie):
    return swap_benchmark(poughkeepsie.coupling, 0, 13,
                          path=(0, 5, 10, 11, 12, 13)).circuit


class TestPipelineOrdering:
    def test_passes_run_in_order(self, poughkeepsie):
        order = []

        class Probe(Pass):
            def __init__(self, tag):
                self.name = f"probe[{tag}]"
                self.tag = tag

            def run(self, context):
                order.append(self.tag)
                return {f"probe.{self.tag}": 1.0}

        pipeline = Pipeline([Probe("a"), Probe("b"), Probe("c")], name="probes")
        context = PassContext(device=poughkeepsie)
        pipeline.run(context)
        assert order == ["a", "b", "c"]
        assert context.trace.pass_names == ["probe[a]", "probe[b]", "probe[c]"]
        assert pipeline.last_trace is context.trace

    def test_context_threads_between_passes(self, poughkeepsie, pk_report,
                                            swap_circuit):
        context = PassContext(device=poughkeepsie, report=pk_report,
                              circuit=swap_circuit)
        build_compile_pipeline("xtalk").run(context)
        # Every stage left its mark on the one shared context.
        assert context.source_circuit is swap_circuit
        assert context.circuit is not swap_circuit
        assert context.layout is not None and len(context.layout) == 20
        assert context.scheduled is not None
        assert context.duration is not None and context.duration > 0
        assert "hardware_schedule" in context.artifacts
        # The evolved circuit kept the source name (+ scheduler suffix).
        assert context.circuit.name.startswith(swap_circuit.name)

    def test_compile_passes_shape(self):
        passes = compile_passes("xtalk")
        assert [type(p) for p in passes] == [
            LayoutPass, RoutingPass, DecomposePass, XtalkSchedulePass,
            HardwareSchedulePass,
        ]

    def test_layout_defaults_to_identity(self, poughkeepsie, swap_circuit):
        context = PassContext(device=poughkeepsie, circuit=swap_circuit)
        LayoutPass().run(context)
        assert context.initial_layout == list(range(swap_circuit.num_qubits))

    def test_layout_validates_length(self, poughkeepsie, swap_circuit):
        context = PassContext(device=poughkeepsie, circuit=swap_circuit,
                              initial_layout=[0, 1])
        with pytest.raises(ValueError, match="every logical qubit"):
            LayoutPass().run(context)

    def test_xtalk_pass_requires_report(self, poughkeepsie, swap_circuit):
        context = PassContext(device=poughkeepsie, circuit=swap_circuit)
        with pytest.raises(ValueError, match="report"):
            XtalkSchedulePass().run(context)


class TestPolicyResolution:
    @pytest.mark.parametrize("alias,canonical", [
        ("XtalkSched", "xtalk"), ("ParSched", "par"),
        ("SerialSched", "serial"), ("DisableSched", "disable"),
        ("xtalk", "xtalk"), ("par", "par"),
    ])
    def test_canonical_policy(self, alias, canonical):
        assert canonical_policy(alias) == canonical
        assert scheduling_pass(alias).policy == canonical

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            canonical_policy("magic")
