"""Trace structures, the JSON export schema, and the collector hook."""

import json

from repro.pipeline.trace import (
    TRACE_COLLECTION_SCHEMA,
    TRACE_SCHEMA,
    PassSpan,
    PipelineTrace,
    SpanRecorder,
    TraceCollector,
)


def sample_trace():
    recorder = SpanRecorder("compile[test]")
    with recorder.span("routing") as span:
        span.counters["routing.swaps_inserted"] = 4.0
    with recorder.span("schedule[xtalk]") as span:
        span.counters.update({
            "schedule.serialized_pairs": 2.0,
            "smt.solve_seconds": 0.25,
        })
    return recorder.finish()


class TestPipelineTrace:
    def test_counters_aggregate_across_spans(self):
        trace = sample_trace()
        assert trace.counter("routing.swaps_inserted") == 4.0
        assert trace.counter("schedule.serialized_pairs") == 2.0
        assert trace.counter("missing", default=-1.0) == -1.0
        assert trace.total_seconds == sum(s.seconds for s in trace.spans)

    def test_span_lookup(self):
        trace = sample_trace()
        assert trace.span("routing").counters["routing.swaps_inserted"] == 4.0
        try:
            trace.span("nope")
        except KeyError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected KeyError")

    def test_format_lists_every_pass_and_counter(self):
        text = sample_trace().format()
        assert "compile[test]" in text
        assert "routing" in text and "schedule[xtalk]" in text
        assert "smt.solve_seconds" in text

    def test_span_add(self):
        span = PassSpan("s")
        span.add("n")
        span.add("n", 2.0)
        assert span.counters["n"] == 3.0


class TestTraceJsonSchema:
    def test_trace_document(self):
        doc = json.loads(sample_trace().to_json())
        assert doc["schema"] == TRACE_SCHEMA == "repro.obs.trace/v2"
        assert doc["name"] == "compile[test]"
        assert isinstance(doc["total_seconds"], float)
        assert doc["counters"]["routing.swaps_inserted"] == 4.0
        assert [s["name"] for s in doc["spans"]] == [
            "routing", "schedule[xtalk]",
        ]
        for s in doc["spans"]:
            assert {"name", "seconds", "counters"} <= set(s)
            assert s["seconds"] >= 0.0

    def test_collection_document(self):
        with TraceCollector() as collector:
            sample_trace()
            sample_trace()
        doc = json.loads(collector.to_json())
        assert doc["schema"] == TRACE_COLLECTION_SCHEMA
        assert doc["num_traces"] == len(collector) == 2
        assert doc["counters"]["routing.swaps_inserted"] == 8.0
        assert all(t["schema"] == TRACE_SCHEMA for t in doc["traces"])

    def test_round_trips_through_json(self):
        doc = sample_trace().to_dict()
        assert json.loads(json.dumps(doc)) == doc


class TestTraceCollector:
    def test_collects_only_while_active(self):
        sample_trace()                      # emitted before: not collected
        with TraceCollector() as collector:
            inner = sample_trace()
        sample_trace()                      # emitted after: not collected
        assert collector.traces == [inner]

    def test_nested_collectors_both_receive(self):
        with TraceCollector() as outer:
            with TraceCollector() as inner:
                trace = sample_trace()
        assert outer.traces == [trace]
        assert inner.traces == [trace]
