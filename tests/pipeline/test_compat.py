"""The compat contract: `compile_circuit` through the pass pipeline must be
instruction-for-instruction identical to the historical monolithic flow.

The reference below is a line-by-line transcription of the pre-pipeline
``compile_circuit`` (route -> decompose -> schedule -> hardware-schedule);
it must never be "fixed" to track the pipeline — it *is* the seed's
behaviour.
"""

import pytest

from repro.compiler import compile_circuit
from repro.core.scheduling.baselines import disable_sched, par_sched, serial_sched
from repro.core.scheduling.xtalk import XtalkScheduler
from repro.transpiler.decompose import decompose_to_basis
from repro.transpiler.routing import route_circuit
from repro.transpiler.scheduling import hardware_schedule
from repro.workloads.swap import swap_benchmark

SCHEDULERS = ("xtalk", "par", "serial", "disable")


def seed_compile(circuit, device, report, scheduler, omega=0.5,
                 initial_layout=None, day=0):
    """The historical implementation, verbatim."""
    routed, layout = route_circuit(circuit, device.coupling,
                                   initial_layout=initial_layout)
    lowered = decompose_to_basis(routed)
    lowered.name = circuit.name
    calibration = device.calibration(day)
    if scheduler == "xtalk":
        xs = XtalkScheduler(calibration, report, omega=omega)
        final = xs.schedule(lowered).circuit
    elif scheduler == "par":
        final = par_sched(lowered)
    elif scheduler == "serial":
        final = serial_sched(lowered)
    else:
        final = disable_sched(lowered, device.coupling)
    duration = hardware_schedule(final, calibration.durations).makespan()
    return final, tuple(layout), duration


def quickstart_circuit(device):
    """The quickstart's SWAP benchmark across the crosstalk-prone middle."""
    return swap_benchmark(device.coupling, 0, 13,
                          path=(0, 5, 10, 11, 12, 13)).circuit


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_identical_to_seed_flow(poughkeepsie, pk_report, scheduler):
    circuit = quickstart_circuit(poughkeepsie)
    expected, expected_layout, expected_duration = seed_compile(
        circuit, poughkeepsie, pk_report, scheduler
    )
    result = compile_circuit(circuit, poughkeepsie, pk_report,
                             scheduler=scheduler)

    assert result.layout == expected_layout
    assert result.duration == expected_duration
    assert result.circuit.name == expected.name
    assert len(result.circuit) == len(expected)
    for got, want in zip(result.circuit, expected):
        assert got.name == want.name
        assert tuple(got.qubits) == tuple(want.qubits)
        assert got.clbit == want.clbit
        assert tuple(got.params) == tuple(want.params)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_trace_attached(poughkeepsie, pk_report, scheduler):
    result = compile_circuit(quickstart_circuit(poughkeepsie), poughkeepsie,
                             pk_report, scheduler=scheduler)
    trace = result.trace
    assert trace is not None
    assert trace.pipeline == f"compile[{scheduler}]"
    assert trace.pass_names == [
        "layout", "routing", "decompose", f"schedule[{scheduler}]",
        "hardware_schedule",
    ]
    assert trace.counter("hardware.makespan_ns") == result.duration
    assert all(span.seconds >= 0.0 for span in trace.spans)
    if scheduler == "xtalk":
        assert trace.counter("schedule.candidate_pairs") >= 1
        assert trace.counter("smt.solve_seconds") > 0
