"""Tests for readout-error mitigation."""

import numpy as np
import pytest

from repro.device.backend import NoisyBackend
from repro.metrics.readout import (
    measure_readout_model,
    mitigate_counts,
    mitigate_distribution,
)
from repro.sim.channels import ReadoutModel


class TestMitigateDistribution:
    def test_exact_inversion(self):
        ro = ReadoutModel.uniform(2, 0.06)
        confusion = ro.confusion_matrix([0, 1])
        true = np.array([0.5, 0.0, 0.0, 0.5])
        measured = confusion @ true
        recovered = mitigate_distribution(measured, confusion)
        assert np.allclose(recovered, true, atol=1e-9)

    def test_identity_confusion_noop(self):
        probs = np.array([0.25, 0.75])
        out = mitigate_distribution(probs, np.eye(2))
        assert np.allclose(out, probs)

    def test_clips_to_simplex(self):
        # measured distribution inconsistent with the confusion matrix
        ro = ReadoutModel.uniform(1, 0.2)
        confusion = ro.confusion_matrix([0])
        measured = np.array([0.05, 0.95])  # "too pure" for 20% error
        recovered = mitigate_distribution(measured, confusion)
        assert recovered.min() >= 0.0
        assert recovered.sum() == pytest.approx(1.0)

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            mitigate_distribution(np.array([1.0, 0.0]), np.eye(4))


class TestMitigateCounts:
    def test_round_trip(self):
        ro = ReadoutModel.uniform(6, 0.0)
        out = mitigate_counts({"0": 30, "1": 70}, [5], ro)
        assert out[1] == pytest.approx(0.7)

    def test_with_noise(self):
        ro = ReadoutModel.uniform(2, 0.1)
        true = np.array([0.8, 0.0, 0.0, 0.2])
        measured = ro.confusion_matrix([0, 1]) @ true
        counts = {format(i, "02b"): int(round(p * 10_000))
                  for i, p in enumerate(measured)}
        out = mitigate_counts(counts, [0, 1], ro)
        assert np.allclose(out, true, atol=1e-3)


class TestMeasuredModel:
    def test_recovers_device_readout(self, poughkeepsie):
        backend = NoisyBackend(poughkeepsie, seed=3)
        cal = poughkeepsie.calibration()
        measured = measure_readout_model(backend, [4, 7], shots=4096)
        assert measured.p1_given_0[0] == pytest.approx(
            cal.readout_error[4], abs=0.02
        )
        assert measured.p0_given_1[1] == pytest.approx(
            cal.readout_error[7], abs=0.02
        )
