"""Tests for two-qubit state tomography."""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.metrics.tomography import (
    bell_state_vector,
    density_from_expectations,
    expectations_from_distributions,
    run_state_tomography,
    state_fidelity,
    tomography_circuits,
    tomography_settings,
)
from repro.sim.statevector import simulate_statevector


def noiseless_runner(circ):
    """Execute a tomography circuit noiselessly, return clbit distribution."""
    measured = sorted(
        ((i.clbit, i.qubits[0]) for i in circ if i.is_measure)
    )
    qubits = [q for _, q in measured]
    state = simulate_statevector(circ)
    return state.probabilities(qubits)


class TestSettings:
    def test_nine_settings(self):
        settings = tomography_settings()
        assert len(settings) == 9
        assert ("X", "Z") in settings

    def test_circuits_structure(self):
        base = QuantumCircuit(3).h(0).cx(0, 1)
        circuits = tomography_circuits(base, 0, 1)
        assert len(circuits) == 9
        zz = circuits[("Z", "Z")]
        assert sum(1 for i in zz if i.is_measure) == 2
        xx = circuits[("X", "X")]
        assert xx.count_ops()["h"] >= 3  # base H + two rotations


class TestReconstruction:
    def _tomography_of(self, base, qa=0, qb=1, target=None):
        return run_state_tomography(noiseless_runner, base, qa, qb,
                                    target=target)

    def test_bell_state_perfect_fidelity(self):
        base = QuantumCircuit(2).h(0).cx(0, 1)
        result = self._tomography_of(base)
        assert result.fidelity == pytest.approx(1.0, abs=1e-9)
        assert result.error_rate == pytest.approx(0.0, abs=1e-9)

    def test_product_state_against_bell(self):
        base = QuantumCircuit(2)  # |00>
        result = self._tomography_of(base)
        assert result.fidelity == pytest.approx(0.5, abs=1e-9)

    def test_orthogonal_state(self):
        base = QuantumCircuit(2).x(0)  # |01> orthogonal-ish to Bell
        result = self._tomography_of(base)
        assert result.fidelity == pytest.approx(0.0, abs=1e-9)

    def test_custom_target(self):
        base = QuantumCircuit(2).x(0)
        target = np.array([0, 1, 0, 0], dtype=complex)
        result = self._tomography_of(base, target=target)
        assert result.fidelity == pytest.approx(1.0, abs=1e-9)

    def test_rho_is_physical(self):
        base = QuantumCircuit(2).h(0).t(0).cx(0, 1).s(1)
        result = self._tomography_of(base)
        vals = np.linalg.eigvalsh(result.rho)
        assert vals.min() >= -1e-10
        assert np.trace(result.rho).real == pytest.approx(1.0)

    def test_nonadjacent_qubits(self):
        base = QuantumCircuit(4).h(1).cx(1, 3)
        result = run_state_tomography(noiseless_runner, base, 1, 3)
        assert result.fidelity == pytest.approx(1.0, abs=1e-9)


class TestExpectations:
    def test_identity_expectation_is_one(self):
        base = QuantumCircuit(2).h(0).cx(0, 1)
        dists = {
            s: noiseless_runner(c)
            for s, c in tomography_circuits(base, 0, 1).items()
        }
        exps = expectations_from_distributions(dists)
        assert exps[("I", "I")] == 1.0

    def test_bell_correlations(self):
        base = QuantumCircuit(2).h(0).cx(0, 1)
        dists = {
            s: noiseless_runner(c)
            for s, c in tomography_circuits(base, 0, 1).items()
        }
        exps = expectations_from_distributions(dists)
        assert exps[("X", "X")] == pytest.approx(1.0)
        assert exps[("Z", "Z")] == pytest.approx(1.0)
        assert exps[("Y", "Y")] == pytest.approx(-1.0)
        assert exps[("Z", "I")] == pytest.approx(0.0, abs=1e-9)

    def test_density_from_maximally_mixed(self):
        exps = {("I", "I"): 1.0}
        for pa in "XYZ":
            exps[(pa, "I")] = 0.0
            exps[("I", pa)] = 0.0
            for pb in "XYZ":
                exps[(pa, pb)] = 0.0
        rho = density_from_expectations(exps)
        assert np.allclose(rho, np.eye(4) / 4)


class TestFidelityHelpers:
    def test_state_fidelity_normalizes_target(self):
        rho = np.outer(bell_state_vector(), bell_state_vector())
        assert state_fidelity(rho, 2.0 * bell_state_vector()) == pytest.approx(1.0)
