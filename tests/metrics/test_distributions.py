"""Tests for distribution-level metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.distributions import (
    cross_entropy,
    cross_entropy_loss,
    hellinger_distance,
    ideal_cross_entropy,
    success_probability,
    total_variation_distance,
)


class TestCrossEntropy:
    def test_self_cross_entropy_is_entropy(self):
        dist = {"00": 0.5, "11": 0.5}
        assert ideal_cross_entropy(dist) == pytest.approx(math.log(2))

    def test_uniform_measured(self):
        ideal = {"00": 0.5, "11": 0.5}
        measured = {"00": 0.25, "01": 0.25, "10": 0.25, "11": 0.25}
        ce = cross_entropy(measured, ideal)
        assert ce > ideal_cross_entropy(ideal)

    def test_gibbs_inequality(self):
        """CE(q, p) >= H(p) would be wrong in general; but
        CE(p, p) <= CE(q, p) holds when q spreads onto zero-probability
        outcomes (the clamped floor makes them very expensive)."""
        ideal = {"00": 0.9, "11": 0.1}
        worse = {"01": 1.0}
        assert cross_entropy(worse, ideal) > cross_entropy(ideal, ideal)

    def test_loss_is_zero_for_perfect_output(self):
        ideal = {"0": 0.3, "1": 0.7}
        assert cross_entropy_loss(ideal, ideal) == pytest.approx(0.0)

    def test_unnormalized_measured_handled(self):
        ideal = {"0": 0.5, "1": 0.5}
        counts = {"0": 512, "1": 512}
        assert cross_entropy(counts, ideal) == pytest.approx(math.log(2))

    def test_empty_measured_rejected(self):
        with pytest.raises(ValueError):
            cross_entropy({}, {"0": 1.0})


class TestSuccessProbability:
    def test_basic(self):
        counts = {"0101": 900, "1111": 100}
        assert success_probability(counts, "0101") == pytest.approx(0.9)

    def test_missing_outcome(self):
        assert success_probability({"00": 10}, "11") == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            success_probability({}, "0")


class TestDistances:
    def test_tvd_identical(self):
        d = {"0": 0.4, "1": 0.6}
        assert total_variation_distance(d, d) == 0.0

    def test_tvd_disjoint(self):
        assert total_variation_distance({"0": 1.0}, {"1": 1.0}) == 1.0

    def test_hellinger_bounds(self):
        assert hellinger_distance({"0": 1.0}, {"1": 1.0}) == pytest.approx(1.0)
        d = {"0": 0.5, "1": 0.5}
        assert hellinger_distance(d, d) == 0.0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_cross_entropy_minimized_by_ideal(seed):
    """Gibbs: over distributions q, CE(q, p) is minimized at q
    concentrated on p's argmax... but the *loss* CE(p,p) is the unique
    minimum of CE(q,p) over q only when restricted appropriately; here we
    check the weaker property the experiments rely on: mixing the ideal
    with uniform noise never decreases cross entropy when the ideal is
    non-uniform over its support."""
    rng = np.random.default_rng(seed)
    support = [format(i, "02b") for i in range(4)]
    p_raw = rng.random(4) + 0.05
    p_raw /= p_raw.sum()
    ideal = dict(zip(support, p_raw))
    uniform = {s: 0.25 for s in support}
    for alpha in (0.1, 0.5, 0.9):
        mixed = {
            s: (1 - alpha) * ideal[s] + alpha * uniform[s] for s in support
        }
        # CE(mixed, ideal) >= CE(best, ideal) where best puts all mass on
        # the ideal's most likely outcome; sanity-check finiteness and
        # ordering vs. the ideal's own entropy direction
        assert cross_entropy(mixed, ideal) >= 0.0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_distances_symmetric(seed):
    rng = np.random.default_rng(seed)
    keys = [format(i, "02b") for i in range(4)]
    a = rng.random(4)
    a /= a.sum()
    b = rng.random(4)
    b /= b.sum()
    p = dict(zip(keys, a))
    q = dict(zip(keys, b))
    assert total_variation_distance(p, q) == pytest.approx(
        total_variation_distance(q, p)
    )
    assert hellinger_distance(p, q) == pytest.approx(hellinger_distance(q, p))
    assert 0.0 <= total_variation_distance(p, q) <= 1.0
    assert 0.0 <= hellinger_distance(p, q) <= 1.0
