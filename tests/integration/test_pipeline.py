"""End-to-end pipeline integration tests.

These exercise the full Figure 2 flow: characterize -> schedule -> execute
-> mitigate -> score, asserting the paper's headline orderings with
statistics sized for CI.
"""

import numpy as np
import pytest

from repro.core.characterization.campaign import (
    CharacterizationCampaign,
    CharacterizationPolicy,
)
from repro.core.scheduling.xtalk import XtalkScheduler
from repro.device.backend import NoisyBackend
from repro.experiments.common import (
    ExperimentConfig,
    ground_truth_report,
    swap_error_rate,
)
from repro.rb.executor import RBConfig
from repro.workloads.swap import swap_benchmark


@pytest.fixture(scope="module")
def solid_config():
    return ExperimentConfig(shots=2048, trajectories=250, seed=9,
                            use_sampled_counts=False)


class TestHeadlineResult:
    """XtalkSched beats both baselines on the paper's case-study circuit."""

    @pytest.fixture(scope="class")
    def case_study_errors(self, poughkeepsie, pk_report):
        config = ExperimentConfig(shots=2048, trajectories=250, seed=9,
                                  use_sampled_counts=False)
        backend = NoisyBackend(poughkeepsie)
        bench = swap_benchmark(poughkeepsie.coupling, 0, 13,
                               path=(0, 5, 10, 11, 12, 13))
        return {
            scheduler: swap_error_rate(backend, bench, scheduler, pk_report,
                                       config)
            for scheduler in ("SerialSched", "ParSched", "XtalkSched")
        }

    def test_xtalk_beats_parsched(self, case_study_errors):
        assert case_study_errors["XtalkSched"][0] < \
            case_study_errors["ParSched"][0] - 0.02

    def test_xtalk_beats_serialsched(self, case_study_errors):
        assert case_study_errors["XtalkSched"][0] < \
            case_study_errors["SerialSched"][0]

    def test_duration_tradeoff(self, case_study_errors):
        dur = {k: v[1] for k, v in case_study_errors.items()}
        assert dur["ParSched"] < dur["XtalkSched"] < dur["SerialSched"]
        # the paper's "modest increase": well under SerialSched's cost
        assert dur["XtalkSched"] / dur["ParSched"] < 1.5


class TestMeasuredCharacterizationDrivesScheduling:
    """The full loop with *measured* (not ground-truth) characterization."""

    def test_end_to_end(self, poughkeepsie):
        rb_config = RBConfig(lengths=(2, 4, 8, 16, 28, 40), num_sequences=10,
                             samples_per_sequence=24)
        campaign = CharacterizationCampaign(poughkeepsie, rb_config=rb_config,
                                            seed=3)
        outcome = campaign.run(CharacterizationPolicy.ONE_HOP_PACKED)
        report = outcome.report

        # the measured report must drive the same serialization decision
        scheduler = XtalkScheduler(poughkeepsie.calibration(), report,
                                   omega=0.5)
        bench = swap_benchmark(poughkeepsie.coupling, 0, 13,
                               path=(0, 5, 10, 11, 12, 13))
        result = scheduler.schedule(bench.circuit)
        assert result.candidate_pairs  # found the (5,10)|(11,12) region
        assert result.serialized_pairs

        config = ExperimentConfig(shots=1024, trajectories=200, seed=4,
                                  use_sampled_counts=False)
        backend = NoisyBackend(poughkeepsie)
        err_x, _ = swap_error_rate(backend, bench, "XtalkSched", report, config)
        err_p, _ = swap_error_rate(backend, bench, "ParSched", report, config)
        assert err_x < err_p


class TestAllDevices:
    """The headline ordering must hold on all three device models."""

    @pytest.mark.parametrize("device_index", [0, 1, 2])
    def test_xtalk_beats_parsched_everywhere(self, devices, device_index):
        from repro.workloads.swap import (
            crosstalk_affected_endpoints,
            crosstalk_route,
        )

        device = devices[device_index]
        report = ground_truth_report(device)
        backend = NoisyBackend(device)
        config = ExperimentConfig(shots=1024, trajectories=200, seed=13,
                                  use_sampled_counts=False)
        (s, d) = crosstalk_affected_endpoints(
            device.coupling, report.high_pairs()
        )[0]
        route = crosstalk_route(device.coupling, s, d, report.high_pairs())
        bench = swap_benchmark(device.coupling, s, d, path=route)
        err_x, dur_x = swap_error_rate(backend, bench, "XtalkSched", report,
                                       config)
        err_p, dur_p = swap_error_rate(backend, bench, "ParSched", report,
                                       config)
        assert err_x < err_p, device.name
        assert dur_x <= dur_p * 1.8, device.name


class TestDailyWorkflow:
    """Optimization 3's daily loop: refresh high pairs, reuse the rest."""

    def test_high_only_day_two(self, poughkeepsie, pk_report):
        rb_config = RBConfig(lengths=(2, 4, 8, 16, 28, 40), num_sequences=10,
                             samples_per_sequence=24)
        campaign = CharacterizationCampaign(poughkeepsie,
                                            rb_config=rb_config, seed=6)
        outcome = campaign.run(CharacterizationPolicy.HIGH_ONLY, day=2,
                               prior=pk_report)
        # dramatically cheaper than the 1-hop campaign
        one_hop = campaign.plan(CharacterizationPolicy.ONE_HOP)
        assert outcome.num_experiments < one_hop.num_experiments / 3
        # and still knows all planted pairs
        detected = set(outcome.report.high_pairs())
        assert set(poughkeepsie.true_high_pairs()) <= detected
