"""Property test: characterization discovers randomly planted crosstalk.

On random line devices with a randomly placed, randomly sized high pair,
the 1-hop campaign (exact estimator) must detect exactly the planted
structure from measurements alone — the core closed-loop guarantee the
paper's pipeline depends on.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.characterization.campaign import (
    CharacterizationCampaign,
    CharacterizationPolicy,
)
from repro.device.calibration import synthesize_calibration
from repro.device.crosstalk import CrosstalkModel, CrosstalkPair
from repro.device.device import Device
from repro.device.topology import line_coupling_map
from repro.rb.executor import RBConfig


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_random_planted_pair_is_discovered(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(8, 12))
    coupling = line_coupling_map(n)
    # plant one 1-hop pair at a random position with a strong factor
    start = int(rng.integers(0, n - 3))
    edge_a = (start, start + 1)
    edge_b = (start + 2, start + 3)
    factor = float(rng.uniform(5.0, 10.0))
    calibration = synthesize_calibration(coupling, seed=seed,
                                         heavy_tail_edges=0)
    crosstalk = CrosstalkModel(
        coupling,
        [CrosstalkPair(edge_a, edge_b, factor_a=factor, factor_b=factor)],
        seed=seed + 1,
    )
    device = Device(f"rand_line_{seed}", coupling, calibration, crosstalk,
                    seed=seed)
    # Daily drift (lo=0.5) can pull a weakly planted factor below the 3x
    # detection cut on day 0 — then there is genuinely nothing to find.
    # Only ask for detection when the *realized* factor clears the cut
    # with margin (RB underestimates strong crosstalk, so 3.0 exactly is
    # still a coin flip).
    assume(min(
        crosstalk.conditional_factor(edge_a, edge_b, day=0),
        crosstalk.conditional_factor(edge_b, edge_a, day=0),
    ) >= 4.5)

    campaign = CharacterizationCampaign(
        device, rb_config=RBConfig(num_sequences=16), seed=seed + 2
    )
    outcome = campaign.run(CharacterizationPolicy.ONE_HOP_PACKED)
    detected = set(outcome.report.high_pairs())
    assert frozenset({edge_a, edge_b}) in detected
    # precision: at most one spurious pair slips past the 3x cut
    assert len(detected) <= 2
