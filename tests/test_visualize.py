"""Tests for the SVG renderers."""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.device.calibration import GateDurations
from repro.transpiler.scheduling import hardware_schedule
from repro.visualize import device_map_svg, line_chart_svg, schedule_svg

DUR = GateDurations(single_qubit=50.0, cx={}, measurement=1000.0, default_cx=200.0)


def parse_svg(text: str) -> ET.Element:
    return ET.fromstring(text)


class TestDeviceMap:
    def test_well_formed_xml(self, poughkeepsie):
        root = parse_svg(device_map_svg(poughkeepsie))
        assert root.tag.endswith("svg")

    def test_all_qubits_drawn(self, poughkeepsie):
        text = device_map_svg(poughkeepsie)
        assert text.count("<circle") == 20

    def test_all_edges_drawn(self, poughkeepsie):
        text = device_map_svg(poughkeepsie)
        assert text.count("<line") == len(poughkeepsie.coupling.edges)

    def test_crosstalk_arcs(self, poughkeepsie):
        text = device_map_svg(poughkeepsie)
        assert text.count("<path") == len(poughkeepsie.crosstalk.pairs)
        assert "stroke-dasharray" in text

    def test_custom_pairs_and_title(self, poughkeepsie, pk_report):
        text = device_map_svg(poughkeepsie,
                              high_pairs=pk_report.high_pairs(),
                              title="measured <map>")
        assert "measured &lt;map&gt;" in text
        assert text.count("<path") == len(pk_report.high_pairs())


class TestScheduleSvg:
    def _schedule(self):
        circ = QuantumCircuit(4, 2, name="demo")
        circ.h(0)
        circ.cx(0, 1)
        circ.cx(2, 3)
        circ.measure(1, 0)
        circ.measure(3, 1)
        return hardware_schedule(circ, DUR)

    def test_well_formed(self):
        root = parse_svg(schedule_svg(self._schedule()))
        assert root.tag.endswith("svg")

    def test_lane_labels(self):
        text = schedule_svg(self._schedule())
        for q in range(4):
            assert f">q{q}<" in text

    def test_rect_per_operation(self):
        text = schedule_svg(self._schedule())
        # 1 h + 2 cx + 2 measures = 5 rects
        assert text.count("<rect") == 5

    def test_qubit_subset(self):
        text = schedule_svg(self._schedule(), qubits=[0, 1])
        assert ">q0<" in text
        assert ">q2<" not in text
        # ops touching excluded lanes are skipped
        assert text.count("<rect") == 3  # h, cx(0,1), measure(1)

    def test_makespan_in_title(self):
        sched = self._schedule()
        assert f"{sched.makespan():.0f} ns" in schedule_svg(sched)


class TestLineChart:
    SERIES = {
        "cond E(a|b)": [(0, 0.10), (1, 0.12), (2, 0.09)],
        "indep E(a)": [(0, 0.012), (1, 0.011), (2, 0.013)],
    }

    def test_well_formed(self):
        root = parse_svg(line_chart_svg(self.SERIES, title="drift"))
        assert root.tag.endswith("svg")

    def test_legend_and_title(self):
        text = line_chart_svg(self.SERIES, title="drift <t>",
                              x_label="day", y_label="error")
        assert "drift &lt;t&gt;" in text
        assert "cond E(a|b)" in text
        assert "day" in text and "error" in text

    def test_one_path_per_series(self):
        text = line_chart_svg(self.SERIES)
        assert text.count('stroke-width="2"') == 2
        assert text.count("<circle") == 6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart_svg({})

    def test_flat_series_handled(self):
        text = line_chart_svg({"flat": [(0, 1.0), (1, 1.0)]})
        assert "<path" in text
