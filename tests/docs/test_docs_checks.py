"""The documentation gates, enforced from the tier-1 suite.

Runs the same two stdlib-only checkers the CI docs job runs:
``tools/check_docs_links.py`` (markdown link + anchor validation over
README.md and docs/) and ``tools/check_docstring_coverage.py`` (100%
docstring coverage on ``src/repro/obs``), plus unit tests pinning the
checkers' own behaviour so a regression in a tool cannot silently turn
the gates green.
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent.parent
TOOLS = REPO_ROOT / "tools"


def load_tool(name):
    spec = importlib.util.spec_from_file_location(name, TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ----------------------------------------------------------------------
# the gates themselves
# ----------------------------------------------------------------------
def test_docs_links_are_valid():
    """README.md + docs/ contain no broken links or anchors."""
    result = subprocess.run(
        [sys.executable, str(TOOLS / "check_docs_links.py")],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_obs_docstring_coverage_is_complete():
    """Every public module/class/function in repro.obs has a docstring."""
    result = subprocess.run(
        [sys.executable, str(TOOLS / "check_docstring_coverage.py")],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_docs_directory_has_expected_pages():
    names = {p.name for p in (REPO_ROOT / "docs").glob("*.md")}
    assert {"index.md", "architecture.md", "characterization.md",
            "scheduling.md", "observability.md", "api.md"} <= names


# ----------------------------------------------------------------------
# the link checker's own behaviour
# ----------------------------------------------------------------------
def test_link_checker_flags_broken_file_and_anchor(tmp_path):
    checker = load_tool("check_docs_links")
    good = tmp_path / "good.md"
    good.write_text("# A Heading\n\nbody\n")
    bad = tmp_path / "bad.md"
    bad.write_text(
        "[ok](good.md)\n"
        "[ok anchor](good.md#a-heading)\n"
        "[missing file](nope.md)\n"
        "[missing anchor](good.md#nope)\n"
        "[external](https://example.com/untouched)\n"
    )
    problems = checker.check_file(bad)
    assert len(problems) == 2
    assert any("nope.md" in p for p in problems)
    assert any("#nope" in p or "'nope'" in p for p in problems)


def test_link_checker_ignores_fenced_code_blocks(tmp_path):
    checker = load_tool("check_docs_links")
    page = tmp_path / "page.md"
    page.write_text("```\n[not a link](missing.md)\n```\n")
    assert checker.check_file(page) == []


@pytest.mark.parametrize("heading,slug", [
    ("Plain Words", "plain-words"),
    ("5. Pass pipeline & instrumentation",
     "5-pass-pipeline--instrumentation"),
    ("Metrics — `MetricsRegistry`", "metrics--metricsregistry"),
    ("Spans and traces — schema v2", "spans-and-traces--schema-v2"),
])
def test_github_slugs(heading, slug):
    checker = load_tool("check_docs_links")
    assert checker.github_slug(heading) == slug


# ----------------------------------------------------------------------
# the docstring checker's own behaviour
# ----------------------------------------------------------------------
def test_docstring_checker_counts_and_exempts(tmp_path):
    checker = load_tool("check_docstring_coverage")
    module = tmp_path / "mod.py"
    module.write_text(
        '"""Module doc."""\n'
        "def documented():\n"
        '    """Yes."""\n'
        "def undocumented():\n"
        "    pass\n"
        "def _private():\n"
        "    pass\n"
        "class Documented:\n"
        '    """Yes."""\n'
        "    def __repr__(self):\n"
        "        return 'x'\n"
    )
    documented, missing = checker.check_file(module)
    # module + documented() + Documented = 3 documented;
    # undocumented() is the only gap (privates and dunders exempt).
    assert documented == 3
    assert missing == ["function undocumented"]
