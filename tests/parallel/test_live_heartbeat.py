"""Engine heartbeats under the live plane, including worker death.

Task functions are module-level (picklable) so the pool path can ship
them.  Every scenario asserts two things at once: the heartbeat board
saw the progress it should have, and the results/metrics the engine
produced are exactly what they are with no plane at all — the plane is
an observer, never a participant.
"""

import pytest

from repro.obs.live.heartbeat import (
    HeartbeatBoard,
    activate_board,
    deactivate_board,
    heartbeat,
    heartbeat_step,
    heartbeats_active,
    poll_interval,
)
from repro.obs.live.plane import LivePlane
from repro.obs.registry import MetricsRegistry, push_registry
from repro.parallel.engine import ParallelEngine
from repro.resilience import FaultInjector, FaultPlan, RetryPolicy


def _double(context, item):
    return item * 2


def _counting(context, item):
    # A worker-side metric: must merge into the parent exactly once per
    # task, regardless of plane, pool, or retries.
    from repro.obs.registry import get_registry

    get_registry().inc("test.live.calls")
    return item + 1


@pytest.fixture(params=[1, 2], ids=["serial", "pool"])
def workers(request):
    return request.param


class TestHelpersWithoutBoard:
    def test_heartbeat_is_noop_when_inactive(self):
        assert not heartbeats_active()
        heartbeat("nobody", status="ignored")  # must not raise
        heartbeat_step("nobody", "n")
        assert poll_interval() is None

    def test_board_routing_and_counter(self):
        with push_registry(MetricsRegistry()) as registry:
            board = HeartbeatBoard(poll_interval=0.25)
            activate_board(board)
            try:
                assert heartbeats_active()
                assert poll_interval() == 0.25
                heartbeat("site", status="busy", total=4)
                heartbeat_step("site", "done")
                heartbeat_step("site", "done")
            finally:
                deactivate_board(board)
            entry = board.snapshot()["site"]
            assert entry["status"] == "busy"
            assert entry["done"] == 2
            assert entry["beats"] == 3
            assert registry.counter("obs.live.heartbeats").value == 3

    def test_none_fields_are_not_recorded(self):
        board = HeartbeatBoard()
        board.beat("s", status="ok", empty=None)
        assert "empty" not in board.snapshot()["s"]


class TestEngineBeats:
    def test_map_records_submit_harvest_and_idle(self, workers):
        with push_registry(MetricsRegistry()):
            plane = LivePlane(interval=0)
            with plane:
                with ParallelEngine(workers, name="hb",
                                    min_parallel_seconds=0.0) as engine:
                    results = engine.map(_double, list(range(6)))
            assert results == [i * 2 for i in range(6)]
            entry = plane.board.snapshot()["hb.task"]
            assert entry["status"] == "idle"
            assert entry["tasks_total"] == 6
            assert entry["tasks_done"] == 6
            if workers > 1:
                assert entry["tasks_submitted"] == 6

    def test_results_identical_with_and_without_plane(self, workers):
        legs = {}
        for label, use_plane in (("off", False), ("on", True)):
            with push_registry(MetricsRegistry()) as registry:
                if use_plane:
                    plane = LivePlane(interval=0)
                    plane.__enter__()
                try:
                    with ParallelEngine(workers, name="hb",
                                        min_parallel_seconds=0.0) as engine:
                        results = engine.map(_counting, list(range(8)))
                finally:
                    if use_plane:
                        plane.__exit__(None, None, None)
                legs[label] = (
                    results, registry.counter("test.live.calls").value,
                )
        assert legs["on"] == legs["off"]
        assert legs["on"][1] == 8  # merged exactly once per task


class TestWorkerDeathUnderPlane:
    def test_dead_worker_progress_recovers_and_metrics_stay_exact(self):
        injector = FaultInjector(
            FaultPlan.single("worker_death", rate=0.3, max_failures=1, seed=7)
        )
        with push_registry(MetricsRegistry()) as registry:
            plane = LivePlane(interval=0)
            with plane:
                with ParallelEngine(2, name="hb", retry=RetryPolicy.fast(),
                                    faults=injector,
                                    min_parallel_seconds=0.0) as engine:
                    results = engine.map(_counting, list(range(10)))
            assert results == [i + 1 for i in range(10)]
            assert any(d.kind == "worker_death" for d in injector.injected)
            entry = plane.board.snapshot()["hb.task"]
            # Every task harvested exactly once even though one worker
            # died mid-map (the retried task's beats overwrite).
            assert entry["tasks_done"] == 10
            assert entry["status"] == "idle"
            # Worker-side deltas merged once per *successful* execution.
            assert registry.counter("test.live.calls").value == 10

    def test_waiting_beats_fire_while_a_future_blocks(self):
        # A tiny poll interval forces the harvest loop through its
        # timeout path; the board must show waiting liveness beats.
        with push_registry(MetricsRegistry()):
            plane = LivePlane(interval=0, poll_interval=0.001)
            with plane:
                with ParallelEngine(2, name="hb",
                                    min_parallel_seconds=0.0) as engine:
                    results = engine.map(_sleepy, list(range(2)))
            assert results == [0.0, 0.1]
            beats = plane.board.snapshot()["hb.task"]["beats"]
            # mapping + submits + waits + dones + idle: the waiting beats
            # push this well past the fixed count of 2 + 2 + 2.
            assert beats > 6


def _sleepy(context, item):
    import time

    time.sleep(0.1 * item)
    return 0.1 * item
