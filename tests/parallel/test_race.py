"""Race determinism: the winner is a pure function of entrant results."""

import math

import pytest

from repro.obs.events import event_sink
from repro.parallel.race import race_to_first_good


def run_entrant(context, payload):
    """Module-level runner (picklable).  ``payload`` is a spec dict."""
    if payload.get("raise"):
        raise RuntimeError(f"entrant {payload['id']} failed")
    return payload


def _is_good(value):
    return value.get("good", False)


def _score(value):
    return value.get("score", math.inf)


ENTRANTS = [
    ("b-slow-good", {"id": "b", "good": True, "score": 5.0}),
    ("a-fast-bad", {"id": "a", "good": False, "score": 1.0}),
    ("c-crash", {"id": "c", "raise": True}),
]


class TestWinnerSelection:
    def test_first_good_in_key_order_wins(self):
        result = race_to_first_good(
            ENTRANTS, run_entrant, is_good=_is_good, score=_score, workers=1)
        assert result.winner_key == "b-slow-good"
        assert result.winner_good

    def test_no_good_falls_back_to_best_score(self):
        entrants = [
            ("x", {"id": "x", "good": False, "score": 3.0}),
            ("y", {"id": "y", "good": False, "score": 1.0}),
        ]
        result = race_to_first_good(
            entrants, run_entrant, is_good=_is_good, score=_score, workers=1)
        assert result.winner_key == "y"
        assert not result.winner_good

    def test_score_tie_breaks_on_key(self):
        entrants = [
            ("m", {"id": "m", "good": False, "score": 2.0}),
            ("k", {"id": "k", "good": False, "score": 2.0}),
        ]
        result = race_to_first_good(
            entrants, run_entrant, is_good=_is_good, score=_score, workers=1)
        assert result.winner_key == "k"

    def test_serial_early_exit_skips_later_entrants(self):
        entrants = [
            ("1-good", {"id": "1", "good": True, "score": 1.0}),
            ("2-never-runs", {"id": "2", "good": True, "score": 0.0}),
        ]
        result = race_to_first_good(
            entrants, run_entrant, is_good=_is_good, score=_score, workers=1)
        assert result.winner_key == "1-good"
        assert result.mode == "serial-early-exit"
        skipped = {o.key: o for o in result.outcomes}["2-never-runs"]
        assert not skipped.ran

    def test_failed_entrant_not_fatal(self):
        entrants = [
            ("0-crash", {"id": "0", "raise": True}),
            ("1-good", {"id": "1", "good": True, "score": 2.0}),
        ]
        result = race_to_first_good(
            entrants, run_entrant, is_good=_is_good, score=_score, workers=1)
        assert result.winner_key == "1-good"
        failed = {o.key: o for o in result.outcomes}["0-crash"]
        assert failed.error is not None
        assert not failed.good

    def test_all_failed_raises(self):
        entrants = [("only", {"id": "only", "raise": True})]
        with pytest.raises(RuntimeError, match="every race entrant failed"):
            race_to_first_good(
                entrants, run_entrant, is_good=_is_good, score=_score,
                workers=1)

    def test_duplicate_keys_rejected(self):
        entrants = [("k", {"id": 1}), ("k", {"id": 2})]
        with pytest.raises(ValueError, match="unique"):
            race_to_first_good(
                entrants, run_entrant, is_good=_is_good, score=_score)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            race_to_first_good(
                [], run_entrant, is_good=_is_good, score=_score)


class TestWorkerInvariance:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_winner_invariant_across_worker_counts(self, workers):
        result = race_to_first_good(
            ENTRANTS, run_entrant,
            is_good=_is_good, score=_score, workers=workers)
        assert result.winner_key == "b-slow-good"
        assert result.winner == {"id": "b", "good": True, "score": 5.0}

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_no_good_winner_invariant(self, workers):
        entrants = [
            (f"e{i}", {"id": f"e{i}", "good": False, "score": float(9 - i)})
            for i in range(5)
        ]
        result = race_to_first_good(
            entrants, run_entrant,
            is_good=_is_good, score=_score, workers=workers)
        assert result.winner_key == "e4"  # lowest score

    def test_pool_runs_everything(self):
        result = race_to_first_good(
            ENTRANTS, run_entrant,
            is_good=_is_good, score=_score, workers=2)
        assert result.mode == "pool"
        assert all(o.ran for o in result.outcomes)


class TestRaceObservability:
    def test_race_event_logged(self):
        with event_sink() as sink:
            race_to_first_good(
                ENTRANTS, run_entrant,
                is_good=_is_good, score=_score, workers=1, name="unit")
        events = sink.of("parallel.race")
        assert len(events) == 1
        assert events[0]["name"] == "unit"
        assert events[0]["winner"] == "b-slow-good"
        assert events[0]["entrants"] == 3
