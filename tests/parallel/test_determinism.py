"""Results must not depend on worker count or submission order (satellite 3).

The whole point of the stable-seeding rework: fanning work over a process
pool is purely a wall-time optimization.  Characterization reports,
trajectory distributions, and tomography errors are *identical* — bitwise,
where floats are concerned — for every worker count.
"""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.characterization.campaign import (
    CharacterizationCampaign,
    CharacterizationPolicy,
)
from repro.device.backend import NoisyBackend
from repro.experiments.common import (
    ExperimentConfig,
    ground_truth_report,
    prepare_circuit,
    tomography_error,
)
from repro.rb.executor import RBConfig, RBExecutor
from repro.workloads.swap import swap_benchmark

_TINY_RB = RBConfig(lengths=(2, 6, 14), num_sequences=2)


class TestExecutorOrderIndependence:
    def test_experiment_result_ignores_prior_experiments(self, poughkeepsie):
        a, b = ((0, 1), (2, 3)), ((5, 6), (7, 8))
        ex1 = RBExecutor(poughkeepsie, day=0, config=_TINY_RB, seed=9)
        ex2 = RBExecutor(poughkeepsie, day=0, config=_TINY_RB, seed=9)
        first_a = ex1.run_units([a])
        ex2.run_units([b])  # different history before measuring `a`
        second_a = ex2.run_units([a])
        assert first_a.survivals == second_a.survivals
        for t in a:
            assert first_a.error_rate(t) == second_a.error_rate(t)


class TestCampaignWorkerIndependence:
    def test_reports_identical_across_worker_counts(self, poughkeepsie):
        campaign = CharacterizationCampaign(
            poughkeepsie, rb_config=_TINY_RB, seed=3
        )
        serial = campaign.run(CharacterizationPolicy.ONE_HOP_PACKED, workers=1)
        pooled = campaign.run(CharacterizationPolicy.ONE_HOP_PACKED, workers=4)
        assert serial.report.independent == pooled.report.independent
        assert serial.report.conditional == pooled.report.conditional

    def test_trace_reports_parallel_counters(self, poughkeepsie):
        campaign = CharacterizationCampaign(
            poughkeepsie, rb_config=_TINY_RB, seed=3
        )
        outcome = campaign.run(CharacterizationPolicy.ONE_HOP_PACKED, workers=2)
        span = outcome.trace.span("pair_srb")
        assert span.counters["parallel.workers"] == 2.0
        assert span.counters["parallel.tasks"] >= 1.0
        assert span.counters["rb.experiments"] >= 1.0


class TestBackendWorkerIndependence:
    def _bell(self, device):
        qc = QuantumCircuit(device.num_qubits, 2, "bell")
        qc.h(0)
        qc.cx(0, 1)
        qc.measure(0, 0)
        qc.measure(1, 1)
        return qc

    def test_probabilities_bitwise_identical(self, poughkeepsie):
        backend = NoisyBackend(poughkeepsie, day=0, seed=11)
        circuit = self._bell(poughkeepsie)
        serial = backend.run(circuit, shots=128, trajectories=40, workers=1)
        pooled = backend.run(circuit, shots=128, trajectories=40, workers=4)
        assert np.array_equal(serial.probabilities, pooled.probabilities)
        assert serial.counts == pooled.counts

    def test_partial_chunk_covers_full_budget(self, poughkeepsie):
        # The bell circuit activates 2 qubits, so the planner's chunk size
        # saturates at MAX_TRAJECTORY_CHUNK (256): 600 trajectories =
        # 2 full chunks of 256 + one partial chunk of 88, and the partial
        # chunk still contributes (probabilities stay normalized).
        backend = NoisyBackend(poughkeepsie, day=0, seed=11)
        circuit = self._bell(poughkeepsie)
        result = backend.run(circuit, shots=64, trajectories=600, workers=1)
        assert backend.counters["parallel.tasks"] == 3.0
        assert result.probabilities.sum() == pytest.approx(1.0)

    def test_single_chunk_plan_runs_inline(self, poughkeepsie):
        # A budget that fits one chunk must not spin up any fan-out
        # machinery: one inline task, serial mode gauge.
        from repro.obs.registry import get_registry

        backend = NoisyBackend(poughkeepsie, day=0, seed=11)
        circuit = self._bell(poughkeepsie)
        result = backend.run(circuit, shots=64, trajectories=40, workers=4)
        assert backend.counters["parallel.tasks"] == 1.0
        assert get_registry().snapshot()["gauges"]["parallel.mode"] == 0.0
        assert result.probabilities.sum() == pytest.approx(1.0)


class TestTomographyWorkerIndependence:
    def test_error_identical_across_worker_counts(self, poughkeepsie):
        report = ground_truth_report(poughkeepsie)
        bench = swap_benchmark(poughkeepsie.coupling, 0, 8)
        backend = NoisyBackend(poughkeepsie, day=0)
        config = ExperimentConfig(shots=128, trajectories=16)
        prepared = prepare_circuit(
            "ParSched", bench.circuit, poughkeepsie, report
        )
        serial = tomography_error(
            backend, prepared, bench.meeting_pair, config, workers=1
        )
        pooled = tomography_error(
            backend, prepared, bench.meeting_pair, config, workers=3
        )
        assert serial == pooled
