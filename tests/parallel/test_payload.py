"""Shared-payload channel: zero-copy context fan-out (ISSUE 7 tentpole c)."""

import pickle

import numpy as np
import pytest

from repro.obs.registry import get_registry
from repro.parallel import ParallelEngine, SharedPayload, unwrap_payload
from repro.parallel.payload import _STORE, fork_inherits_globals


def _square(context, item):
    return context["scale"] * item * item


def _payload_probe(context, item):
    # Returns what the task actually saw, so tests can assert the engine
    # unwrapped the payload before calling the task function.
    return (type(context).__name__, context["scale"])


class TestSharedPayload:
    def test_value_round_trips_in_parent(self):
        data = {"scale": 3, "table": list(range(100))}
        with SharedPayload(data, name="test") as payload:
            assert payload.value is data
            assert unwrap_payload(payload) is data
        # released: parent store entry gone, fallback None
        assert payload.key not in _STORE

    def test_unwrap_is_identity_for_plain_context(self):
        context = ("a", "b")
        assert unwrap_payload(context) is context

    def test_pickles_to_key_under_fork(self):
        if not fork_inherits_globals():
            pytest.skip("requires the fork start method")
        data = {"scale": 2, "blob": b"x" * 50_000}
        with SharedPayload(data, name="test") as payload:
            shipped = pickle.dumps(payload)
            # The wire form must not contain the 50 kB blob.
            assert len(shipped) < 1_000
            clone = pickle.loads(shipped)
            # Same process: the store hit resolves the clone's value too.
            assert clone.value is data

    def test_saved_bytes_counter(self):
        if not fork_inherits_globals():
            pytest.skip("requires the fork start method")
        registry = get_registry()
        with SharedPayload({"scale": 1}, name="test") as payload:
            before = registry.snapshot()["counters"].get(
                "parallel.payload.saved_bytes", 0.0
            )
            pickle.dumps(payload)
            after = registry.snapshot()["counters"][
                "parallel.payload.saved_bytes"
            ]
            assert after - before == float(payload.nbytes)
            assert payload.nbytes > 0

    def test_registration_metrics(self):
        registry = get_registry()
        before = registry.snapshot()["counters"].get(
            "parallel.payload.count", 0.0
        )
        with SharedPayload({"scale": 1}, name="test") as payload:
            snap = registry.snapshot()
            assert snap["counters"]["parallel.payload.count"] == before + 1.0
            assert snap["gauges"]["parallel.payload.bytes"] == float(
                payload.nbytes
            )


class TestEngineIntegration:
    def test_serial_map_unwraps_payload(self):
        with SharedPayload({"scale": 3}, name="test") as payload:
            with ParallelEngine(workers=1, name="test") as engine:
                results = engine.map(_square, [1, 2, 3], payload)
        assert results == [3, 12, 27]

    def test_pool_map_unwraps_payload(self):
        with SharedPayload({"scale": 5}, name="test") as payload:
            with ParallelEngine(
                workers=2, name="test", min_parallel_seconds=0.0
            ) as engine:
                results = engine.map(_payload_probe, [0, 1], payload)
        assert results == [("dict", 5), ("dict", 5)]

    def test_payload_and_plain_context_agree(self):
        items = list(range(8))
        context = {"scale": 7}
        with ParallelEngine(workers=1, name="test") as engine:
            plain = engine.map(_square, items, context)
        with SharedPayload(context, name="test") as payload:
            with ParallelEngine(workers=2, name="test",
                                min_parallel_seconds=0.0) as engine:
                shared = engine.map(_square, items, payload)
        assert plain == shared
