"""Parallel engine: worker resolution, stable seeding, fan-out semantics."""

import numpy as np
import pytest

from repro.obs.registry import push_registry
from repro.parallel import (
    ParallelEngine,
    WORKERS_ENV,
    resolve_workers,
    stable_entropy,
    stable_rng,
    stable_seed_sequence,
)
from repro.parallel import engine as engine_mod
from repro.parallel.engine import (
    MIN_PARALLEL_ENV,
    MODE_CODES,
    resolve_min_parallel_seconds,
)


# Task functions must be module-level so the process pool can pickle them.
def _square(context, item):
    return item * item


def _offset(context, item):
    return context + item


def _boom(context, item):
    if item == 2:
        raise ValueError("task 2 failed")
    return item


def _nested_workers(context, item):
    # Inside a pool worker the engine must refuse to nest another pool.
    return resolve_workers(8)


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1

    def test_keyword_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers() == 5

    def test_env_must_be_integer(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()

    def test_floor_is_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1

    def test_in_worker_forces_serial(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "_IN_WORKER", True)
        assert resolve_workers(8) == 1


class TestStableSeeding:
    def test_entropy_deterministic(self):
        assert stable_entropy("a", 1, (2, 3)) == stable_entropy("a", 1, (2, 3))

    def test_entropy_distinguishes_parts(self):
        assert stable_entropy("a", 1) != stable_entropy("a", 2)
        assert stable_entropy("a") != stable_entropy("b")

    def test_tuples_and_lists_are_equivalent(self):
        assert stable_entropy((1, 2)) == stable_entropy([1, 2])

    def test_numpy_scalars_match_python_scalars(self):
        assert stable_entropy(np.int64(5)) == stable_entropy(5)

    def test_rng_reproducible(self):
        a = stable_rng("key", 1).random(4)
        b = stable_rng("key", 1).random(4)
        assert np.array_equal(a, b)

    def test_seed_sequence_spawns_independent_children(self):
        kids = stable_seed_sequence("root").spawn(3)
        draws = [np.random.default_rng(k).random() for k in kids]
        assert len(set(draws)) == 3


class TestEngineMap:
    def test_serial_map_preserves_order(self):
        engine = ParallelEngine(1)
        assert engine.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert engine.counters["parallel.tasks"] == 3.0
        assert engine.counters["parallel.workers"] == 1.0

    def test_parallel_matches_serial(self):
        items = list(range(6))
        serial = ParallelEngine(1).map(_offset, items, context=10)
        # min_parallel_seconds=0.0 disables the serial-fallback heuristic
        # so the comparison genuinely exercises the pool.
        pooled = ParallelEngine(3, min_parallel_seconds=0.0).map(
            _offset, items, context=10)
        assert serial == pooled == [10 + i for i in items]

    def test_single_item_stays_serial(self):
        engine = ParallelEngine(4)
        assert engine.map(_square, [5]) == [25]

    def test_exception_propagates_from_pool(self):
        with pytest.raises(ValueError, match="task 2"):
            ParallelEngine(2, min_parallel_seconds=0.0).map(_boom, [1, 2, 3])

    def test_exception_propagates_serially(self):
        with pytest.raises(ValueError, match="task 2"):
            ParallelEngine(1).map(_boom, [1, 2, 3])

    def test_nested_fanout_serializes(self):
        engine = ParallelEngine(2, min_parallel_seconds=0.0)
        assert engine.map(_nested_workers, [0, 1]) == [1, 1]

    def test_counters_since(self):
        engine = ParallelEngine(1)
        baseline = dict(engine.counters)
        engine.map(_square, [1, 2])
        delta = engine.counters_since(baseline)
        assert delta["parallel.tasks"] == 2.0
        # workers is a level, not an accumulator
        assert delta["parallel.workers"] == 1.0
        assert delta["parallel.serial_seconds_estimate"] >= 0.0


class TestResolveMinParallelSeconds:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(MIN_PARALLEL_ENV, raising=False)
        assert resolve_min_parallel_seconds() == \
            engine_mod.DEFAULT_MIN_PARALLEL_SECONDS

    def test_keyword_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(MIN_PARALLEL_ENV, "5.0")
        assert resolve_min_parallel_seconds(1.5) == 1.5

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(MIN_PARALLEL_ENV, "0.7")
        assert resolve_min_parallel_seconds() == 0.7

    def test_env_must_be_numeric(self, monkeypatch):
        monkeypatch.setenv(MIN_PARALLEL_ENV, "lots")
        with pytest.raises(ValueError, match=MIN_PARALLEL_ENV):
            resolve_min_parallel_seconds()

    def test_negative_clamps_to_disabled(self):
        assert resolve_min_parallel_seconds(-1.0) == 0.0


class TestSerialFallback:
    """Tiny fan-outs must skip the pool; the mode gauge must say which
    path ran."""

    def test_small_work_falls_back_to_serial(self):
        with push_registry() as reg:
            engine = ParallelEngine(4)  # default threshold, trivial tasks
            assert engine.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert reg.gauge("parallel.mode").snapshot() == \
            float(MODE_CODES["serial-fallback"])

    def test_disabled_heuristic_uses_pool(self):
        with push_registry() as reg:
            with ParallelEngine(2, min_parallel_seconds=0.0) as engine:
                assert engine.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert reg.gauge("parallel.mode").snapshot() == \
            float(MODE_CODES["pool"])

    def test_serial_engine_reports_serial_mode(self):
        with push_registry() as reg:
            assert ParallelEngine(1).map(_square, [2]) == [4]
        assert reg.gauge("parallel.mode").snapshot() == \
            float(MODE_CODES["serial"])

    def test_fallback_preserves_keys_and_callbacks(self):
        seen = {}
        engine = ParallelEngine(4)  # heuristic active
        results = engine.map(_square, [1, 2, 3], keys=["a", "b", "c"],
                             on_result=lambda i, v: seen.setdefault(i, v))
        assert results == [1, 4, 9]
        assert seen == {0: 1, 1: 4, 2: 9}

    def test_fallback_failure_keeps_global_index(self):
        from repro.resilience import TaskFailure

        engine = ParallelEngine(4)  # probe succeeds, tail fails serially
        results = engine.map(_boom, [1, 2, 3], return_failures=True)
        assert results[0] == 1 and results[2] == 3
        assert isinstance(results[1], TaskFailure)
        assert results[1].task_index == 1
