"""Tests for the SWAP-circuit workload."""

import numpy as np
import pytest

from repro.sim.statevector import simulate_statevector
from repro.workloads.swap import (
    crosstalk_affected_endpoints,
    crosstalk_free_endpoints,
    crosstalk_route,
    plan_has_crosstalk,
    path_touches_crosstalk,
    swap_benchmark,
)
from repro.transpiler.routing import meet_in_middle_plan


class TestSwapBenchmark:
    def test_structure(self, poughkeepsie):
        bench = swap_benchmark(poughkeepsie.coupling, 0, 13,
                               path=(0, 5, 10, 11, 12, 13))
        assert bench.meeting_pair == (10, 11)
        assert bench.path_length == 5
        ops = bench.circuit.count_ops()
        assert ops["cx"] == 4 * 3 + 1  # 4 swaps lowered + entangler
        assert ops["measure"] == 2
        assert bench.label == "0,13"

    def test_prepares_bell_state_noiselessly(self, poughkeepsie):
        bench = swap_benchmark(poughkeepsie.coupling, 5, 12)
        state = simulate_statevector(bench.circuit)
        qa, qb = bench.meeting_pair
        probs = state.probabilities([qa, qb])
        assert probs[0] == pytest.approx(0.5, abs=1e-9)
        assert probs[3] == pytest.approx(0.5, abs=1e-9)


class TestEndpointSelection:
    def test_affected_endpoints_nonempty(self, poughkeepsie, pk_report):
        endpoints = crosstalk_affected_endpoints(
            poughkeepsie.coupling, pk_report.high_pairs()
        )
        assert len(endpoints) >= 10

    def test_affected_plans_really_cross_high_pairs(self, poughkeepsie,
                                                    pk_report):
        highs = pk_report.high_pairs()
        for s, d in crosstalk_affected_endpoints(poughkeepsie.coupling, highs):
            route = crosstalk_route(poughkeepsie.coupling, s, d, highs)
            assert route is not None
            plan = meet_in_middle_plan(poughkeepsie.coupling, s, d, path=route)
            assert plan_has_crosstalk(plan, highs)

    def test_paper_case_study_included(self, poughkeepsie, pk_report):
        highs = pk_report.high_pairs()
        endpoints = crosstalk_affected_endpoints(poughkeepsie.coupling, highs)
        assert (0, 13) in endpoints
        route = crosstalk_route(poughkeepsie.coupling, 0, 13, highs)
        assert route == (0, 5, 10, 11, 12, 13)

    def test_free_endpoints_avoid_high_pairs(self, poughkeepsie, pk_report):
        highs = pk_report.high_pairs()
        for length in (3, 4):
            for s, d in crosstalk_free_endpoints(poughkeepsie.coupling,
                                                 highs, length):
                plan = meet_in_middle_plan(poughkeepsie.coupling, s, d)
                assert not path_touches_crosstalk(plan, highs)
                assert poughkeepsie.coupling.qubit_distance(s, d) == length

    def test_short_paths_excluded(self, poughkeepsie, pk_report):
        endpoints = crosstalk_affected_endpoints(
            poughkeepsie.coupling, pk_report.high_pairs()
        )
        for s, d in endpoints:
            assert poughkeepsie.coupling.qubit_distance(s, d) >= 3

    def test_no_high_pairs_no_affected_endpoints(self, poughkeepsie):
        assert crosstalk_affected_endpoints(poughkeepsie.coupling, []) == []
