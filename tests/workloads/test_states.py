"""Tests for the GHZ and Bernstein-Vazirani workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.statevector import ideal_distribution
from repro.workloads.states import (
    bernstein_vazirani_circuit,
    bv_expected_output,
    bv_on_region,
    ghz_chain_circuit,
    ghz_on_region,
)


class TestGhz:
    def test_distribution(self):
        circ = ghz_chain_circuit(4)
        circ.measure_all()
        dist = ideal_distribution(circ)
        assert dist == {
            "0000": pytest.approx(0.5),
            "1111": pytest.approx(0.5),
        }

    def test_size_validation(self):
        with pytest.raises(ValueError):
            ghz_chain_circuit(1)

    def test_on_region(self, poughkeepsie):
        circ = ghz_on_region(poughkeepsie.coupling, (5, 10, 11, 12))
        dist = ideal_distribution(circ)
        assert set(dist) == {"0000", "1111"}
        for instr in circ:
            if instr.is_two_qubit:
                assert poughkeepsie.coupling.has_edge(*instr.qubits)

    def test_bad_region(self, poughkeepsie):
        with pytest.raises(ValueError, match="not a path"):
            ghz_on_region(poughkeepsie.coupling, (0, 2, 3))


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", ["101", "0000", "111", "10"])
    def test_recovers_secret(self, secret):
        circ = bernstein_vazirani_circuit(secret)
        n = len(secret)
        circ.num_clbits = n
        for q in range(n):
            circ.measure(q, q)
        dist = ideal_distribution(circ)
        assert dist == {bv_expected_output(secret): pytest.approx(1.0)}

    def test_secret_validation(self):
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit("")
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit("10x")

    def test_cnot_count_matches_ones(self):
        circ = bernstein_vazirani_circuit("1011")
        assert circ.count_ops()["cx"] == 3

    def test_on_region_routed(self, poughkeepsie):
        circ = bv_on_region(poughkeepsie.coupling, (5, 10, 11, 12), "101")
        dist = ideal_distribution(circ)
        assert dist == {bv_expected_output("101"): pytest.approx(1.0)}
        for instr in circ:
            if instr.name == "cx":
                assert poughkeepsie.coupling.has_edge(*instr.qubits)

    def test_region_size_checked(self, poughkeepsie):
        with pytest.raises(ValueError, match="len"):
            bv_on_region(poughkeepsie.coupling, (5, 10, 11), "101")


@settings(max_examples=10, deadline=None)
@given(bits=st.integers(1, 15))
def test_bv_random_secrets(bits):
    secret = format(bits, "04b")
    circ = bernstein_vazirani_circuit(secret)
    circ.num_clbits = 4
    for q in range(4):
        circ.measure(q, q)
    dist = ideal_distribution(circ)
    assert dist == {bv_expected_output(secret): pytest.approx(1.0)}
