"""Tests for the Hidden Shift workload."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.statevector import ideal_distribution
from repro.workloads.hidden_shift import (
    expected_output,
    hidden_shift_circuit,
    hidden_shift_on_region,
)


class TestLogicalCircuit:
    @pytest.mark.parametrize("shift", ["0000", "1010", "0110", "1111"])
    def test_recovers_shift_noiselessly(self, shift):
        circ = hidden_shift_circuit(shift)
        circ.measure_all()
        dist = ideal_distribution(circ)
        assert dist == {expected_output(shift): pytest.approx(1.0)}

    def test_invalid_shift_rejected(self):
        with pytest.raises(ValueError):
            hidden_shift_circuit("101")
        with pytest.raises(ValueError):
            hidden_shift_circuit("10a0")

    def test_two_layers_of_two_cnots(self):
        circ = hidden_shift_circuit("1010")
        assert circ.count_ops()["cx"] == 4

    def test_redundant_variant_triples_cnots(self):
        circ = hidden_shift_circuit("1010", redundant=True)
        assert circ.count_ops()["cx"] == 12
        labels = [i.label for i in circ if i.name == "cx"]
        assert labels.count("redundant") == 8

    def test_redundant_variant_same_output(self):
        for shift in ("1010", "0101"):
            plain = hidden_shift_circuit(shift)
            plain.measure_all()
            redundant = hidden_shift_circuit(shift, redundant=True)
            redundant.measure_all()
            assert ideal_distribution(plain) == pytest.approx(
                ideal_distribution(redundant)
            )


class TestRegionPlacement:
    def test_region_circuit_recovers_shift(self, poughkeepsie):
        circ = hidden_shift_on_region(
            poughkeepsie.coupling, (5, 10, 11, 12), shift="1010"
        )
        dist = ideal_distribution(circ)
        assert dist == {expected_output("1010"): pytest.approx(1.0)}

    def test_region_length_checked(self, poughkeepsie):
        with pytest.raises(ValueError, match="4-qubit"):
            hidden_shift_on_region(poughkeepsie.coupling, (5, 10, 11))

    def test_non_path_rejected(self, poughkeepsie):
        with pytest.raises(ValueError, match="not a path"):
            hidden_shift_on_region(poughkeepsie.coupling, (0, 2, 3, 4))

    def test_oracle_lands_on_outer_edges(self, poughkeepsie):
        circ = hidden_shift_on_region(
            poughkeepsie.coupling, (5, 10, 11, 12), shift="0000"
        )
        edges = {tuple(sorted(i.qubits)) for i in circ if i.name == "cx"}
        assert edges == {(5, 10), (11, 12)}


@settings(max_examples=16, deadline=None)
@given(bits=st.integers(0, 15))
def test_all_shifts_recovered(bits):
    shift = format(bits, "04b")
    circ = hidden_shift_circuit(shift)
    circ.measure_all()
    dist = ideal_distribution(circ)
    assert dist == {expected_output(shift): pytest.approx(1.0)}
