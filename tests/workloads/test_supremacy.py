"""Tests for the supremacy-style random circuit generator."""

import pytest

from repro.workloads.supremacy import supremacy_circuit


class TestSupremacy:
    def test_gate_count_reached(self, poughkeepsie):
        circ = supremacy_circuit(poughkeepsie.coupling, range(8), 200, seed=1)
        non_measure = [i for i in circ if not i.is_measure]
        assert len(non_measure) == 200

    def test_two_qubit_gates_on_edges(self, poughkeepsie):
        circ = supremacy_circuit(poughkeepsie.coupling, range(12), 300, seed=2)
        for instr in circ:
            if instr.is_two_qubit:
                assert poughkeepsie.coupling.has_edge(*instr.qubits)

    def test_gates_stay_in_subset(self, poughkeepsie):
        qubits = list(range(6))
        circ = supremacy_circuit(poughkeepsie.coupling, qubits, 100, seed=3)
        for instr in circ:
            assert set(instr.qubits) <= set(qubits)

    def test_all_subset_qubits_measured(self, poughkeepsie):
        qubits = list(range(6))
        circ = supremacy_circuit(poughkeepsie.coupling, qubits, 100, seed=4)
        measured = {i.qubits[0] for i in circ if i.is_measure}
        assert measured == set(qubits)

    def test_deterministic_by_seed(self, poughkeepsie):
        a = supremacy_circuit(poughkeepsie.coupling, range(6), 120, seed=9)
        b = supremacy_circuit(poughkeepsie.coupling, range(6), 120, seed=9)
        assert a == b

    def test_has_parallelism(self, poughkeepsie):
        circ = supremacy_circuit(poughkeepsie.coupling, range(12), 400, seed=5)
        non_measure = sum(1 for i in circ if not i.is_measure)
        assert circ.depth() < non_measure  # genuinely parallel structure

    def test_validation(self, poughkeepsie):
        with pytest.raises(ValueError):
            supremacy_circuit(poughkeepsie.coupling, [0], 10)
        with pytest.raises(ValueError):
            supremacy_circuit(poughkeepsie.coupling, [0, 2], 10)  # no edge
