"""Tests for the QAOA workload."""

import numpy as np
import pytest

from repro.sim.statevector import ideal_distribution
from repro.workloads.qaoa import QAOA_REGIONS, qaoa_ansatz, qaoa_on_region


class TestAnsatz:
    def test_paper_gate_counts(self):
        circ = qaoa_ansatz()
        assert len(circ) == 43
        assert circ.two_qubit_gate_count() == 9

    def test_deterministic_by_seed(self):
        assert qaoa_ansatz(seed=5) == qaoa_ansatz(seed=5)
        assert qaoa_ansatz(seed=5) != qaoa_ansatz(seed=6)

    def test_entanglers_on_line(self):
        circ = qaoa_ansatz()
        for instr in circ:
            if instr.is_two_qubit:
                a, b = sorted(instr.qubits)
                assert b - a == 1  # line connectivity

    def test_layers_parameter(self):
        shallow = qaoa_ansatz(layers=1)
        assert shallow.two_qubit_gate_count() == 3


class TestRegionPlacement:
    def test_valid_region(self, poughkeepsie):
        circ = qaoa_on_region(poughkeepsie.coupling, (5, 10, 11, 12))
        assert circ.num_qubits == 20
        for instr in circ:
            if instr.is_two_qubit:
                assert poughkeepsie.coupling.has_edge(*instr.qubits)
        assert sum(1 for i in circ if i.is_measure) == 4

    def test_all_paper_regions_valid(self, poughkeepsie):
        for region in QAOA_REGIONS:
            qaoa_on_region(poughkeepsie.coupling, region)

    def test_invalid_region_rejected(self, poughkeepsie):
        with pytest.raises(ValueError, match="not a path"):
            qaoa_on_region(poughkeepsie.coupling, (0, 1, 3, 4))

    def test_ideal_distribution_normalized(self, poughkeepsie):
        circ = qaoa_on_region(poughkeepsie.coupling, (5, 10, 11, 12), seed=11)
        dist = ideal_distribution(circ)
        assert sum(dist.values()) == pytest.approx(1.0)
        assert all(len(k) == 4 for k in dist)

    def test_placement_preserves_distribution(self, poughkeepsie):
        logical = qaoa_ansatz(seed=11)
        logical_measured = logical.copy()
        logical_measured.measure_all()
        placed = qaoa_on_region(poughkeepsie.coupling, (5, 10, 11, 12), seed=11)
        d_logical = ideal_distribution(logical_measured)
        d_placed = ideal_distribution(placed)
        for bits, p in d_logical.items():
            assert d_placed.get(bits, 0.0) == pytest.approx(p, abs=1e-9)
