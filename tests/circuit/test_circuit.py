"""Unit tests for the QuantumCircuit container."""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit, bell_pair_circuit
from repro.circuit.gates import Instruction
from repro.sim.statevector import simulate_statevector


class TestConstruction:
    def test_empty_circuit(self):
        circ = QuantumCircuit(3)
        assert len(circ) == 0
        assert circ.num_qubits == 3
        assert circ.depth() == 0

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)
        with pytest.raises(ValueError):
            QuantumCircuit(2, num_clbits=-1)

    def test_builder_chaining(self):
        circ = QuantumCircuit(2).h(0).cx(0, 1).x(1)
        assert [i.name for i in circ] == ["h", "cx", "x"]

    def test_out_of_range_qubit_rejected(self):
        circ = QuantumCircuit(2)
        with pytest.raises(ValueError, match="out of range"):
            circ.h(2)
        with pytest.raises(ValueError, match="out of range"):
            circ.cx(0, 5)

    def test_out_of_range_clbit_rejected(self):
        circ = QuantumCircuit(2, 1)
        with pytest.raises(ValueError, match="out of range"):
            circ.measure(0, 1)

    def test_all_single_qubit_builders(self):
        circ = QuantumCircuit(1)
        circ.id(0).x(0).y(0).z(0).h(0).s(0).sdg(0).t(0).tdg(0).sx(0)
        circ.rx(0.1, 0).ry(0.2, 0).rz(0.3, 0)
        circ.u1(0.4, 0).u2(0.5, 0.6, 0).u3(0.7, 0.8, 0.9, 0)
        assert len(circ) == 16

    def test_barrier_defaults_to_all_qubits(self):
        circ = QuantumCircuit(3).barrier()
        assert circ[0].qubits == (0, 1, 2)

    def test_measure_all_grows_clbits(self):
        circ = QuantumCircuit(3).h(0)
        circ.measure_all()
        assert circ.num_clbits == 3
        assert sum(1 for i in circ if i.is_measure) == 3


class TestQueries:
    def test_depth_ignores_barriers(self):
        circ = QuantumCircuit(2).h(0).barrier().h(0)
        assert circ.depth() == 2

    def test_depth_parallel_gates(self):
        circ = QuantumCircuit(4).h(0).h(1).h(2).h(3)
        assert circ.depth() == 1
        circ.cx(0, 1).cx(2, 3)
        assert circ.depth() == 2
        circ.cx(1, 2)
        assert circ.depth() == 3

    def test_count_ops(self):
        circ = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        assert circ.count_ops() == {"h": 2, "cx": 1}

    def test_two_qubit_gate_count(self):
        circ = QuantumCircuit(3).h(0).cx(0, 1).swap(1, 2).cz(0, 2)
        assert circ.two_qubit_gate_count() == 3

    def test_active_qubits_excludes_barrier_only(self):
        circ = QuantumCircuit(4).h(1).barrier(0, 1, 2, 3).cx(1, 2)
        assert circ.active_qubits() == (1, 2)

    def test_format_contains_instructions(self):
        text = QuantumCircuit(2, name="demo").h(0).cx(0, 1).format()
        assert "demo" in text
        assert "cx q0, q1" in text


class TestWholeCircuitOps:
    def test_copy_is_independent(self):
        a = QuantumCircuit(2).h(0)
        b = a.copy()
        b.x(1)
        assert len(a) == 1
        assert len(b) == 2

    def test_equality(self):
        assert QuantumCircuit(2).h(0) == QuantumCircuit(2).h(0)
        assert QuantumCircuit(2).h(0) != QuantumCircuit(2).h(1)
        assert QuantumCircuit(2) != QuantumCircuit(3)

    def test_compose(self):
        a = QuantumCircuit(2).h(0)
        b = QuantumCircuit(2).cx(0, 1)
        c = a.compose(b)
        assert [i.name for i in c] == ["h", "cx"]
        assert len(a) == 1  # original untouched

    def test_compose_size_check(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).compose(QuantumCircuit(3))

    def test_inverse_reverses_unitary(self):
        circ = QuantumCircuit(2).h(0).t(0).cx(0, 1).s(1).u3(0.3, 0.4, 0.5, 0)
        round_trip = circ.compose(circ.inverse())
        state = simulate_statevector(round_trip)
        vec = state.vector
        assert abs(abs(vec[0]) - 1.0) < 1e-9  # back to |00> up to phase

    def test_remap(self):
        circ = QuantumCircuit(2).h(0).cx(0, 1)
        mapped = circ.remap([5, 3], num_qubits=6)
        assert mapped[0].qubits == (5,)
        assert mapped[1].qubits == (5, 3)
        assert mapped.num_qubits == 6

    def test_remap_rejects_non_injective(self):
        with pytest.raises(ValueError, match="injective"):
            QuantumCircuit(2).h(0).remap([1, 1])

    def test_remap_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="every circuit qubit"):
            QuantumCircuit(2).h(0).remap([0])


class TestBellPair:
    def test_bell_pair_state(self):
        state = simulate_statevector(bell_pair_circuit())
        expected = np.zeros(4)
        expected[0] = expected[3] = 1 / np.sqrt(2)
        assert np.allclose(np.abs(state.vector), expected)
