"""Unit tests for the gate/instruction layer."""

import math

import numpy as np
import pytest

from repro.circuit.gates import (
    GATE_SPECS,
    Instruction,
    gate_spec,
    inverse_instruction,
    is_two_qubit_gate,
)
from repro.sim.unitaries import gate_unitary


class TestGateSpec:
    def test_known_gates_present(self):
        for name in ("x", "h", "cx", "swap", "measure", "barrier", "u3"):
            assert name in GATE_SPECS

    def test_gate_spec_lookup(self):
        assert gate_spec("cx").num_qubits == 2
        assert gate_spec("u2").num_params == 2
        assert gate_spec("barrier").directive

    def test_unknown_gate_raises(self):
        with pytest.raises(KeyError, match="unknown gate"):
            gate_spec("toffoli")

    def test_is_two_qubit_gate(self):
        assert is_two_qubit_gate("cx")
        assert is_two_qubit_gate("swap")
        assert not is_two_qubit_gate("h")
        assert not is_two_qubit_gate("barrier")
        assert not is_two_qubit_gate("nonsense")

    def test_hermitian_flags(self):
        for name in ("x", "y", "z", "h", "cx", "cz", "swap"):
            assert gate_spec(name).hermitian
        for name in ("s", "t", "rx", "u3"):
            assert not gate_spec(name).hermitian


class TestInstruction:
    def test_basic_construction(self):
        instr = Instruction("cx", (0, 1))
        assert instr.is_two_qubit
        assert not instr.is_barrier
        assert not instr.is_measure

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="expects 2 qubits"):
            Instruction("cx", (0,))
        with pytest.raises(ValueError, match="expects 1 qubits"):
            Instruction("h", (0, 1))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Instruction("cx", (3, 3))

    def test_param_count_enforced(self):
        with pytest.raises(ValueError, match="expects 3 params"):
            Instruction("u3", (0,), (1.0,))
        Instruction("u3", (0,), (1.0, 2.0, 3.0))  # ok

    def test_measure_requires_clbit(self):
        with pytest.raises(ValueError, match="clbit"):
            Instruction("measure", (0,))
        instr = Instruction("measure", (0,), clbit=2)
        assert instr.is_measure
        assert instr.clbit == 2

    def test_empty_barrier_rejected(self):
        with pytest.raises(ValueError, match="barrier"):
            Instruction("barrier", ())

    def test_barrier_spans_any_qubits(self):
        instr = Instruction("barrier", (0, 3, 7))
        assert instr.is_barrier
        assert instr.is_directive

    def test_format(self):
        assert Instruction("cx", (3, 4)).format() == "cx q3, q4"
        assert Instruction("measure", (1,), clbit=0).format() == "measure q1 -> c0"
        assert "rz(1.5)" in Instruction("rz", (0,), (1.5,)).format()


class TestInverseInstruction:
    def _unitary_of(self, instr):
        return gate_unitary(instr.name, instr.params)

    @pytest.mark.parametrize("name", ["x", "y", "z", "h", "cx", "cz", "swap"])
    def test_hermitian_gates_self_inverse(self, name):
        n = gate_spec(name).num_qubits
        instr = Instruction(name, tuple(range(n)))
        assert inverse_instruction(instr) == instr

    @pytest.mark.parametrize("name,inv", [("s", "sdg"), ("sdg", "s"),
                                          ("t", "tdg"), ("tdg", "t")])
    def test_named_inverses(self, name, inv):
        assert inverse_instruction(Instruction(name, (0,))).name == inv

    @pytest.mark.parametrize("name", ["rx", "ry", "rz", "u1"])
    def test_rotation_inverses_negate_angle(self, name):
        instr = Instruction(name, (0,), (0.7,))
        inv = inverse_instruction(instr)
        assert inv.params == (-0.7,)
        product = self._unitary_of(inv) @ self._unitary_of(instr)
        assert np.allclose(product, np.eye(2))

    def test_u2_inverse_is_exact(self):
        instr = Instruction("u2", (0,), (0.3, 1.1))
        inv = inverse_instruction(instr)
        product = self._unitary_of(inv) @ self._unitary_of(instr)
        # Equal up to global phase.
        phase = product[0, 0]
        assert abs(abs(phase) - 1.0) < 1e-9
        assert np.allclose(product, phase * np.eye(2))

    def test_u3_inverse_is_exact(self):
        instr = Instruction("u3", (0,), (0.4, -0.9, 2.2))
        inv = inverse_instruction(instr)
        product = self._unitary_of(inv) @ self._unitary_of(instr)
        phase = product[0, 0]
        assert np.allclose(product, phase * np.eye(2))

    def test_measure_has_no_inverse(self):
        with pytest.raises(ValueError):
            inverse_instruction(Instruction("measure", (0,), clbit=0))

    def test_barrier_has_no_inverse(self):
        with pytest.raises(ValueError):
            inverse_instruction(Instruction("barrier", (0,)))
