"""Unit and property tests for the dependency DAG."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import CircuitDag


def random_circuit(rng: np.random.Generator, num_qubits: int, num_gates: int,
                   with_barriers: bool = False) -> QuantumCircuit:
    circ = QuantumCircuit(num_qubits, num_qubits)
    for _ in range(num_gates):
        r = rng.random()
        if with_barriers and r < 0.1:
            size = int(rng.integers(1, num_qubits + 1))
            qubits = rng.choice(num_qubits, size=size, replace=False)
            circ.barrier(*(int(q) for q in qubits))
        elif r < 0.55:
            circ.h(int(rng.integers(num_qubits)))
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circ.cx(int(a), int(b))
    return circ


class TestBasicStructure:
    def test_linear_dependencies(self):
        circ = QuantumCircuit(1).h(0).x(0).z(0)
        dag = CircuitDag(circ)
        assert dag.predecessors(1) == (0,)
        assert dag.successors(1) == (2,)
        assert dag.ancestors(2) == frozenset({0, 1})
        assert dag.descendants(0) == frozenset({1, 2})

    def test_independent_gates(self):
        circ = QuantumCircuit(2).h(0).h(1)
        dag = CircuitDag(circ)
        assert dag.concurrent(0, 1)
        assert not dag.concurrent(0, 0)

    def test_two_qubit_gate_joins_chains(self):
        circ = QuantumCircuit(2).h(0).h(1).cx(0, 1).x(0)
        dag = CircuitDag(circ)
        assert set(dag.predecessors(2)) == {0, 1}
        assert dag.successors(2) == (3,)

    def test_barrier_creates_ordering(self):
        circ = QuantumCircuit(2).h(0).barrier(0, 1).h(1)
        dag = CircuitDag(circ)
        # h(1) depends on the barrier which depends on h(0).
        assert 0 in dag.ancestors(2)

    def test_clbit_dependencies(self):
        circ = QuantumCircuit(2, 1).measure(0, 0).measure(1, 0)
        dag = CircuitDag(circ)
        assert dag.predecessors(1) == (0,)

    def test_layers(self):
        circ = QuantumCircuit(3).h(0).h(1).cx(0, 1).h(2)
        dag = CircuitDag(circ)
        layers = dag.layers()
        assert layers[0] == [0, 1, 3]
        assert layers[1] == [2]

    def test_qubit_chain_excludes_barriers(self):
        circ = QuantumCircuit(2).h(0).barrier().x(0)
        dag = CircuitDag(circ)
        assert dag.qubit_chain(0) == (0, 2)
        assert dag.first_gate_on(0) == 0
        assert dag.last_gate_on(0) == 2

    def test_empty_qubit_chain_raises(self):
        dag = CircuitDag(QuantumCircuit(2).h(0))
        with pytest.raises(ValueError):
            dag.first_gate_on(1)

    def test_can_overlap_excludes_dependents_and_1q(self):
        circ = QuantumCircuit(4).h(0).cx(0, 1).cx(2, 3).cx(1, 2)
        dag = CircuitDag(circ)
        # cx(0,1) may overlap cx(2,3) but not cx(1,2) (dependent) nor h.
        assert dag.can_overlap(1) == (2,)
        assert dag.can_overlap(2) == (1,)
        # the final cx depends on both others
        assert dag.can_overlap(3) == ()


class TestValidateOrder:
    def test_program_order_is_valid(self):
        circ = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        dag = CircuitDag(circ)
        assert dag.validate_order([0, 1, 2])

    def test_violating_order_rejected(self):
        circ = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        dag = CircuitDag(circ)
        assert not dag.validate_order([1, 0, 2])

    def test_non_permutation_rejected(self):
        dag = CircuitDag(QuantumCircuit(2).h(0).h(1))
        assert not dag.validate_order([0, 0])
        assert not dag.validate_order([0])


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_topological_order_is_always_valid(seed):
    rng = np.random.default_rng(seed)
    circ = random_circuit(rng, 4, 25, with_barriers=True)
    dag = CircuitDag(circ)
    assert dag.validate_order(dag.topological_order())


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_concurrency_is_symmetric_and_exclusive(seed):
    rng = np.random.default_rng(seed)
    circ = random_circuit(rng, 4, 20)
    dag = CircuitDag(circ)
    n = len(circ)
    for i in range(n):
        for j in range(i + 1, n):
            assert dag.concurrent(i, j) == dag.concurrent(j, i)
            dependent = j in dag.descendants(i) or j in dag.ancestors(i)
            assert dag.concurrent(i, j) == (not dependent)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_layers_partition_and_respect_dependencies(seed):
    rng = np.random.default_rng(seed)
    circ = random_circuit(rng, 5, 30, with_barriers=True)
    dag = CircuitDag(circ)
    layers = dag.layers()
    flattened = sorted(idx for layer in layers for idx in layer)
    assert flattened == list(range(len(circ)))
    level = {idx: k for k, layer in enumerate(layers) for idx in layer}
    for u, v in dag.graph.edges:
        assert level[u] < level[v]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_qubit_chains_are_time_ordered(seed):
    rng = np.random.default_rng(seed)
    circ = random_circuit(rng, 4, 25)
    dag = CircuitDag(circ)
    for q in range(circ.num_qubits):
        chain = dag.qubit_chain(q)
        assert list(chain) == sorted(chain)
        for earlier, later in zip(chain, chain[1:]):
            assert earlier in dag.ancestors(later)
