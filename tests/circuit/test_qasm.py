"""Tests for OpenQASM 2.0 serialization."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.qasm import circuit_to_qasm, qasm_to_circuit
from repro.sim.statevector import simulate_statevector


class TestExport:
    def test_header_and_registers(self):
        text = circuit_to_qasm(QuantumCircuit(3, 2))
        assert "OPENQASM 2.0;" in text
        assert "qreg q[3];" in text
        assert "creg c[2];" in text

    def test_no_creg_when_no_clbits(self):
        assert "creg" not in circuit_to_qasm(QuantumCircuit(2))

    def test_gate_rendering(self):
        circ = QuantumCircuit(2, 1)
        circ.h(0).cx(0, 1).rz(math.pi / 2, 1).measure(1, 0)
        circ.barrier(0, 1)
        text = circuit_to_qasm(circ)
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text
        assert "rz(pi/2) q[1];" in text
        assert "measure q[1] -> c[0];" in text
        assert "barrier q[0],q[1];" in text

    def test_u2_params(self):
        circ = QuantumCircuit(1).u2(0.0, math.pi, 0)
        assert "u2(" in circuit_to_qasm(circ)

    def test_delay_rejected(self):
        circ = QuantumCircuit(1).add("delay", 0, params=(100.0,))
        with pytest.raises(ValueError):
            circuit_to_qasm(circ)


class TestImport:
    def test_minimal_program(self):
        circ = qasm_to_circuit("""
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[2];
            creg c[2];
            h q[0];
            cx q[0],q[1];
            measure q[0] -> c[0];
            measure q[1] -> c[1];
        """)
        assert circ.num_qubits == 2
        assert [i.name for i in circ] == ["h", "cx", "measure", "measure"]

    def test_comments_stripped(self):
        circ = qasm_to_circuit("""
            OPENQASM 2.0;   // header
            qreg q[1];
            x q[0];  // flip
        """)
        assert circ.count_ops() == {"x": 1}

    def test_pi_arithmetic(self):
        circ = qasm_to_circuit("""
            OPENQASM 2.0;
            qreg q[1];
            rz(pi/2) q[0];
            rx(-pi) q[0];
            ry(3*pi/4) q[0];
            u1(0.25) q[0];
        """)
        assert circ[0].params[0] == pytest.approx(math.pi / 2)
        assert circ[1].params[0] == pytest.approx(-math.pi)
        assert circ[2].params[0] == pytest.approx(3 * math.pi / 4)
        assert circ[3].params[0] == pytest.approx(0.25)

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            qasm_to_circuit("qreg q[2]; h q[0];")

    def test_missing_qreg_rejected(self):
        with pytest.raises(ValueError, match="qreg"):
            qasm_to_circuit("OPENQASM 2.0; h q[0];")

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError, match="unsupported gate"):
            qasm_to_circuit("OPENQASM 2.0; qreg q[3]; ccx q[0],q[1],q[2];")

    def test_malicious_angle_rejected(self):
        # rejected either at statement parsing or at angle evaluation,
        # never evaluated as code
        with pytest.raises(ValueError):
            qasm_to_circuit(
                'OPENQASM 2.0; qreg q[1]; rz(__import__("os")) q[0];'
            )
        with pytest.raises(ValueError, match="bad angle"):
            qasm_to_circuit("OPENQASM 2.0; qreg q[1]; rz(open) q[0];")


class TestRoundTrip:
    def test_structured_circuit(self):
        circ = QuantumCircuit(4, 2, name="rt")
        circ.h(0).cx(0, 1).barrier().swap(1, 2).cz(2, 3)
        circ.u3(0.1, 0.2, 0.3, 3)
        circ.measure(2, 0)
        circ.measure(3, 1)
        back = qasm_to_circuit(circuit_to_qasm(circ))
        assert back.num_qubits == circ.num_qubits
        assert back.num_clbits == circ.num_clbits
        assert [i.name for i in back] == [i.name for i in circ]
        assert [i.qubits for i in back] == [i.qubits for i in circ]

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_circuits_preserve_semantics(self, seed):
        rng = np.random.default_rng(seed)
        circ = QuantumCircuit(3)
        for _ in range(12):
            r = rng.random()
            if r < 0.4:
                circ.add(["h", "s", "t", "x"][rng.integers(4)],
                         int(rng.integers(3)))
            elif r < 0.6:
                circ.rz(float(rng.uniform(-3, 3)), int(rng.integers(3)))
            else:
                a, b = rng.choice(3, 2, replace=False)
                circ.cx(int(a), int(b))
        back = qasm_to_circuit(circuit_to_qasm(circ))
        v1 = simulate_statevector(circ).vector
        v2 = simulate_statevector(back).vector
        assert np.allclose(v1, v2, atol=1e-9)
