"""Tests for the solver model objects."""

import pytest

from repro.smt.model import Decision, DiffConstraint, Option, ScheduleModel


class TestDiffConstraint:
    def test_after(self):
        c = DiffConstraint.after(2, 1, 100.0)
        assert (c.var_hi, c.var_lo, c.offset) == (2, 1, 100.0)

    def test_at_least(self):
        c = DiffConstraint.at_least(3, 50.0)
        assert c.var_lo is None

    def test_equal(self):
        a, b = DiffConstraint.equal(0, 1)
        assert a.offset == 0.0 and b.offset == 0.0
        assert {a.var_hi, b.var_hi} == {0, 1}

    def test_self_reference_rejected(self):
        with pytest.raises(ValueError):
            DiffConstraint(1, 1, 0.0)


class TestDecision:
    def test_needs_options(self):
        with pytest.raises(ValueError):
            Decision("empty", ())

    def test_payload(self):
        d = Decision("d", (Option("only"),), payload=(1, 2))
        assert d.payload == (1, 2)


class TestScheduleModel:
    def test_needs_variables(self):
        with pytest.raises(ValueError):
            ScheduleModel(0)

    def test_variable_range_checked(self):
        model = ScheduleModel(2)
        with pytest.raises(ValueError):
            model.add_constraint(DiffConstraint(5, 0, 1.0))
        with pytest.raises(ValueError):
            model.add_objective_term(3, 1.0)
        with pytest.raises(ValueError):
            model.add_decision(
                Decision("bad", (Option("o", (DiffConstraint(9, 0, 1.0),)),))
            )

    def test_objective_terms_accumulate(self):
        model = ScheduleModel(2)
        model.add_objective_term(0, 1.0)
        model.add_objective_term(0, 2.0)
        assert model.objective[0] == 3.0

    def test_constraints_for_partial_assignment(self):
        model = ScheduleModel(3)
        model.add_constraint(DiffConstraint(1, 0, 10.0))
        model.add_decision(Decision("d0", (
            Option("a", (DiffConstraint(2, 1, 5.0),)),
            Option("b", ()),
        )))
        model.add_decision(Decision("d1", (
            Option("c", (DiffConstraint(2, 0, 99.0),)),
        )))
        assert len(model.constraints_for([])) == 1
        assert len(model.constraints_for([0])) == 2
        assert len(model.constraints_for([1])) == 1
        assert len(model.constraints_for([0, 0])) == 3
