"""Backend protocol tests: exact/greedy/local-search, windows, portfolio."""

import itertools
import pickle

import pytest

from repro.smt.backends import (
    ExactBnB,
    GreedyDive,
    LocalSearch,
    SolveRequest,
    assignment_from_hint,
    lp_minimize,
)
from repro.smt.budget import Budget
from repro.smt.model import Decision, DiffConstraint, Option, ScheduleModel
from repro.smt.portfolio import PortfolioSolver
from repro.smt.windows import WindowedSolver, plan_windows


def brute_force(model, partial_cost):
    best = float("inf")
    option_counts = [len(d.options) for d in model.decisions]
    for assignment in itertools.product(*(range(c) for c in option_counts)):
        lp = lp_minimize(model, model.constraints_for(list(assignment)))
        if lp is None:
            continue
        best = min(best, partial_cost(tuple(assignment)) + lp[0])
    return best


def chain_model(num_decisions=6, penalty=1.5):
    """A chain of gates with one serialize-or-overlap decision per link.

    Overlapping link ``k`` costs ``penalty * (k % 3)`` immediately, so
    optima are non-trivial and vary across decisions.
    """
    model = ScheduleModel(num_decisions + 1)
    for v in range(num_decisions):
        model.add_constraint(DiffConstraint(v + 1, v, 1.0))
    for k in range(num_decisions):
        model.add_decision(Decision(f"d{k}", (
            Option("serialize", (DiffConstraint(k + 1, k, 3.0),)),
            Option("overlap", ()),
        ), payload=k))
    model.add_objective_term(num_decisions, 1.0)

    def cost(assignment):
        return sum(penalty * (k % 3)
                   for k, choice in enumerate(assignment) if choice == 1)

    return model, cost


class TestBackendContract:
    def test_run_wraps_solution_with_attribution(self):
        model, cost = chain_model(3)
        result = GreedyDive().run(SolveRequest(model, cost))
        assert result.backend == "greedy"
        assert result.seconds >= 0.0
        assert len(result.solution.assignment) == 3

    def test_exact_matches_brute_force(self):
        model, cost = chain_model(5)
        solution = ExactBnB().solve(SolveRequest(model, cost))
        assert solution.exact
        assert solution.objective == pytest.approx(brute_force(model, cost))

    def test_incumbent_seeds_exact(self):
        model, cost = chain_model(4)
        greedy = GreedyDive().solve(SolveRequest(model, cost))
        seeded = ExactBnB().solve(SolveRequest(model, cost, incumbent=greedy))
        assert seeded.objective == pytest.approx(brute_force(model, cost))

    def test_request_pickles(self):
        model, _ = chain_model(3)
        request = SolveRequest(model, budget=Budget(5.0))
        clone = pickle.loads(pickle.dumps(request))
        assert len(clone.model.decisions) == 3
        assert clone.budget.seconds == 5.0


class TestLocalSearch:
    def test_reaches_optimum_on_chain(self):
        model, cost = chain_model(5)
        solution = LocalSearch().solve(SolveRequest(model, cost))
        assert solution.objective == pytest.approx(brute_force(model, cost))

    def test_hint_start_used(self):
        model, cost = chain_model(4)
        exact = ExactBnB().solve(SolveRequest(model, cost))
        labels = exact.option_labels(model)
        hint = {d.name: label for d, label in zip(model.decisions, labels)}
        solution = LocalSearch().solve(SolveRequest(model, cost, hint=hint))
        assert solution.objective == pytest.approx(exact.objective)

    def test_partial_and_infeasible_hint_falls_back(self):
        model, cost = chain_model(4)
        hint = {"d1": "overlap", "d2": "no_such_label"}
        assignment = assignment_from_hint(SolveRequest(model, cost, hint=hint))
        assert len(assignment) == 4
        assert assignment[1] == 1  # the honoured hint

    def test_deterministic(self):
        model, cost = chain_model(6)
        a = LocalSearch().solve(SolveRequest(model, cost))
        b = LocalSearch().solve(SolveRequest(model, cost))
        assert a.assignment == b.assignment

    def test_budget_zero_still_returns_valid_assignment(self):
        model, cost = chain_model(5)
        budget = Budget(0.0)
        solution = LocalSearch().solve(SolveRequest(model, cost, budget=budget))
        assert solution.interrupt == "deadline"
        assert len(solution.assignment) == 5

    def test_max_rounds_validated(self):
        with pytest.raises(ValueError, match="max_rounds"):
            LocalSearch(max_rounds=0)


class TestPlanWindows:
    def test_contiguous_cover_with_cap(self):
        model, _ = chain_model(10)
        plan = plan_windows(model, cap=4)
        assert plan.windows[0][0] == 0
        assert plan.windows[-1][1] == 10
        for (a_start, a_stop), (b_start, b_stop) in zip(
                plan.windows, plan.windows[1:]):
            assert a_stop == b_start
        assert plan.max_window <= 4

    def test_single_window_when_cap_covers_all(self):
        model, _ = chain_model(5)
        plan = plan_windows(model, cap=50)
        assert plan.windows == ((0, 5),)

    def test_deterministic(self):
        model, _ = chain_model(12)
        assert plan_windows(model, cap=5) == plan_windows(model, cap=5)

    def test_disjoint_boundary_preferred(self):
        # Two independent clusters of decisions over disjoint variables;
        # the planner should cut between them rather than mid-cluster.
        model = ScheduleModel(4)
        for k, (a, b) in enumerate([(0, 1), (0, 1), (2, 3), (2, 3)]):
            model.add_decision(Decision(f"d{k}", (
                Option("ab", (DiffConstraint(b, a, 1.0),)),
                Option("free", ()),
            )))
        plan = plan_windows(model, cap=3)
        assert (0, 2) in plan.windows  # slid back from 3 to the seam at 2

    def test_cap_validated(self):
        model, _ = chain_model(3)
        with pytest.raises(ValueError, match="cap"):
            plan_windows(model, cap=0)


class TestWindowedSolver:
    def test_single_window_is_exact(self):
        model, cost = chain_model(5)
        solution = WindowedSolver(cap=20).solve(SolveRequest(model, cost))
        assert solution.exact
        assert solution.objective == pytest.approx(brute_force(model, cost))

    def test_small_windows_within_5pct_of_exact(self):
        model, cost = chain_model(8)
        exact = brute_force(model, cost)
        for cap in (1, 2, 3):
            win = WindowedSolver(cap=cap).solve(SolveRequest(model, cost))
            assert not win.exact or cap >= 8
            assert abs(win.objective - exact) <= 0.05 * abs(exact) + 1e-9

    def test_budget_exhaustion_interrupts_but_completes(self):
        model, cost = chain_model(8)
        budget = Budget(0.0)
        solution = WindowedSolver(cap=2).solve(
            SolveRequest(model, cost, budget=budget))
        assert solution.interrupt == "deadline"
        assert len(solution.assignment) == 8
        assert not budget.armed  # windowed owner disarmed

    def test_deterministic(self):
        model, cost = chain_model(9)
        a = WindowedSolver(cap=3).solve(SolveRequest(model, cost))
        b = WindowedSolver(cap=3).solve(SolveRequest(model, cost))
        assert a.assignment == b.assignment
        assert a.objective == b.objective


class TestPortfolioSolver:
    def test_exact_entrant_wins_small_models(self):
        model, cost = chain_model(5)
        portfolio = PortfolioSolver()
        solution = portfolio.solve(SolveRequest(model, cost))
        assert portfolio.last_race.winner_key == "00-exact"
        assert solution.objective == pytest.approx(brute_force(model, cost))

    def test_windowed_wins_beyond_exact_limit(self):
        model, cost = chain_model(6)
        portfolio = PortfolioSolver()
        request = SolveRequest(model, cost, exact_decision_limit=2)
        solution = portfolio.solve(request)
        assert portfolio.last_race.winner_key == "10-windowed"
        assert len(solution.assignment) == 6

    def test_warm_entrant_joins_with_hint(self):
        model, cost = chain_model(4)
        hint = {d.name: "overlap" for d in model.decisions}
        portfolio = PortfolioSolver()
        portfolio.solve(SolveRequest(model, cost, hint=hint))
        keys = [o.key for o in portfolio.last_race.outcomes]
        assert "20-local-warm" in keys

    def test_zero_budget_degrades_without_raising(self):
        model, cost = chain_model(6)
        budget = Budget(0.0)
        portfolio = PortfolioSolver()
        solution = portfolio.solve(SolveRequest(model, cost, budget=budget))
        assert solution.interrupt == "deadline"
        assert len(solution.assignment) == 6
        assert not budget.armed

    def test_repeated_runs_identical(self):
        model, cost = chain_model(6)
        a = PortfolioSolver().solve(SolveRequest(model, cost))
        b = PortfolioSolver().solve(SolveRequest(model, cost))
        assert a.assignment == b.assignment
        assert a.objective == b.objective
