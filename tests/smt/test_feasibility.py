"""Tests for the Bellman-Ford difference-constraint feasibility check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.feasibility import difference_feasible
from repro.smt.model import DiffConstraint


class TestFeasible:
    def test_empty_system(self):
        sol = difference_feasible(3, [])
        assert sol == [0.0, 0.0, 0.0]

    def test_simple_chain(self):
        constraints = [DiffConstraint(1, 0, 10.0), DiffConstraint(2, 1, 5.0)]
        sol = difference_feasible(3, constraints)
        assert sol[1] - sol[0] >= 10.0
        assert sol[2] - sol[1] >= 5.0

    def test_asap_minimality(self):
        constraints = [DiffConstraint(1, 0, 10.0), DiffConstraint(2, 1, 5.0)]
        sol = difference_feasible(3, constraints)
        assert sol == [0.0, 10.0, 15.0]

    def test_lower_bounds(self):
        sol = difference_feasible(2, [DiffConstraint.at_least(1, 42.0)])
        assert sol[1] == 42.0

    def test_multiple_paths_take_max(self):
        constraints = [
            DiffConstraint(2, 0, 10.0),
            DiffConstraint(1, 0, 8.0),
            DiffConstraint(2, 1, 8.0),
        ]
        sol = difference_feasible(3, constraints)
        assert sol[2] == 16.0

    def test_equality_cycle_is_feasible(self):
        constraints = list(DiffConstraint.equal(0, 1))
        sol = difference_feasible(2, constraints)
        assert sol[0] == sol[1]


class TestInfeasible:
    def test_positive_cycle(self):
        constraints = [DiffConstraint(1, 0, 5.0), DiffConstraint(0, 1, 1.0)]
        assert difference_feasible(2, constraints) is None

    def test_longer_cycle(self):
        constraints = [
            DiffConstraint(1, 0, 1.0),
            DiffConstraint(2, 1, 1.0),
            DiffConstraint(0, 2, -1.0),
        ]
        assert difference_feasible(3, constraints) is None

    def test_negative_cycle_ok(self):
        # x1 >= x0 + 1 and x0 >= x1 - 2 is satisfiable
        constraints = [DiffConstraint(1, 0, 1.0), DiffConstraint(0, 1, -2.0)]
        assert difference_feasible(2, constraints) is not None


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_random_dag_constraints_always_feasible(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 10))
    constraints = []
    for _ in range(n * 2):
        j = int(rng.integers(1, n))
        i = int(rng.integers(0, j))
        constraints.append(DiffConstraint(j, i, float(rng.uniform(0, 100))))
    sol = difference_feasible(n, constraints)
    assert sol is not None
    for c in constraints:
        assert sol[c.var_hi] - sol[c.var_lo] >= c.offset - 1e-9
    assert all(v >= -1e-9 for v in sol)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_solution_satisfies_all_constraints_when_feasible(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 8))
    constraints = []
    for _ in range(n * 3):
        i, j = rng.choice(n, 2, replace=False)
        constraints.append(
            DiffConstraint(int(i), int(j), float(rng.uniform(-50, 50)))
        )
    sol = difference_feasible(n, constraints)
    if sol is not None:
        for c in constraints:
            assert sol[c.var_hi] - sol[c.var_lo] >= c.offset - 1e-6
