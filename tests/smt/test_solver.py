"""Tests for the optimizing solver, including brute-force cross-checks."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.feasibility import difference_feasible
from repro.smt.model import Decision, DiffConstraint, Option, ScheduleModel
from repro.smt.solver import OptimizingSolver


def brute_force(model: ScheduleModel, partial_cost) -> float:
    """Exhaustive reference optimum (LP via the solver's own LP helper)."""
    solver = OptimizingSolver(model, partial_cost)
    best = float("inf")
    option_counts = [len(d.options) for d in model.decisions]
    for assignment in itertools.product(*(range(c) for c in option_counts)):
        lp = solver._lp_minimize(model.constraints_for(list(assignment)))
        if lp is None:
            continue
        best = min(best, partial_cost(tuple(assignment)) + lp[0])
    return best


class TestLpMinimize:
    def test_zero_objective_uses_asap(self):
        model = ScheduleModel(2)
        model.add_constraint(DiffConstraint(1, 0, 10.0))
        solver = OptimizingSolver(model)
        value, x = solver._lp_minimize(model.base_constraints)
        assert value == 0.0
        assert x[1] - x[0] >= 10.0

    def test_linear_objective(self):
        model = ScheduleModel(2)
        model.add_constraint(DiffConstraint(1, 0, 10.0))
        model.add_objective_term(1, 1.0)  # minimize x1
        solver = OptimizingSolver(model)
        value, x = solver._lp_minimize(model.base_constraints)
        assert value == pytest.approx(10.0)

    def test_objective_offset_included(self):
        model = ScheduleModel(1)
        model.objective_offset = 5.0
        model.add_objective_term(0, 1.0)
        solver = OptimizingSolver(model)
        value, _ = solver._lp_minimize([])
        assert value == pytest.approx(5.0)

    def test_infeasible_returns_none(self):
        model = ScheduleModel(2)
        constraints = [DiffConstraint(1, 0, 5.0), DiffConstraint(0, 1, 5.0)]
        solver = OptimizingSolver(model)
        assert solver._lp_minimize(constraints) is None

    def test_negative_coefficient_bounded_by_structure(self):
        # minimize x1 - x0 subject to x1 >= x0 + 10: optimum 10, not -inf.
        model = ScheduleModel(2)
        model.add_constraint(DiffConstraint(1, 0, 10.0))
        model.add_objective_term(1, 1.0)
        model.add_objective_term(0, -1.0)
        solver = OptimizingSolver(model)
        value, _ = solver._lp_minimize(model.base_constraints)
        assert value == pytest.approx(10.0)


def two_gate_model(conditional_cost: float):
    """Two unit-duration gates that may overlap (extra cost) or serialize."""
    model = ScheduleModel(3)  # g0, g1, readout
    model.add_constraint(DiffConstraint(2, 0, 1.0))
    model.add_constraint(DiffConstraint(2, 1, 1.0))
    model.add_decision(Decision("pair", (
        Option("g0_first", (DiffConstraint(1, 0, 1.0),)),
        Option("g1_first", (DiffConstraint(0, 1, 1.0),)),
        Option("overlap", tuple(DiffConstraint.equal(0, 1))),
    )))
    # decoherence: minimize readout minus starts
    model.add_objective_term(2, 2.0)
    model.add_objective_term(0, -1.0)
    model.add_objective_term(1, -1.0)

    def cost(assignment):
        if assignment and assignment[0] == 2:
            return conditional_cost
        return 0.0

    return model, cost


class TestExactSolve:
    def test_prefers_overlap_when_crosstalk_cheap(self):
        model, cost = two_gate_model(conditional_cost=0.1)
        solution = OptimizingSolver(model, cost).solve()
        assert solution.exact
        assert model.decisions[0].options[solution.assignment[0]].label == "overlap"

    def test_prefers_serialization_when_crosstalk_expensive(self):
        model, cost = two_gate_model(conditional_cost=10.0)
        solution = OptimizingSolver(model, cost).solve()
        label = model.decisions[0].options[solution.assignment[0]].label
        assert label in ("g0_first", "g1_first")

    def test_matches_brute_force(self):
        for c in (0.0, 0.5, 1.0, 2.0, 10.0):
            model, cost = two_gate_model(conditional_cost=c)
            solution = OptimizingSolver(model, cost).solve()
            assert solution.objective == pytest.approx(brute_force(model, cost))

    def test_solution_times_feasible(self):
        model, cost = two_gate_model(conditional_cost=10.0)
        solution = OptimizingSolver(model, cost).solve()
        for con in model.constraints_for(solution.assignment):
            lo = 0.0 if con.var_lo is None else solution.times[con.var_lo]
            assert solution.times[con.var_hi] - lo >= con.offset - 1e-6

    def test_no_decisions(self):
        model = ScheduleModel(2)
        model.add_constraint(DiffConstraint(1, 0, 3.0))
        solution = OptimizingSolver(model).solve()
        assert solution.assignment == ()
        assert solution.exact

    def test_infeasible_option_skipped(self):
        model = ScheduleModel(2)
        model.add_constraint(DiffConstraint(1, 0, 5.0))
        model.add_decision(Decision("d", (
            Option("impossible", (DiffConstraint(0, 1, 5.0),)),
            Option("fine", ()),
        )))
        solution = OptimizingSolver(model).solve()
        assert solution.assignment == (1,)

    def test_option_labels_helper(self):
        model, cost = two_gate_model(conditional_cost=0.0)
        solution = OptimizingSolver(model, cost).solve()
        labels = solution.option_labels(model)
        assert len(labels) == 1


class TestGreedy:
    def test_greedy_on_small_model_reasonable(self):
        model, cost = two_gate_model(conditional_cost=10.0)
        solution = OptimizingSolver(model, cost).solve_greedy()
        label = model.decisions[0].options[solution.assignment[0]].label
        assert label in ("g0_first", "g1_first")

    def test_greedy_engages_beyond_limit(self):
        model, cost = two_gate_model(conditional_cost=10.0)
        solver = OptimizingSolver(model, cost, exact_decision_limit=0)
        solution = solver.solve()
        assert not solution.exact or len(model.decisions) == 0

    def test_greedy_raises_when_stuck(self):
        model = ScheduleModel(2)
        model.add_constraint(DiffConstraint(1, 0, 5.0))
        model.add_decision(Decision("d", (
            Option("impossible", (DiffConstraint(0, 1, 5.0),)),
        )))
        with pytest.raises(RuntimeError, match="no feasible option"):
            OptimizingSolver(model).solve_greedy()


class TestResourceLimits:
    def _many_decision_model(self, count=8):
        """A model whose bounds are loose: the cost only materializes at
        full assignments, so exact search must visit the whole tree."""
        model = ScheduleModel(2)
        model.add_constraint(DiffConstraint(1, 0, 1.0))
        for k in range(count):
            model.add_decision(Decision(f"d{k}", (Option("a"), Option("b"))))
        model.add_objective_term(1, 1.0)

        def cost(assignment):
            if len(assignment) < count:
                return 0.0  # monotone: jumps only at the leaves
            return float(sum(1 for c in assignment if c == 0))

        return model, cost

    def test_max_nodes_marks_inexact(self):
        model, cost = self._many_decision_model()
        solver = OptimizingSolver(model, cost, max_nodes=3)
        solution = solver.solve_exact()
        assert not solution.exact
        # still returns a feasible answer (the greedy incumbent at worst)
        assert solution.assignment

    def test_time_limit_respected(self):
        model, cost = self._many_decision_model()
        solver = OptimizingSolver(model, cost, time_limit=1e-6)
        solution = solver.solve_exact()
        assert not solution.exact

    def test_unlimited_solve_is_exact(self):
        model, cost = self._many_decision_model()
        solution = OptimizingSolver(model, cost).solve_exact()
        assert solution.exact
        # all-b is optimal: no penalty, minimal constraint load
        assert all(c == 1 for c in solution.assignment)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_exact_matches_brute_force_on_random_models(seed):
    rng = np.random.default_rng(seed)
    num_vars = int(rng.integers(3, 6))
    model = ScheduleModel(num_vars)
    # random DAG-ish base constraints
    for _ in range(num_vars):
        j = int(rng.integers(1, num_vars))
        i = int(rng.integers(0, j))
        model.add_constraint(DiffConstraint(j, i, float(rng.uniform(1, 5))))
    # random decisions over variable pairs
    num_decisions = int(rng.integers(1, 4))
    for k in range(num_decisions):
        a, b = rng.choice(num_vars, 2, replace=False)
        a, b = int(a), int(b)
        model.add_decision(Decision(f"d{k}", (
            Option("ab", (DiffConstraint(b, a, float(rng.uniform(0, 3))),)),
            Option("ba", (DiffConstraint(a, b, float(rng.uniform(0, 3))),)),
            Option("free", ()),
        )))
    # non-negative coefficients keep the LP bounded for any constraint set
    for v in range(num_vars):
        model.add_objective_term(v, float(rng.uniform(0, 2)))

    penalties = rng.uniform(0, 2, size=num_decisions)

    def cost(assignment):
        return float(sum(penalties[k] for k, c in enumerate(assignment) if c == 2))

    solver = OptimizingSolver(model, cost)
    solution = solver.solve_exact()
    reference = brute_force(model, cost)
    if solution.exact and reference < float("inf"):
        assert solution.objective == pytest.approx(reference, abs=1e-6)
