"""Budget semantics: one owned clock, first-caller-wins arming."""

import pickle
import time

import pytest

from repro.smt.budget import Budget
from repro.smt.solver import OptimizingSolver
from repro.smt.model import Decision, DiffConstraint, Option, ScheduleModel


class TestBudgetBasics:
    def test_unlimited_never_arms_never_expires(self):
        budget = Budget(None)
        assert not budget.limited
        assert budget.arm() is False
        assert not budget.armed
        assert not budget.expired()
        assert budget.remaining() is None

    def test_arm_and_expire(self):
        budget = Budget(0.0)
        assert budget.limited
        assert budget.arm() is True
        assert budget.armed
        time.sleep(0.002)
        assert budget.expired()
        assert budget.remaining() == 0.0

    def test_disarm_idempotent(self):
        budget = Budget(10.0)
        budget.arm()
        budget.disarm()
        assert not budget.armed
        budget.disarm()
        assert not budget.expired()

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Budget(-1.0)

    def test_repr_states(self):
        assert "unlimited" in repr(Budget(None))
        budget = Budget(5.0)
        assert "unarmed" in repr(budget)
        budget.arm()
        assert "armed" in repr(budget)


class TestNestedArming:
    """The dual-arming seam: nested layers can never extend the clock."""

    def test_second_arm_is_noop(self):
        budget = Budget(10.0)
        assert budget.arm() is True
        deadline = budget._deadline
        time.sleep(0.005)
        assert budget.arm() is False
        assert budget._deadline == deadline  # unchanged, not extended

    def test_nested_owner_does_not_disarm(self):
        """The pattern every backend uses: only the arming caller disarms."""
        budget = Budget(10.0)
        outer = budget.arm()
        inner = budget.arm()
        assert outer and not inner
        if inner:  # pragma: no cover - the regression would take this path
            budget.disarm()
        assert budget.armed  # inner layer left the clock running
        if outer:
            budget.disarm()
        assert not budget.armed

    def test_expired_budget_stays_expired_through_nested_arm(self):
        """Regression for the historical seam: an exact solve whose greedy
        incumbent re-armed the deadline would get a fresh clock.  With a
        shared Budget the nested arm is a no-op and the deadline holds."""
        budget = Budget(0.0)
        budget.arm()
        time.sleep(0.002)
        assert budget.expired()
        budget.arm()  # the nested layer trying to arm again
        assert budget.expired()  # still expired — not extended

    def test_exact_solve_shares_clock_with_incumbent(self):
        """End to end: an exhausted budget interrupts both the greedy
        incumbent and the exact search; the solve stays interrupted even
        though two layers (exact + greedy) both tried to arm."""
        model = ScheduleModel(2)
        model.add_constraint(DiffConstraint(1, 0, 1.0))
        for k in range(6):
            model.add_decision(Decision(f"d{k}", (Option("a"), Option("b"))))
        model.add_objective_term(1, 1.0)
        budget = Budget(0.0)
        solver = OptimizingSolver(model, budget=budget)
        solution = solver.solve_exact()
        assert solution.interrupt == "deadline"
        assert not solution.exact
        assert len(solution.assignment) == 6  # still a complete assignment
        assert not budget.armed  # the owner disarmed on the way out


class TestBudgetPickling:
    def test_roundtrip_preserves_deadline(self):
        budget = Budget(30.0)
        budget.arm()
        clone = pickle.loads(pickle.dumps(budget))
        assert clone.seconds == 30.0
        assert clone.armed
        # Monotonic deadlines are system-wide on Linux: the clone's
        # remaining time tracks the original's.
        assert clone.remaining() == pytest.approx(
            budget.remaining(), abs=0.5)

    def test_unarmed_roundtrip(self):
        clone = pickle.loads(pickle.dumps(Budget(5.0)))
        assert clone.seconds == 5.0
        assert not clone.armed


class TestSolverBudgetIntegration:
    def test_explicit_budget_wins_over_time_limit(self):
        model = ScheduleModel(1)
        solver = OptimizingSolver(model, time_limit=0.0, budget=Budget(None))
        assert solver.budget.seconds is None  # unlimited budget won

    def test_time_limit_wraps_into_budget(self):
        model = ScheduleModel(1)
        solver = OptimizingSolver(model, time_limit=2.5)
        assert solver.budget.seconds == 2.5
