"""Tests for the SMT-LIB 2 export."""

import re

import pytest

from repro.smt.model import Decision, DiffConstraint, Option, ScheduleModel
from repro.smt.smtlib import (
    assignment_to_smtlib_asserts,
    model_to_smtlib,
)


@pytest.fixture()
def model():
    m = ScheduleModel(3)
    m.add_constraint(DiffConstraint(1, 0, 10.0))
    m.add_constraint(DiffConstraint.at_least(2, 5.0))
    m.add_decision(Decision("pair_0_1", (
        Option("g0_first", (DiffConstraint(1, 0, 20.0),)),
        Option("overlap", ()),
    )))
    m.add_objective_term(2, 1.5)
    m.objective_offset = 0.25
    return m


class TestExport:
    def test_declares_all_variables(self, model):
        text = model_to_smtlib(model)
        for v in range(3):
            assert f"(declare-const t{v} Real)" in text

    def test_base_constraints_rendered(self, model):
        text = model_to_smtlib(model)
        assert "(assert (>= (- t1 t0) 10.0))" in text
        assert "(assert (>= t2 5.0))" in text

    def test_decision_flags_exactly_one(self, model):
        text = model_to_smtlib(model)
        assert "(declare-const d0_o0 Bool)" in text
        assert "(assert (or d0_o0 d0_o1))" in text
        assert "(assert (not (and d0_o0 d0_o1)))" in text

    def test_option_implications(self, model):
        text = model_to_smtlib(model)
        assert "(assert (=> d0_o0 (>= (- t1 t0) 20.0)))" in text
        assert "pair_0_1:g0_first" in text

    def test_objective(self, model):
        text = model_to_smtlib(model)
        assert "(minimize" in text
        assert "(* 1.5 t2)" in text
        assert "0.25" in text
        assert "(check-sat)" in text

    def test_option_costs_in_objective(self, model):
        text = model_to_smtlib(model, option_costs=[(0.0, 3.5)])
        assert "(ite d0_o1 3.5 0.0)" in text

    def test_option_costs_length_checked(self, model):
        with pytest.raises(ValueError):
            model_to_smtlib(model, option_costs=[(0.0,), (1.0,)])

    def test_comment_embedded(self, model):
        text = model_to_smtlib(model, comment="hello\nworld")
        assert "; hello" in text
        assert "; world" in text

    def test_balanced_parentheses(self, model):
        text = model_to_smtlib(model, option_costs=[(0.0, 3.5)])
        code = re.sub(r";[^\n]*", "", text)
        assert code.count("(") == code.count(")")


class TestAssignmentAsserts:
    def test_pins_choice(self, model):
        text = assignment_to_smtlib_asserts(model, (1,))
        assert "(assert d0_o1)" in text
        assert "(assert (not d0_o0))" in text

    def test_empty_assignment(self, model):
        assert assignment_to_smtlib_asserts(model, ()) == ""


class TestOnRealSchedulerModel:
    def test_export_of_xtalk_model(self, poughkeepsie, pk_report):
        """The scheduler's own model exports cleanly at realistic size."""
        from repro.circuit.circuit import QuantumCircuit
        from repro.core.scheduling.xtalk import XtalkScheduler
        from repro.circuit.dag import CircuitDag
        from repro.smt.model import ScheduleModel

        circ = QuantumCircuit(20, 2)
        circ.cx(5, 10)
        circ.cx(11, 12)
        circ.measure(10, 0)
        circ.measure(11, 1)
        xs = XtalkScheduler(poughkeepsie.calibration(), pk_report, omega=0.5)
        dag = CircuitDag(circ)
        var_of, num_vars, _ = xs._assign_variables(circ)
        model = ScheduleModel(num_vars)
        xs._add_dependency_constraints(model, circ, dag, var_of,
                                       xs.calibration.durations)
        pairs = xs._candidate_pairs(circ, dag)
        xs._add_decisions(model, circ, pairs, var_of, xs.calibration.durations)
        xs._add_decoherence_objective(model, circ, dag, var_of,
                                      xs.calibration.durations)
        text = model_to_smtlib(model, comment="xtalk pair circuit")
        assert "(set-logic QF_LRA)" in text
        assert text.count("declare-const") >= num_vars
