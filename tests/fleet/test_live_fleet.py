"""The live plane over a mini fleet: pure-observer identity + telemetry."""

import pytest

from repro.fleet.soak import SoakConfig, _controller
from repro.obs.live import LivePlane, default_fleet_rules, read_snapshots
from repro.obs.live.export import validate_exposition
from repro.obs.registry import MetricsRegistry, push_registry
from repro.rb.executor import RBConfig

DAYS = 2


def _config():
    return SoakConfig(
        devices=3, days=DAYS, qubits=5,
        rb_config=RBConfig(lengths=(2, 4, 8), num_sequences=2),
    )


@pytest.fixture(scope="module")
def live_run(tmp_path_factory):
    """One fault-free fleet run live-off and one live-on (same seeds)."""
    config = _config()
    live_dir = str(tmp_path_factory.mktemp("live"))
    with push_registry(MetricsRegistry()):
        off = _controller(config).run(config.days)
    with push_registry(MetricsRegistry()) as registry:
        plane = LivePlane(live_dir, interval=0,
                          rules=default_fleet_rules(), source="test-fleet")
        with plane:
            on = _controller(config).run(config.days)
    return off, on, plane, registry


class TestPureObserver:
    def test_published_epochs_bitwise_identical(self, live_run):
        off, on, _plane, _registry = live_run
        assert off.published_json() == on.published_json()

    def test_quarantine_and_replays_identical(self, live_run):
        off, on, _plane, _registry = live_run
        assert off.quarantined == on.quarantined
        assert off.replays == on.replays


class TestPerTickTelemetry:
    def test_one_snapshot_per_tick_plus_final(self, live_run):
        _off, _on, plane, _registry = live_run
        snapshots = read_snapshots(plane.snapshot_path)
        # interval=0 disables the timer: every snapshot here is either a
        # controller tick() or the plane's final exit sample.
        assert len(snapshots) == DAYS + 1
        assert [s["seq"] for s in snapshots] == list(range(DAYS + 1))
        assert all(s["source"] == "test-fleet" for s in snapshots)

    def test_fleet_gauges_progress_across_ticks(self, live_run):
        _off, _on, plane, _registry = live_run
        ticks = read_snapshots(plane.snapshot_path)[:DAYS]
        assert [s["series"]["fleet.day"] for s in ticks] == [0.0, 1.0]
        for snapshot in ticks:
            series = snapshot["series"]
            assert series["fleet.breakers_open"] == 0.0
            assert series["fleet.quarantined_devices"] == 0.0
            assert series["fleet.max_staleness"] == 0.0  # all fresh
            assert "fleet.budget_left" not in series  # unbudgeted fleet

    def test_fleet_heartbeat_rides_in_snapshots(self, live_run):
        _off, _on, plane, _registry = live_run
        last_tick = read_snapshots(plane.snapshot_path)[DAYS - 1]
        entry = last_tick["heartbeats"]["fleet"]
        assert entry["day"] == DAYS - 1
        assert entry["published"] == 3 * DAYS
        assert entry["beats"] >= DAYS

    def test_no_alerts_on_a_healthy_fleet(self, live_run):
        _off, _on, plane, _registry = live_run
        summary = plane.alerts.summary()
        assert summary["firing"] == []
        assert all(counts["fired"] == 0
                   for counts in summary["rules"].values())

    def test_live_counters_accounted(self, live_run):
        _off, _on, _plane, registry = live_run
        assert registry.counter("obs.live.snapshots").value == DAYS + 1
        assert registry.counter("obs.live.heartbeats").value > 0
        assert registry.counter("obs.live.published").value > 0

    def test_prometheus_exposition_written_and_valid(self, live_run):
        _off, _on, plane, _registry = live_run
        with open(plane.prometheus_path, encoding="utf-8") as handle:
            text = handle.read()
        assert validate_exposition(text) == []
        assert "fleet_ticks" in text
        assert 'fleet_staleness{item="sim00"}' in text
