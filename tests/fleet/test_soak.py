"""A small end-to-end chaos soak (CI runs the full-size one)."""

import pytest

from repro.fleet.soak import SoakConfig, main, run_soak
from repro.rb.executor import RBConfig


@pytest.fixture(scope="module")
def small_soak():
    # 4 days is the minimum that can quarantine: two failures trip the
    # breaker, the cooldown eats a day, and the failed probe is trip two
    return run_soak(SoakConfig(
        devices=3, days=4, qubits=5,
        rb_config=RBConfig(lengths=(2, 4, 8), num_sequences=2),
    ))


class TestSoak:
    def test_every_check_passes(self, small_soak):
        assert small_soak.ok, small_soak.format()

    def test_faults_really_fired(self, small_soak):
        assert small_soak.injected.get("fatal", 0) > 0
        assert sum(small_soak.injected.values()) > small_soak.config.days

    def test_always_fail_device_is_the_only_quarantine(self, small_soak):
        assert list(small_soak.quarantined) == ["sim00"]

    def test_scorecard_covers_the_fleet(self, small_soak):
        metrics = small_soak.scorecard.metrics
        assert metrics["devices"] == 3
        assert metrics["quarantined"] == 1

    def test_format_names_every_check(self, small_soak):
        text = small_soak.format()
        for name, _passed, _detail in small_soak.checks:
            assert name in text

    def test_rejects_fleet_too_small_to_mean_anything(self):
        with pytest.raises(ValueError, match=">= 3 devices"):
            SoakConfig(devices=2)

    def test_live_plane_checks_ran_and_passed(self, small_soak):
        verdicts = {name: (passed, detail)
                    for name, passed, detail in small_soak.checks}
        for name in ("live_snapshots", "live_alert_lifecycle",
                     "live_prometheus"):
            passed, detail = verdicts[name]
            assert passed, f"{name}: {detail}"
        # The injected always-fail device makes the drift/breaker alerts
        # fire, and its quarantine resolves them — a full lifecycle.
        assert "fired/resolved per rule" in verdicts["live_alert_lifecycle"][1]


class TestCli:
    def test_main_exits_zero_and_writes_document(self, tmp_path, capsys):
        out = tmp_path / "soak.json"
        code = main([
            "--devices", "3", "--days", "4", "--qubits", "5",
            "--out", str(out),
        ])
        captured = capsys.readouterr()
        assert code == 0, captured.out
        assert "[PASS]" in captured.out
        import json

        document = json.loads(out.read_text())
        assert document["quarantined"] == ["sim00"]
        assert all(passed for _n, passed, _d in document["checks"])
