"""Fleet-scale continuous characterization tests."""
