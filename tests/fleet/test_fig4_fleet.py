"""Figure 4 as a single-device fleet: the drift study on the service."""

from repro.experiments.fig4_daily_drift import TRACKED_PAIRS, run_fig4_fleet
from repro.rb.executor import RBConfig


class TestFig4Fleet:
    def test_single_device_fleet_publishes_the_drift_track(
        self, poughkeepsie
    ):
        outcome = run_fig4_fleet(
            poughkeepsie, days=2,
            rb_config=RBConfig(lengths=(2, 4, 8), num_sequences=2),
        )
        epochs = outcome.epochs[poughkeepsie.name]
        assert [e.day for e in epochs] == [0, 1]
        assert all(e.status == "fresh" for e in epochs)
        assert outcome.quarantined == ()
        # day 0 is the full packed characterization; day 1 the Opt-3
        # HIGH_ONLY refresh of its high pairs
        assert 0 < epochs[1].experiments < epochs[0].experiments
        # the drift track must surface the Figure 4 pairs (the tiny RB
        # sizing is noisy on any single day, so check across the track)
        detected = set().union(*(e.high_pairs() for e in epochs))
        for a, b in TRACKED_PAIRS:
            assert frozenset((a, b)) in detected

        card = outcome.scorecard([poughkeepsie])
        assert card.metrics["devices"] == 1
        assert card.metrics["recall"] > 0.5
