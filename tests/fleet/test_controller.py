"""The fleet controller: epochs, budget, quarantine, resume identity."""

import pytest

from repro.device.presets import simulated_fleet
from repro.fleet import CalibrationEpoch, FleetController
from repro.fleet.soak import CAMPAIGN_SITE
from repro.rb.executor import RBConfig
from repro.resilience import FaultPlan, FleetInterrupted, RetryPolicy

_TINY_RB = RBConfig(lengths=(2, 4, 8), num_sequences=2)


def _fleet(count=3):
    return simulated_fleet(count, qubits=5, seed=0)


def _controller(devices, **kwargs):
    kwargs.setdefault("rb_config", _TINY_RB)
    kwargs.setdefault("seed", 0)
    kwargs.setdefault("retry", RetryPolicy.fast())
    return FleetController(devices, **kwargs)


@pytest.fixture(scope="module")
def clean_run():
    devices = _fleet()
    return devices, _controller(devices).run(4)


class TestPublishing:
    def test_one_epoch_per_device_per_day(self, clean_run):
        devices, outcome = clean_run
        for device in devices:
            days = [e.day for e in outcome.epochs[device.name]]
            assert days == [0, 1, 2, 3]

    def test_opt3_kicks_in_after_first_good_epoch(self, clean_run):
        devices, outcome = clean_run
        for device in devices:
            epochs = outcome.epochs[device.name]
            assert epochs[0].status == "fresh"
            # a HIGH_ONLY refresh re-measures only the known high pairs,
            # so it never costs more than the packed 1-hop campaign...
            assert epochs[1].experiments <= epochs[0].experiments
        # ...and on a device with few high pairs it is strictly cheaper
        assert any(
            outcome.epochs[d.name][1].experiments
            < outcome.epochs[d.name][0].experiments
            for d in devices
        )

    def test_epochs_round_trip_exactly(self, clean_run):
        _devices, outcome = clean_run
        for epochs in outcome.epochs.values():
            for epoch in epochs:
                clone = CalibrationEpoch.from_dict(epoch.to_dict())
                assert clone == epoch
                assert clone.fingerprint() == epoch.fingerprint()

    def test_scorecard_grades_against_planted_truth(self, clean_run):
        devices, outcome = clean_run
        card = outcome.scorecard(devices)
        assert card.metrics["devices"] == len(devices)
        assert card.metrics["recall"] > 0.5
        assert 0.0 <= card.metrics["stable_days_fraction"] <= 1.0

    def test_duplicate_device_names_rejected(self):
        devices = _fleet(2)
        with pytest.raises(ValueError, match="unique"):
            _controller([devices[0], devices[0]])


class TestBudget:
    def test_budget_deferral_carries_instead_of_dropping(self):
        devices = _fleet()
        controller = _controller(devices, daily_budget=1)
        outcome = controller.run(2)
        statuses = {
            name: [e.status for e in epochs]
            for name, epochs in outcome.epochs.items()
        }
        # nobody can afford a packed campaign: every device still
        # publishes, as explicit missing epochs (no prior to carry)
        assert all(set(s) == {"missing"} for s in statuses.values())
        for epochs in outcome.epochs.values():
            assert [e.day for e in epochs] == [0, 1]
            assert all(e.experiments == 0 for e in epochs)

    def test_budget_for_one_device_rotates_by_staleness(self):
        devices = _fleet()
        plan_cost = 30  # enough for one packed campaign per day
        outcome = _controller(devices, daily_budget=plan_cost).run(3)
        measured_days = {
            name: [e.day for e in epochs if e.status == "fresh"]
            for name, epochs in outcome.epochs.items()
        }
        # the staleness priority must spread the budget around: every
        # device gets measured at least once in three days
        assert all(days for days in measured_days.values()), measured_days

    def test_unbudgeted_run_never_defers(self, clean_run):
        _devices, outcome = clean_run
        assert all(
            e.status == "fresh"
            for epochs in outcome.epochs.values() for e in epochs
        )


class TestQuarantine:
    def test_always_failing_device_is_parked_without_stalling_others(self):
        devices = _fleet()
        victim = devices[0].name
        plans = {victim: FaultPlan.single(
            "fatal", rate=1.0, max_failures=10 ** 6, seed=1,
            site=CAMPAIGN_SITE,
        )}
        outcome = _controller(devices, fault_plans=plans).run(5)
        assert victim in outcome.quarantined
        # the victim still publishes every day — missing epochs, since it
        # never produced a good report to carry
        assert [e.day for e in outcome.epochs[victim]] == list(range(5))
        assert all(not e.good for e in outcome.epochs[victim])
        # and the healthy devices are untouched
        for device in devices[1:]:
            assert device.name not in outcome.quarantined
            assert all(e.status == "fresh"
                       for e in outcome.epochs[device.name])

    def test_carried_epoch_marks_coverage_stale(self):
        # days 0-1 succeed, then the device starts failing hard: every
        # later epoch must republish the day-1 report with every entry
        # explicitly stale, not silently pretend freshness
        devices = _fleet()
        victim = devices[0].name
        clean = _controller(devices)
        prior = clean.run(2).epochs[victim][-1]
        assert prior.good

        chaos_controller = _controller(devices, fault_plans={
            victim: FaultPlan.single(
                "fatal", rate=1.0, max_failures=10 ** 6, seed=1,
                site=CAMPAIGN_SITE,
            )
        })
        # seed the new controller's history with the good prior epoch
        chaos_controller._tracks[victim].append(prior)
        chaos = chaos_controller.run(2, start_day=2)
        failed = [e for e in chaos.epochs[victim] if e.day >= 2]
        assert failed and all(not e.good for e in failed)
        for epoch in failed:
            assert epoch.status == "failed"
            summary = epoch.coverage["summary"]
            assert summary["fresh"] == 0
            assert summary["stale"] == summary["total"] > 0
            # every carried value is annotated with the day it was
            # really measured, not the day it was republished
            assert all(
                entry["status"] == "stale"
                and entry["source_day"] == prior.day
                for entry in epoch.coverage["entries"]
            )


class TestResume:
    def test_kill_and_resume_publishes_bitwise_identical_epochs(
        self, tmp_path
    ):
        devices = _fleet()
        plans = {devices[2].name: FaultPlan.single(
            "task_error", rate=0.3, max_failures=1, seed=3,
            site=CAMPAIGN_SITE,
        )}

        def controller(directory, interrupt_after=None):
            return _controller(
                _fleet(), fault_plans=plans,
                checkpoint_dir=str(tmp_path / directory),
                interrupt_after=interrupt_after,
            )

        uninterrupted = controller("clean").run(3)
        with pytest.raises(FleetInterrupted):
            controller("killed", interrupt_after=4).run(3)
        resumed = controller("killed").run(3)
        assert resumed.replays > 0
        assert resumed.published_json() == uninterrupted.published_json()

    def test_double_restart_still_matches(self, tmp_path):
        def controller(interrupt_after=None):
            return _controller(
                _fleet(), checkpoint_dir=str(tmp_path / "ckpt"),
                interrupt_after=interrupt_after,
            )

        baseline = _controller(_fleet()).run(3)
        with pytest.raises(FleetInterrupted):
            controller(interrupt_after=3).run(3)
        with pytest.raises(FleetInterrupted):
            controller(interrupt_after=6).run(3)
        final = controller().run(3)
        assert final.published_json() == baseline.published_json()

    def test_worker_count_does_not_change_published_epochs(self):
        serial = _controller(_fleet(), workers=1).run(2)
        pooled = _controller(_fleet(), workers=2).run(2)
        assert serial.published_json() == pooled.published_json()


class TestSchedulerConsumption:
    def test_published_epoch_feeds_the_scheduler_warm_start_path(
        self, clean_run
    ):
        from repro.circuit.circuit import QuantumCircuit
        from repro.core.scheduling.xtalk import XtalkScheduler

        devices, outcome = clean_run
        device = devices[0]
        epochs = outcome.epochs[device.name]
        report = epochs[0].report()

        circ = QuantumCircuit(device.coupling.num_qubits, 2)
        circ.cx(0, 1)
        circ.cx(2, 3)
        circ.measure(1, 0)
        circ.measure(2, 1)

        first = XtalkScheduler(
            device.calibration(), report, omega=0.5,
        ).schedule(circ)
        # the next day's epoch re-schedules the same circuit, warm-started
        # from yesterday's solution — the fleet's steady-state loop
        second = XtalkScheduler(
            device.calibration(), epochs[1].report(), omega=0.5,
            warm_start=first,
        ).schedule(circ)
        assert second.circuit is not None
        assert second.audit()["warranted"] >= 0
