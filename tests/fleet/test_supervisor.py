"""Per-device supervision: admission, stalls, quarantine."""

import pytest

from repro.fleet import STALL_SITE, DeviceSupervisor
from repro.obs.registry import get_registry
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    MeasurementStall,
    VirtualClock,
)


def _supervisor(clock, **kwargs):
    kwargs.setdefault("failure_threshold", 2)
    kwargs.setdefault("cooldown", 1.5)
    kwargs.setdefault("quarantine_after", 2)
    return DeviceSupervisor("sim00", clock, **kwargs)


class TestAdmission:
    def test_healthy_device_is_admitted(self):
        supervisor = _supervisor(VirtualClock())
        assert supervisor.admit(0) == (True, None)

    def test_open_breaker_refuses(self):
        clock = VirtualClock()
        supervisor = _supervisor(clock)
        supervisor.note_failure(0, "boom")
        supervisor.note_failure(0, "boom")
        assert supervisor.admit(0) == (False, "breaker_open")
        assert supervisor.failures == [(0, "boom"), (0, "boom")]

    def test_cooldown_elapse_readmits_a_probe(self):
        clock = VirtualClock()
        supervisor = _supervisor(clock)
        supervisor.note_failure(0, "boom")
        supervisor.note_failure(0, "boom")
        clock.advance(1.5)
        admitted, refusal = supervisor.admit(1)
        assert admitted and refusal is None

    def test_cancel_returns_probe_without_counting(self):
        clock = VirtualClock()
        supervisor = _supervisor(clock)
        supervisor.note_failure(0, "boom")
        supervisor.note_failure(0, "boom")
        clock.advance(1.5)
        assert supervisor.admit(1)[0]
        supervisor.cancel()  # e.g. budget ran out before the probe
        assert supervisor.breaker.trips == 1
        assert supervisor.admit(1)[0]  # re-probes immediately

    def test_validates_quarantine_after(self):
        with pytest.raises(ValueError):
            DeviceSupervisor("x", VirtualClock(), quarantine_after=0)


class TestQuarantine:
    def test_repeated_trips_quarantine_permanently(self):
        clock = VirtualClock()
        supervisor = _supervisor(clock)
        before = get_registry().counter("fleet.quarantined").snapshot()
        supervisor.note_failure(0, "boom")
        supervisor.note_failure(1, "boom")  # trip 1 — not yet quarantined
        assert not supervisor.quarantined
        clock.advance(1.5)
        assert supervisor.admit(3)[0]  # probe
        supervisor.note_failure(3, "boom")  # probe fails: trip 2
        assert supervisor.quarantined
        assert supervisor.admit(4) == (False, "quarantined")
        assert get_registry().counter(
            "fleet.quarantined").snapshot() == before + 1
        # success can no longer rescue a quarantined device
        supervisor.note_success(5)
        assert supervisor.admit(5) == (False, "quarantined")

    def test_recovered_device_is_not_quarantined(self):
        clock = VirtualClock()
        supervisor = _supervisor(clock)
        supervisor.note_failure(0, "boom")
        supervisor.note_failure(1, "boom")
        clock.advance(1.5)
        assert supervisor.admit(2)[0]
        supervisor.note_success(2)  # probe succeeds: breaker closes
        assert not supervisor.quarantined
        assert supervisor.admit(3) == (True, None)


class TestHeartbeat:
    def test_clean_heartbeat_does_not_raise(self):
        supervisor = _supervisor(VirtualClock())
        supervisor.heartbeat(0)
        supervisor.complete()
        assert supervisor.stall_charge == 0.0

    def test_injected_stall_raises_and_charges_the_clock(self):
        clock = VirtualClock()
        injector = FaultInjector(FaultPlan.single(
            "job_timeout", rate=1.0, max_failures=1, seed=4,
            site=STALL_SITE,
        ))
        supervisor = _supervisor(clock, stall_timeout=0.5, faults=injector)
        with pytest.raises(MeasurementStall):
            supervisor.heartbeat(0)
        assert supervisor.stall_charge == pytest.approx(0.625)
        assert clock.now == pytest.approx(0.625)
        assert injector.count == 1

    def test_stall_draw_is_deterministic_per_day(self):
        def charges(seed):
            clock = VirtualClock()
            injector = FaultInjector(FaultPlan.single(
                "job_timeout", rate=0.5, max_failures=1, seed=seed,
                site=STALL_SITE,
            ))
            supervisor = _supervisor(clock, faults=injector)
            stalled = []
            for day in range(8):
                try:
                    supervisor.heartbeat(day)
                except MeasurementStall:
                    stalled.append(day)
            return stalled

        assert charges(7) == charges(7)
        assert charges(7), "rate=0.5 over 8 days should stall at least once"
