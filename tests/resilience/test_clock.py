"""Virtual clock and watchdog: the deterministic time base of supervision."""

import pytest

from repro.resilience import MeasurementStall, VirtualClock, Watchdog


class TestVirtualClock:
    def test_starts_at_zero_and_advances(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        assert clock.advance(0.5) == 0.5
        assert clock.advance(0.25) == 0.75

    def test_custom_start(self):
        assert VirtualClock(3.0).now == 3.0

    def test_advance_rejects_negative(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_never_moves_backwards(self):
        clock = VirtualClock()
        clock.advance_to(2.0)
        assert clock.now == 2.0
        clock.advance_to(1.0)  # no-op: already past it
        assert clock.now == 2.0
        clock.advance_to(2.5)
        assert clock.now == 2.5


class TestWatchdog:
    def test_requires_positive_timeout(self):
        with pytest.raises(ValueError):
            Watchdog(VirtualClock(), 0.0)

    def test_fresh_watchdog_is_healthy(self):
        dog = Watchdog(VirtualClock(), 0.5)
        assert dog.age == 0.0
        assert not dog.stalled
        dog.check()  # must not raise

    def test_stall_detected_after_timeout(self):
        clock = VirtualClock()
        dog = Watchdog(clock, 0.5, name="watchdog[test]")
        clock.advance(0.5)
        assert not dog.stalled  # boundary is exclusive
        clock.advance(0.01)
        assert dog.stalled
        with pytest.raises(MeasurementStall, match="watchdog"):
            dog.check()

    def test_beat_resets_age(self):
        clock = VirtualClock()
        dog = Watchdog(clock, 0.5)
        clock.advance(0.4)
        dog.beat()
        clock.advance(0.4)
        assert not dog.stalled
        dog.check()
