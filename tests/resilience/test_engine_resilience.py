"""Engine-level resilience: retries, worker death, failure identity.

Task functions must be module-level (picklable) so the pool path can ship
them; every scenario is exercised serially and with a real process pool.
"""

import pytest

from repro.parallel.engine import ParallelEngine
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    TaskFailure,
    TransientTaskError,
)


def _double(context, item):
    return item * 2


def _boom_on_two(context, item):
    if item == 2:
        raise ValueError(f"task {item} exploded")
    return item


@pytest.fixture(params=[1, 2], ids=["serial", "pool"])
def workers(request):
    return request.param


class TestTransientFaultRetry:
    def test_injected_failures_converge_to_clean_results(self, workers):
        injector = FaultInjector(
            FaultPlan.single("task_error", rate=0.4, max_failures=1, seed=3)
        )
        with ParallelEngine(workers, name="t", retry=RetryPolicy.fast(),
                            faults=injector) as engine:
            results = engine.map(_double, list(range(12)))
        assert results == [i * 2 for i in range(12)]
        assert injector.count > 0

    def test_results_identical_across_worker_counts(self):
        outputs = []
        for count in (1, 2):
            injector = FaultInjector(
                FaultPlan.single("task_error", rate=0.4, max_failures=1, seed=3)
            )
            with ParallelEngine(count, name="t", retry=RetryPolicy.fast(),
                                faults=injector) as engine:
                outputs.append(engine.map(_double, list(range(12))))
        assert outputs[0] == outputs[1]

    def test_without_policy_injected_fault_propagates(self, workers):
        injector = FaultInjector(FaultPlan.single("task_error", rate=1.0))
        with ParallelEngine(workers, name="t", faults=injector) as engine:
            with pytest.raises(TransientTaskError):
                engine.map(_double, [1, 2, 3])


class TestWorkerDeath:
    def test_pool_is_recreated_and_results_complete(self):
        injector = FaultInjector(
            FaultPlan.single("worker_death", rate=0.3, max_failures=1, seed=7)
        )
        with ParallelEngine(2, name="t", retry=RetryPolicy.fast(),
                            faults=injector) as engine:
            results = engine.map(_double, list(range(10)))
        assert results == [i * 2 for i in range(10)]
        assert any(d.kind == "worker_death" for d in injector.injected)

    def test_serial_worker_death_is_retried_to_same_results(self):
        injector = FaultInjector(
            FaultPlan.single("worker_death", rate=0.3, max_failures=1, seed=7)
        )
        with ParallelEngine(1, name="t", retry=RetryPolicy.fast(),
                            faults=injector) as engine:
            results = engine.map(_double, list(range(10)))
        assert results == [i * 2 for i in range(10)]


class TestFailureIdentity:
    def test_exception_carries_task_failure_record(self, workers):
        with ParallelEngine(workers, name="t") as engine:
            with pytest.raises(ValueError, match="task 2") as info:
                engine.map(_boom_on_two, [1, 2, 3], keys=["a", "b", "c"])
        failure = info.value.task_failure
        assert isinstance(failure, TaskFailure)
        assert failure.task_index == 1
        assert failure.task_key == "b"
        assert failure.attempts == 1
        assert failure.site == "t.task"

    def test_pool_failure_preserves_worker_traceback(self):
        # force the real pool (the serial-fallback heuristic would keep
        # these trivial tasks in-process)
        with ParallelEngine(2, name="t", min_parallel_seconds=0.0) as engine:
            with pytest.raises(ValueError) as info:
                engine.map(_boom_on_two, [1, 2, 3])
        assert "_boom_on_two" in info.value.task_failure.traceback_text

    def test_non_retryable_error_is_not_retried(self, workers):
        with ParallelEngine(workers, name="t",
                            retry=RetryPolicy.fast(max_attempts=4)) as engine:
            with pytest.raises(ValueError) as info:
                engine.map(_boom_on_two, [1, 2, 3])
        assert info.value.task_failure.attempts == 1


class TestReturnFailures:
    def test_failed_slot_holds_task_failure(self, workers):
        with ParallelEngine(workers, name="t") as engine:
            results = engine.map(_boom_on_two, [1, 2, 3],
                                 return_failures=True)
        assert results[0] == 1 and results[2] == 3
        assert isinstance(results[1], TaskFailure)
        assert results[1].task_index == 1

    def test_exhausted_transient_failure_is_returned(self, workers):
        injector = FaultInjector(
            FaultPlan.single("task_error", rate=1.0, max_failures=99)
        )
        with ParallelEngine(workers, name="t",
                            retry=RetryPolicy.fast(max_attempts=2),
                            faults=injector) as engine:
            results = engine.map(_double, [5], return_failures=True)
        assert isinstance(results[0], TaskFailure)
        assert results[0].attempts == 2


class TestCallbacks:
    def test_on_result_sees_every_success_once(self, workers):
        seen = {}
        with ParallelEngine(workers, name="t",
                            retry=RetryPolicy.fast()) as engine:
            injector = FaultInjector(
                FaultPlan.single("task_error", rate=0.4, max_failures=1, seed=3)
            )
            engine.faults = injector
            engine.map(_double, list(range(8)),
                       on_result=lambda i, v: seen.setdefault(i, v))
        assert seen == {i: i * 2 for i in range(8)}

    def test_keys_length_mismatch_rejected(self):
        with ParallelEngine(1, name="t") as engine:
            with pytest.raises(ValueError, match="keys"):
                engine.map(_double, [1, 2], keys=["only-one"])
