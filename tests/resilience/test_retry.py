"""Retry policies: deterministic backoff, correct classification, bounded attempts."""

import pytest

from repro.obs.registry import get_registry
from repro.resilience import (
    BackendJobError,
    FatalTaskError,
    RetryPolicy,
    TransientTaskError,
    WorkerCrashError,
)


class TestValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(base_delay=-1.0)

    def test_rejects_out_of_range_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=2.0)


class TestClassification:
    def test_transient_errors_are_retryable(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientTaskError("x"))
        assert policy.is_retryable(WorkerCrashError("x"))
        assert policy.is_retryable(BackendJobError("x"))

    def test_ordinary_exceptions_are_not(self):
        policy = RetryPolicy()
        assert not policy.is_retryable(ValueError("bug"))
        assert not policy.is_retryable(FatalTaskError("bug"))

    def test_extra_types_extend_the_set(self):
        policy = RetryPolicy(retryable_types=(KeyError,))
        assert policy.is_retryable(KeyError("k"))
        assert not policy.is_retryable(TimeoutError("t"))


class TestDelay:
    def test_deterministic_for_same_key_and_attempt(self):
        policy = RetryPolicy(jitter_seed=5)
        assert policy.delay(1, "k") == policy.delay(1, "k")
        assert policy.delay(2, "k") == policy.delay(2, "k")

    def test_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                             jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(5) == pytest.approx(0.5)  # capped

    def test_jitter_spreads_distinct_keys(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5, max_delay=10.0)
        delays = {policy.delay(1, k) for k in range(20)}
        assert len(delays) > 1
        assert all(0.5 <= d <= 1.5 for d in delays)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay(0)

    def test_fast_policy_has_zero_backoff(self):
        assert RetryPolicy.fast().delay(3, "k") == 0.0


class TestCall:
    def test_succeeds_after_transient_failures(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientTaskError("try again")
            return "done"

        assert RetryPolicy.fast(max_attempts=3).call(flaky) == "done"
        assert len(attempts) == 3

    def test_counts_retries_in_registry(self):
        registry = get_registry()
        before = registry.counter("resilience.retries").snapshot()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise TransientTaskError("x")
            return 1

        RetryPolicy.fast().call(flaky)
        assert registry.counter("resilience.retries").snapshot() == before + 1

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def buggy():
            calls.append(1)
            raise ValueError("bug")

        with pytest.raises(ValueError, match="bug"):
            RetryPolicy.fast(max_attempts=5).call(buggy)
        assert len(calls) == 1

    def test_exhausted_attempts_propagate_final_error(self):
        def always():
            raise TransientTaskError("permanent")

        with pytest.raises(TransientTaskError, match="permanent"):
            RetryPolicy.fast(max_attempts=3).call(always)

    def test_none_policy_never_retries(self):
        calls = []

        def flaky():
            calls.append(1)
            raise TransientTaskError("x")

        with pytest.raises(TransientTaskError):
            RetryPolicy.none().call(flaky)
        assert len(calls) == 1
