"""JSON-lines checkpoints: round-trip, corruption tolerance, identity checks."""

import json
import multiprocessing
import os

import pytest

from repro.obs.registry import get_registry
from repro.resilience import (
    CHECKPOINT_SCHEMA,
    CheckpointMismatch,
    JsonlCheckpoint,
)


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "campaign.ckpt.jsonl")


class TestRoundTrip:
    def test_append_then_reload(self, path):
        first = JsonlCheckpoint(path, campaign_key="abc", run_id="r1")
        first.append("k1", {"rates": [0.01, 0.02]})
        first.append("k2", {"rates": [0.03]})

        second = JsonlCheckpoint(path, campaign_key="abc")
        assert len(second) == 2
        assert second.get("k1") == {"rates": [0.01, 0.02]}
        assert second.get("k2") == {"rates": [0.03]}

    def test_floats_round_trip_bitwise(self, path):
        value = {"rate": 0.1 + 0.2, "other": 1e-17}
        JsonlCheckpoint(path).append("k", value)
        loaded = JsonlCheckpoint(path).get("k")
        assert loaded["rate"] == value["rate"]
        assert loaded["other"] == value["other"]

    def test_last_write_wins_for_duplicate_keys(self, path):
        ckpt = JsonlCheckpoint(path)
        ckpt.append("k", 1)
        ckpt.append("k", 2)
        assert JsonlCheckpoint(path).get("k") == 2
        assert len(JsonlCheckpoint(path)) == 1

    def test_contains_and_keys(self, path):
        ckpt = JsonlCheckpoint(path)
        ckpt.append("a", 1)
        ckpt.append("b", 2)
        assert "a" in ckpt and "c" not in ckpt
        assert list(ckpt.keys()) == ["a", "b"]

    def test_missing_file_is_empty(self, path):
        ckpt = JsonlCheckpoint(path)
        assert len(ckpt) == 0
        assert ckpt.get("nope", "default") == "default"


class TestHitAccounting:
    def test_hits_and_misses_counted(self, path):
        registry = get_registry()
        hits_before = registry.counter("resilience.checkpoint.hits").snapshot()
        misses_before = registry.counter(
            "resilience.checkpoint.misses").snapshot()

        ckpt = JsonlCheckpoint(path)
        ckpt.append("k", 1)
        ckpt.get("k")
        ckpt.get("absent")

        assert ckpt.hits == 1
        assert registry.counter(
            "resilience.checkpoint.hits").snapshot() == hits_before + 1
        assert registry.counter(
            "resilience.checkpoint.misses").snapshot() == misses_before + 1


class TestCorruption:
    def test_corrupt_lines_are_skipped(self, path):
        ckpt = JsonlCheckpoint(path)
        ckpt.append("good", 1)
        with open(path, "a") as handle:
            handle.write("{not json at all\n")
            handle.write('{"key": "also_good", "value": 2}\n')
            handle.write('{"value": "missing key field"}\n')

        registry = get_registry()
        before = registry.counter(
            "resilience.checkpoint.corrupt_lines").snapshot()
        reloaded = JsonlCheckpoint(path)
        assert reloaded.get("good") == 1
        assert reloaded.get("also_good") == 2
        assert len(reloaded) == 2
        assert registry.counter(
            "resilience.checkpoint.corrupt_lines").snapshot() == before + 2

    def test_truncated_final_line_does_not_lose_earlier_records(self, path):
        ckpt = JsonlCheckpoint(path)
        for i in range(5):
            ckpt.append(f"k{i}", i)
        with open(path, "a") as handle:
            handle.write('{"key": "k5", "val')  # simulated crash mid-write
        reloaded = JsonlCheckpoint(path)
        assert len(reloaded) == 5
        assert "k5" not in reloaded


class TestTornTail:
    def test_unparseable_torn_tail_is_truncated_and_counted(self, path):
        ckpt = JsonlCheckpoint(path)
        ckpt.append("k0", 0)
        with open(path, "a") as handle:
            handle.write('{"key": "k1", "val')  # no newline, not JSON
        registry = get_registry()
        before = registry.counter(
            "resilience.checkpoint.truncations").snapshot()
        reloaded = JsonlCheckpoint(path)
        assert len(reloaded) == 1
        assert registry.counter(
            "resilience.checkpoint.truncations").snapshot() == before + 1
        # the torn bytes must be physically gone: appends after the repair
        # start on a clean line and survive the next reload
        reloaded.append("k1", 1)
        assert JsonlCheckpoint(path).get("k1") == 1

    def test_parseable_tail_missing_newline_is_kept_and_repaired(self, path):
        ckpt = JsonlCheckpoint(path)
        ckpt.append("k0", 0)
        # a crash between write() and the newline flush: the record is
        # complete JSON but the line is unterminated
        with open(path, "a") as handle:
            handle.write(json.dumps({"key": "k1", "value": 1}))
        reloaded = JsonlCheckpoint(path)
        assert reloaded.get("k1") == 1
        reloaded.append("k2", 2)
        final = JsonlCheckpoint(path)
        assert len(final) == 3
        assert final.get("k2") == 2
        with open(path) as handle:
            assert all(line.endswith("\n") for line in handle)


def _write_then_die(path, records):
    """Checkpoint writer that is killed mid-record (child process)."""
    ckpt = JsonlCheckpoint(path, campaign_key="kill-test")
    for i in range(records):
        ckpt.append(f"k{i}", {"value": i})
    # start the next record but die before the newline hits the disk
    with open(path, "a") as handle:
        handle.write('{"key": "torn", "value": {"partial": ')
        handle.flush()
        os._exit(13)


class TestKilledWriter:
    def test_writer_killed_mid_record_loses_only_the_torn_record(
        self, path
    ):
        records = 8
        process = multiprocessing.Process(
            target=_write_then_die, args=(path, records)
        )
        process.start()
        process.join(timeout=60)
        assert process.exitcode == 13

        recovered = JsonlCheckpoint(path, campaign_key="kill-test")
        assert len(recovered) == records
        assert all(f"k{i}" in recovered for i in range(records))
        assert "torn" not in recovered
        # the survivor must be able to keep writing where the dead
        # writer stopped, and the resumed tail must parse cleanly
        recovered.append("k_resumed", {"value": "after-crash"})
        final = JsonlCheckpoint(path, campaign_key="kill-test")
        assert final.get("k_resumed") == {"value": "after-crash"}
        assert len(final) == records + 1


class TestIdentity:
    def test_header_carries_schema_and_key(self, path):
        JsonlCheckpoint(path, campaign_key="abc", run_id="r1").append("k", 1)
        with open(path) as handle:
            header = json.loads(handle.readline())
        assert header["schema"] == CHECKPOINT_SCHEMA
        assert header["campaign_key"] == "abc"
        assert header["run_id"] == "r1"

    def test_mismatched_campaign_key_raises(self, path):
        JsonlCheckpoint(path, campaign_key="abc").append("k", 1)
        with pytest.raises(CheckpointMismatch):
            JsonlCheckpoint(path, campaign_key="different")

    def test_on_mismatch_reset_starts_fresh(self, path):
        JsonlCheckpoint(path, campaign_key="abc").append("k", 1)
        fresh = JsonlCheckpoint(path, campaign_key="different",
                                on_mismatch="reset")
        assert len(fresh) == 0
        fresh.append("k2", 2)
        assert JsonlCheckpoint(path, campaign_key="different").get("k2") == 2
