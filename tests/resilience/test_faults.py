"""Fault plans must be deterministic, rate-respecting, and site-scoped."""

import pytest

from repro.resilience import (
    BackendJobError,
    FatalTaskError,
    FaultDirective,
    FaultInjector,
    FaultPlan,
    FaultRule,
    TransientTaskError,
    WorkerCrashError,
    execute_directive,
    raise_fault,
)


class TestFaultRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule("meteor_strike")

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            FaultRule("task_error", rate=1.5)

    def test_rejects_bad_max_failures(self):
        with pytest.raises(ValueError, match="max_failures"):
            FaultRule("task_error", max_failures=0)


class TestFaultPlanSelection:
    def test_same_key_always_same_decision(self):
        plan = FaultPlan.single("task_error", rate=0.5, seed=11)
        first = [plan.directive("site", k) for k in range(50)]
        second = [plan.directive("site", k) for k in range(50)]
        assert first == second

    def test_rate_zero_never_fires_rate_one_always(self):
        never = FaultPlan.single("task_error", rate=0.0)
        always = FaultPlan.single("task_error", rate=1.0)
        assert all(never.directive("s", k) is None for k in range(20))
        assert all(always.directive("s", k) is not None for k in range(20))

    def test_rate_is_roughly_respected(self):
        plan = FaultPlan.single("task_error", rate=0.3, seed=4)
        hits = sum(plan.directive("s", k) is not None for k in range(400))
        assert 0.2 < hits / 400 < 0.4

    def test_selection_independent_of_attempt_below_max(self):
        plan = FaultPlan.single("task_error", rate=1.0, max_failures=3)
        for attempt in range(3):
            assert plan.directive("s", "k", attempt) is not None
        assert plan.directive("s", "k", 3) is None

    def test_site_pattern_scopes_rule(self):
        plan = FaultPlan.single("task_error", site="characterize.*")
        assert plan.directive("characterize.one_hop.task", 0) is not None
        assert plan.directive("backend.job", 0) is None

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(rules=(
            FaultRule("fatal", rate=1.0, site="backend.*"),
            FaultRule("task_error", rate=1.0),
        ))
        assert plan.directive("backend.job", 0).kind == "fatal"
        assert plan.directive("elsewhere", 0).kind == "task_error"

    def test_seed_changes_selection(self):
        a = FaultPlan.single("task_error", rate=0.5, seed=0)
        b = FaultPlan.single("task_error", rate=0.5, seed=1)
        picks_a = [a.directive("s", k) is not None for k in range(60)]
        picks_b = [b.directive("s", k) is not None for k in range(60)]
        assert picks_a != picks_b


class TestDirectiveExecution:
    @pytest.mark.parametrize("kind,exc", [
        ("task_error", TransientTaskError),
        ("worker_death", WorkerCrashError),
        ("job_rejection", BackendJobError),
        ("job_timeout", BackendJobError),
        ("fatal", FatalTaskError),
    ])
    def test_raise_fault_maps_kinds(self, kind, exc):
        directive = FaultDirective(kind, "site", "key", 0)
        with pytest.raises(exc):
            raise_fault(directive)

    def test_backend_kind_attribute(self):
        with pytest.raises(BackendJobError) as info:
            raise_fault(FaultDirective("job_timeout", "s", "k", 0))
        assert info.value.kind == "timeout"

    def test_execute_without_process_exit_raises(self):
        directive = FaultDirective("worker_death", "s", "k", 0)
        with pytest.raises(WorkerCrashError):
            execute_directive(directive, process_exit=False)


class TestFaultInjector:
    def test_check_counts_attempts_until_clear(self):
        injector = FaultInjector(
            FaultPlan.single("task_error", rate=1.0, max_failures=2)
        )
        for _ in range(2):
            with pytest.raises(TransientTaskError):
                injector.check("s", "k")
        injector.check("s", "k")  # third attempt clears max_failures
        assert injector.count == 2

    def test_injected_directives_are_recorded_in_order(self):
        injector = FaultInjector(FaultPlan.single("task_error"))
        with pytest.raises(TransientTaskError):
            injector.check("s", "a")
        with pytest.raises(TransientTaskError):
            injector.check("s", "b")
        assert [d.key for d in injector.injected] == [repr("a"), repr("b")]
