"""Solver budget exhaustion must degrade to a valid schedule, never raise."""

import math

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.scheduling.xtalk import XtalkScheduler
from repro.device.backend import NoisyBackend
from repro.device.topology import normalize_edge
from repro.obs.events import event_sink
from repro.obs.registry import get_registry


def pair_circuit():
    """Two concurrent CNOTs on the planted pair (5,10)|(11,12)."""
    circ = QuantumCircuit(20, 2)
    circ.cx(5, 10)
    circ.cx(11, 12)
    circ.measure(10, 0)
    circ.measure(11, 1)
    return circ


def busy_circuit():
    """Several concurrent CNOT layers so the solver has real decisions."""
    circ = QuantumCircuit(20, 4)
    circ.cx(5, 10)
    circ.cx(11, 12)
    circ.cx(0, 1)
    circ.cx(16, 17)
    circ.cx(3, 4)
    circ.cx(13, 14)
    for i, q in enumerate((10, 11, 0, 16)):
        circ.measure(q, i)
    return circ


def _assert_valid_schedule(result, device):
    """The degraded circuit must still be executable on hardware."""
    backend = NoisyBackend(device)
    hw = backend.schedule_of(result.circuit)
    assert hw.two_qubit_ops()
    assert result.compile_seconds >= 0


class TestIncumbentFallback:
    def test_exhausted_budget_returns_valid_schedule(
        self, poughkeepsie, pk_report
    ):
        scheduler = XtalkScheduler(
            poughkeepsie.calibration(), pk_report, omega=0.5,
            max_solve_seconds=0.0,
        )
        result = scheduler.schedule(busy_circuit())
        assert result.fallback_reason == "solve_budget:incumbent"
        assert result.solution is not None
        _assert_valid_schedule(result, poughkeepsie)

    def test_fallback_counted_and_logged(self, poughkeepsie, pk_report):
        registry = get_registry()
        before = registry.counter("resilience.fallbacks").snapshot()
        scheduler = XtalkScheduler(
            poughkeepsie.calibration(), pk_report, omega=0.5,
            max_solve_seconds=0.0,
        )
        with event_sink() as sink:
            scheduler.schedule(busy_circuit())
        assert registry.counter("resilience.fallbacks").snapshot() == before + 1
        events = sink.of("resilience.fallback")
        assert len(events) == 1
        assert events[0]["component"] == "xtalk_sched"
        assert events[0]["reason"] == "solve_budget:incumbent"

    def test_generous_budget_means_no_fallback(self, poughkeepsie, pk_report):
        scheduler = XtalkScheduler(
            poughkeepsie.calibration(), pk_report, omega=0.5,
            max_solve_seconds=60.0,
        )
        result = scheduler.schedule(pair_circuit())
        assert result.fallback_reason is None
        assert result.solution.interrupt is None


class TestParFallback:
    def test_par_fallback_leaves_circuit_unserialized(
        self, poughkeepsie, pk_report
    ):
        scheduler = XtalkScheduler(
            poughkeepsie.calibration(), pk_report, omega=0.5,
            max_solve_seconds=0.0, fallback="par",
        )
        result = scheduler.schedule(pair_circuit())
        assert result.fallback_reason == "solve_budget:par"
        assert result.serialized_pairs == ()
        assert all(label == "overlap" for label in result.option_labels)
        assert result.solution.interrupt == "fallback"
        assert math.isnan(result.solution.objective)
        # ParSched semantics: the planted pair still overlaps
        backend = NoisyBackend(poughkeepsie)
        hw = backend.schedule_of(result.circuit)
        ops = {normalize_edge(t.instruction.qubits): t
               for t in hw.two_qubit_ops()}
        assert ops[(5, 10)].overlaps(ops[(11, 12)])

    def test_unknown_fallback_rejected(self, poughkeepsie, pk_report):
        with pytest.raises(ValueError, match="fallback"):
            XtalkScheduler(
                poughkeepsie.calibration(), pk_report, omega=0.5,
                fallback="give_up",
            )


class TestLegacyTimeLimit:
    def test_time_limit_alone_keeps_silent_incumbent(
        self, poughkeepsie, pk_report
    ):
        """Legacy ``time_limit`` has no fallback accounting: the solver's
        incumbent is used without a recorded fallback."""
        registry = get_registry()
        before = registry.counter("resilience.fallbacks").snapshot()
        scheduler = XtalkScheduler(
            poughkeepsie.calibration(), pk_report, omega=0.5,
            time_limit=0.0,
        )
        result = scheduler.schedule(busy_circuit())
        assert result.fallback_reason is None
        assert registry.counter("resilience.fallbacks").snapshot() == before
        _assert_valid_schedule(result, poughkeepsie)


class TestSolverErrorFallback:
    def test_solver_crash_degrades_to_par(
        self, poughkeepsie, pk_report, monkeypatch
    ):
        from repro.smt import solver as solver_module

        def explode(self):
            raise RuntimeError("solver crashed")

        monkeypatch.setattr(solver_module.OptimizingSolver, "solve", explode)
        scheduler = XtalkScheduler(
            poughkeepsie.calibration(), pk_report, omega=0.5,
            max_solve_seconds=1.0,
        )
        with event_sink() as sink:
            result = scheduler.schedule(pair_circuit())
        assert result.fallback_reason == "solver_error:RuntimeError"
        assert result.serialized_pairs == ()
        assert sink.of("resilience.fallback")
        _assert_valid_schedule(result, poughkeepsie)
