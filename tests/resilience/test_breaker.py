"""Circuit breaker state machine: deterministic trip/probe/close timing."""

import pytest

from repro.obs.events import event_sink
from repro.obs.registry import get_registry
from repro.resilience import (
    BREAKER_STATE_CODES,
    BREAKER_STATES,
    CircuitBreaker,
    VirtualClock,
)


def _breaker(clock, **kwargs):
    kwargs.setdefault("failure_threshold", 2)
    kwargs.setdefault("cooldown", 1.0)
    kwargs.setdefault("cooldown_factor", 2.0)
    kwargs.setdefault("max_cooldown", 3.0)
    return CircuitBreaker(clock, name="breaker[test]", **kwargs)


class TestClosedState:
    def test_starts_closed_and_allows(self):
        breaker = _breaker(VirtualClock())
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.trips == 0

    def test_failures_below_threshold_stay_closed(self):
        breaker = _breaker(VirtualClock())
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker = _breaker(VirtualClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_threshold_failures_trip_open(self):
        breaker = _breaker(VirtualClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(VirtualClock(), failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(VirtualClock(), cooldown=0.0)


class TestProbeCycle:
    def test_cooldown_elapse_admits_exactly_one_probe(self):
        clock = VirtualClock()
        breaker = _breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(0.5)
        assert not breaker.allow()  # still cooling down
        clock.advance(0.5)
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # one probe at a time

    def test_probe_success_closes(self):
        clock = VirtualClock()
        breaker = _breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_with_escalated_cooldown(self):
        clock = VirtualClock()
        breaker = _breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.current_cooldown == 1.0
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # probe fails: immediate re-trip
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert breaker.current_cooldown == 2.0
        clock.advance(1.0)
        assert not breaker.allow()  # escalated cooldown not yet elapsed
        clock.advance(1.0)
        assert breaker.allow()

    def test_cooldown_escalation_is_capped(self):
        clock = VirtualClock()
        breaker = _breaker(clock)
        for _ in range(5):
            breaker.record_failure()
            breaker.record_failure()
            clock.advance(breaker.current_cooldown)
            breaker.allow()
        assert breaker.current_cooldown == 3.0  # max_cooldown

    def test_cancel_probe_returns_to_open_without_a_trip(self):
        clock = VirtualClock()
        breaker = _breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.cancel_probe()
        assert breaker.state == "open"
        assert breaker.trips == 1  # no extra trip, no escalation
        # cooldown already elapsed, so the next call re-probes at once
        assert breaker.allow()
        assert breaker.state == "half_open"

    def test_cancel_probe_is_a_noop_outside_half_open(self):
        breaker = _breaker(VirtualClock())
        breaker.cancel_probe()
        assert breaker.state == "closed"


class TestObservability:
    def test_state_gauge_tracks_transitions(self):
        registry = get_registry()
        clock = VirtualClock()
        breaker = _breaker(clock)
        gauge = registry.gauge("resilience.breaker.state")
        assert gauge.snapshot() == BREAKER_STATE_CODES["closed"]
        breaker.record_failure()
        breaker.record_failure()
        assert gauge.snapshot() == BREAKER_STATE_CODES["open"]
        clock.advance(1.0)
        breaker.allow()
        assert gauge.snapshot() == BREAKER_STATE_CODES["half_open"]
        breaker.record_success()
        assert gauge.snapshot() == BREAKER_STATE_CODES["closed"]

    def test_trips_counted_and_events_logged(self):
        registry = get_registry()
        before = registry.counter("resilience.breaker.trips").snapshot()
        with event_sink() as sink:
            breaker = _breaker(VirtualClock())
            breaker.record_failure()
            breaker.record_failure()
        assert registry.counter(
            "resilience.breaker.trips").snapshot() == before + 1
        trip_events = [e for e in sink.of("resilience.breaker")
                       if e["transition"] == "trip"]
        assert len(trip_events) == 1
        assert trip_events[0]["state"] == "open"
        assert trip_events[0]["name"] == "breaker[test]"

    def test_state_codes_cover_all_states(self):
        assert set(BREAKER_STATE_CODES) == set(BREAKER_STATES)
