"""Campaign-level resilience: fault convergence, resume, degradation.

The acceptance bar from the issue: a campaign with >=20% injected transient
failures must converge — after retries — to a report bitwise-identical to
the fault-free run, at every worker count; killing a run mid-campaign and
resuming from its checkpoint must produce the identical report while
re-executing only the missing experiments.
"""

import pytest

from repro.core.characterization.campaign import (
    CharacterizationCampaign,
    CharacterizationPolicy,
)
from repro.rb.executor import RBConfig
from repro.resilience import (
    FatalTaskError,
    FaultInjector,
    FaultPlan,
    JsonlCheckpoint,
    RetryPolicy,
)

_TINY_RB = RBConfig(lengths=(2, 6, 14), num_sequences=2)


def _campaign(device, workers=None):
    return CharacterizationCampaign(
        device, rb_config=_TINY_RB, seed=7, workers=workers
    )


@pytest.fixture(scope="module")
def baseline_json(poughkeepsie):
    outcome = _campaign(poughkeepsie).run(
        CharacterizationPolicy.ONE_HOP_PACKED
    )
    return outcome.report.to_json()


class TestFaultConvergence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_faulty_campaign_matches_fault_free_report(
        self, poughkeepsie, baseline_json, workers
    ):
        injector = FaultInjector(
            FaultPlan.single("task_error", rate=0.25, max_failures=1, seed=5)
        )
        outcome = _campaign(poughkeepsie, workers=workers).run(
            CharacterizationPolicy.ONE_HOP_PACKED,
            retry=RetryPolicy.fast(),
            faults=injector,
        )
        assert injector.count > 0, "fault plan should actually fire"
        assert outcome.report.to_json() == baseline_json
        assert not outcome.degraded
        assert outcome.failures == ()

    def test_injection_count_is_worker_invariant(self, poughkeepsie):
        counts = []
        for workers in (1, 2, 4):
            injector = FaultInjector(
                FaultPlan.single("task_error", rate=0.25, max_failures=1,
                                 seed=5)
            )
            _campaign(poughkeepsie, workers=workers).run(
                CharacterizationPolicy.ONE_HOP_PACKED,
                retry=RetryPolicy.fast(),
                faults=injector,
            )
            counts.append(injector.count)
        assert counts[0] == counts[1] == counts[2] > 0


class TestCheckpointResume:
    def test_interrupted_run_resumes_to_identical_report(
        self, poughkeepsie, baseline_json, tmp_path
    ):
        path = str(tmp_path / "campaign.ckpt.jsonl")
        # Kill the campaign partway: a fatal (non-retryable) fault on one
        # experiment aborts the run after earlier tasks already streamed
        # their results into the checkpoint.
        injector = FaultInjector(
            FaultPlan.single("fatal", rate=0.15, seed=2)
        )
        with pytest.raises(FatalTaskError):
            _campaign(poughkeepsie).run(
                CharacterizationPolicy.ONE_HOP_PACKED,
                checkpoint=path,
                faults=injector,
            )
        completed = len(JsonlCheckpoint(path))
        assert completed > 0, "some experiments should finish before the kill"

        outcome = _campaign(poughkeepsie).run(
            CharacterizationPolicy.ONE_HOP_PACKED, checkpoint=path
        )
        assert outcome.report.to_json() == baseline_json
        assert outcome.checkpoint_hits == completed
        assert outcome.checkpoint_hits < outcome.plan.num_experiments

    def test_completed_run_resumes_entirely_from_checkpoint(
        self, poughkeepsie, baseline_json, tmp_path
    ):
        path = str(tmp_path / "campaign.ckpt.jsonl")
        first = _campaign(poughkeepsie).run(
            CharacterizationPolicy.ONE_HOP_PACKED, checkpoint=path
        )
        assert first.checkpoint_hits == 0

        second = _campaign(poughkeepsie).run(
            CharacterizationPolicy.ONE_HOP_PACKED, checkpoint=path
        )
        assert second.checkpoint_hits == second.plan.num_experiments
        assert second.report.to_json() == baseline_json
        # span accounting must match the uninterrupted run (cached counters
        # are replayed), so downstream cost analysis is unaffected
        assert first.report.to_json() == second.report.to_json()

    def test_interrupted_run_resumes_at_four_workers(
        self, poughkeepsie, baseline_json, tmp_path
    ):
        path = str(tmp_path / "campaign.ckpt.jsonl")
        injector = FaultInjector(
            FaultPlan.single("fatal", rate=0.15, seed=2)
        )
        with pytest.raises(FatalTaskError):
            _campaign(poughkeepsie, workers=4).run(
                CharacterizationPolicy.ONE_HOP_PACKED,
                checkpoint=path,
                faults=injector,
            )
        completed = len(JsonlCheckpoint(path))
        assert completed > 0

        outcome = _campaign(poughkeepsie, workers=4).run(
            CharacterizationPolicy.ONE_HOP_PACKED, checkpoint=path
        )
        assert outcome.report.to_json() == baseline_json
        assert outcome.checkpoint_hits >= completed

    def test_double_restart_resumes_to_identical_report(
        self, poughkeepsie, baseline_json, tmp_path
    ):
        # Two successive kills (different fatal schedules, so the second
        # attempt dies on an experiment the first one completed past),
        # then a clean third attempt: the checkpoint must accumulate
        # monotonically across restarts and the final report must still
        # be bitwise-identical to the fault-free baseline.
        path = str(tmp_path / "campaign.ckpt.jsonl")
        completed = []
        for seed in (2, 9):
            injector = FaultInjector(
                FaultPlan.single("fatal", rate=0.15, seed=seed)
            )
            with pytest.raises(FatalTaskError):
                _campaign(poughkeepsie).run(
                    CharacterizationPolicy.ONE_HOP_PACKED,
                    checkpoint=path,
                    faults=injector,
                )
            completed.append(len(JsonlCheckpoint(path)))
        assert completed[0] > 0
        assert completed[1] >= completed[0]

        outcome = _campaign(poughkeepsie).run(
            CharacterizationPolicy.ONE_HOP_PACKED, checkpoint=path
        )
        assert outcome.report.to_json() == baseline_json
        assert outcome.checkpoint_hits == completed[1]

    def test_checkpoint_rejects_different_campaign(
        self, poughkeepsie, tmp_path
    ):
        from repro.resilience import CheckpointMismatch

        path = str(tmp_path / "campaign.ckpt.jsonl")
        _campaign(poughkeepsie).run(
            CharacterizationPolicy.ONE_HOP_PACKED, checkpoint=path
        )
        other = CharacterizationCampaign(
            poughkeepsie, rb_config=_TINY_RB, seed=8
        )
        with pytest.raises(CheckpointMismatch):
            other.run(CharacterizationPolicy.ONE_HOP_PACKED, checkpoint=path)

    def test_on_mismatch_reset_reruns_from_scratch(
        self, poughkeepsie, tmp_path
    ):
        path = str(tmp_path / "campaign.ckpt.jsonl")
        _campaign(poughkeepsie).run(
            CharacterizationPolicy.ONE_HOP_PACKED, checkpoint=path
        )
        other = CharacterizationCampaign(
            poughkeepsie, rb_config=_TINY_RB, seed=8
        )
        outcome = other.run(
            CharacterizationPolicy.ONE_HOP_PACKED,
            checkpoint=path, on_mismatch="reset",
        )
        assert outcome.checkpoint_hits == 0


class TestGracefulDegradation:
    def test_partial_report_falls_back_to_prior_day(self, poughkeepsie):
        prior = _campaign(poughkeepsie).run(
            CharacterizationPolicy.ONE_HOP_PACKED, day=0
        ).report
        injector = FaultInjector(
            FaultPlan.single("fatal", rate=0.2, seed=3)
        )
        outcome = _campaign(poughkeepsie).run(
            CharacterizationPolicy.ONE_HOP_PACKED, day=1,
            prior=prior, faults=injector, degradation="partial",
        )
        assert injector.count > 0
        assert outcome.degraded
        assert len(outcome.failures) > 0
        stale = outcome.coverage.stale
        assert stale, "failed units should degrade to stale, not missing"
        assert all(e.source_day == 0 for e in stale)
        assert not outcome.coverage.missing
        # stale values must be copied verbatim from the prior report
        for entry in stale:
            if entry.kind == "edge":
                (edge,) = entry.targets
                assert outcome.report.independent[edge] == \
                    prior.independent[edge]

    def test_partial_without_prior_marks_missing(self, poughkeepsie):
        injector = FaultInjector(
            FaultPlan.single("fatal", rate=0.2, seed=3)
        )
        outcome = _campaign(poughkeepsie).run(
            CharacterizationPolicy.ONE_HOP_PACKED,
            faults=injector, degradation="partial",
        )
        assert outcome.degraded
        assert outcome.coverage.missing
        assert not outcome.coverage.stale

    def test_fault_free_run_has_complete_fresh_coverage(self, poughkeepsie):
        outcome = _campaign(poughkeepsie).run(
            CharacterizationPolicy.ONE_HOP_PACKED
        )
        assert not outcome.degraded
        assert outcome.coverage.complete
        summary = outcome.coverage.summary()
        assert summary["stale"] == 0 and summary["missing"] == 0
        assert summary["fresh"] == len(outcome.coverage.entries)

    def test_strict_mode_raises_on_exhausted_failure(self, poughkeepsie):
        injector = FaultInjector(FaultPlan.single("fatal", rate=0.2, seed=3))
        with pytest.raises(FatalTaskError):
            _campaign(poughkeepsie).run(
                CharacterizationPolicy.ONE_HOP_PACKED,
                faults=injector, degradation="strict",
            )
