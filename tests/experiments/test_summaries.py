"""Pure-function tests for the figure drivers' summarizers and formatters
(synthetic rows; no simulation)."""

import pytest

from repro.experiments import (
    fig3_characterization as fig3,
    fig4_daily_drift as fig4,
    fig5_swap_errors as fig5,
    fig8_qaoa as fig8,
    fig9_hidden_shift as fig9,
    fig10_characterization_cost as fig10,
    scalability,
    sensitivity,
)


class TestFig4Summary:
    def _rows(self):
        return [
            fig4.Fig4Row(
                day=d,
                conditional={
                    "E(13, 14)|(18, 19)": 0.10 + 0.02 * d,
                    "E(18, 19)|(13, 14)": 0.12,
                    "E(10, 15)|(11, 12)": 0.09,
                    "E(11, 12)|(10, 15)": 0.06,
                },
                independent={
                    "E(13, 14)": 0.015,
                    "E(18, 19)": 0.016,
                    "E(10, 15)": 0.010,
                    "E(11, 12)": 0.014,
                },
            )
            for d in range(3)
        ]

    def test_summary_flags(self):
        summary = fig4.summarize(self._rows())
        assert summary.conditional_above_independent_every_day
        assert summary.stable_high_pairs
        assert summary.max_conditional_variation == pytest.approx(0.14 / 0.10)

    def test_below_independent_detected(self):
        rows = self._rows()
        rows[1].conditional["E(13, 14)|(18, 19)"] = 0.001
        summary = fig4.summarize(rows)
        assert not summary.conditional_above_independent_every_day

    def test_format_table(self):
        table = fig4.format_table(self._rows())
        assert "day" in table
        assert "2.2x" not in table or True  # renders without raising


class TestFig5Summary:
    def _row(self, serial, par, xtalk, dur_par=5000.0, dur_x=5800.0):
        return fig5.Fig5Row(
            device="dev",
            qubit_pair=(0, 5),
            path_length=3,
            error={"SerialSched": serial, "ParSched": par, "XtalkSched": xtalk},
            duration={"SerialSched": 8000.0, "ParSched": dur_par,
                      "XtalkSched": dur_x},
        )

    def test_row_properties(self):
        row = self._row(0.2, 0.3, 0.1)
        assert row.improvement_over_par == pytest.approx(3.0)
        assert row.improvement_over_serial == pytest.approx(2.0)
        assert row.duration_ratio_vs_par == pytest.approx(5800 / 5000)

    def test_summary_geomean(self):
        rows = [self._row(0.2, 0.4, 0.1), self._row(0.2, 0.1, 0.1)]
        summary = fig5.summarize(rows)
        assert summary.max_improvement_over_par == pytest.approx(4.0)
        assert summary.geomean_improvement_over_par == pytest.approx(2.0)

    def test_wins_counts_ties(self):
        rows = [self._row(0.2, 0.3, 0.1), self._row(0.1, 0.1, 0.11)]
        summary = fig5.summarize(rows)
        assert summary.wins == 2  # within the +0.02 tolerance


class TestFig8Summary:
    def _result(self):
        rows = []
        for region in [(1, 2, 3, 4), (5, 6, 7, 8)]:
            for omega, ce in [(0.0, 2.8), (0.35, 2.6), (1.0, 2.7)]:
                rows.append(fig8.Fig8Row(region, omega, ce))
        return fig8.Fig8Result(rows, theoretical_ideal=2.5,
                               clean_band_mean=2.62, clean_band_std=0.02)

    def test_summary(self):
        summary = fig8.summarize(self._result())
        assert summary.interior_beats_endpoints == 2
        assert summary.loss_improvement_vs_par == pytest.approx(3.0)
        assert summary.loss_improvement_vs_serial == pytest.approx(2.0)

    def test_series_and_best(self):
        result = self._result()
        assert result.best_omega((1, 2, 3, 4)) == 0.35
        assert dict(result.series((1, 2, 3, 4)))[1.0] == 2.7

    def test_format(self):
        assert "cross entropy" in fig8.format_table(self._result()).lower()


class TestFig9Summary:
    def _rows(self, redundant_mid=0.2):
        rows = []
        for region in [(1, 2, 3, 4)]:
            for omega, plain, red in [(0.0, 0.10, 0.40), (0.35, 0.09, redundant_mid),
                                      (1.0, 0.08, 0.30)]:
                rows.append(fig9.Fig9Row(region, False, omega, plain))
                rows.append(fig9.Fig9Row(region, True, omega, red))
        return rows

    def test_redundant_win_detected(self):
        summary = fig9.summarize(self._rows())
        assert summary.redundant_midrange_wins == 1
        assert summary.best_redundant_improvement == pytest.approx(2.0)

    def test_redundant_loss_detected(self):
        summary = fig9.summarize(self._rows(redundant_mid=0.5))
        assert summary.redundant_midrange_wins == 0

    def test_format(self):
        assert "redundant" in fig9.format_table(self._rows())


class TestFig10Summary:
    def test_summaries_per_device(self, devices):
        rows = fig10.run_fig10(devices=devices)
        summaries = fig10.summarize(rows)
        assert len(summaries) == 3
        for s in summaries:
            assert s.total_reduction > 1.0


class TestScalabilityFormat:
    def test_format(self):
        rows = [scalability.ScalabilityRow(6, 100, 12, 1.5, True)]
        table = scalability.format_table(rows)
        assert "100" in table
        assert "1.50" in table


class TestSensitivityRows:
    def test_improvement(self):
        row = sensitivity.SensitivityRow(5.0, 0.3, 0.1, True)
        assert row.improvement == pytest.approx(3.0)

    def test_format(self):
        rows = [sensitivity.SensitivityRow(5.0, 0.3, 0.1, True)]
        assert "5.0" in sensitivity.format_table(rows)


class TestFig3Format:
    def test_format_with_synthetic_rows(self):
        row = fig3.Fig3Row(
            device="dev",
            detected_pairs=(((0, 1), (2, 3)),),
            planted_pairs=(((0, 1), (2, 3)),),
            max_degradation=7.5,
            all_detected_at_one_hop=True,
            true_positives=1,
            false_positives=0,
            false_negatives=0,
        )
        table = fig3.format_table([row])
        assert "TP 1" in table
        assert "7.5x" in table
