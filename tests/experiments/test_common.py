"""Tests for the shared experiment pipeline."""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.device.backend import NoisyBackend
from repro.experiments.common import (
    ExperimentConfig,
    distribution_as_dict,
    ground_truth_report,
    prepare_circuit,
    run_distribution,
    swap_error_rate,
)
from repro.workloads.swap import swap_benchmark


class TestGroundTruthReport:
    def test_covers_all_edges(self, poughkeepsie, pk_report):
        assert set(pk_report.independent) == set(poughkeepsie.coupling.edges)

    def test_covers_one_hop_pairs_both_directions(self, poughkeepsie, pk_report):
        one_hop = poughkeepsie.coupling.one_hop_gate_pairs()
        assert len(pk_report.conditional) == 2 * len(one_hop)

    def test_high_pairs_match_planted(self, poughkeepsie, pk_report):
        assert set(pk_report.high_pairs()) == set(poughkeepsie.true_high_pairs())


class TestPrepareCircuit:
    def _circuit(self):
        circ = QuantumCircuit(20, 2)
        circ.cx(5, 10)
        circ.cx(11, 12)
        circ.measure(10, 0)
        circ.measure(11, 1)
        return circ

    def test_dispatch(self, poughkeepsie, pk_report):
        circ = self._circuit()
        par = prepare_circuit("ParSched", circ, poughkeepsie, pk_report)
        serial = prepare_circuit("SerialSched", circ, poughkeepsie, pk_report)
        xtalk = prepare_circuit("XtalkSched", circ, poughkeepsie, pk_report)
        assert not any(i.is_barrier for i in par)
        assert any(i.is_barrier for i in serial)
        assert any(i.is_barrier for i in xtalk)

    def test_unknown_scheduler(self, poughkeepsie, pk_report):
        with pytest.raises(ValueError, match="unknown scheduler"):
            prepare_circuit("MagicSched", self._circuit(), poughkeepsie,
                            pk_report)


class TestRunDistribution:
    def test_normalized(self, poughkeepsie, fast_experiment_config):
        backend = NoisyBackend(poughkeepsie, seed=1)
        circ = QuantumCircuit(20, 1).x(2)
        circ.measure(2, 0)
        probs = run_distribution(backend, circ, fast_experiment_config)
        assert probs.sum() == pytest.approx(1.0, abs=1e-6)
        assert probs[1] > 0.9

    def test_mitigation_recovers_ideal(self, poughkeepsie):
        config = ExperimentConfig(shots=2048, trajectories=8,
                                  mitigate_readout=True,
                                  use_sampled_counts=False)
        backend = NoisyBackend(poughkeepsie, seed=1)
        circ = QuantumCircuit(20, 1).x(2)
        circ.measure(2, 0)
        probs = run_distribution(backend, circ, config)
        # readout mitigation on an exact distribution inverts exactly
        assert probs[1] == pytest.approx(1.0, abs=1e-6)

    def test_distribution_as_dict(self):
        probs = np.array([0.5, 0.0, 0.25, 0.25])
        d = distribution_as_dict(probs)
        assert d == {"00": 0.5, "10": 0.25, "11": 0.25}


class TestSwapErrorRate:
    def test_returns_error_and_duration(self, poughkeepsie, pk_report,
                                        fast_experiment_config):
        backend = NoisyBackend(poughkeepsie, seed=1)
        bench = swap_benchmark(poughkeepsie.coupling, 5, 12)
        err, dur = swap_error_rate(backend, bench, "ParSched", pk_report,
                                   fast_experiment_config)
        assert 0.0 <= err <= 1.0
        assert dur > 0

    def test_config_presets(self):
        assert ExperimentConfig.fast().trajectories < \
            ExperimentConfig.paper().trajectories
