"""Tests for the sensitivity extension study and the CLI runner."""

import pytest

from repro.experiments import sensitivity
from repro.experiments.common import ExperimentConfig


class TestSensitivity:
    def test_device_construction(self):
        device = sensitivity._device_with_factor(5.0)
        assert device.num_qubits == 10
        assert len(device.crosstalk.pairs) == 1
        assert device.crosstalk.is_high_pair((3, 4), (5, 6))

    def test_factor_one_has_no_pairs(self):
        device = sensitivity._device_with_factor(1.0)
        assert device.crosstalk.pairs == ()

    def test_below_threshold_ties_parsched(self):
        config = ExperimentConfig(trajectories=32, seed=3)
        rows = sensitivity.run_sensitivity(factors=(1.5,), config=config)
        assert len(rows) == 1
        assert not rows[0].xtalk_serialized
        assert rows[0].improvement == pytest.approx(1.0)

    def test_strong_factor_serializes(self):
        config = ExperimentConfig(trajectories=64, seed=3)
        rows = sensitivity.run_sensitivity(factors=(10.0,), config=config)
        assert rows[0].xtalk_serialized
        assert rows[0].xtalk_error < rows[0].par_error

    def test_format_table(self):
        config = ExperimentConfig(trajectories=16, seed=3)
        rows = sensitivity.run_sensitivity(factors=(1.5, 8.0), config=config)
        table = sensitivity.format_table(rows)
        assert "improvement" in table


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "sensitivity" in out

    def test_fig10_runs(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig10"]) == 0
        out = capsys.readouterr().out
        assert "characterization cost" in out

    def test_unknown_experiment_rejected(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])
