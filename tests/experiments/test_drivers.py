"""Smoke and shape tests for the figure drivers (small configurations)."""

import pytest

from repro.experiments import (
    fig5_swap_errors,
    fig6_example_schedules,
    fig8_qaoa,
    fig9_hidden_shift,
    fig10_characterization_cost,
    scalability,
)
from repro.experiments.common import ExperimentConfig


@pytest.fixture()
def tiny_config():
    return ExperimentConfig(shots=256, trajectories=48, seed=5)


class TestFig5:
    def test_shape_on_subset(self, poughkeepsie, tiny_config):
        rows = fig5_swap_errors.run_fig5(
            devices=[poughkeepsie], config=tiny_config, max_pairs_per_device=2
        )
        assert len(rows) == 2
        for row in rows:
            assert set(row.error) == {"SerialSched", "ParSched", "XtalkSched"}
            assert row.duration["SerialSched"] >= row.duration["ParSched"]
        summary = fig5_swap_errors.summarize(rows)
        assert summary.total == 2
        table = fig5_swap_errors.format_table(rows)
        assert "geomean" in table


class TestFig6:
    def test_case_study(self, tiny_config):
        result = fig6_example_schedules.run_fig6(config=tiny_config)
        assert result.crosstalk_pair_overlaps["ParSched"]
        assert not result.crosstalk_pair_overlaps["XtalkSched"]
        assert not result.crosstalk_pair_overlaps["SerialSched"]
        assert result.swap_5_10_after_11_12
        assert result.durations["SerialSched"] > result.durations["ParSched"]
        assert "XtalkSched" in fig6_example_schedules.format_report(result)


class TestFig8:
    def test_single_region_sweep(self, poughkeepsie, tiny_config):
        result = fig8_qaoa.run_fig8(
            device=poughkeepsie,
            config=tiny_config,
            omegas=(0.0, 0.35, 1.0),
            regions=[(5, 10, 11, 12)],
        )
        assert len(result.rows) == 3
        assert result.theoretical_ideal > 0
        series = dict(result.series((5, 10, 11, 12)))
        assert set(series) == {0.0, 0.35, 1.0}
        table = fig8_qaoa.format_table(result)
        assert "cross entropy" in table.lower()


class TestFig9:
    def test_redundant_has_higher_error(self, poughkeepsie):
        # This test compares Monte-Carlo error rates of two distinct
        # circuits, so it needs a trajectory budget where the planted
        # effect clears the sampling noise (48 is marginal, 96 is not).
        config = ExperimentConfig(shots=256, trajectories=96, seed=5)
        rows = fig9_hidden_shift.run_fig9(
            device=poughkeepsie,
            config=config,
            omegas=(0.0, 0.35),
            regions=[(5, 10, 11, 12)],
        )
        plain = {r.omega: r.error_rate for r in rows if not r.redundant}
        redundant = {r.omega: r.error_rate for r in rows if r.redundant}
        # redundant CNOTs add noise at every omega
        assert redundant[0.0] > plain[0.0]
        # crosstalk mitigation helps the redundant variant
        assert redundant[0.35] < redundant[0.0]


class TestFig10:
    def test_monotone_reductions(self, devices):
        rows = fig10_characterization_cost.run_fig10(devices=devices)
        for device in devices:
            device_rows = [r for r in rows if r.device == device.name]
            counts = [r.num_experiments for r in device_rows]
            assert counts == sorted(counts, reverse=True)

    def test_paper_magnitudes(self, devices):
        rows = fig10_characterization_cost.run_fig10(devices=devices)
        for summary in fig10_characterization_cost.summarize(rows):
            assert summary.baseline_hours > 8.0
            assert summary.final_minutes < 30.0
            assert 20 <= summary.total_reduction <= 80


class TestScalability:
    def test_small_instances_compile(self, poughkeepsie):
        rows = scalability.run_scalability(
            device=poughkeepsie, instances=[(6, 60), (8, 120)]
        )
        assert len(rows) == 2
        for row in rows:
            assert row.compile_seconds < 120
        assert "compile" in scalability.format_table(rows)
