"""Gate and instruction definitions for the circuit IR.

The gate set mirrors the IBMQ basis used by the paper (u1/u2/u3 single-qubit
rotations plus CNOT) together with the common named gates that the workload
generators emit (H, X, CZ, SWAP, ...).  Every instruction in a circuit is an
:class:`Instruction`: an immutable record of a gate name, the qubits it acts
on, its parameters, and (for measurements) the classical bit it writes.

Durations and error rates are *not* part of the IR — they are properties of a
device (:mod:`repro.device`) and are attached at scheduling time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes:
        name: canonical lowercase gate name, e.g. ``"cx"``.
        num_qubits: number of qubits the gate acts on.
        num_params: number of real parameters (rotation angles).
        hermitian: whether the gate is its own inverse.
        directive: True for pseudo-instructions (barrier) that have no
            unitary action and zero duration.
    """

    name: str
    num_qubits: int
    num_params: int = 0
    hermitian: bool = False
    directive: bool = False


#: All gate types understood by the IR, simulator and transpiler.
GATE_SPECS = {
    spec.name: spec
    for spec in [
        GateSpec("id", 1, 0, hermitian=True),
        GateSpec("x", 1, 0, hermitian=True),
        GateSpec("y", 1, 0, hermitian=True),
        GateSpec("z", 1, 0, hermitian=True),
        GateSpec("h", 1, 0, hermitian=True),
        GateSpec("s", 1, 0),
        GateSpec("sdg", 1, 0),
        GateSpec("t", 1, 0),
        GateSpec("tdg", 1, 0),
        GateSpec("sx", 1, 0),
        GateSpec("sxdg", 1, 0),
        GateSpec("rx", 1, 1),
        GateSpec("ry", 1, 1),
        GateSpec("rz", 1, 1),
        GateSpec("u1", 1, 1),
        GateSpec("u2", 1, 2),
        GateSpec("u3", 1, 3),
        GateSpec("cx", 2, 0, hermitian=True),
        GateSpec("cz", 2, 0, hermitian=True),
        GateSpec("swap", 2, 0, hermitian=True),
        GateSpec("measure", 1, 0),
        GateSpec("barrier", 0, 0, directive=True),
        GateSpec("delay", 1, 1, directive=True),
    ]
}


def gate_spec(name: str) -> GateSpec:
    """Return the :class:`GateSpec` for ``name``.

    Raises:
        KeyError: if the gate name is unknown to the IR.
    """
    try:
        return GATE_SPECS[name]
    except KeyError:
        raise KeyError(f"unknown gate {name!r}; known gates: {sorted(GATE_SPECS)}") from None


def is_two_qubit_gate(name: str) -> bool:
    """True when ``name`` is a two-qubit unitary gate (cx/cz/swap)."""
    spec = GATE_SPECS.get(name)
    return spec is not None and spec.num_qubits == 2 and not spec.directive


@dataclass(frozen=True)
class Instruction:
    """One gate application inside a circuit.

    ``qubits`` is the ordered tuple of qubit indices the gate acts on
    (control first for ``cx``).  Barriers may span any number of qubits and
    are the only instruction type whose arity is not fixed by its spec.

    Attributes:
        name: gate name, must be a key of :data:`GATE_SPECS`.
        qubits: qubit indices acted on.
        params: real-valued gate parameters (angles, or the delay duration).
        clbit: classical bit index written by a measurement, else ``None``.
        label: optional free-form tag used by workload generators (for
            example to mark redundant CNOTs in the Hidden Shift study).
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = field(default=())
    clbit: Optional[int] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        spec = gate_spec(self.name)
        if not spec.directive and len(self.qubits) != spec.num_qubits:
            raise ValueError(
                f"gate {self.name!r} expects {spec.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if self.name == "barrier" and not self.qubits:
            raise ValueError("barrier must span at least one qubit")
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in {self.name}: {self.qubits}")
        if spec.num_params and len(self.params) != spec.num_params:
            raise ValueError(
                f"gate {self.name!r} expects {spec.num_params} params, "
                f"got {len(self.params)}"
            )
        if self.name == "measure" and self.clbit is None:
            raise ValueError("measure requires a clbit")

    @property
    def spec(self) -> GateSpec:
        return gate_spec(self.name)

    @property
    def is_barrier(self) -> bool:
        return self.name == "barrier"

    @property
    def is_measure(self) -> bool:
        return self.name == "measure"

    @property
    def is_directive(self) -> bool:
        return self.spec.directive

    @property
    def is_two_qubit(self) -> bool:
        return is_two_qubit_gate(self.name)

    def format(self) -> str:
        """Human-readable one-line rendering, e.g. ``cx q3, q4``."""
        qubits = ", ".join(f"q{q}" for q in self.qubits)
        if self.params:
            angles = ", ".join(f"{p:.4g}" for p in self.params)
            head = f"{self.name}({angles})"
        else:
            head = self.name
        if self.is_measure:
            return f"{head} {qubits} -> c{self.clbit}"
        return f"{head} {qubits}"


def inverse_instruction(instr: Instruction) -> Instruction:
    """Return an instruction implementing the inverse unitary.

    Supports the gate types emitted by the workload generators.  Hermitian
    gates are their own inverse; parametrized rotations negate their angle.
    """
    if instr.is_directive or instr.is_measure:
        raise ValueError(f"{instr.name} has no inverse")
    spec = instr.spec
    if spec.hermitian:
        return instr
    simple = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t", "sx": "sxdg", "sxdg": "sx"}
    if instr.name in simple:
        return Instruction(simple[instr.name], instr.qubits)
    if instr.name in ("rx", "ry", "rz", "u1"):
        return Instruction(instr.name, instr.qubits, (-instr.params[0],))
    if instr.name == "u2":
        # u2(phi, lam) = u3(pi/2, phi, lam); inverse is u3(-pi/2, -lam, -phi).
        phi, lam = instr.params
        return Instruction("u3", instr.qubits, (-math.pi / 2, -lam, -phi))
    if instr.name == "u3":
        theta, phi, lam = instr.params
        return Instruction("u3", instr.qubits, (-theta, -lam, -phi))
    raise ValueError(f"no inverse rule for gate {instr.name!r}")
