"""Quantum circuit intermediate representation.

This package provides the program IR used throughout the reproduction:
gate/instruction definitions (:mod:`repro.circuit.gates`), the
:class:`~repro.circuit.circuit.QuantumCircuit` container, and the
dependency DAG (:mod:`repro.circuit.dag`) that the schedulers and the
crosstalk-adaptive optimizer operate on.
"""

from repro.circuit.gates import (
    GateSpec,
    Instruction,
    GATE_SPECS,
    gate_spec,
    is_two_qubit_gate,
)
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import CircuitDag
from repro.circuit.qasm import circuit_to_qasm, qasm_to_circuit

__all__ = [
    "GateSpec",
    "Instruction",
    "GATE_SPECS",
    "gate_spec",
    "is_two_qubit_gate",
    "QuantumCircuit",
    "CircuitDag",
    "circuit_to_qasm",
    "qasm_to_circuit",
]
