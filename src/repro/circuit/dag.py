"""Dependency DAG over circuit instructions.

Nodes are instruction indices into the source circuit.  There is an edge
``i -> j`` when instruction ``j`` consumes a qubit (or classical bit) last
written by instruction ``i``.  Barriers participate as ordinary nodes so that
they impose ordering across every qubit they span — this is exactly how the
paper's post-processing step enforces serialization on IBMQ hardware.

The DAG answers the structural queries the XtalkSched optimizer needs:

* ``ancestors`` / ``descendants`` — to compute ``CanOlp(g)``, the set of
  gates that *can* overlap with ``g`` (Section 7.2),
* ``layers`` — for the maximally parallel baseline scheduler,
* ``qubit_chain`` — the total order of operations on one qubit, which makes
  each qubit's first/last gate well defined for the lifetime constraints.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import networkx as nx

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Instruction


class CircuitDag:
    """Immutable dependency DAG of a :class:`QuantumCircuit`."""

    def __init__(self, circuit: QuantumCircuit):
        self.circuit = circuit
        self.graph = nx.DiGraph()
        self.graph.add_nodes_from(range(len(circuit)))
        self._qubit_chains: Dict[int, List[int]] = {q: [] for q in range(circuit.num_qubits)}

        last_on_qubit: Dict[int, int] = {}
        last_on_clbit: Dict[int, int] = {}
        for idx, instr in enumerate(circuit):
            for q in instr.qubits:
                if q in last_on_qubit:
                    self.graph.add_edge(last_on_qubit[q], idx)
                last_on_qubit[q] = idx
                if not instr.is_barrier:
                    self._qubit_chains[q].append(idx)
            if instr.clbit is not None:
                if instr.clbit in last_on_clbit:
                    self.graph.add_edge(last_on_clbit[instr.clbit], idx)
                last_on_clbit[instr.clbit] = idx

        self._ancestors: Dict[int, FrozenSet[int]] = {}
        self._descendants: Dict[int, FrozenSet[int]] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.circuit)

    def instruction(self, idx: int) -> Instruction:
        return self.circuit[idx]

    def predecessors(self, idx: int) -> Tuple[int, ...]:
        return tuple(sorted(self.graph.predecessors(idx)))

    def successors(self, idx: int) -> Tuple[int, ...]:
        return tuple(sorted(self.graph.successors(idx)))

    def ancestors(self, idx: int) -> FrozenSet[int]:
        """All transitive predecessors of ``idx`` (cached)."""
        if idx not in self._ancestors:
            self._ancestors[idx] = frozenset(nx.ancestors(self.graph, idx))
        return self._ancestors[idx]

    def descendants(self, idx: int) -> FrozenSet[int]:
        """All transitive successors of ``idx`` (cached)."""
        if idx not in self._descendants:
            self._descendants[idx] = frozenset(nx.descendants(self.graph, idx))
        return self._descendants[idx]

    def concurrent(self, i: int, j: int) -> bool:
        """True when neither instruction depends on the other.

        Such pairs may be scheduled to overlap in time, which is the
        precondition for crosstalk between them.
        """
        if i == j:
            return False
        return j not in self.ancestors(i) and j not in self.descendants(i)

    # ------------------------------------------------------------------
    def topological_order(self) -> List[int]:
        """A topological order that preserves original program order."""
        return list(nx.lexicographical_topological_sort(self.graph))

    def layers(self) -> List[List[int]]:
        """ASAP dependency layers (directives travel with their level).

        Layer ``k`` contains the instructions whose longest dependency chain
        from any input has length ``k``.  This is the structure ParSched's
        maximal parallelism is derived from.
        """
        level: Dict[int, int] = {}
        for idx in self.topological_order():
            preds = list(self.graph.predecessors(idx))
            level[idx] = 0 if not preds else max(level[p] for p in preds) + 1
        if not level:
            return []
        out: List[List[int]] = [[] for _ in range(max(level.values()) + 1)]
        for idx, lvl in level.items():
            out[lvl].append(idx)
        return [sorted(layer) for layer in out]

    def qubit_chain(self, qubit: int) -> Tuple[int, ...]:
        """Instruction indices touching ``qubit`` in program order (no barriers)."""
        return tuple(self._qubit_chains[qubit])

    def first_gate_on(self, qubit: int) -> int:
        chain = self._qubit_chains[qubit]
        if not chain:
            raise ValueError(f"qubit {qubit} has no gates")
        return chain[0]

    def last_gate_on(self, qubit: int) -> int:
        chain = self._qubit_chains[qubit]
        if not chain:
            raise ValueError(f"qubit {qubit} has no gates")
        return chain[-1]

    # ------------------------------------------------------------------
    def two_qubit_gate_indices(self) -> Tuple[int, ...]:
        return tuple(
            idx for idx, instr in enumerate(self.circuit) if instr.is_two_qubit
        )

    def can_overlap(self, idx: int, candidates: Iterable[int] = None) -> Tuple[int, ...]:
        """``CanOlp(g)`` from Section 7.2, restricted to two-qubit gates.

        Returns every two-qubit gate that is neither an ancestor nor a
        descendant of ``idx``.  Single-qubit gates are excluded because their
        error rates are an order of magnitude below CNOT rates (the paper
        makes the same simplification).
        """
        pool = candidates if candidates is not None else self.two_qubit_gate_indices()
        return tuple(j for j in pool if self.circuit[j].is_two_qubit and self.concurrent(idx, j))

    def validate_order(self, order: Sequence[int]) -> bool:
        """Check that ``order`` is a topological order of all instructions."""
        if sorted(order) != list(range(len(self.circuit))):
            return False
        position = {idx: pos for pos, idx in enumerate(order)}
        return all(position[u] < position[v] for u, v in self.graph.edges)
