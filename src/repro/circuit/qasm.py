"""OpenQASM 2.0 serialization for the circuit IR.

The circuit-level ISA the paper compiles to is OpenQASM 2.0 [13]; this
module makes the IR interoperable with that ecosystem — circuits round-trip
through text form, and externally produced QASM (the common interchange
format) loads into the IR directly.

Supported: the full IR gate set (including barriers and measurements) over
a single ``q``/``c`` register pair.  Not supported: user-defined gates,
``if`` statements, ``reset``, multiple registers.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import GATE_SPECS, Instruction

#: IR gate name -> QASM gate keyword (identical for everything we emit).
_QASM_NAMES = {
    "id": "id", "x": "x", "y": "y", "z": "z", "h": "h", "s": "s",
    "sdg": "sdg", "t": "t", "tdg": "tdg", "sx": "sx", "sxdg": "sxdg",
    "rx": "rx", "ry": "ry", "rz": "rz", "u1": "u1", "u2": "u2", "u3": "u3",
    "cx": "cx", "cz": "cz", "swap": "swap",
}
_IR_NAMES = {v: k for k, v in _QASM_NAMES.items()}


def circuit_to_qasm(circuit: QuantumCircuit) -> str:
    """Render a circuit as an OpenQASM 2.0 program."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    if circuit.num_clbits:
        lines.append(f"creg c[{circuit.num_clbits}];")
    for instr in circuit:
        lines.append(_instruction_to_qasm(instr))
    return "\n".join(lines) + "\n"


def _instruction_to_qasm(instr: Instruction) -> str:
    if instr.is_barrier:
        operands = ",".join(f"q[{q}]" for q in instr.qubits)
        return f"barrier {operands};"
    if instr.is_measure:
        return f"measure q[{instr.qubits[0]}] -> c[{instr.clbit}];"
    if instr.name == "delay":
        raise ValueError("delay has no OpenQASM 2.0 representation")
    keyword = _QASM_NAMES[instr.name]
    if instr.params:
        args = ",".join(_format_angle(p) for p in instr.params)
        keyword = f"{keyword}({args})"
    operands = ",".join(f"q[{q}]" for q in instr.qubits)
    return f"{keyword} {operands};"


def _format_angle(value: float) -> str:
    """Render an angle, using pi fractions where exact."""
    for num in (1, -1, 2, -2, 4, -4):
        if value == math.pi / num:
            return "pi" if num == 1 else ("-pi" if num == -1 else
                                          f"pi/{num}" if num > 0 else
                                          f"-pi/{-num}")
    return repr(float(value))


_HEADER_RE = re.compile(r"OPENQASM\s+2\.0\s*;")
_QREG_RE = re.compile(r"qreg\s+(\w+)\s*\[\s*(\d+)\s*\]\s*;")
_CREG_RE = re.compile(r"creg\s+(\w+)\s*\[\s*(\d+)\s*\]\s*;")
_MEASURE_RE = re.compile(
    r"measure\s+\w+\[(\d+)\]\s*->\s*\w+\[(\d+)\]\s*;"
)
_GATE_RE = re.compile(
    r"(?P<name>[a-zA-Z_][\w]*)\s*(?:\((?P<params>[^)]*)\))?\s+(?P<operands>[^;]+);"
)
_OPERAND_RE = re.compile(r"\w+\[(\d+)\]")


def qasm_to_circuit(text: str) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 program into a circuit.

    Raises:
        ValueError: on missing headers, unknown gates, or unsupported
            constructs.
    """
    stripped = _strip_comments(text)
    if not _HEADER_RE.search(stripped):
        raise ValueError("missing 'OPENQASM 2.0;' header")
    qreg = _QREG_RE.search(stripped)
    if not qreg:
        raise ValueError("missing qreg declaration")
    num_qubits = int(qreg.group(2))
    creg = _CREG_RE.search(stripped)
    num_clbits = int(creg.group(2)) if creg else 0
    circuit = QuantumCircuit(num_qubits, num_clbits, name="from_qasm")

    for statement in stripped.split(";"):
        statement = statement.strip()
        if not statement:
            continue
        lowered = statement.lower()
        if (lowered.startswith(("openqasm", "include", "qreg", "creg"))):
            continue
        full = statement + ";"
        measure = _MEASURE_RE.match(full)
        if measure:
            circuit.measure(int(measure.group(1)), int(measure.group(2)))
            continue
        gate = _GATE_RE.match(full)
        if not gate:
            raise ValueError(f"cannot parse statement {statement!r}")
        name = gate.group("name")
        operands = [int(m) for m in _OPERAND_RE.findall(gate.group("operands"))]
        if name == "barrier":
            circuit.barrier(*operands)
            continue
        if name not in _IR_NAMES:
            raise ValueError(f"unsupported gate {name!r}")
        params: Tuple[float, ...] = ()
        if gate.group("params") is not None:
            params = tuple(
                _parse_angle(p) for p in gate.group("params").split(",")
            )
        circuit.add(_IR_NAMES[name], *operands, params=params)
    return circuit


def _strip_comments(text: str) -> str:
    return re.sub(r"//[^\n]*", "", text)


def _parse_angle(token: str) -> float:
    """Evaluate simple pi-arithmetic angle expressions (``pi/2``, ``-pi``,
    ``3*pi/4``, plain floats)."""
    token = token.strip()
    if not re.fullmatch(r"[\d\s\.\+\-\*/eE]*|.*pi.*", token):
        raise ValueError(f"bad angle {token!r}")
    safe = token.replace("pi", repr(math.pi))
    if not re.fullmatch(r"[\d\s\.\+\-\*/()eE]+", safe):
        raise ValueError(f"bad angle {token!r}")
    try:
        return float(eval(safe, {"__builtins__": {}}, {}))
    except Exception as exc:
        raise ValueError(f"bad angle {token!r}") from exc
