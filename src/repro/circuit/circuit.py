"""The :class:`QuantumCircuit` container.

A circuit is an ordered list of :class:`~repro.circuit.gates.Instruction`
objects over ``num_qubits`` qubits and ``num_clbits`` classical bits.  The
builder methods (``h``, ``cx``, ``swap``, ...) append instructions and return
``self`` so construction chains fluently.

The container is deliberately simple: scheduling information lives in
:class:`repro.transpiler.schedule.Schedule`, and dependency structure in
:class:`repro.circuit.dag.CircuitDag`.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.circuit.gates import Instruction, gate_spec, inverse_instruction


class QuantumCircuit:
    """An ordered gate list over a fixed set of qubits and classical bits."""

    def __init__(self, num_qubits: int, num_clbits: int = 0, name: str = "circuit"):
        if num_qubits <= 0:
            raise ValueError("circuit needs at least one qubit")
        if num_clbits < 0:
            raise ValueError("num_clbits must be non-negative")
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits
        self.name = name
        self._instructions: List[Instruction] = []

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        return tuple(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self.num_clbits == other.num_clbits
            and self._instructions == other._instructions
        )

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"clbits={self.num_clbits}, gates={len(self)})"
        )

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def _check_qubits(self, qubits: Sequence[int]) -> None:
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(f"qubit {q} out of range [0, {self.num_qubits})")

    def append(self, instr: Instruction) -> "QuantumCircuit":
        """Append a pre-built instruction after validating its operands."""
        self._check_qubits(instr.qubits)
        if instr.clbit is not None and not 0 <= instr.clbit < self.num_clbits:
            raise ValueError(f"clbit {instr.clbit} out of range [0, {self.num_clbits})")
        self._instructions.append(instr)
        return self

    def add(self, name: str, *qubits: int, params: Sequence[float] = (),
            clbit: Optional[int] = None, label: Optional[str] = None) -> "QuantumCircuit":
        return self.append(
            Instruction(name, tuple(qubits), tuple(params), clbit=clbit, label=label)
        )

    # single-qubit gates -------------------------------------------------
    def id(self, q: int) -> "QuantumCircuit":
        return self.add("id", q)

    def x(self, q: int) -> "QuantumCircuit":
        return self.add("x", q)

    def y(self, q: int) -> "QuantumCircuit":
        return self.add("y", q)

    def z(self, q: int) -> "QuantumCircuit":
        return self.add("z", q)

    def h(self, q: int) -> "QuantumCircuit":
        return self.add("h", q)

    def s(self, q: int) -> "QuantumCircuit":
        return self.add("s", q)

    def sdg(self, q: int) -> "QuantumCircuit":
        return self.add("sdg", q)

    def t(self, q: int) -> "QuantumCircuit":
        return self.add("t", q)

    def tdg(self, q: int) -> "QuantumCircuit":
        return self.add("tdg", q)

    def sx(self, q: int) -> "QuantumCircuit":
        return self.add("sx", q)

    def rx(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("rx", q, params=(theta,))

    def ry(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("ry", q, params=(theta,))

    def rz(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("rz", q, params=(theta,))

    def u1(self, lam: float, q: int) -> "QuantumCircuit":
        return self.add("u1", q, params=(lam,))

    def u2(self, phi: float, lam: float, q: int) -> "QuantumCircuit":
        return self.add("u2", q, params=(phi, lam))

    def u3(self, theta: float, phi: float, lam: float, q: int) -> "QuantumCircuit":
        return self.add("u3", q, params=(theta, phi, lam))

    # two-qubit gates ----------------------------------------------------
    def cx(self, control: int, target: int, label: Optional[str] = None) -> "QuantumCircuit":
        return self.add("cx", control, target, label=label)

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        return self.add("cz", a, b)

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.add("swap", a, b)

    # non-unitary --------------------------------------------------------
    def barrier(self, *qubits: int) -> "QuantumCircuit":
        """Insert a barrier; with no arguments it spans all qubits."""
        span = tuple(qubits) if qubits else tuple(range(self.num_qubits))
        return self.add("barrier", *span)

    def measure(self, qubit: int, clbit: int) -> "QuantumCircuit":
        return self.add("measure", qubit, clbit=clbit)

    def measure_all(self) -> "QuantumCircuit":
        """Measure qubit ``i`` into clbit ``i``, growing clbits as needed."""
        if self.num_clbits < self.num_qubits:
            self.num_clbits = self.num_qubits
        for q in range(self.num_qubits):
            self.measure(q, q)
        return self

    # ------------------------------------------------------------------
    # whole-circuit operations
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, self.num_clbits, name or self.name)
        out._instructions = list(self._instructions)
        return out

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Append all of ``other``'s instructions to a copy of this circuit."""
        if other.num_qubits > self.num_qubits:
            raise ValueError("composed circuit has more qubits than target")
        out = self.copy()
        out.num_clbits = max(self.num_clbits, other.num_clbits)
        for instr in other:
            out.append(instr)
        return out

    def inverse(self) -> "QuantumCircuit":
        """Reverse the circuit, inverting each gate (unitary circuits only)."""
        out = QuantumCircuit(self.num_qubits, self.num_clbits, f"{self.name}_dg")
        for instr in reversed(self._instructions):
            if instr.is_barrier:
                out.append(instr)
            else:
                out.append(inverse_instruction(instr))
        return out

    def remap(self, mapping: Sequence[int], num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Relabel qubits: circuit qubit ``i`` becomes ``mapping[i]``.

        Used to place a logical workload onto physical device qubits.
        """
        if len(mapping) != self.num_qubits:
            raise ValueError("mapping must cover every circuit qubit")
        if len(set(mapping)) != len(mapping):
            raise ValueError("mapping must be injective")
        target_n = num_qubits if num_qubits is not None else max(mapping) + 1
        out = QuantumCircuit(target_n, self.num_clbits, self.name)
        for instr in self._instructions:
            out.append(
                Instruction(
                    instr.name,
                    tuple(mapping[q] for q in instr.qubits),
                    instr.params,
                    clbit=instr.clbit,
                    label=instr.label,
                )
            )
        return out

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def active_qubits(self) -> Tuple[int, ...]:
        """Sorted qubits touched by at least one non-barrier instruction."""
        seen = set()
        for instr in self._instructions:
            if not instr.is_barrier:
                seen.update(instr.qubits)
        return tuple(sorted(seen))

    def count_ops(self) -> dict:
        counts: dict = {}
        for instr in self._instructions:
            counts[instr.name] = counts.get(instr.name, 0) + 1
        return counts

    def two_qubit_gate_count(self) -> int:
        return sum(1 for instr in self._instructions if instr.is_two_qubit)

    def depth(self) -> int:
        """Number of dependency layers (barriers excluded from the count)."""
        front = [0] * self.num_qubits
        for instr in self._instructions:
            if instr.is_barrier:
                level = max((front[q] for q in instr.qubits), default=0)
                for q in instr.qubits:
                    front[q] = level
                continue
            level = max(front[q] for q in instr.qubits) + 1
            for q in instr.qubits:
                front[q] = level
        return max(front, default=0)

    def format(self) -> str:
        """Multi-line textual rendering of the instruction list."""
        lines = [f"{self.name}: {self.num_qubits} qubits, {self.num_clbits} clbits"]
        lines.extend(f"  {i:3d}: {instr.format()}" for i, instr in enumerate(self))
        return "\n".join(lines)


def bell_pair_circuit(control: int = 0, target: int = 1, num_qubits: int = 2) -> QuantumCircuit:
    """A Bell-state preparation circuit, the known answer for SWAP studies.

    The paper's SWAP circuits prepare a Bell state whose quality is then read
    out by state tomography (Section 8.4).
    """
    circ = QuantumCircuit(num_qubits, name="bell")
    circ.h(control)
    circ.cx(control, target)
    return circ
