"""Hidden Shift circuits (Figure 9's ω-sensitivity study).

For the Maiorana–McFarland bent function ``f(x) = x0·x1 ⊕ x2·x3`` (its own
dual), the Hidden Shift algorithm recovers a secret shift ``s`` with the
circuit::

    H^4 · X^s · O_f · X^s · H^4 · O_f · H^4   ->   measure = s

where the phase oracle ``O_f`` is CZ(0,1)·CZ(2,3), realized as
H(b)·CX(a,b)·H(b) on hardware — two layers of two parallel CNOTs, matching
the paper's description.  The expected output is the single bitstring
``s``, so the error rate is the fraction of trials that miss it.

The ``redundant`` knob replaces each CNOT with three (the first two cancel
logically but still radiate crosstalk), making the benchmark maximally
susceptible to crosstalk noise — the paper's Figure 9b variant.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.device.topology import CouplingMap

#: CZ pairs of the inner-product oracle on the 4-qubit line.
_ORACLE_PAIRS: Tuple[Tuple[int, int], ...] = ((0, 1), (2, 3))


def _oracle(circ: QuantumCircuit, redundant: bool) -> None:
    """Apply O_f = CZ(0,1) CZ(2,3) in the CNOT basis."""
    copies = 3 if redundant else 1
    for a, b in _ORACLE_PAIRS:
        circ.h(b)
        for copy in range(copies):
            circ.cx(a, b, label="redundant" if redundant and copy < copies - 1 else None)
        circ.h(b)


def hidden_shift_circuit(shift: str = "1010", redundant: bool = False) -> QuantumCircuit:
    """The logical 4-qubit Hidden Shift circuit for ``shift``."""
    if len(shift) != 4 or any(c not in "01" for c in shift):
        raise ValueError("shift must be a 4-character bitstring")
    circ = QuantumCircuit(4, name=f"hs_{shift}{'_red' if redundant else ''}")
    for q in range(4):
        circ.h(q)
    # shift[0] is qubit 0 (bitstring convention: clbit 0 rightmost when
    # formatted, but the shift argument here is qubit-ordered left to right).
    shifted = [q for q in range(4) if shift[q] == "1"]
    for q in shifted:
        circ.x(q)
    _oracle(circ, redundant)
    for q in shifted:
        circ.x(q)
    for q in range(4):
        circ.h(q)
    _oracle(circ, redundant)
    for q in range(4):
        circ.h(q)
    return circ


def expected_output(shift: str) -> str:
    """The measured bitstring (clbit 0 rightmost) for a given shift."""
    return shift[::-1]


def hidden_shift_on_region(coupling: CouplingMap, region: Sequence[int],
                           shift: str = "1010",
                           redundant: bool = False) -> QuantumCircuit:
    """Place the Hidden Shift circuit on a 4-qubit device path.

    The oracle pairs (0,1) and (2,3) land on the path's outer edges — on
    crosstalk-prone regions those are exactly the interfering gate pairs.
    Measures region qubit ``i`` into clbit ``i``.
    """
    region = list(region)
    if len(region) != 4:
        raise ValueError("hidden shift needs a 4-qubit region")
    for a, b in zip(region, region[1:]):
        if not coupling.has_edge(a, b):
            raise ValueError(f"region {region} is not a path: ({a},{b}) missing")
    logical = hidden_shift_circuit(shift, redundant)
    placed = logical.remap(region, num_qubits=coupling.num_qubits)
    placed.num_clbits = 4
    for i, q in enumerate(region):
        placed.measure(q, i)
    placed.name = f"{logical.name}_on_{'_'.join(map(str, region))}"
    return placed
