"""QAOA hardware-efficient ansatz circuits (Figure 8).

The paper runs 4-qubit, 43-gate (9 two-qubit) QAOA circuits built with the
hardware-efficient ansatz of Moll et al. [42] on four crosstalk-prone
regions of IBMQ Poughkeepsie.  The quality metric is the cross entropy of
the measured distribution against the ideal noise-free distribution.

The ansatz here follows that structure exactly: an initial rotation layer,
three entangling blocks (each a CNOT chain over the 4-qubit line followed
by a rotation layer), and a final partial rotation layer sized to make the
gate count 43 with 9 CNOTs.  Angles are drawn from a seeded RNG — for a
noise study the specific variational point is irrelevant, only that the
ideal output distribution is structured and reproducible.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.device.topology import CouplingMap

#: The four crosstalk-prone Poughkeepsie regions of Figure 8 (each a
#: connected path in the coupling map).
QAOA_REGIONS: Tuple[Tuple[int, ...], ...] = (
    (5, 10, 11, 12),
    (7, 12, 13, 14),
    (15, 10, 11, 12),
    (11, 12, 13, 14),
)


def qaoa_ansatz(num_qubits: int = 4, layers: int = 3, seed: int = 0) -> QuantumCircuit:
    """The hardware-efficient ansatz on a line of ``num_qubits`` qubits.

    With the defaults this is the paper's 43-gate, 9-CNOT circuit.
    """
    rng = np.random.default_rng(seed)
    circ = QuantumCircuit(num_qubits, name=f"qaoa_{num_qubits}q_{layers}l")

    def rotation_layer(qubits: Sequence[int], kinds: Sequence[str]) -> None:
        for q in qubits:
            for kind in kinds:
                angle = float(rng.uniform(0.0, 2.0 * np.pi))
                circ.add(kind, q, params=(angle,))

    rotation_layer(range(num_qubits), ("ry",))           # 4 gates
    for _ in range(layers):
        # Entangler: outer pairs in parallel, then the middle link.
        for a in range(0, num_qubits - 1, 2):
            circ.cx(a, a + 1)
        for a in range(1, num_qubits - 1, 2):
            circ.cx(a, a + 1)
        rotation_layer(range(num_qubits), ("ry", "rz"))  # 8 gates
    rotation_layer(range(num_qubits), ("ry",))           # 4 gates
    rotation_layer(range(min(2, num_qubits)), ("rz",))   # 2 gates -> 43 total
    return circ


def qaoa_on_region(coupling: CouplingMap, region: Sequence[int],
                   layers: int = 3, seed: int = 0) -> QuantumCircuit:
    """Map the line ansatz onto a connected path of device qubits.

    ``region`` must be a path in the coupling map (consecutive members
    adjacent); the line entanglers then land on hardware edges directly.
    The returned circuit measures the region qubits into clbits 0..k-1.
    """
    region = list(region)
    for a, b in zip(region, region[1:]):
        if not coupling.has_edge(a, b):
            raise ValueError(f"region {region} is not a path: ({a},{b}) missing")
    logical = qaoa_ansatz(len(region), layers, seed)
    placed = logical.remap(region, num_qubits=coupling.num_qubits)
    placed.num_clbits = len(region)
    for i, q in enumerate(region):
        placed.measure(q, i)
    placed.name = f"qaoa_region_{'_'.join(map(str, region))}"
    return placed
