"""Benchmark workloads of the paper's evaluation (Section 8.3).

* :mod:`repro.workloads.swap` — meet-in-the-middle SWAP circuits preparing
  a Bell state (the communication primitive study of Figures 5–7);
* :mod:`repro.workloads.qaoa` — the 4-qubit, 43-gate hardware-efficient
  QAOA ansatz (Figure 8);
* :mod:`repro.workloads.hidden_shift` — Hidden Shift circuits with the
  optional redundant-CNOT susceptibility knob (Figure 9);
* :mod:`repro.workloads.supremacy` — random quantum-supremacy-style
  circuits for the compile-time scalability study (Section 9.4).
"""

from repro.workloads.swap import (
    SwapBenchmark,
    swap_benchmark,
    crosstalk_affected_endpoints,
    crosstalk_free_endpoints,
)
from repro.workloads.qaoa import qaoa_ansatz, qaoa_on_region, QAOA_REGIONS
from repro.workloads.hidden_shift import hidden_shift_circuit, hidden_shift_on_region
from repro.workloads.supremacy import supremacy_circuit

__all__ = [
    "SwapBenchmark",
    "swap_benchmark",
    "crosstalk_affected_endpoints",
    "crosstalk_free_endpoints",
    "qaoa_ansatz",
    "qaoa_on_region",
    "QAOA_REGIONS",
    "hidden_shift_circuit",
    "hidden_shift_on_region",
    "supremacy_circuit",
]
