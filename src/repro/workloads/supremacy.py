"""Random quantum-supremacy-style circuits (Section 9.4 scalability study).

These circuits follow the structure of Markov et al. [35]: alternating
layers of random single-qubit gates and CNOTs on randomly chosen disjoint
coupling edges.  They are classically hard to simulate at scale, but the
scalability study only *compiles* them — the interesting quantity is
XtalkSched's solve time as the gate count grows (6–18 qubits, 100–1000
gates, depth ~40 in the paper).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.device.topology import CouplingMap

_SINGLE_QUBIT_POOL = ("h", "t", "sx")


def supremacy_circuit(coupling: CouplingMap, qubits: Sequence[int],
                      num_gates: int, seed: int = 0,
                      two_qubit_fraction: float = 0.35) -> QuantumCircuit:
    """A random circuit with ~``num_gates`` gates on the given qubits.

    Layers alternate: every layer applies a random single-qubit gate to
    each idle qubit, then CNOTs on a random maximal set of disjoint edges
    within the qubit subset.  Generation stops once ``num_gates`` is
    reached.
    """
    qubits = list(qubits)
    if len(qubits) < 2:
        raise ValueError("need at least two qubits")
    subset = set(qubits)
    edges = [e for e in coupling.edges if e[0] in subset and e[1] in subset]
    if not edges:
        raise ValueError("qubit subset induces no coupling edges")
    rng = np.random.default_rng(seed)
    circ = QuantumCircuit(coupling.num_qubits, name=f"supremacy_{len(qubits)}q_{num_gates}g")

    while len(circ) < num_gates:
        # Random disjoint CNOT layer.
        order = rng.permutation(len(edges))
        used: set = set()
        layer_edges = []
        for k in order:
            a, b = edges[k]
            if a in used or b in used:
                continue
            if rng.random() > two_qubit_fraction * 2:
                continue
            layer_edges.append((a, b))
            used.update((a, b))
        for a, b in layer_edges:
            if len(circ) >= num_gates:
                break
            if rng.random() < 0.5:
                circ.cx(a, b)
            else:
                circ.cx(b, a)
        # Single-qubit layer on the rest.
        for q in qubits:
            if len(circ) >= num_gates:
                break
            if q in used:
                continue
            name = _SINGLE_QUBIT_POOL[rng.integers(len(_SINGLE_QUBIT_POOL))]
            circ.add(name, q)
    circ.num_clbits = len(qubits)
    for i, q in enumerate(qubits):
        circ.measure(q, i)
    return circ
