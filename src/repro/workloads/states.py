"""Additional library workloads: GHZ chains and Bernstein–Vazirani.

Not part of the paper's evaluation, but standard NISQ benchmarks that
exercise the same pipeline (both are communication-light circuits whose
CNOT layers can straddle crosstalk-prone edges when placed on device
paths).  Used by examples and by the extended test suite.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.device.topology import CouplingMap


def ghz_chain_circuit(num_qubits: int) -> QuantumCircuit:
    """GHZ preparation along a line: H then a CNOT chain.

    Noiseless output distribution: half |0...0>, half |1...1>.
    """
    if num_qubits < 2:
        raise ValueError("GHZ needs at least two qubits")
    circ = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circ.h(0)
    for q in range(num_qubits - 1):
        circ.cx(q, q + 1)
    return circ


def ghz_on_region(coupling: CouplingMap, region: Sequence[int]) -> QuantumCircuit:
    """GHZ chain placed on a device path, measured into clbits 0..k-1."""
    region = list(region)
    for a, b in zip(region, region[1:]):
        if not coupling.has_edge(a, b):
            raise ValueError(f"region {region} is not a path: ({a},{b}) missing")
    placed = ghz_chain_circuit(len(region)).remap(
        region, num_qubits=coupling.num_qubits
    )
    placed.num_clbits = len(region)
    for i, q in enumerate(region):
        placed.measure(q, i)
    placed.name = f"ghz_on_{'_'.join(map(str, region))}"
    return placed


def bernstein_vazirani_circuit(secret: str) -> QuantumCircuit:
    """Bernstein–Vazirani for a secret bitstring over a line.

    Qubit layout: data qubits 0..n-1, oracle ancilla at index n (the last
    qubit).  Noiseless output over the data qubits is exactly ``secret``.
    """
    if not secret or any(c not in "01" for c in secret):
        raise ValueError("secret must be a non-empty bitstring")
    n = len(secret)
    circ = QuantumCircuit(n + 1, name=f"bv_{secret}")
    circ.x(n)
    for q in range(n + 1):
        circ.h(q)
    for q, bit in enumerate(secret):
        if bit == "1":
            circ.cx(q, n)
    for q in range(n):
        circ.h(q)
    return circ


def bv_expected_output(secret: str) -> str:
    """Measured bitstring (clbit 0 rightmost) for the data qubits."""
    return secret[::-1]


def bv_on_region(coupling: CouplingMap, region: Sequence[int],
                 secret: str) -> QuantumCircuit:
    """Bernstein–Vazirani on a device path; the ancilla takes the last
    region qubit, data qubits measure into clbits 0..n-1.

    Requires every data qubit adjacent to the ancilla or routed; for
    simplicity this helper only accepts regions where the oracle CNOTs are
    hardware-compliant after greedy routing.
    """
    from repro.transpiler.routing import route_circuit

    region = list(region)
    if len(region) != len(secret) + 1:
        raise ValueError("region must have len(secret)+1 qubits")
    logical = bernstein_vazirani_circuit(secret)
    routed, layout = route_circuit(logical, coupling, initial_layout=region)
    routed.num_clbits = len(secret)
    for logical_q in range(len(secret)):
        routed.measure(layout[logical_q], logical_q)
    routed.name = f"{logical.name}_on_{'_'.join(map(str, region))}"
    return routed
