"""SWAP-circuit benchmarks (Figures 5–7).

A SWAP benchmark between qubits ``(source, dest)`` prepares a Bell pair,
moves the two halves together with meet-in-the-middle SWAP chains, and
entangles them where they meet; tomography of the meeting qubits then
scores the schedule.  The two SWAP chains are logically independent, so
ParSched overlaps them — which is exactly where crosstalk strikes when the
chains pass near each other.

``crosstalk_affected_endpoints`` enumerates the endpoint pairs whose chains
can overlap on a high-crosstalk gate pair (the paper's 46 circuits across
three devices); ``crosstalk_free_endpoints`` finds same-length paths that
avoid all of them (the Figure 7 ideal baseline).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.device.topology import CouplingMap, Edge, normalize_edge
from repro.transpiler.decompose import decompose_to_basis
from repro.transpiler.routing import MeetInMiddlePlan, meet_in_middle_plan, swap_path_circuit


@dataclass(frozen=True)
class SwapBenchmark:
    """One prepared SWAP benchmark circuit plus its metadata."""

    source: int
    dest: int
    circuit: QuantumCircuit          # decomposed to CNOTs, with measurements
    meeting_pair: Tuple[int, int]    # qubits holding the Bell state
    plan: MeetInMiddlePlan

    @property
    def path_length(self) -> int:
        return len(self.plan.path) - 1

    @property
    def label(self) -> str:
        return f"{self.source},{self.dest}"


def swap_benchmark(coupling: CouplingMap, source: int, dest: int,
                   path: Optional[Sequence[int]] = None) -> SwapBenchmark:
    """Build the measured, basis-decomposed SWAP benchmark circuit."""
    plan = meet_in_middle_plan(coupling, source, dest, path=path)
    circ = decompose_to_basis(swap_path_circuit(coupling, source, dest, path=path))
    circ.num_clbits = 2
    qa, qb = plan.cnot
    circ.measure(qa, 0)
    circ.measure(qb, 1)
    return SwapBenchmark(source, dest, circ, (qa, qb), plan)


# ----------------------------------------------------------------------
# endpoint selection
# ----------------------------------------------------------------------
def _chain_edges(swaps: Sequence[Tuple[int, int]]) -> Tuple[Edge, ...]:
    return tuple(normalize_edge(s) for s in swaps)


def plan_has_crosstalk(plan: MeetInMiddlePlan,
                       high_pairs: Iterable[FrozenSet[Edge]]) -> bool:
    """True when the two (parallelizable) SWAP chains can overlap on a
    high-crosstalk pair.

    The left chain, right chain, and final CNOT partition the plan's gates;
    left and right chains are mutually independent, and the final CNOT
    depends on both, so only left-vs-right overlaps occur under ParSched.
    """
    left = set(_chain_edges(plan.left_swaps))
    right = set(_chain_edges(plan.right_swaps))
    for pair in high_pairs:
        a, b = tuple(pair)
        if (a in left and b in right) or (b in left and a in right):
            return True
    return False


def path_touches_crosstalk(plan: MeetInMiddlePlan,
                           high_pairs: Iterable[FrozenSet[Edge]]) -> bool:
    """True when *any* edge of the path belongs to a high-crosstalk pair.

    Stricter than :func:`plan_has_crosstalk`; used to pick genuinely clean
    paths for the Figure 7 crosstalk-free baseline.
    """
    edges = set(_chain_edges(plan.left_swaps)) | set(_chain_edges(plan.right_swaps))
    edges.add(normalize_edge(plan.cnot))
    members = {e for pair in high_pairs for e in pair}
    return bool(edges & members)


def crosstalk_affected_endpoints(coupling: CouplingMap,
                                 high_pairs: Iterable[FrozenSet[Edge]],
                                 max_path_length: int = 8
                                 ) -> List[Tuple[int, int]]:
    """Endpoint pairs with *some* shortest SWAP route whose chains overlap
    a high-crosstalk pair.

    The paper's SWAP study deliberately selects circuits that pass through
    crosstalk-prone regions (46 such circuits across the three devices), so
    all shortest routes are considered, not just the router's default one.
    Use :func:`crosstalk_route` to obtain the crossing route itself.
    """
    return [
        (s, d)
        for s, d in itertools.combinations(range(coupling.num_qubits), 2)
        if crosstalk_route(coupling, s, d, high_pairs, max_path_length) is not None
    ]


def crosstalk_route(coupling: CouplingMap, source: int, dest: int,
                    high_pairs: Iterable[FrozenSet[Edge]],
                    max_path_length: int = 8) -> Optional[Tuple[int, ...]]:
    """A shortest path whose meet-in-the-middle plan crosses a high pair.

    Returns None when no shortest route between the endpoints does (or the
    path is too short for two parallel chains / too long for the study).
    """
    import networkx as nx

    high_pairs = list(high_pairs)
    distance = coupling.qubit_distance(source, dest)
    if distance < 3 or distance > max_path_length:
        return None
    for path in sorted(nx.all_shortest_paths(coupling.graph, source, dest)):
        plan = meet_in_middle_plan(coupling, source, dest, path=path)
        if plan_has_crosstalk(plan, high_pairs):
            return tuple(path)
    return None


def crosstalk_free_endpoints(coupling: CouplingMap,
                             high_pairs: Iterable[FrozenSet[Edge]],
                             path_length: int) -> List[Tuple[int, int]]:
    """Endpoint pairs at ``path_length`` hops avoiding all high pairs."""
    high_pairs = list(high_pairs)
    out = []
    for s, d in itertools.combinations(range(coupling.num_qubits), 2):
        if coupling.qubit_distance(s, d) != path_length:
            continue
        plan = meet_in_middle_plan(coupling, s, d)
        if not path_touches_crosstalk(plan, high_pairs):
            out.append((s, d))
    return out
