"""A deterministic circuit breaker: closed → open → half-open.

The classic availability primitive, adapted to reproducible simulation:
all timing runs on a :class:`~repro.resilience.clock.VirtualClock`, so
when a breaker opens, how long it stays open, and which call becomes the
half-open probe are pure functions of the recorded successes and
failures — a resumed run that replays the same outcomes reconstructs the
identical breaker state.

States:

* **closed** — calls flow; consecutive failures are counted, and
  reaching ``failure_threshold`` trips the breaker open.
* **open** — calls are refused until ``cooldown`` virtual days pass
  (the cooldown doubles with each trip, up to ``max_cooldown`` — a
  repeatedly-failing device gets probed less and less often).
* **half-open** — after the cooldown, exactly one call is admitted as a
  probe: success closes the breaker, failure re-opens it.

Every transition sets the ``resilience.breaker.state`` gauge, bumps
``resilience.breaker.trips`` on trips, and logs a ``resilience.breaker``
event (see ``docs/observability.md``).
"""

from __future__ import annotations

from repro.obs.events import log_event
from repro.obs.registry import get_registry

from repro.resilience.clock import VirtualClock

#: The breaker's three states, in gauge-code order.
BREAKER_STATES = ("closed", "open", "half_open")

#: Gauge encoding for ``resilience.breaker.state`` (see docs).
BREAKER_STATE_CODES = {"closed": 0.0, "open": 1.0, "half_open": 2.0}


class CircuitBreaker:
    """Failure-counting admission control over a virtual clock.

    Parameters
    ----------
    clock:
        The :class:`VirtualClock` all cooldown timing is measured on.
    name:
        Identifies this breaker in events (one breaker per device:
        ``"breaker[sim03]"``).
    failure_threshold:
        Consecutive failures (while closed) that trip the breaker.
    cooldown:
        Virtual days the breaker stays open after its first trip.
    cooldown_factor:
        Cooldown multiplier applied per additional trip (exponential
        backoff for chronically failing devices).
    max_cooldown:
        Upper bound on the escalated cooldown.
    """

    def __init__(self, clock: VirtualClock, name: str = "breaker", *,
                 failure_threshold: int = 3, cooldown: float = 1.5,
                 cooldown_factor: float = 2.0, max_cooldown: float = 8.0):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.clock = clock
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self.cooldown_factor = float(cooldown_factor)
        self.max_cooldown = float(max_cooldown)
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at: float = 0.0
        #: Lifetime number of closed/half-open → open transitions.
        self.trips = 0
        self._publish("init")

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"``."""
        return self._state

    @property
    def current_cooldown(self) -> float:
        """The open-state dwell time implied by the trip count so far."""
        if self.trips == 0:
            return self.cooldown
        scaled = self.cooldown * self.cooldown_factor ** (self.trips - 1)
        return min(scaled, self.max_cooldown)

    def allow(self) -> bool:
        """May a call proceed right now?

        In the open state this is also where the half-open transition
        happens: once the cooldown has elapsed on the virtual clock, the
        first ``allow()`` flips to half-open and admits itself as the
        probe; further calls are refused until the probe's outcome is
        recorded.
        """
        if self._state == "closed":
            return True
        if self._state == "open":
            if self.clock.now - self._opened_at >= self.current_cooldown:
                self._state = "half_open"
                self._publish("probe")
                return True
            return False
        # half-open: a probe is already in flight; one at a time.
        return False

    def cancel_probe(self) -> None:
        """Withdraw a half-open probe admission that never ran.

        Used when an admitted call is abandoned for reasons unrelated to
        the device's health (the fleet's daily budget ran out before the
        probe could execute): the breaker returns to open *without*
        counting a trip, and — since the cooldown already elapsed — the
        next ``allow()`` re-admits a probe immediately.
        """
        if self._state == "half_open":
            self._state = "open"
            self._publish("cancel")

    def record_success(self) -> None:
        """A supervised call succeeded: reset, closing from half-open."""
        previous = self._state
        self._consecutive_failures = 0
        self._state = "closed"
        if previous != "closed":
            self._publish("close")

    def record_failure(self) -> None:
        """A supervised call failed: count it, tripping when warranted.

        A half-open probe failure re-opens immediately (and escalates the
        cooldown via the trip count); closed-state failures trip only at
        ``failure_threshold``.
        """
        if self._state == "half_open":
            self._trip()
            return
        self._consecutive_failures += 1
        if self._state == "closed" \
                and self._consecutive_failures >= self.failure_threshold:
            self._trip()

    # ------------------------------------------------------------------
    def _trip(self) -> None:
        self._state = "open"
        self._opened_at = self.clock.now
        self._consecutive_failures = 0
        self.trips += 1
        get_registry().inc("resilience.breaker.trips")
        self._publish("trip")

    def _publish(self, transition: str) -> None:
        get_registry().set(
            "resilience.breaker.state", BREAKER_STATE_CODES[self._state]
        )
        log_event(
            "resilience.breaker", name=self.name, transition=transition,
            state=self._state, trips=self.trips, at=self.clock.now,
        )
