"""Coverage accounting for gracefully degraded characterization reports.

When a campaign exhausts its retries on some experiments and runs in
``degradation="partial"`` mode, the report it produces is a *mixture*:
most entries are fresh measurements, some are stale values carried over
from a prior report (the paper's Opt 3 — fall back to an earlier day's
characterization when today's measurement is unavailable), and some are
simply missing.  Downstream consumers — the scheduler weighing
conditional error rates, a human reading the report — need to know which
is which, so every planned unit gets a :class:`CoverageEntry` and the
campaign outcome carries a :class:`CampaignCoverage` summarizing them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: The three states a planned measurement can end up in.
COVERAGE_STATUSES = ("fresh", "stale", "missing")


@dataclass(frozen=True)
class CoverageEntry:
    """Provenance of one planned measurement in a (possibly partial) report.

    Attributes:
        kind: ``"edge"`` (independent RB) or ``"pair"`` (conditional SRB).
        targets: the gate targets measured — one edge for ``"edge"``, two
            for ``"pair"``.
        status: ``"fresh"`` (measured this run), ``"stale"`` (carried
            over from a prior report), or ``"missing"`` (no value at all).
        source_day: the day the value was actually measured on (differs
            from the campaign day exactly when ``status == "stale"``).
    """

    kind: str
    targets: Tuple[Tuple[int, ...], ...]
    status: str
    source_day: Optional[int] = None

    def __post_init__(self):
        if self.kind not in ("edge", "pair"):
            raise ValueError("kind must be 'edge' or 'pair'")
        if self.status not in COVERAGE_STATUSES:
            raise ValueError(
                f"status must be one of {COVERAGE_STATUSES}, "
                f"got {self.status!r}"
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "targets": [list(t) for t in self.targets],
            "status": self.status,
            "source_day": self.source_day,
        }


@dataclass(frozen=True)
class CampaignCoverage:
    """Per-unit provenance for everything a campaign planned to measure."""

    entries: Tuple[CoverageEntry, ...] = ()

    @property
    def fresh(self) -> List[CoverageEntry]:
        return [e for e in self.entries if e.status == "fresh"]

    @property
    def stale(self) -> List[CoverageEntry]:
        return [e for e in self.entries if e.status == "stale"]

    @property
    def missing(self) -> List[CoverageEntry]:
        return [e for e in self.entries if e.status == "missing"]

    @property
    def complete(self) -> bool:
        """True when every planned unit was measured fresh."""
        return all(e.status == "fresh" for e in self.entries)

    @property
    def fresh_fraction(self) -> float:
        """Share of planned units measured fresh (0.0 for an empty plan).

        The fleet supervisor's health signal: a campaign whose coverage
        mostly fell back to stale or missing data counts as a *failure*
        for circuit-breaker purposes even though it produced a report.
        An empty plan scores 0.0 — "measured nothing" is never healthy.
        """
        if not self.entries:
            return 0.0
        return len(self.fresh) / len(self.entries)

    def summary(self) -> dict:
        """Counts per status, for events and report annotations."""
        return {
            "total": len(self.entries),
            "fresh": len(self.fresh),
            "stale": len(self.stale),
            "missing": len(self.missing),
        }

    def to_dict(self) -> dict:
        return {
            "summary": self.summary(),
            "entries": [e.to_dict() for e in self.entries],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "CampaignCoverage":
        """Rebuild coverage from its :meth:`to_dict` form (exact)."""
        return cls(tuple(
            CoverageEntry(
                kind=entry["kind"],
                targets=tuple(tuple(t) for t in entry["targets"]),
                status=entry["status"],
                source_day=entry["source_day"],
            )
            for entry in doc.get("entries", [])
        ))


def carried_forward_coverage(report, source_day: Optional[int]
                             ) -> CampaignCoverage:
    """All-stale coverage for republishing a prior report verbatim.

    The fleet's graceful-degradation path: when a device is quarantined,
    breaker-open, over budget, or its campaign failed outright, the
    controller publishes the device's *prior* report again — the paper's
    Opt-3 reuse, generalized — and this coverage annotates every value in
    it as ``stale`` from ``source_day`` so downstream consumers see
    exactly how old their numbers are.  ``report`` is any object with the
    :class:`~repro.core.characterization.report.CrosstalkReport` shape
    (an ``independent`` edge→rate dict and a ``conditional``
    (edge, edge)→rate dict); an empty or absent report yields empty
    coverage (nothing to carry).
    """
    if report is None:
        return CampaignCoverage()
    entries: List[CoverageEntry] = []
    for edge in sorted(report.independent):
        entries.append(CoverageEntry(
            "edge", (tuple(edge),), "stale", source_day=source_day,
        ))
    pairs = sorted({tuple(sorted((tuple(a), tuple(b))))
                    for a, b in report.conditional})
    for pair in pairs:
        entries.append(CoverageEntry(
            "pair", pair, "stale", source_day=source_day,
        ))
    return CampaignCoverage(tuple(entries))
