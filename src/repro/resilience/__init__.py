"""Resilience layer: fault injection, retries, checkpoints, degradation.

NISQ characterization campaigns run hundreds of queued jobs against
drifting hardware; in a reproduction, the analogous risks are worker
deaths, transient task failures, and solver budgets.  This package makes
those failure modes first-class and *deterministic*:

* :mod:`repro.resilience.faults` — reproducible fault injection keyed
  off the same canonical-JSON/SHA-256 hashing as
  :mod:`repro.parallel.seeding` (worker-count invariant);
* :mod:`repro.resilience.retry` — bounded retries with exponential
  backoff and deterministic jitter;
* :mod:`repro.resilience.checkpoint` — JSON-lines checkpoints so a
  killed campaign resumes bitwise-identically;
* :mod:`repro.resilience.degrade` — coverage accounting for partial
  reports that fall back to stale measurements (paper Opt 3);
* :mod:`repro.resilience.clock` — a deterministic virtual clock and
  heartbeat watchdog for supervision timing;
* :mod:`repro.resilience.breaker` — a circuit breaker
  (closed → open → half-open) with virtual-clock probe scheduling;
* :mod:`repro.resilience.errors` — the shared failure taxonomy.

See ``docs/resilience.md`` for the full design.
"""

from repro.resilience.breaker import (
    BREAKER_STATE_CODES,
    BREAKER_STATES,
    CircuitBreaker,
)
from repro.resilience.checkpoint import CHECKPOINT_SCHEMA, JsonlCheckpoint
from repro.resilience.clock import VirtualClock, Watchdog
from repro.resilience.degrade import (
    CampaignCoverage,
    CoverageEntry,
    carried_forward_coverage,
)
from repro.resilience.errors import (
    BackendJobError,
    CheckpointError,
    CheckpointMismatch,
    FatalTaskError,
    FleetInterrupted,
    MeasurementStall,
    RemoteTaskError,
    ResilienceError,
    TaskFailure,
    TransientError,
    TransientTaskError,
    WorkerCrashError,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultDirective,
    FaultInjector,
    FaultPlan,
    FaultRule,
    execute_directive,
    raise_fault,
)
from repro.resilience.retry import DEFAULT_RETRYABLE, RetryPolicy

__all__ = [
    "BackendJobError",
    "BREAKER_STATE_CODES",
    "BREAKER_STATES",
    "CampaignCoverage",
    "carried_forward_coverage",
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "CheckpointMismatch",
    "CircuitBreaker",
    "CoverageEntry",
    "DEFAULT_RETRYABLE",
    "execute_directive",
    "FatalTaskError",
    "FAULT_KINDS",
    "FaultDirective",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FleetInterrupted",
    "JsonlCheckpoint",
    "MeasurementStall",
    "raise_fault",
    "RemoteTaskError",
    "ResilienceError",
    "RetryPolicy",
    "TaskFailure",
    "TransientError",
    "TransientTaskError",
    "VirtualClock",
    "Watchdog",
    "WorkerCrashError",
]
