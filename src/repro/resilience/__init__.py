"""Resilience layer: fault injection, retries, checkpoints, degradation.

NISQ characterization campaigns run hundreds of queued jobs against
drifting hardware; in a reproduction, the analogous risks are worker
deaths, transient task failures, and solver budgets.  This package makes
those failure modes first-class and *deterministic*:

* :mod:`repro.resilience.faults` — reproducible fault injection keyed
  off the same canonical-JSON/SHA-256 hashing as
  :mod:`repro.parallel.seeding` (worker-count invariant);
* :mod:`repro.resilience.retry` — bounded retries with exponential
  backoff and deterministic jitter;
* :mod:`repro.resilience.checkpoint` — JSON-lines checkpoints so a
  killed campaign resumes bitwise-identically;
* :mod:`repro.resilience.degrade` — coverage accounting for partial
  reports that fall back to stale measurements (paper Opt 3);
* :mod:`repro.resilience.errors` — the shared failure taxonomy.

See ``docs/resilience.md`` for the full design.
"""

from repro.resilience.checkpoint import CHECKPOINT_SCHEMA, JsonlCheckpoint
from repro.resilience.degrade import CampaignCoverage, CoverageEntry
from repro.resilience.errors import (
    BackendJobError,
    CheckpointError,
    CheckpointMismatch,
    FatalTaskError,
    RemoteTaskError,
    ResilienceError,
    TaskFailure,
    TransientError,
    TransientTaskError,
    WorkerCrashError,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultDirective,
    FaultInjector,
    FaultPlan,
    FaultRule,
    execute_directive,
    raise_fault,
)
from repro.resilience.retry import DEFAULT_RETRYABLE, RetryPolicy

__all__ = [
    "BackendJobError",
    "CampaignCoverage",
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "CheckpointMismatch",
    "CoverageEntry",
    "DEFAULT_RETRYABLE",
    "execute_directive",
    "FatalTaskError",
    "FAULT_KINDS",
    "FaultDirective",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "JsonlCheckpoint",
    "raise_fault",
    "RemoteTaskError",
    "ResilienceError",
    "RetryPolicy",
    "TaskFailure",
    "TransientError",
    "TransientTaskError",
    "WorkerCrashError",
]
