"""Deterministic virtual time for supervision: clocks and watchdogs.

Fleet supervision needs time — breaker cooldowns, heartbeat timeouts —
but wall time would make every run irreproducible.  A
:class:`VirtualClock` is the fix: a monotone float the *controller*
advances explicitly (ticking simulated days, charging campaign
durations), so every time-dependent decision — when a breaker half-opens,
when a watchdog declares a stall — replays identically across reruns,
worker counts, and kill-and-resume boundaries.

The unit is the simulated **day**: ``clock.now == 3.25`` means a quarter
of the way through day 3.  Campaign execution charges fractional days;
:meth:`VirtualClock.advance_to` snaps the clock forward to each day
boundary without ever moving it backwards.

A :class:`Watchdog` is the heartbeat check built on top: callers
:meth:`~Watchdog.beat` when they make progress, and :meth:`~Watchdog.check`
raises :class:`~repro.resilience.errors.MeasurementStall` once the last
beat ages past the timeout.
"""

from __future__ import annotations

from repro.resilience.errors import MeasurementStall


class VirtualClock:
    """A monotone virtual clock advanced explicitly by its owner.

    Nothing in this class reads wall time; determinism is the point.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """The current virtual time (in simulated days)."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` days (must be >= 0)."""
        delta = float(delta)
        if delta < 0:
            raise ValueError(f"clock cannot move backwards ({delta})")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Move time forward to ``when`` if it is in the future (a no-op
        when the clock already passed it — never backwards)."""
        when = float(when)
        if when > self._now:
            self._now = when
        return self._now


class Watchdog:
    """A heartbeat monitor over a :class:`VirtualClock`.

    ``timeout`` is the longest a supervised activity may go without a
    :meth:`beat` before :meth:`check` declares it stalled.  The watchdog
    never raises on its own — the supervisor decides *when* to look — so
    a stall costs exactly one deterministic exception, not a background
    thread.
    """

    def __init__(self, clock: VirtualClock, timeout: float,
                 name: str = "watchdog"):
        if timeout <= 0:
            raise ValueError("watchdog timeout must be positive")
        self.clock = clock
        self.timeout = float(timeout)
        self.name = name
        self._last_beat = clock.now

    def beat(self) -> None:
        """Record progress: reset the heartbeat to the current time."""
        self._last_beat = self.clock.now

    @property
    def age(self) -> float:
        """Virtual days since the last heartbeat."""
        return self.clock.now - self._last_beat

    @property
    def stalled(self) -> bool:
        """True when the heartbeat is older than the timeout."""
        return self.age > self.timeout

    def check(self) -> None:
        """Raise :class:`MeasurementStall` if the heartbeat expired."""
        if self.stalled:
            raise MeasurementStall(
                f"{self.name}: no heartbeat for {self.age:g} virtual days "
                f"(timeout {self.timeout:g})"
            )
