"""JSON-lines checkpoints: stream results out, resume runs bitwise-identically.

A :class:`JsonlCheckpoint` is an append-only file of one-record-per-line
JSON.  The first line is a header (schema ``repro.resilience.checkpoint/v1``)
pinning the **campaign key** — the canonical content hash of everything
that determines the measurements (device fingerprint, day, seed, RB
sizing, policy) — plus the :mod:`repro.obs` run ID that created the file.
Every further line is ``{"key": ..., "value": ...}``: one completed work
unit, written (and flushed) the moment it finishes, so a run killed
mid-campaign loses at most the units still in flight.

Resume semantics:

* loading a checkpoint whose header names a *different* campaign key
  raises :class:`~repro.resilience.errors.CheckpointMismatch` (resuming
  would silently mix two campaigns' data) unless ``on_mismatch="reset"``
  discards the stale file;
* corrupted lines — a flipped bit mid-file — are skipped and counted
  (``resilience.checkpoint.corrupt_lines``), never fatal: a damaged
  checkpoint degrades to re-measuring, not to a crash;
* a **torn tail** — the partial final line a writer killed mid-``append``
  leaves behind — is repaired at open (``resilience.checkpoint.truncations``):
  a parseable tail kept and properly newline-terminated, an unparseable
  one truncated away, so later appends never concatenate with it;
* duplicate keys keep the *last* record (a retried unit may have been
  appended twice).

Because the stored values are plain JSON and Python's ``json`` round-trips
floats exactly, a campaign resumed from a checkpoint reproduces the
uninterrupted report bit for bit.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, Optional

from repro.obs.registry import get_registry

from repro.resilience.errors import CheckpointMismatch

#: Schema identifier written into every checkpoint header.
CHECKPOINT_SCHEMA = "repro.resilience.checkpoint/v1"


class JsonlCheckpoint:
    """An append-only key/value checkpoint over a JSON-lines file.

    Parameters
    ----------
    path:
        The checkpoint file (created on first :meth:`append`).
    campaign_key:
        Content key of the run this checkpoint belongs to.  When given
        and the file already exists, the header must match.
    run_id:
        The :mod:`repro.obs` run ID stamped into a newly created header.
    on_mismatch:
        ``"raise"`` (default) or ``"reset"`` — what to do when an
        existing header names a different campaign key.
    """

    def __init__(self, path: str, campaign_key: Optional[str] = None,
                 run_id: Optional[str] = None, on_mismatch: str = "raise"):
        if on_mismatch not in ("raise", "reset"):
            raise ValueError("on_mismatch must be 'raise' or 'reset'")
        self.path = str(path)
        self.campaign_key = campaign_key
        self.run_id = run_id
        #: Keys served from the file by :meth:`get` since construction.
        self.hits = 0
        #: Damaged lines skipped while loading.
        self.corrupt_lines = 0
        self._entries: Dict[str, Any] = {}
        self._header_written = False
        self._load(on_mismatch)

    # ------------------------------------------------------------------
    def _load(self, on_mismatch: str) -> None:
        if not os.path.exists(self.path):
            return
        registry = get_registry()
        with open(self.path, "rb") as handle:
            data = handle.read()
        # A writer killed mid-append leaves a torn tail: bytes after the
        # last newline that are not a complete record.  Appending to such
        # a file would concatenate the partial record with the next one,
        # corrupting *both* — so the tail is handled at the byte level
        # before anything else touches the file: a parseable tail (the
        # write finished, the newline didn't) is kept and rewritten with
        # its newline; an unparseable one is truncated away and counted.
        tail_record = None
        keep = len(data)
        if data and not data.endswith(b"\n"):
            keep = data.rfind(b"\n") + 1  # 0 when no newline at all
            try:
                tail_record = json.loads(data[keep:].decode("utf-8"))
            except (ValueError, TypeError, UnicodeDecodeError):
                self.corrupt_lines += 1
                registry.inc("resilience.checkpoint.corrupt_lines")
            registry.inc("resilience.checkpoint.truncations")
            self._repair_tail(keep, tail_record)
        records = []
        for line in data[:keep].splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line.decode("utf-8")))
            except (ValueError, TypeError, UnicodeDecodeError):
                self.corrupt_lines += 1
                registry.inc("resilience.checkpoint.corrupt_lines")
        if tail_record is not None:
            records.append(tail_record)
        header = records[0] if records else None
        if (isinstance(header, dict)
                and header.get("schema") == CHECKPOINT_SCHEMA):
            stored_key = header.get("campaign_key")
            if (self.campaign_key is not None and stored_key is not None
                    and stored_key != self.campaign_key):
                if on_mismatch == "reset":
                    os.remove(self.path)
                    self.corrupt_lines = 0
                    return
                raise CheckpointMismatch(
                    f"checkpoint {self.path!r} belongs to campaign "
                    f"{stored_key!r}, not {self.campaign_key!r}; pass "
                    f"on_mismatch='reset' to discard it"
                )
            records = records[1:]
            self._header_written = True
        for record in records:
            if (isinstance(record, dict)
                    and "key" in record and "value" in record):
                self._entries[record["key"]] = record["value"]
            else:
                self.corrupt_lines += 1
                registry.inc("resilience.checkpoint.corrupt_lines")

    def _repair_tail(self, keep: int, tail_record) -> None:
        """Rewrite the file without its torn tail.

        ``keep`` is the byte offset just past the last newline-terminated
        line.  A parseable tail record (the write finished but the
        newline never landed) is re-appended properly terminated; an
        unparseable one is simply cut.  Fsynced, so a second crash cannot
        resurrect the torn bytes.
        """
        with open(self.path, "r+b") as handle:
            handle.truncate(keep)
            if tail_record is not None:
                handle.seek(0, os.SEEK_END)
                handle.write(
                    (json.dumps(tail_record, sort_keys=True) + "\n")
                    .encode("utf-8")
                )
            handle.flush()
            os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[str]:
        return iter(list(self._entries))

    def get(self, key: str, default: Any = None) -> Any:
        """The stored value for ``key`` (counts as a checkpoint hit)."""
        if key in self._entries:
            self.hits += 1
            get_registry().inc("resilience.checkpoint.hits")
            return self._entries[key]
        get_registry().inc("resilience.checkpoint.misses")
        return default

    def append(self, key: str, value: Any) -> None:
        """Persist one completed unit (flushed to disk immediately)."""
        self._entries[key] = value
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            if not self._header_written:
                header = {"schema": CHECKPOINT_SCHEMA}
                if self.campaign_key is not None:
                    header["campaign_key"] = self.campaign_key
                if self.run_id is not None:
                    header["run_id"] = self.run_id
                handle.write(json.dumps(header, sort_keys=True) + "\n")
                self._header_written = True
            handle.write(
                json.dumps({"key": key, "value": value}, sort_keys=True)
                + "\n"
            )
            handle.flush()
            os.fsync(handle.fileno())
