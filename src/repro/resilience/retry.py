"""Retry policies: bounded attempts, exponential backoff, deterministic jitter.

A :class:`RetryPolicy` answers three questions for any caller — the
parallel engine, the campaign, the noisy backend:

* *should this failure be retried?* — :meth:`RetryPolicy.is_retryable`
  consults the error taxonomy of :mod:`repro.resilience.errors`
  (``TransientError`` subclasses and ``BrokenProcessPool`` are
  retryable; everything else is a bug and surfaces immediately);
* *how long to wait?* — :meth:`RetryPolicy.delay` grows exponentially
  from ``base_delay`` and is spread by **deterministic jitter**: the
  jitter factor is derived from the same canonical-JSON/SHA-256 hashing
  as :mod:`repro.parallel.seeding`, keyed on the policy seed, the
  caller's stable key, and the attempt number — two runs of the same
  scenario back off identically, yet distinct tasks never thunder in
  step;
* *how many times?* — ``max_attempts`` counts total attempts including
  the first, so ``max_attempts=1`` disables retries entirely.

:meth:`RetryPolicy.call` is the generic in-process wrapper (used by
:meth:`NoisyBackend.run <repro.device.backend.NoisyBackend.run>`); the
parallel engine implements its own loop because it must also recreate
pools and resubmit only the failed tasks.
"""

from __future__ import annotations

import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type

from repro.obs.events import log_event
from repro.obs.registry import get_registry
from repro.parallel.seeding import stable_entropy

from repro.resilience.errors import TransientError

#: Resolution of the jitter draw (uniform fractions in [0, 1)).
_DRAW_DENOMINATOR = 10 ** 12

#: Exception classes retried by default, beyond ``TransientError``.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    BrokenProcessPool, TimeoutError, ConnectionError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) to retry transient failures.

    Attributes:
        max_attempts: total attempts including the first (1 = no retry).
        base_delay: backoff before the first retry, seconds.
        multiplier: exponential growth factor per further retry.
        max_delay: backoff ceiling, seconds.
        jitter: symmetric jitter fraction — each delay is scaled by a
            deterministic factor in ``[1 - jitter, 1 + jitter)``.
        jitter_seed: root of the deterministic jitter derivation.
        retryable_types: extra exception classes to treat as retryable
            (``TransientError`` subclasses always are).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    jitter_seed: int = 0
    retryable_types: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """No retries: the first failure is terminal."""
        return cls(max_attempts=1)

    @classmethod
    def fast(cls, max_attempts: int = 3) -> "RetryPolicy":
        """Zero-backoff policy for tests and simulations."""
        return cls(max_attempts=max_attempts, base_delay=0.0, max_delay=0.0)

    # ------------------------------------------------------------------
    def is_retryable(self, error: BaseException) -> bool:
        """Whether a retry can plausibly cure ``error``."""
        if isinstance(error, TransientError):
            return True
        return isinstance(error, self.retryable_types)

    def delay(self, attempt: int, key: Any = None) -> float:
        """Backoff before retry number ``attempt`` (1-based), seconds.

        Deterministic: the same ``(policy, key, attempt)`` always
        produces the same delay, so fault scenarios replay identically.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1),
                  self.max_delay)
        if self.jitter and raw > 0.0:
            draw = stable_entropy(
                "resilience.retry.jitter", self.jitter_seed, key, attempt
            ) % _DRAW_DENOMINATOR
            raw *= 1.0 + self.jitter * (2.0 * (draw / _DRAW_DENOMINATOR) - 1.0)
        return max(0.0, raw)

    def sleep(self, attempt: int, key: Any = None) -> float:
        """Sleep the computed backoff; returns the seconds slept."""
        seconds = self.delay(attempt, key)
        if seconds > 0.0:
            time.sleep(seconds)
        return seconds

    # ------------------------------------------------------------------
    def call(self, fn: Callable[[], Any], *, site: str = "call",
             key: Any = None,
             on_retry: Optional[Callable[[int, BaseException], None]] = None
             ) -> Any:
        """Run ``fn()`` under this policy, retrying transient failures.

        Each retry increments the ``resilience.retries`` counter and logs
        a ``resilience.retry`` event carrying the site, attempt number,
        and the failure's ``repr``.  The final failure propagates
        unchanged.
        """
        registry = get_registry()
        attempt = 0
        while True:
            try:
                return fn()
            except Exception as error:
                attempt += 1
                if attempt >= self.max_attempts or not self.is_retryable(error):
                    raise
                registry.inc("resilience.retries")
                log_event(
                    "resilience.retry", site=site, attempt=attempt,
                    key=repr(key), error=repr(error),
                )
                if on_retry is not None:
                    on_retry(attempt, error)
                self.sleep(attempt, key)
