"""The fault taxonomy: what can go wrong, and which failures are transient.

The paper's workflow lives on flaky infrastructure — SRB characterization
is hundreds of queued jobs on drifting hardware, and queued jobs get
rejected, time out, or die with the worker that ran them.  This module
names those failure modes as exception classes so every layer (the
parallel engine, the campaign, the backend) can agree on *retryability*:

* :class:`TransientError` subclasses model failures that a retry can
  plausibly cure (a rejected job, a dead worker, an injected transient);
  the default :class:`~repro.resilience.retry.RetryPolicy` retries them.
* Everything else (a ``ValueError`` in task code, a
  :class:`FatalTaskError`) is treated as a bug and surfaces immediately.

:class:`TaskFailure` is not a failure mode but the *terminal record* of
one: when retries are exhausted the engine wraps the original exception
with its task identity (index, stable key, attempt count, and the
worker-side traceback text) so failures stay debuggable across process
boundaries.
"""

from __future__ import annotations

from typing import Any, Optional


class ResilienceError(Exception):
    """Base class for every failure mode this package models."""


class TransientError(ResilienceError):
    """A failure a retry can plausibly cure (retryable by default)."""


class TransientTaskError(TransientError):
    """An injected (or genuinely transient) worker-task exception."""


class WorkerCrashError(TransientError):
    """A worker process died mid-task.

    In pool mode a real worker death surfaces as
    :class:`concurrent.futures.process.BrokenProcessPool`; this class is
    the serial-mode stand-in raised by an injected ``worker_death`` fault
    when there is no pool to break.
    """


class BackendJobError(TransientError):
    """A simulated backend rejected or timed out a submitted job.

    ``kind`` is ``"rejection"`` or ``"timeout"`` — the two ways a queued
    hardware job dies without ever producing data.
    """

    def __init__(self, message: str, kind: str = "rejection"):
        super().__init__(message)
        self.kind = kind


class MeasurementStall(TransientError):
    """A device stopped making progress mid-campaign.

    Raised by a :class:`~repro.resilience.clock.Watchdog` whose heartbeat
    aged past its timeout on the virtual clock — the fleet-level analogue
    of a hardware queue that accepts jobs but never returns results.
    Transient: the next day's campaign may well succeed, so the device
    supervisor counts it against the circuit breaker rather than
    quarantining outright.
    """


class FleetInterrupted(ResilienceError):
    """The fleet controller was deliberately stopped mid-run.

    Raised when a :class:`~repro.fleet.controller.FleetController` hits
    its ``interrupt_after`` publish limit — the deterministic stand-in
    for ``kill -9`` in kill-and-resume tests.  The checkpoint already
    holds every epoch published before the interrupt, so a resumed run
    replays them bitwise-identically.
    """


class FatalTaskError(ResilienceError):
    """A non-retryable failure (used by tests and fault plans to model
    bugs rather than infrastructure flakiness)."""


class RemoteTaskError(ResilienceError):
    """Stand-in for a worker-side exception that could not be pickled.

    Carries the original exception's ``repr`` so the parent still sees
    what happened; never retryable (the original class is unknown).
    """


class CheckpointError(ResilienceError):
    """A checkpoint file could not be used."""


class CheckpointMismatch(CheckpointError):
    """An existing checkpoint belongs to a *different* campaign key.

    Resuming from it would silently mix measurements from two different
    campaigns; the caller must either point at the right file or pass
    ``on_mismatch="reset"`` to discard the stale checkpoint.
    """


class TaskFailure(ResilienceError):
    """Terminal record of one task that exhausted its retries.

    Attributes:
        site: the fault site name (``"characterize[one_hop].task"``).
        task_index: position of the task in the ``map`` call's item list.
        task_key: the caller's stable key for the task (falls back to the
            index when no keys were given).
        attempts: how many times the task ran before giving up.
        cause: the final exception instance (or a
            :class:`RemoteTaskError` stand-in).
        traceback_text: the worker-side formatted traceback of ``cause``.
    """

    def __init__(self, site: str, task_index: int, task_key: Any,
                 attempts: int, cause: Optional[BaseException],
                 traceback_text: str = ""):
        self.site = site
        self.task_index = task_index
        self.task_key = task_key
        self.attempts = attempts
        self.cause = cause
        self.traceback_text = traceback_text
        super().__init__(
            f"task {task_index} at {site!r} failed after {attempts} "
            f"attempt(s): {cause!r}"
        )

    def to_dict(self) -> dict:
        """A JSON-friendly rendering (event payloads, coverage reports)."""
        return {
            "site": self.site,
            "task_index": self.task_index,
            "task_key": repr(self.task_key),
            "attempts": self.attempts,
            "cause": repr(self.cause),
            "traceback": self.traceback_text,
        }
