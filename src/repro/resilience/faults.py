"""Deterministic fault injection keyed off stable canonical-JSON hashes.

A :class:`FaultPlan` describes *which* failures to inject — worker-task
exceptions, worker death, backend job rejections/timeouts — and a
:class:`FaultInjector` carries one plan through a run, counting and
logging every injection.  Selection is driven by the same
canonical-JSON/SHA-256 derivation as :mod:`repro.parallel.seeding`: a
fault fires for ``(site, key)`` iff

    ``stable_entropy("resilience.fault", plan.seed, rule.kind, site, key)``

lands below the rule's ``rate``, and the current ``attempt`` is still
below the rule's ``max_failures``.  Because the draw depends only on the
plan seed and the task's stable key — never on worker count, submission
order, or wall clock — a fault scenario replays identically on every
machine and at every ``REPRO_WORKERS`` setting, which is what makes the
campaign-level invariant testable ("a 20 %-transient-failure campaign
converges to the fault-free report after retries").

Fault kinds:

* ``"task_error"`` — raise :class:`~repro.resilience.errors.TransientTaskError`
  inside the task (retryable);
* ``"worker_death"`` — in a pool worker, hard-kill the process
  (``os._exit``) so the parent sees a real ``BrokenProcessPool``; in
  serial mode, raise :class:`~repro.resilience.errors.WorkerCrashError`;
* ``"job_rejection"`` / ``"job_timeout"`` — raise
  :class:`~repro.resilience.errors.BackendJobError` (a queued hardware
  job dying before producing data);
* ``"fatal"`` — raise :class:`~repro.resilience.errors.FatalTaskError`
  (never retried; models bugs and kill-mid-run scenarios).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, List, Optional, Tuple

from repro.obs.events import log_event
from repro.obs.registry import get_registry
from repro.parallel.seeding import stable_entropy

from repro.resilience.errors import (
    BackendJobError,
    FatalTaskError,
    TransientTaskError,
    WorkerCrashError,
)

#: Every fault kind a rule may name.
FAULT_KINDS = (
    "task_error", "worker_death", "job_rejection", "job_timeout", "fatal",
)

#: Resolution of the selection draw (uniform fractions in [0, 1)).
_DRAW_DENOMINATOR = 10 ** 12


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *which kind*, *how often*, *for how long*.

    ``rate`` is the fraction of (site, key) pairs affected; ``max_failures``
    is how many leading attempts of an affected task fail before it
    succeeds (so retry convergence is testable — use a large value for
    permanent failures).  ``site`` is an ``fnmatch`` pattern over fault
    site names (``"characterize[*].task"``, ``"backend.job"``; ``"*"``
    matches everywhere).
    """

    kind: str
    rate: float = 1.0
    max_failures: int = 1
    site: str = "*"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; pick from {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.max_failures < 1:
            raise ValueError("max_failures must be >= 1")


@dataclass(frozen=True)
class FaultDirective:
    """A concrete injection decision for one task attempt.

    Computed in the parent process (so injections are counted reliably
    even when the worker dies) and shipped to the worker, which executes
    it via :func:`execute_directive`.
    """

    kind: str
    site: str
    key: str       # repr of the task key, for events and debugging
    attempt: int


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible failure scenario: a seed plus a list of rules.

    Rules are consulted in order; the first whose site pattern matches,
    whose selection draw admits the key, and whose ``max_failures`` has
    not been exhausted for this attempt wins.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()

    @classmethod
    def single(cls, kind: str, rate: float = 1.0, max_failures: int = 1,
               site: str = "*", seed: int = 0) -> "FaultPlan":
        """Convenience: a plan with one rule."""
        return cls(seed=seed, rules=(FaultRule(kind, rate, max_failures, site),))

    def directive(self, site: str, key: Any,
                  attempt: int = 0) -> Optional[FaultDirective]:
        """The fault (if any) this plan schedules for ``(site, key)`` at
        the given attempt number.  Deterministic and stateless."""
        for rule in self.rules:
            if not fnmatchcase(site, rule.site):
                continue
            if attempt >= rule.max_failures:
                continue
            draw = stable_entropy(
                "resilience.fault", self.seed, rule.kind, site, key
            ) % _DRAW_DENOMINATOR
            if draw / _DRAW_DENOMINATOR < rule.rate:
                return FaultDirective(
                    kind=rule.kind, site=site, key=repr(key), attempt=attempt,
                )
        return None


def raise_fault(directive: FaultDirective) -> None:
    """Raise the exception a directive maps to (never ``os._exit``)."""
    message = (
        f"injected {directive.kind} at {directive.site!r} "
        f"(key={directive.key}, attempt={directive.attempt})"
    )
    if directive.kind == "task_error":
        raise TransientTaskError(message)
    if directive.kind == "worker_death":
        raise WorkerCrashError(message)
    if directive.kind == "job_rejection":
        raise BackendJobError(message, kind="rejection")
    if directive.kind == "job_timeout":
        raise BackendJobError(message, kind="timeout")
    raise FatalTaskError(message)


def execute_directive(directive: FaultDirective,
                      process_exit: bool = False) -> None:
    """Carry out a directive at its fault site.

    With ``process_exit=True`` (pool workers only) a ``worker_death``
    directive hard-kills the process with ``os._exit`` — bypassing all
    exception handling, exactly like an OOM kill — so the parent
    experiences a genuine ``BrokenProcessPool``.  Every other kind (and
    ``worker_death`` in serial mode) raises its mapped exception.
    """
    if directive.kind == "worker_death" and process_exit:
        os._exit(13)
    raise_fault(directive)


class FaultInjector:
    """One plan threaded through a run, with counting and event logging.

    Two usage styles:

    * the parallel engine asks :meth:`directive` with an explicit,
      engine-tracked attempt number, ships the directive to the worker,
      and the worker executes it (attempt numbers survive process
      boundaries this way);
    * in-process fault sites (:class:`~repro.device.backend.NoisyBackend`,
      :class:`~repro.rb.executor.RBExecutor`) call :meth:`check`, which
      tracks attempts per ``(site, key)`` in the injector itself and
      raises directly.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        #: Every directive shipped or raised, in order.
        self.injected: List[FaultDirective] = []
        self._attempts: dict = {}

    @property
    def count(self) -> int:
        return len(self.injected)

    def directive(self, site: str, key: Any,
                  attempt: int = 0) -> Optional[FaultDirective]:
        """Plan lookup with *caller-tracked* attempts (no recording —
        call :meth:`record` when the directive is actually shipped)."""
        return self.plan.directive(site, key, attempt)

    def record(self, directive: FaultDirective) -> None:
        """Count one shipped/raised directive (metrics + event)."""
        self.injected.append(directive)
        get_registry().inc("resilience.faults_injected")
        log_event(
            "resilience.fault", kind=directive.kind, site=directive.site,
            key=directive.key, attempt=directive.attempt,
        )

    def check(self, site: str, key: Any) -> None:
        """Raise the scheduled fault (if any) for an in-process site.

        Attempts are tracked per ``(site, key)`` inside the injector, so
        a retried call eventually clears ``max_failures`` and succeeds.
        """
        state_key = (site, repr(key))
        attempt = self._attempts.get(state_key, 0)
        self._attempts[state_key] = attempt + 1
        directive = self.plan.directive(site, key, attempt)
        if directive is not None:
            self.record(directive)
            raise_fault(directive)
