"""The noisy executor — this reproduction's stand-in for IBMQ hardware.

:class:`NoisyBackend` accepts a hardware-compliant circuit (two-qubit gates
on coupling edges, orderings expressed through barriers), times it with the
IBMQ hardware-scheduling model (right-aligned, simultaneous readout), and
executes it with the three noise processes of DESIGN.md §2:

* every two-qubit gate suffers depolarizing noise at its **conditional**
  error rate, determined by which other two-qubit gates actually overlap it
  in the final schedule (ground-truth crosstalk model, max over partners);
* every idle window on an active qubit suffers T1/T2 decay — and the clock
  on a qubit starts at its first operation, matching the paper's lifetime
  semantics;
* measurement suffers per-qubit readout error.

The backend is also the substrate under the RB/SRB characterization
experiments, which run through :meth:`NoisyBackend.schedule_of` +
:meth:`NoisyBackend.gate_error_rates` with a stabilizer simulator (see
:mod:`repro.rb.executor`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.device.device import Device
from repro.device.topology import normalize_edge
from repro.obs.registry import get_registry
from repro.obs.trace import span as obs_span
from repro.parallel import ParallelEngine, stable_seed_sequence
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.sim.channels import ReadoutModel, decay_probabilities
from repro.sim.trajectory import NoisyOp, TrajectorySimulator
from repro.transpiler.schedule import Schedule
from repro.transpiler.scheduling import hardware_schedule

#: Trajectories per parallel chunk.  Fixed (never derived from the worker
#: count) so the chunk boundaries — and therefore each chunk's spawned seed
#: and the order-preserving merge — are identical whether the chunks run
#: serially or across a pool, making the output distribution bitwise
#: reproducible for every worker count.
_TRAJECTORY_CHUNK = 16


def _trajectory_chunk_task(context, item):
    """Accumulate one chunk of trajectories (module-level for pickling)."""
    events, measured_sim_qubits, num_qubits = context
    count, seed_seq = item
    sim = TrajectorySimulator(num_qubits, seed=seed_seq)
    return sim.accumulate(events, measured_sim_qubits, count)


@dataclass
class ExecutionResult:
    """Counts plus the schedule the hardware actually ran."""

    counts: Dict[str, int]
    probabilities: np.ndarray
    schedule: Schedule
    measured_qubits: Tuple[int, ...]
    shots: int

    @property
    def duration(self) -> float:
        return self.schedule.makespan()

    def distribution(self) -> Dict[str, float]:
        total = sum(self.counts.values())
        return {bits: c / total for bits, c in self.counts.items()}


class NoisyBackend:
    """Executes circuits against a :class:`~repro.device.device.Device`.

    ``faults`` injects simulated job rejections/timeouts at the
    ``"backend.job"`` fault site (raised before any simulation work, like
    a queued hardware job dying); ``retry`` makes :meth:`run` and
    :meth:`run_schedule` resubmit such transient failures with
    deterministic backoff instead of surfacing them.
    """

    def __init__(self, device: Device, day: int = 0, seed: Optional[int] = None,
                 workers: Optional[int] = None,
                 retry: Optional[RetryPolicy] = None,
                 faults: Optional[FaultInjector] = None):
        self.device = device
        self.day = day
        self._seed = seed if seed is not None else device.seed * 7919 + day
        self.workers = workers
        self.retry = retry
        self.faults = faults
        #: ``parallel.*`` counters accumulated across every run (workers is
        #: a level, not an accumulator).
        self.counters: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # timing and error-rate assignment (shared with the RB executor)
    # ------------------------------------------------------------------
    def schedule_of(self, circuit: QuantumCircuit) -> Schedule:
        """Time the circuit exactly as the hardware would."""
        return hardware_schedule(circuit, self.device.calibration(self.day).durations)

    def gate_error_rates(self, schedule: Schedule) -> Dict[int, float]:
        """True error probability of every gate in a schedule.

        Two-qubit gates get their worst conditional rate over actually
        overlapping two-qubit partners; single-qubit gates get the qubit's
        calibrated rate.  Keys are instruction indices.
        """
        cal = self.device.calibration(self.day)
        crosstalk = self.device.crosstalk
        rates: Dict[int, float] = {}
        two_qubit_ops = schedule.two_qubit_ops()
        for op in schedule:
            instr = op.instruction
            if instr.is_directive or instr.is_measure:
                continue
            if instr.is_two_qubit:
                edge = normalize_edge(instr.qubits)
                partners = [
                    normalize_edge(other.instruction.qubits)
                    for other in two_qubit_ops
                    if other.index != op.index and other.overlaps(op)
                ]
                rates[op.index] = crosstalk.worst_conditional_error(
                    edge, partners, cal, self.day
                )
            else:
                rates[op.index] = cal.single_qubit_error[instr.qubits[0]]
        return rates

    # ------------------------------------------------------------------
    # lowering to the trajectory simulator
    # ------------------------------------------------------------------
    def lower(self, schedule: Schedule) -> Tuple[List[NoisyOp], Dict[int, int], List[Tuple[int, int]]]:
        """Lower a schedule to noisy events over compacted qubit indices.

        Returns ``(events, qubit_map, measures)`` where ``qubit_map`` maps
        device qubit -> simulator qubit and ``measures`` lists
        ``(clbit, device_qubit)`` pairs.
        """
        cal = self.device.calibration(self.day)
        active = schedule.circuit.active_qubits()
        qubit_map = {q: i for i, q in enumerate(active)}
        rates = self.gate_error_rates(schedule)

        ordered = sorted(
            (op for op in schedule if not op.instruction.is_barrier),
            key=lambda op: (op.start, op.index),
        )
        last_end: Dict[int, float] = {}
        events: List[NoisyOp] = []
        measures: List[Tuple[int, int]] = []
        for op in ordered:
            instr = op.instruction
            # Idle decay since the previous operation on each operand; a
            # qubit's clock starts at its first operation (paper §9.1).
            for q in instr.qubits:
                if q in last_end and op.start > last_end[q] + 1e-9:
                    gamma, p_z = decay_probabilities(
                        op.start - last_end[q], cal.t1[q], cal.t2[q]
                    )
                    events.append(NoisyOp.decay(qubit_map[q], gamma, p_z))
                last_end[q] = op.end
            if instr.is_measure:
                measures.append((instr.clbit, instr.qubits[0]))
                continue
            if instr.name == "delay":
                continue
            events.append(
                NoisyOp.gate(
                    instr.name,
                    tuple(qubit_map[q] for q in instr.qubits),
                    instr.params,
                    error_prob=rates.get(op.index, 0.0),
                )
            )
        measures.sort()
        return events, qubit_map, measures

    # ------------------------------------------------------------------
    def run(self, circuit: QuantumCircuit, shots: int = 1024,
            trajectories: int = 64, readout_error: bool = True,
            seed: Optional[int] = None,
            workers: Optional[int] = None) -> ExecutionResult:
        """Execute a circuit and return sampled counts (clbit 0 rightmost).

        The circuit is timed by the hardware scheduler (right-aligned,
        barrier-respecting) — the circuit-level ISA path.  ``workers`` fans
        the trajectory budget over a process pool; the distribution is
        bitwise identical for every worker count.
        """
        if not any(instr.is_measure for instr in circuit):
            raise ValueError("circuit has no measurements")
        return self.run_schedule(
            self.schedule_of(circuit), shots=shots, trajectories=trajectories,
            readout_error=readout_error, seed=seed, workers=workers,
        )

    def run_schedule(self, schedule: Schedule, shots: int = 1024,
                     trajectories: int = 64, readout_error: bool = True,
                     seed: Optional[int] = None,
                     workers: Optional[int] = None) -> ExecutionResult:
        """Execute an explicitly timed schedule (the pulse-level ISA path).

        Recent IBMQ systems expose OpenPulse-style control (the paper's
        footnote 2); this entry point models it: the caller's start times
        are executed verbatim, with no right-alignment or barrier
        re-scheduling.  Error rates still derive from the schedule's actual
        overlaps.

        Trajectories are split into fixed chunks of ``_TRAJECTORY_CHUNK``,
        each chunk simulated with its own RNG spawned from a stable root
        seed, and the partial accumulators merged in chunk order — so the
        probabilities do not depend on ``workers``.

        Job submission is the ``"backend.job"`` fault site: an injected
        rejection or timeout raises
        :class:`~repro.resilience.errors.BackendJobError` before any
        simulation work, and a ``retry`` policy resubmits it.  The result
        is identical to an unfaulted run — simulation seeds derive from
        the job's stable identity, never from the attempt number.
        """
        job_key = (self._seed, self.day, shots, trajectories, seed)

        def submit() -> ExecutionResult:
            if self.faults is not None:
                self.faults.check("backend.job", job_key)
            return self._run_schedule_once(
                schedule, shots=shots, trajectories=trajectories,
                readout_error=readout_error, seed=seed, workers=workers,
            )

        if self.retry is not None:
            return self.retry.call(submit, site="backend.job", key=job_key)
        return submit()

    def _run_schedule_once(self, schedule: Schedule, shots: int,
                           trajectories: int, readout_error: bool,
                           seed: Optional[int],
                           workers: Optional[int]) -> ExecutionResult:
        if not any(t.instruction.is_measure for t in schedule):
            raise ValueError("schedule has no measurements")
        if trajectories <= 0:
            raise ValueError("need at least one trajectory")
        events, qubit_map, measures = self.lower(schedule)
        measured_device_qubits = tuple(q for _, q in measures)
        measured_sim_qubits = [qubit_map[q] for q in measured_device_qubits]

        seed_val = seed if seed is not None else self._seed
        chunk_counts = [_TRAJECTORY_CHUNK] * (trajectories // _TRAJECTORY_CHUNK)
        if trajectories % _TRAJECTORY_CHUNK:
            chunk_counts.append(trajectories % _TRAJECTORY_CHUNK)
        root = stable_seed_sequence("backend.trajectories", seed_val)
        children = root.spawn(len(chunk_counts))

        context = (events, measured_sim_qubits, len(qubit_map))
        with obs_span("backend.run_schedule") as record:
            record.counters["backend.trajectories"] = float(trajectories)
            record.counters["backend.chunks"] = float(len(chunk_counts))
            with ParallelEngine(
                workers if workers is not None else self.workers,
                name="backend.trajectories",
            ) as engine:
                partials = engine.map(
                    _trajectory_chunk_task, list(zip(chunk_counts, children)),
                    context,
                )
            total = np.zeros(2 ** len(measured_sim_qubits))
            for partial in partials:
                total += partial
            probs = total / trajectories
            for name, value in engine.counters.items():
                if name == "parallel.workers":
                    self.counters[name] = value
                else:
                    self.counters[name] = self.counters.get(name, 0.0) + value
        registry = get_registry()
        registry.inc("backend.runs")
        registry.inc("backend.trajectories", trajectories)
        registry.observe("backend.run_seconds", record.seconds)

        readout = None
        if readout_error:
            cal = self.device.calibration(self.day)
            errs = tuple(cal.readout_error[q] for q in qubit_map)
            readout = ReadoutModel(errs, errs)
        if readout is not None:
            probs = readout.restrict(measured_sim_qubits).apply_to_distribution(
                probs, range(len(measured_sim_qubits))
            )
        from repro.sim.channels import distribution_to_counts

        counts = distribution_to_counts(probs, shots, np.random.default_rng(self._seed))
        return ExecutionResult(
            counts=counts,
            probabilities=probs,
            schedule=schedule,
            measured_qubits=measured_device_qubits,
            shots=shots,
        )
