"""The noisy executor — this reproduction's stand-in for IBMQ hardware.

:class:`NoisyBackend` accepts a hardware-compliant circuit (two-qubit gates
on coupling edges, orderings expressed through barriers), times it with the
IBMQ hardware-scheduling model (right-aligned, simultaneous readout), and
executes it with the three noise processes of DESIGN.md §2:

* every two-qubit gate suffers depolarizing noise at its **conditional**
  error rate, determined by which other two-qubit gates actually overlap it
  in the final schedule (ground-truth crosstalk model, max over partners);
* every idle window on an active qubit suffers T1/T2 decay — and the clock
  on a qubit starts at its first operation, matching the paper's lifetime
  semantics;
* measurement suffers per-qubit readout error.

The backend is also the substrate under the RB/SRB characterization
experiments, which run through :meth:`NoisyBackend.schedule_of` +
:meth:`NoisyBackend.gate_error_rates` with a stabilizer simulator (see
:mod:`repro.rb.executor`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.device.device import Device
from repro.device.topology import normalize_edge
from repro.sim.channels import ReadoutModel, decay_probabilities
from repro.sim.trajectory import NoisyOp, TrajectorySimulator
from repro.transpiler.schedule import Schedule
from repro.transpiler.scheduling import hardware_schedule


@dataclass
class ExecutionResult:
    """Counts plus the schedule the hardware actually ran."""

    counts: Dict[str, int]
    probabilities: np.ndarray
    schedule: Schedule
    measured_qubits: Tuple[int, ...]
    shots: int

    @property
    def duration(self) -> float:
        return self.schedule.makespan()

    def distribution(self) -> Dict[str, float]:
        total = sum(self.counts.values())
        return {bits: c / total for bits, c in self.counts.items()}


class NoisyBackend:
    """Executes circuits against a :class:`~repro.device.device.Device`."""

    def __init__(self, device: Device, day: int = 0, seed: Optional[int] = None):
        self.device = device
        self.day = day
        self._seed = seed if seed is not None else device.seed * 7919 + day

    # ------------------------------------------------------------------
    # timing and error-rate assignment (shared with the RB executor)
    # ------------------------------------------------------------------
    def schedule_of(self, circuit: QuantumCircuit) -> Schedule:
        """Time the circuit exactly as the hardware would."""
        return hardware_schedule(circuit, self.device.calibration(self.day).durations)

    def gate_error_rates(self, schedule: Schedule) -> Dict[int, float]:
        """True error probability of every gate in a schedule.

        Two-qubit gates get their worst conditional rate over actually
        overlapping two-qubit partners; single-qubit gates get the qubit's
        calibrated rate.  Keys are instruction indices.
        """
        cal = self.device.calibration(self.day)
        crosstalk = self.device.crosstalk
        rates: Dict[int, float] = {}
        two_qubit_ops = schedule.two_qubit_ops()
        for op in schedule:
            instr = op.instruction
            if instr.is_directive or instr.is_measure:
                continue
            if instr.is_two_qubit:
                edge = normalize_edge(instr.qubits)
                partners = [
                    normalize_edge(other.instruction.qubits)
                    for other in two_qubit_ops
                    if other.index != op.index and other.overlaps(op)
                ]
                rates[op.index] = crosstalk.worst_conditional_error(
                    edge, partners, cal, self.day
                )
            else:
                rates[op.index] = cal.single_qubit_error[instr.qubits[0]]
        return rates

    # ------------------------------------------------------------------
    # lowering to the trajectory simulator
    # ------------------------------------------------------------------
    def lower(self, schedule: Schedule) -> Tuple[List[NoisyOp], Dict[int, int], List[Tuple[int, int]]]:
        """Lower a schedule to noisy events over compacted qubit indices.

        Returns ``(events, qubit_map, measures)`` where ``qubit_map`` maps
        device qubit -> simulator qubit and ``measures`` lists
        ``(clbit, device_qubit)`` pairs.
        """
        cal = self.device.calibration(self.day)
        active = schedule.circuit.active_qubits()
        qubit_map = {q: i for i, q in enumerate(active)}
        rates = self.gate_error_rates(schedule)

        ordered = sorted(
            (op for op in schedule if not op.instruction.is_barrier),
            key=lambda op: (op.start, op.index),
        )
        last_end: Dict[int, float] = {}
        events: List[NoisyOp] = []
        measures: List[Tuple[int, int]] = []
        for op in ordered:
            instr = op.instruction
            # Idle decay since the previous operation on each operand; a
            # qubit's clock starts at its first operation (paper §9.1).
            for q in instr.qubits:
                if q in last_end and op.start > last_end[q] + 1e-9:
                    gamma, p_z = decay_probabilities(
                        op.start - last_end[q], cal.t1[q], cal.t2[q]
                    )
                    events.append(NoisyOp.decay(qubit_map[q], gamma, p_z))
                last_end[q] = op.end
            if instr.is_measure:
                measures.append((instr.clbit, instr.qubits[0]))
                continue
            if instr.name == "delay":
                continue
            events.append(
                NoisyOp.gate(
                    instr.name,
                    tuple(qubit_map[q] for q in instr.qubits),
                    instr.params,
                    error_prob=rates.get(op.index, 0.0),
                )
            )
        measures.sort()
        return events, qubit_map, measures

    # ------------------------------------------------------------------
    def run(self, circuit: QuantumCircuit, shots: int = 1024,
            trajectories: int = 64, readout_error: bool = True,
            seed: Optional[int] = None) -> ExecutionResult:
        """Execute a circuit and return sampled counts (clbit 0 rightmost).

        The circuit is timed by the hardware scheduler (right-aligned,
        barrier-respecting) — the circuit-level ISA path.
        """
        if not any(instr.is_measure for instr in circuit):
            raise ValueError("circuit has no measurements")
        return self.run_schedule(
            self.schedule_of(circuit), shots=shots, trajectories=trajectories,
            readout_error=readout_error, seed=seed,
        )

    def run_schedule(self, schedule: Schedule, shots: int = 1024,
                     trajectories: int = 64, readout_error: bool = True,
                     seed: Optional[int] = None) -> ExecutionResult:
        """Execute an explicitly timed schedule (the pulse-level ISA path).

        Recent IBMQ systems expose OpenPulse-style control (the paper's
        footnote 2); this entry point models it: the caller's start times
        are executed verbatim, with no right-alignment or barrier
        re-scheduling.  Error rates still derive from the schedule's actual
        overlaps.
        """
        if not any(t.instruction.is_measure for t in schedule):
            raise ValueError("schedule has no measurements")
        events, qubit_map, measures = self.lower(schedule)
        measured_device_qubits = tuple(q for _, q in measures)
        measured_sim_qubits = [qubit_map[q] for q in measured_device_qubits]

        sim = TrajectorySimulator(len(qubit_map), seed=seed if seed is not None else self._seed)
        readout = None
        if readout_error:
            cal = self.device.calibration(self.day)
            errs = tuple(cal.readout_error[q] for q in qubit_map)
            readout = ReadoutModel(errs, errs)
        probs = sim.output_distribution(
            events, measured_sim_qubits, trajectories=trajectories, readout=readout
        )
        from repro.sim.channels import distribution_to_counts

        counts = distribution_to_counts(probs, shots, np.random.default_rng(self._seed))
        return ExecutionResult(
            counts=counts,
            probabilities=probs,
            schedule=schedule,
            measured_qubits=measured_device_qubits,
            shots=shots,
        )
