"""The noisy executor — this reproduction's stand-in for IBMQ hardware.

:class:`NoisyBackend` accepts a hardware-compliant circuit (two-qubit gates
on coupling edges, orderings expressed through barriers), times it with the
IBMQ hardware-scheduling model (right-aligned, simultaneous readout), and
executes it with the three noise processes of DESIGN.md §2:

* every two-qubit gate suffers depolarizing noise at its **conditional**
  error rate, determined by which other two-qubit gates actually overlap it
  in the final schedule (ground-truth crosstalk model, max over partners);
* every idle window on an active qubit suffers T1/T2 decay — and the clock
  on a qubit starts at its first operation, matching the paper's lifetime
  semantics;
* measurement suffers per-qubit readout error.

The backend is also the substrate under the RB/SRB characterization
experiments, which run through :meth:`NoisyBackend.schedule_of` +
:meth:`NoisyBackend.gate_error_rates` with a stabilizer simulator (see
:mod:`repro.rb.executor`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.device.device import Device
from repro.device.topology import normalize_edge
from repro.obs.registry import get_registry
from repro.obs.trace import span as obs_span
from repro.parallel import ParallelEngine, SharedPayload, stable_seed_sequence
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.sim.channels import ReadoutModel, decay_probabilities
from repro.sim.trajectory import (
    ENGINE_CODES,
    BatchedTrajectorySimulator,
    NoisyOp,
)
from repro.transpiler.schedule import Schedule
from repro.transpiler.scheduling import hardware_schedule

#: Environment variable selecting the trajectory engine ("batched" or
#: "scalar"); the batched engine is the default.
SIM_ENGINE_ENV = "REPRO_SIM_ENGINE"

#: Smallest and largest trajectory-chunk sizes the planner will emit.
MIN_TRAJECTORY_CHUNK = 16
MAX_TRAJECTORY_CHUNK = 256

#: Amplitude budget per batched chunk: a chunk of ``B`` trajectories on
#: ``n`` qubits evolves a ``B * 2**n`` complex array, so the planner sizes
#: ``B`` to keep that array near ~32 MiB (2**21 amplitudes).
_CHUNK_AMPLITUDE_BUDGET = 1 << 21


def resolve_sim_engine(engine: Optional[str] = None) -> str:
    """Resolve the trajectory engine: explicit argument, then the
    ``REPRO_SIM_ENGINE`` environment variable, then ``"batched"``."""
    if engine is None:
        engine = os.environ.get(SIM_ENGINE_ENV, "").strip() or "batched"
    if engine not in ENGINE_CODES:
        raise ValueError(
            f"unknown sim engine {engine!r}; pick from {sorted(ENGINE_CODES)}"
        )
    return engine


def plan_trajectory_chunks(trajectories: int,
                           num_qubits: int) -> List[Tuple[int, int]]:
    """Deterministic chunk plan: ``[(first_trajectory, count), ...]``.

    Keyed only on ``(trajectories, num_qubits)`` — never the worker count —
    so chunk boundaries, each chunk's per-trajectory seed window, and the
    order-preserving merge are identical whether the chunks run serially
    or across any pool, keeping the output distribution bitwise
    reproducible for every worker count.  The chunk size scales down with
    qubit count to bound the batched engine's ``B * 2**n`` working set,
    and a budget that fits one chunk yields a single-entry plan (which the
    backend runs inline, skipping pool spin-up entirely).
    """
    if trajectories <= 0:
        raise ValueError("need at least one trajectory")
    chunk = max(
        MIN_TRAJECTORY_CHUNK,
        min(MAX_TRAJECTORY_CHUNK, _CHUNK_AMPLITUDE_BUDGET >> num_qubits),
    )
    if trajectories <= chunk:
        return [(0, trajectories)]
    plan = [(start, chunk) for start in range(0, trajectories - chunk + 1, chunk)]
    done = plan[-1][0] + chunk
    if done < trajectories:
        plan.append((done, trajectories - done))
    return plan


def _trajectory_chunk_task(context, item):
    """Accumulate one chunk of trajectories (module-level for pickling).

    ``item`` is a ``(first_trajectory, count)`` window from
    :func:`plan_trajectory_chunks`; the simulator derives each
    trajectory's RNG stream from its global index, so the window's
    contribution is independent of which worker runs it.
    """
    events, measured_sim_qubits, num_qubits, root, engine = context
    start, count = item
    sim = BatchedTrajectorySimulator(num_qubits, seed=root, engine=engine)
    return sim.accumulate(
        events, measured_sim_qubits, count, first_trajectory=start
    )


@dataclass
class ExecutionResult:
    """Counts plus the schedule the hardware actually ran."""

    counts: Dict[str, int]
    probabilities: np.ndarray
    schedule: Schedule
    measured_qubits: Tuple[int, ...]
    shots: int

    @property
    def duration(self) -> float:
        return self.schedule.makespan()

    def distribution(self) -> Dict[str, float]:
        total = sum(self.counts.values())
        return {bits: c / total for bits, c in self.counts.items()}


class NoisyBackend:
    """Executes circuits against a :class:`~repro.device.device.Device`.

    ``faults`` injects simulated job rejections/timeouts at the
    ``"backend.job"`` fault site (raised before any simulation work, like
    a queued hardware job dying); ``retry`` makes :meth:`run` and
    :meth:`run_schedule` resubmit such transient failures with
    deterministic backoff instead of surfacing them.
    """

    def __init__(self, device: Device, day: int = 0, seed: Optional[int] = None,
                 workers: Optional[int] = None,
                 retry: Optional[RetryPolicy] = None,
                 faults: Optional[FaultInjector] = None,
                 sim_engine: Optional[str] = None):
        self.device = device
        self.day = day
        self._seed = seed if seed is not None else device.seed * 7919 + day
        self.workers = workers
        self.retry = retry
        self.faults = faults
        #: Trajectory engine, resolved via :func:`resolve_sim_engine`
        #: (``"batched"`` unless overridden here or by ``REPRO_SIM_ENGINE``).
        self.sim_engine = resolve_sim_engine(sim_engine)
        #: ``parallel.*`` counters accumulated across every run (workers is
        #: a level, not an accumulator).
        self.counters: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # timing and error-rate assignment (shared with the RB executor)
    # ------------------------------------------------------------------
    def schedule_of(self, circuit: QuantumCircuit) -> Schedule:
        """Time the circuit exactly as the hardware would."""
        return hardware_schedule(circuit, self.device.calibration(self.day).durations)

    def gate_error_rates(self, schedule: Schedule) -> Dict[int, float]:
        """True error probability of every gate in a schedule.

        Two-qubit gates get their worst conditional rate over actually
        overlapping two-qubit partners; single-qubit gates get the qubit's
        calibrated rate.  Keys are instruction indices.
        """
        cal = self.device.calibration(self.day)
        crosstalk = self.device.crosstalk
        rates: Dict[int, float] = {}
        two_qubit_ops = schedule.two_qubit_ops()
        for op in schedule:
            instr = op.instruction
            if instr.is_directive or instr.is_measure:
                continue
            if instr.is_two_qubit:
                edge = normalize_edge(instr.qubits)
                partners = [
                    normalize_edge(other.instruction.qubits)
                    for other in two_qubit_ops
                    if other.index != op.index and other.overlaps(op)
                ]
                rates[op.index] = crosstalk.worst_conditional_error(
                    edge, partners, cal, self.day
                )
            else:
                rates[op.index] = cal.single_qubit_error[instr.qubits[0]]
        return rates

    # ------------------------------------------------------------------
    # lowering to the trajectory simulator
    # ------------------------------------------------------------------
    def lower(self, schedule: Schedule) -> Tuple[List[NoisyOp], Dict[int, int], List[Tuple[int, int]]]:
        """Lower a schedule to noisy events over compacted qubit indices.

        Returns ``(events, qubit_map, measures)`` where ``qubit_map`` maps
        device qubit -> simulator qubit and ``measures`` lists
        ``(clbit, device_qubit)`` pairs.
        """
        cal = self.device.calibration(self.day)
        active = schedule.circuit.active_qubits()
        qubit_map = {q: i for i, q in enumerate(active)}
        rates = self.gate_error_rates(schedule)

        ordered = sorted(
            (op for op in schedule if not op.instruction.is_barrier),
            key=lambda op: (op.start, op.index),
        )
        last_end: Dict[int, float] = {}
        events: List[NoisyOp] = []
        measures: List[Tuple[int, int]] = []
        for op in ordered:
            instr = op.instruction
            # Idle decay since the previous operation on each operand; a
            # qubit's clock starts at its first operation (paper §9.1).
            for q in instr.qubits:
                if q in last_end and op.start > last_end[q] + 1e-9:
                    gamma, p_z = decay_probabilities(
                        op.start - last_end[q], cal.t1[q], cal.t2[q]
                    )
                    events.append(NoisyOp.decay(qubit_map[q], gamma, p_z))
                last_end[q] = op.end
            if instr.is_measure:
                measures.append((instr.clbit, instr.qubits[0]))
                continue
            if instr.name == "delay":
                continue
            events.append(
                NoisyOp.gate(
                    instr.name,
                    tuple(qubit_map[q] for q in instr.qubits),
                    instr.params,
                    error_prob=rates.get(op.index, 0.0),
                )
            )
        measures.sort()
        return events, qubit_map, measures

    # ------------------------------------------------------------------
    def run(self, circuit: QuantumCircuit, shots: int = 1024,
            trajectories: int = 64, readout_error: bool = True,
            seed: Optional[int] = None,
            workers: Optional[int] = None) -> ExecutionResult:
        """Execute a circuit and return sampled counts (clbit 0 rightmost).

        The circuit is timed by the hardware scheduler (right-aligned,
        barrier-respecting) — the circuit-level ISA path.  ``workers`` fans
        the trajectory budget over a process pool; the distribution is
        bitwise identical for every worker count.
        """
        if not any(instr.is_measure for instr in circuit):
            raise ValueError("circuit has no measurements")
        return self.run_schedule(
            self.schedule_of(circuit), shots=shots, trajectories=trajectories,
            readout_error=readout_error, seed=seed, workers=workers,
        )

    def run_schedule(self, schedule: Schedule, shots: int = 1024,
                     trajectories: int = 64, readout_error: bool = True,
                     seed: Optional[int] = None,
                     workers: Optional[int] = None) -> ExecutionResult:
        """Execute an explicitly timed schedule (the pulse-level ISA path).

        Recent IBMQ systems expose OpenPulse-style control (the paper's
        footnote 2); this entry point models it: the caller's start times
        are executed verbatim, with no right-alignment or barrier
        re-scheduling.  Error rates still derive from the schedule's actual
        overlaps.

        Trajectories are split by :func:`plan_trajectory_chunks` (keyed on
        budget and qubit count, never worker count), every trajectory's
        RNG stream derives from its global index under a stable root seed,
        and the partial accumulators merge in chunk order — so the
        probabilities do not depend on ``workers``.  A budget that fits
        one chunk runs inline with no pool at all.

        Job submission is the ``"backend.job"`` fault site: an injected
        rejection or timeout raises
        :class:`~repro.resilience.errors.BackendJobError` before any
        simulation work, and a ``retry`` policy resubmits it.  The result
        is identical to an unfaulted run — simulation seeds derive from
        the job's stable identity, never from the attempt number.
        """
        job_key = (self._seed, self.day, shots, trajectories, seed)

        def submit() -> ExecutionResult:
            if self.faults is not None:
                self.faults.check("backend.job", job_key)
            return self._run_schedule_once(
                schedule, shots=shots, trajectories=trajectories,
                readout_error=readout_error, seed=seed, workers=workers,
            )

        if self.retry is not None:
            return self.retry.call(submit, site="backend.job", key=job_key)
        return submit()

    def _run_schedule_once(self, schedule: Schedule, shots: int,
                           trajectories: int, readout_error: bool,
                           seed: Optional[int],
                           workers: Optional[int]) -> ExecutionResult:
        if not any(t.instruction.is_measure for t in schedule):
            raise ValueError("schedule has no measurements")
        if trajectories <= 0:
            raise ValueError("need at least one trajectory")
        events, qubit_map, measures = self.lower(schedule)
        measured_device_qubits = tuple(q for _, q in measures)
        measured_sim_qubits = [qubit_map[q] for q in measured_device_qubits]

        seed_val = seed if seed is not None else self._seed
        plan = plan_trajectory_chunks(trajectories, len(qubit_map))
        root = stable_seed_sequence("backend.trajectories", seed_val)

        registry = get_registry()
        registry.set("sim.engine", float(ENGINE_CODES[self.sim_engine]))
        context = (events, measured_sim_qubits, len(qubit_map), root,
                   self.sim_engine)
        with obs_span("backend.run_schedule") as record:
            record.counters["backend.trajectories"] = float(trajectories)
            record.counters["backend.chunks"] = float(len(plan))
            if len(plan) == 1:
                # A one-chunk plan needs no fan-out: run inline, skipping
                # pool spin-up *and* the serial-fallback probe.
                started = time.perf_counter()
                partials = [_trajectory_chunk_task(context, plan[0])]
                wall = time.perf_counter() - started
                registry.set("parallel.mode", 0.0)
                self.counters["parallel.tasks"] = (
                    self.counters.get("parallel.tasks", 0.0) + 1.0
                )
                self.counters["parallel.wall_seconds"] = (
                    self.counters.get("parallel.wall_seconds", 0.0) + wall
                )
                self.counters["parallel.serial_seconds_estimate"] = (
                    self.counters.get("parallel.serial_seconds_estimate", 0.0)
                    + wall
                )
                self.counters.setdefault("parallel.workers", 1.0)
            else:
                with SharedPayload(
                    context, name="backend.trajectories"
                ) as payload:
                    with ParallelEngine(
                        workers if workers is not None else self.workers,
                        name="backend.trajectories",
                    ) as engine:
                        partials = engine.map(
                            _trajectory_chunk_task, plan, payload,
                        )
                for name, value in engine.counters.items():
                    if name == "parallel.workers":
                        self.counters[name] = value
                    else:
                        self.counters[name] = (
                            self.counters.get(name, 0.0) + value
                        )
            total = np.zeros(2 ** len(measured_sim_qubits))
            for partial in partials:
                total += partial
            probs = total / trajectories
        registry.inc("backend.runs")
        registry.inc("backend.trajectories", trajectories)
        registry.observe("backend.run_seconds", record.seconds)

        readout = None
        if readout_error:
            cal = self.device.calibration(self.day)
            errs = tuple(cal.readout_error[q] for q in qubit_map)
            readout = ReadoutModel(errs, errs)
        if readout is not None:
            probs = readout.restrict(measured_sim_qubits).apply_to_distribution(
                probs, range(len(measured_sim_qubits))
            )
        from repro.sim.channels import distribution_to_counts

        counts = distribution_to_counts(probs, shots, np.random.default_rng(self._seed))
        return ExecutionResult(
            counts=counts,
            probabilities=probs,
            schedule=schedule,
            measured_qubits=measured_device_qubits,
            shots=shots,
        )
