"""Device models standing in for the three 20-qubit IBMQ systems.

The paper runs on real hardware; this package provides the faithful
software substitute (see DESIGN.md §2):

* :mod:`repro.device.topology` — coupling maps and hop distances;
* :mod:`repro.device.calibration` — per-gate error rates, durations,
  T1/T2 and readout errors, as published in IBM's daily calibration data;
* :mod:`repro.device.crosstalk` — the **hidden ground truth**: which 1-hop
  gate pairs interfere, their conditional error rates, and daily drift.
  Compilers never read this directly; they see only what the
  characterization module measures;
* :mod:`repro.device.presets` — Poughkeepsie, Johannesburg, Boeblingen;
* :mod:`repro.device.backend` — the noisy executor that turns a hardware
  schedule into a :class:`~repro.sim.trajectory.NoisyOp` stream, assigning
  each CNOT its conditional error from the *actual* overlaps in the
  schedule.
"""

from repro.device.topology import CouplingMap
from repro.device.calibration import Calibration, GateDurations
from repro.device.crosstalk import CrosstalkModel, CrosstalkPair
from repro.device.device import Device
from repro.device.presets import (
    ibmq_poughkeepsie,
    ibmq_johannesburg,
    ibmq_boeblingen,
    all_devices,
)
from repro.device.backend import NoisyBackend

__all__ = [
    "CouplingMap",
    "Calibration",
    "GateDurations",
    "CrosstalkModel",
    "CrosstalkPair",
    "Device",
    "ibmq_poughkeepsie",
    "ibmq_johannesburg",
    "ibmq_boeblingen",
    "all_devices",
    "NoisyBackend",
]
