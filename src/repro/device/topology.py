"""Qubit connectivity graphs and the hop metric between gates.

A *gate* in the crosstalk analysis is an undirected coupling-map edge (the
hardware CNOT resonator).  The paper's locality result — crosstalk is only
significant between gates "separated by 1 hop" — uses the shortest-path
distance between the two edges' nearest endpoints; this module provides that
metric plus the pair-compatibility predicate the bin-packing optimizer needs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

Edge = Tuple[int, int]


def normalize_edge(edge: Sequence[int]) -> Edge:
    """Canonical (sorted) form of an undirected coupling edge."""
    a, b = edge
    if a == b:
        raise ValueError("self-loop edge")
    return (a, b) if a < b else (b, a)


class CouplingMap:
    """Undirected qubit connectivity graph with cached distance queries."""

    def __init__(self, num_qubits: int, edges: Iterable[Sequence[int]]):
        self.num_qubits = num_qubits
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(num_qubits))
        for edge in edges:
            a, b = normalize_edge(edge)
            if not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise ValueError(f"edge {edge} out of range")
            self.graph.add_edge(a, b)
        if num_qubits > 1 and not nx.is_connected(self.graph):
            raise ValueError("coupling map must be connected")
        self._dist = dict(nx.all_pairs_shortest_path_length(self.graph))

    # ------------------------------------------------------------------
    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All hardware CNOT gates as sorted, canonically ordered edges."""
        return tuple(sorted(normalize_edge(e) for e in self.graph.edges))

    def has_edge(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def neighbors(self, qubit: int) -> Tuple[int, ...]:
        return tuple(sorted(self.graph.neighbors(qubit)))

    def qubit_distance(self, a: int, b: int) -> int:
        return self._dist[a][b]

    def shortest_path(self, a: int, b: int) -> List[int]:
        """A deterministic shortest path (lexicographically smallest)."""
        return min(nx.all_shortest_paths(self.graph, a, b))

    # ------------------------------------------------------------------
    def gate_distance(self, gate_a: Sequence[int], gate_b: Sequence[int]) -> int:
        """Hop distance between two hardware gates (coupling edges).

        Distance 0 means the gates share a qubit (they can never run in
        parallel); distance 1 is "1 hop" in the paper's terminology, the
        range at which crosstalk is significant on these devices.
        """
        a = normalize_edge(gate_a)
        b = normalize_edge(gate_b)
        return min(self._dist[u][v] for u in a for v in b)

    def simultaneous_gate_pairs(self) -> Tuple[FrozenSet[Edge], ...]:
        """Every unordered pair of gates that can be driven in parallel.

        These are the pairs that do not share a qubit — the all-pairs SRB
        campaign of Section 4.2 measures each of them (221 pairs on
        Poughkeepsie).
        """
        edges = self.edges
        pairs = []
        for i, e1 in enumerate(edges):
            for e2 in edges[i + 1:]:
                if self.gate_distance(e1, e2) > 0:
                    pairs.append(frozenset((e1, e2)))
        return tuple(pairs)

    def one_hop_gate_pairs(self) -> Tuple[FrozenSet[Edge], ...]:
        """Gate pairs at exactly 1 hop — Optimization 1's measurement set."""
        return tuple(
            pair for pair in self.simultaneous_gate_pairs()
            if self.gate_distance(*tuple(pair)) == 1
        )

    def pairs_compatible(self, pair_a: Iterable[Edge], pair_b: Iterable[Edge],
                         min_hops: int = 2) -> bool:
        """True when two SRB experiments can share one parallel run.

        Every gate of ``pair_a`` must be at least ``min_hops`` from every
        gate of ``pair_b`` (Optimization 2's bin-compatibility rule).
        """
        return all(
            self.gate_distance(ga, gb) >= min_hops
            for ga in pair_a
            for gb in pair_b
        )


def grid_coupling_map(rows: int, cols: int) -> CouplingMap:
    """A full 2D grid — used by tests and synthetic scaling studies."""
    def qid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((qid(r, c), qid(r, c + 1)))
            if r + 1 < rows:
                edges.append((qid(r, c), qid(r + 1, c)))
    return CouplingMap(rows * cols, edges)


def line_coupling_map(num_qubits: int) -> CouplingMap:
    """A 1D chain — the smallest topology exercising SWAP routing."""
    return CouplingMap(num_qubits, [(i, i + 1) for i in range(num_qubits - 1)])


def heavy_hex_coupling_map(rows: int, cols: int,
                           trim_corners: bool = True) -> CouplingMap:
    """IBM's heavy-hexagon lattice (Falcon/Hummingbird/Eagle topologies).

    ``rows`` horizontal chains of ``cols`` qubits each, joined by *bridge*
    qubits: between rows ``r`` and ``r+1`` a bridge sits at every column
    ``c`` with ``c % 4 == 0`` (``r`` even) or ``c % 4 == 2`` (``r`` odd),
    connecting ``(r, c)`` to ``(r+1, c)``.  The alternating phase gives
    the heavy-hex unit cell: every qubit has degree ≤ 3, two-qubit gates
    sit on low-degree vertices, and spectator crosstalk is confined to
    1-hop neighbourhoods — the regime the paper's locality result relies
    on.

    ``trim_corners`` (default, matching IBM's deployed chips) drops the
    first row's last qubit and the last row's first qubit; neither is a
    bridge anchor (the phase pattern avoids those columns), so the lattice
    stays connected.  Qubits are numbered row-major — each row's chain
    left to right, then the bridges below it — so ids are stable and the
    published sizes come out exactly:

    * ``heavy_hex_coupling_map(5, 11)`` → 65 qubits, 72 edges (Hummingbird,
      e.g. ``ibmq_manhattan``);
    * ``heavy_hex_coupling_map(7, 15)`` → 127 qubits, 144 edges (Eagle,
      e.g. ``ibm_washington``).
    """
    if rows < 2:
        raise ValueError("heavy-hex needs at least 2 rows")
    if cols < 3:
        raise ValueError("heavy-hex needs at least 3 columns")
    if trim_corners and rows % 2 == 0:
        raise ValueError(
            "trim_corners requires an odd row count (even-row lattices "
            "anchor a bridge on the trimmed corner)"
        )
    skipped = {(0, cols - 1), (rows - 1, 0)} if trim_corners else set()

    index: Dict[Tuple[str, int, int], int] = {}
    next_id = 0
    for r in range(rows):
        for c in range(cols):
            if (r, c) in skipped:
                continue
            index[("q", r, c)] = next_id
            next_id += 1
        if r + 1 < rows:
            phase = 0 if r % 2 == 0 else 2
            for c in range(phase, cols, 4):
                index[("b", r, c)] = next_id
                next_id += 1

    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols - 1):
            if (r, c) in skipped or (r, c + 1) in skipped:
                continue
            edges.append((index[("q", r, c)], index[("q", r, c + 1)]))
        if r + 1 < rows:
            phase = 0 if r % 2 == 0 else 2
            for c in range(phase, cols, 4):
                bridge = index[("b", r, c)]
                edges.append((index[("q", r, c)], bridge))
                edges.append((bridge, index[("q", r + 1, c)]))
    return CouplingMap(next_id, edges)
