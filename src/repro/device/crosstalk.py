"""Ground-truth crosstalk model (the role of physics in this reproduction).

On real hardware, crosstalk exists whether or not anyone measures it; the
characterization module (Section 5) estimates it with SRB experiments and
the scheduler consumes those estimates.  Here the same separation holds:

* this module defines what the *hardware does* — conditional error rates
  with daily drift, anchored to the paper's findings (only 1-hop pairs
  interfere; degradation up to 11x; drift up to 2–3x day over day; the set
  of high pairs is stable);
* the compiler side only ever sees SRB *measurements* of it.

Conditional error rates are expressed as multiplicative factors over the
independent rate: ``E(gi|gj) = factor(gi, gj, day) * E(gi)``, capped below
0.45 so the depolarizing channel stays physical.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.device.calibration import Calibration
from repro.device.topology import CouplingMap, Edge, normalize_edge

MAX_CONDITIONAL_ERROR = 0.45


@dataclass(frozen=True)
class CrosstalkPair:
    """One high-crosstalk gate pair with per-direction base factors.

    ``factor_a`` scales the error of ``edge_a`` when ``edge_b`` runs
    simultaneously, and vice versa.  The paper observes factors from ~3x up
    to 11x (CNOT 10,15 going from 1% to 11% on Poughkeepsie).
    """

    edge_a: Edge
    edge_b: Edge
    factor_a: float
    factor_b: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "edge_a", normalize_edge(self.edge_a))
        object.__setattr__(self, "edge_b", normalize_edge(self.edge_b))
        if self.edge_a == self.edge_b:
            raise ValueError("a crosstalk pair needs two distinct gates")
        if self.factor_a < 1.0 or self.factor_b < 1.0:
            raise ValueError("crosstalk cannot reduce error rates")

    @property
    def key(self) -> FrozenSet[Edge]:
        return frozenset((self.edge_a, self.edge_b))

    def factor_on(self, edge: Sequence[int]) -> float:
        edge = normalize_edge(edge)
        if edge == self.edge_a:
            return self.factor_a
        if edge == self.edge_b:
            return self.factor_b
        raise KeyError(f"edge {edge} not in pair {self.key}")


def _stable_drift(seed: int, day: int, tag: str, sigma: float,
                  lo: float, hi: float) -> float:
    """Deterministic log-normal drift factor, clipped to [lo, hi].

    Uses a hash so that every (pair, day) has an independent but
    reproducible draw — the reproduction's stand-in for physical drift.
    """
    digest = hashlib.sha256(f"{seed}|{day}|{tag}".encode()).digest()
    sub_rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
    return float(np.clip(np.exp(sub_rng.normal(0.0, sigma)), lo, hi))


class CrosstalkModel:
    """The device's true (hidden) crosstalk behaviour."""

    def __init__(self, coupling: CouplingMap, pairs: Iterable[CrosstalkPair],
                 seed: int = 0, background_factor: float = 1.15):
        self.coupling = coupling
        self.seed = seed
        #: Mild conditional inflation for 1-hop pairs without strong
        #: crosstalk; keeps SRB measurements from being artificially exact.
        self.background_factor = background_factor
        self._factor_cache: Dict[Tuple[Edge, Edge, int], float] = {}
        self._pairs: Dict[FrozenSet[Edge], CrosstalkPair] = {}
        for pair in pairs:
            if self.coupling.gate_distance(pair.edge_a, pair.edge_b) != 1:
                raise ValueError(
                    f"pair {pair.key} is not at 1 hop; the devices in the "
                    "paper only show nearest-neighbour crosstalk"
                )
            if pair.key in self._pairs:
                raise ValueError(f"duplicate crosstalk pair {pair.key}")
            self._pairs[pair.key] = pair

    # ------------------------------------------------------------------
    @property
    def pairs(self) -> Tuple[CrosstalkPair, ...]:
        return tuple(self._pairs[key] for key in sorted(self._pairs, key=sorted))

    def high_pair_keys(self) -> Tuple[FrozenSet[Edge], ...]:
        return tuple(sorted(self._pairs, key=sorted))

    def is_high_pair(self, edge_a: Sequence[int], edge_b: Sequence[int]) -> bool:
        return frozenset((normalize_edge(edge_a), normalize_edge(edge_b))) in self._pairs

    # ------------------------------------------------------------------
    def conditional_factor(self, edge: Sequence[int], other: Sequence[int],
                           day: int = 0) -> float:
        """True multiplicative factor on ``edge``'s error when ``other``
        runs simultaneously, on calibration day ``day``."""
        edge = normalize_edge(edge)
        other = normalize_edge(other)
        if edge == other:
            raise ValueError("a gate does not overlap itself")
        cache_key = (edge, other, day)
        if cache_key in self._factor_cache:
            return self._factor_cache[cache_key]
        distance = self.coupling.gate_distance(edge, other)
        if distance == 0:
            raise ValueError("gates sharing a qubit cannot run simultaneously")
        if distance >= 2:
            factor = 1.0
        else:
            key = frozenset((edge, other))
            pair = self._pairs.get(key)
            if pair is None:
                factor = self.background_factor
            else:
                tag = f"pair:{sorted(key)}:on:{edge}"
                drift = _stable_drift(self.seed, day, tag,
                                      sigma=0.28, lo=0.5, hi=2.8)
                factor = max(1.0, pair.factor_on(edge) * drift)
        self._factor_cache[cache_key] = factor
        return factor

    def conditional_error(self, edge: Sequence[int], other: Sequence[int],
                          calibration: Calibration, day: int = 0) -> float:
        """True ``E(edge | other)`` for the given day's calibration."""
        edge = normalize_edge(edge)
        base = calibration.cnot_error_of(*edge)
        factor = self.conditional_factor(edge, other, day)
        return min(base * factor, MAX_CONDITIONAL_ERROR)

    def worst_conditional_error(self, edge: Sequence[int],
                                others: Iterable[Sequence[int]],
                                calibration: Calibration, day: int = 0) -> float:
        """``max_j E(edge | g_j)`` over simultaneous gates — the error the
        executor charges when several gates overlap (the paper takes the
        max, having observed no significant triplet effects)."""
        edge = normalize_edge(edge)
        rates = [
            self.conditional_error(edge, other, calibration, day)
            for other in others
        ]
        if not rates:
            return calibration.cnot_error_of(*edge)
        return max(max(rates), calibration.cnot_error_of(*edge))
