"""Daily calibration data: error rates, durations, coherence times.

This mirrors what IBM publishes through its device APIs every day and what
the paper's scheduler consumes directly (Figure 2): independent gate error
rates, gate durations, T1/T2 per qubit, readout error per qubit.  Values are
synthesized within the ranges the paper reports (Section 2.2): CNOT errors
0.5–6.5% averaging ~1.8%, single-qubit errors <0.1%, readout ~4.8%,
coherence 10–100 µs.

All durations are in nanoseconds, coherence times in nanoseconds as well
(so 75 µs is 75_000.0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.gates import Instruction
from repro.device.topology import CouplingMap, Edge, normalize_edge


@dataclass(frozen=True)
class GateDurations:
    """Gate durations in nanoseconds.

    ``cx`` durations vary per edge on real devices; single-qubit gates and
    measurement have device-wide durations.
    """

    single_qubit: float = 50.0
    cx: Mapping[Edge, float] = field(default_factory=dict)
    measurement: float = 3000.0
    default_cx: float = 350.0

    def of(self, instr: Instruction) -> float:
        """Duration of one instruction (barriers and delays are special)."""
        if instr.name == "barrier":
            return 0.0
        if instr.name == "delay":
            return float(instr.params[0])
        if instr.is_measure:
            return self.measurement
        if instr.is_two_qubit:
            edge = normalize_edge(instr.qubits)
            return float(self.cx.get(edge, self.default_cx))
        return self.single_qubit

    def cx_duration(self, a: int, b: int) -> float:
        return float(self.cx.get(normalize_edge((a, b)), self.default_cx))


@dataclass
class Calibration:
    """One day's calibration snapshot for a device.

    Attributes:
        cnot_error: independent error rate ``E(g)`` per coupling edge.
        single_qubit_error: error rate per qubit for 1q gates.
        readout_error: symmetric readout error probability per qubit.
        t1, t2: relaxation / dephasing times per qubit (ns).
        durations: gate durations.
    """

    cnot_error: Dict[Edge, float]
    single_qubit_error: Dict[int, float]
    readout_error: Dict[int, float]
    t1: Dict[int, float]
    t2: Dict[int, float]
    durations: GateDurations

    def __post_init__(self) -> None:
        for edge, err in self.cnot_error.items():
            if not 0.0 <= err <= 1.0:
                raise ValueError(f"cnot error {err} on {edge} outside [0, 1]")
        for q, t1 in self.t1.items():
            t2 = self.t2.get(q, t1)
            if t1 <= 0 or t2 <= 0:
                raise ValueError(f"non-positive coherence time on qubit {q}")

    # ------------------------------------------------------------------
    def cnot_error_of(self, a: int, b: int) -> float:
        edge = normalize_edge((a, b))
        try:
            return self.cnot_error[edge]
        except KeyError:
            raise KeyError(f"no CNOT on edge {edge}") from None

    def coherence_limit(self, qubit: int) -> float:
        """``min(T1, T2)`` — the compute-time budget used by the scheduler
        (Section 7.2, decoherence constraints)."""
        return min(self.t1[qubit], self.t2[qubit])

    def average_cnot_error(self) -> float:
        return float(np.mean(list(self.cnot_error.values())))


def synthesize_calibration(coupling: CouplingMap, seed: int,
                           slow_qubits: Mapping[int, float] = (),
                           cnot_error_range: Tuple[float, float] = (0.005, 0.03),
                           heavy_tail_edges: int = 2) -> Calibration:
    """Generate a plausible daily calibration for ``coupling``.

    ``slow_qubits`` maps qubit -> coherence time (ns) to plant specific
    low-coherence qubits (e.g. Poughkeepsie's qubit 10 at <6 µs, which
    drives the Figure 6 gate-ordering case study).  ``heavy_tail_edges``
    edges get errors up to the paper's 6.5% maximum so that the error
    distribution has the observed spread.
    """
    rng = np.random.default_rng(seed)
    edges = coupling.edges
    lo, hi = cnot_error_range
    cnot_error = {edge: float(rng.uniform(lo, hi)) for edge in edges}
    if heavy_tail_edges and len(edges) > heavy_tail_edges:
        for idx in rng.choice(len(edges), size=heavy_tail_edges, replace=False):
            cnot_error[edges[idx]] = float(rng.uniform(0.04, 0.065))

    single_qubit_error = {
        q: float(rng.uniform(0.0002, 0.001)) for q in range(coupling.num_qubits)
    }
    readout_error = {
        q: float(rng.uniform(0.02, 0.08)) for q in range(coupling.num_qubits)
    }

    t1 = {}
    t2 = {}
    slow = dict(slow_qubits)
    for q in range(coupling.num_qubits):
        if q in slow:
            base = slow[q]
        else:
            # The paper quotes 10-100 us across qubits; the low end is what
            # makes naive serialization expensive (Section 4.3).
            base = float(rng.uniform(15_000.0, 80_000.0))
        t1[q] = base
        # T2 <= 2*T1; many devices sit at or below T2 ~ T1.
        t2[q] = float(base * rng.uniform(0.5, 1.2))
        t2[q] = min(t2[q], 2.0 * t1[q])

    durations = GateDurations(
        single_qubit=50.0,
        cx={edge: float(rng.uniform(200.0, 450.0)) for edge in edges},
        measurement=3000.0,
    )
    return Calibration(
        cnot_error=cnot_error,
        single_qubit_error=single_qubit_error,
        readout_error=readout_error,
        t1=t1,
        t2=t2,
        durations=durations,
    )
