"""The :class:`Device` aggregate: topology + calibration + hidden crosstalk.

A :class:`Device` is what experiments hand around.  It exposes two distinct
surfaces:

* the *compiler-visible* surface — ``calibration(day)`` (what IBM publishes
  daily) and the coupling map;
* the *physics* surface — ``crosstalk`` ground truth, which only the
  :class:`~repro.device.backend.NoisyBackend` (and SRB measurements run
  through it) may consult.

Keeping both on one object is a convenience; the experiment drivers honour
the separation by feeding schedulers exclusively from calibration and
characterization results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.device.calibration import Calibration, synthesize_calibration
from repro.device.crosstalk import CrosstalkModel, _stable_drift
from repro.device.topology import CouplingMap, Edge
from repro.sim.channels import ReadoutModel


class Device:
    """A simulated 20-qubit superconducting device."""

    def __init__(self, name: str, coupling: CouplingMap,
                 base_calibration: Calibration, crosstalk: CrosstalkModel,
                 seed: int = 0):
        self.name = name
        self.coupling = coupling
        self.base_calibration = base_calibration
        self.crosstalk = crosstalk
        self.seed = seed
        self._calibration_cache: Dict[int, Calibration] = {0: base_calibration}

    @property
    def num_qubits(self) -> int:
        return self.coupling.num_qubits

    def __repr__(self) -> str:
        return (
            f"Device({self.name!r}, qubits={self.num_qubits}, "
            f"cnots={len(self.coupling.edges)}, "
            f"crosstalk_pairs={len(self.crosstalk.pairs)})"
        )

    # ------------------------------------------------------------------
    def calibration(self, day: int = 0) -> Calibration:
        """The calibration snapshot for ``day`` (day 0 = base).

        Independent gate errors drift mildly day over day (the paper's
        Figure 4 shows independent rates moving much less than conditional
        ones); coherence times and durations are kept fixed.
        """
        if day not in self._calibration_cache:
            base = self.base_calibration
            cnot_error = {
                edge: min(
                    0.2,
                    err * _stable_drift(self.seed, day, f"indep:{edge}",
                                        sigma=0.12, lo=0.7, hi=1.5),
                )
                for edge, err in base.cnot_error.items()
            }
            self._calibration_cache[day] = Calibration(
                cnot_error=cnot_error,
                single_qubit_error=dict(base.single_qubit_error),
                readout_error=dict(base.readout_error),
                t1=dict(base.t1),
                t2=dict(base.t2),
                durations=base.durations,
            )
        return self._calibration_cache[day]

    def readout_model(self, day: int = 0) -> ReadoutModel:
        cal = self.calibration(day)
        errs = tuple(cal.readout_error[q] for q in range(self.num_qubits))
        return ReadoutModel(errs, errs)

    # ------------------------------------------------------------------
    def true_high_pairs(self) -> Tuple:
        """Ground-truth high-crosstalk pair keys (for evaluation only)."""
        return self.crosstalk.high_pair_keys()
