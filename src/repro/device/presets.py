"""The three 20-qubit IBMQ devices used in the paper's evaluation.

Coupling maps follow the published layouts; the planted crosstalk pairs are
synthetic but anchored to every quantitative fact the paper states (see
DESIGN.md §6):

* Poughkeepsie gets exactly 5 high-crosstalk pairs (Section 5.1), including
  the two pairs named in Figure 4 — (10,15)|(11,12) at the 11x worst case
  and (13,14)|(18,19) — all at 1 hop.
* Poughkeepsie's qubit 10 has <6 µs coherence (~10x below the device
  average), which drives the gate-ordering case study of Figure 6.
* Johannesburg and Boeblingen receive comparable synthetic pair sets (the
  paper does not enumerate theirs); Boeblingen gets the largest set, in
  line with its longer Figure 5c qubit-pair list.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.device.calibration import synthesize_calibration
from repro.device.crosstalk import CrosstalkModel, CrosstalkPair
from repro.device.device import Device
from repro.device.topology import CouplingMap, heavy_hex_coupling_map

# Rows 0-4 / 5-9 / 10-14 / 15-19 with seven vertical links (the published
# Poughkeepsie layout; also used for Johannesburg, whose drawing in the
# paper's Figure 3 is identical).  23 edges -> exactly the paper's 221
# simultaneously-drivable gate pairs.
_POUGHKEEPSIE_EDGES = [
    (0, 1), (1, 2), (2, 3), (3, 4),
    (5, 6), (6, 7), (7, 8), (8, 9),
    (10, 11), (11, 12), (12, 13), (13, 14),
    (15, 16), (16, 17), (17, 18), (18, 19),
    (0, 5), (4, 9), (5, 10), (7, 12), (9, 14), (10, 15), (14, 19),
]

# The Boeblingen/Almaden 20-qubit layout: interleaved vertical rungs.
_BOEBLINGEN_EDGES = [
    (0, 1), (1, 2), (2, 3), (3, 4),
    (5, 6), (6, 7), (7, 8), (8, 9),
    (10, 11), (11, 12), (12, 13), (13, 14),
    (15, 16), (16, 17), (17, 18), (18, 19),
    (1, 6), (3, 8), (5, 10), (7, 12), (9, 14), (11, 16), (13, 18),
]


def ibmq_poughkeepsie() -> Device:
    coupling = CouplingMap(20, _POUGHKEEPSIE_EDGES)
    calibration = synthesize_calibration(
        coupling,
        seed=11,
        slow_qubits={10: 5_800.0},  # the <6 us qubit of Figure 6
    )
    # Match the Figure 4 example: CNOT 10,15 independent error ~1%,
    # conditional ~11% with CNOT 11,12.
    calibration.cnot_error[(10, 15)] = 0.010
    calibration.cnot_error[(11, 12)] = 0.014
    calibration.cnot_error[(13, 14)] = 0.018
    calibration.cnot_error[(18, 19)] = 0.016
    # Five high-crosstalk pairs (Section 5.1), clustered around the middle
    # rows exactly as the paper's experiments imply: (10,15)|(11,12) and
    # (13,14)|(18,19) are the Figure 4 pairs; (5,10)|(11,12) drives the
    # Figure 6 SWAP-path case study; together with (7,12)|(13,14) and
    # (11,12)|(13,14) they make all four Figure 8/9 application regions
    # ([5,10,11,12], [7,12,13,14], [15,10,11,12], [11,12,13,14])
    # crosstalk-prone.
    pairs = [
        CrosstalkPair((10, 15), (11, 12), factor_a=11.0, factor_b=6.0),
        CrosstalkPair((13, 14), (18, 19), factor_a=7.0, factor_b=8.0),
        CrosstalkPair((5, 10), (11, 12), factor_a=6.0, factor_b=5.0),
        CrosstalkPair((7, 12), (13, 14), factor_a=6.0, factor_b=5.0),
        CrosstalkPair((11, 12), (13, 14), factor_a=5.0, factor_b=6.0),
    ]
    crosstalk = CrosstalkModel(coupling, pairs, seed=101)
    return Device("ibmq_poughkeepsie", coupling, calibration, crosstalk, seed=1)


def ibmq_johannesburg() -> Device:
    coupling = CouplingMap(20, _POUGHKEEPSIE_EDGES)
    calibration = synthesize_calibration(coupling, seed=23)
    pairs = [
        CrosstalkPair((0, 1), (2, 3), factor_a=6.0, factor_b=5.0),
        CrosstalkPair((5, 10), (11, 12), factor_a=8.0, factor_b=4.0),
        CrosstalkPair((8, 9), (13, 14), factor_a=5.0, factor_b=7.0),
        CrosstalkPair((6, 7), (8, 9), factor_a=4.0, factor_b=4.0),
        CrosstalkPair((16, 17), (18, 19), factor_a=6.0, factor_b=6.0),
        CrosstalkPair((0, 5), (10, 11), factor_a=5.0, factor_b=5.0),
    ]
    crosstalk = CrosstalkModel(coupling, pairs, seed=202)
    return Device("ibmq_johannesburg", coupling, calibration, crosstalk, seed=2)


def ibmq_boeblingen() -> Device:
    coupling = CouplingMap(20, _BOEBLINGEN_EDGES)
    calibration = synthesize_calibration(coupling, seed=37)
    pairs = [
        CrosstalkPair((1, 6), (7, 8), factor_a=7.0, factor_b=5.0),
        CrosstalkPair((5, 10), (11, 12), factor_a=6.0, factor_b=6.0),
        CrosstalkPair((12, 13), (9, 14), factor_a=5.0, factor_b=8.0),
        CrosstalkPair((15, 16), (17, 18), factor_a=9.0, factor_b=4.0),
        CrosstalkPair((2, 3), (8, 9), factor_a=5.0, factor_b=5.0),
        CrosstalkPair((6, 7), (11, 12), factor_a=4.0, factor_b=6.0),
        CrosstalkPair((13, 14), (18, 19), factor_a=5.0, factor_b=6.0),
    ]
    crosstalk = CrosstalkModel(coupling, pairs, seed=303)
    return Device("ibmq_boeblingen", coupling, calibration, crosstalk, seed=3)


def all_devices() -> Tuple[Device, Device, Device]:
    """The paper's three evaluation systems."""
    return (ibmq_poughkeepsie(), ibmq_johannesburg(), ibmq_boeblingen())


# ----------------------------------------------------------------------
# heavy-hex stress devices (beyond the paper: 65q/127q scheduling scale)
# ----------------------------------------------------------------------
def _spread_crosstalk_pairs(coupling: CouplingMap, count: int,
                            stride: int = 7) -> List[CrosstalkPair]:
    """``count`` planted high-crosstalk pairs spread across the lattice.

    Walks the sorted 1-hop gate-pair list with a fixed stride, keeping
    only pairs whose edges are not yet used, so the planted set is
    deterministic, edge-disjoint, and device-wide rather than clustered.
    Crosstalk factors cycle through paper-plausible magnitudes (4–9x,
    the Figure 3 range).
    """
    one_hop = sorted(
        tuple(sorted(pair)) for pair in coupling.one_hop_gate_pairs()
    )
    factors = ((6.0, 5.0), (8.0, 4.0), (5.0, 7.0), (9.0, 5.0), (4.0, 6.0))
    pairs: List[CrosstalkPair] = []
    used: set = set()
    position = 0
    while len(pairs) < count and position < len(one_hop) * stride:
        edge_a, edge_b = one_hop[position % len(one_hop)]
        position += stride
        if edge_a in used or edge_b in used:
            continue
        fa, fb = factors[len(pairs) % len(factors)]
        pairs.append(CrosstalkPair(edge_a, edge_b, factor_a=fa, factor_b=fb))
        used.add(edge_a)
        used.add(edge_b)
    if len(pairs) < count:  # pragma: no cover - ample pairs at these sizes
        raise ValueError(
            f"could not plant {count} edge-disjoint pairs on this lattice"
        )
    return pairs


def ibm_hummingbird_65q() -> Device:
    """A 65-qubit heavy-hex device (the Hummingbird r2 generation,
    e.g. ``ibmq_manhattan``): 5 rows x 11 columns, 72 coupling edges.

    A scheduling stress target, not a paper evaluation system: 10 planted
    high-crosstalk pairs spread over the lattice give device-scale models
    enough decisions to overflow the exact solver and exercise the
    windowed/portfolio strategies.
    """
    coupling = heavy_hex_coupling_map(5, 11)
    calibration = synthesize_calibration(coupling, seed=65)
    pairs = _spread_crosstalk_pairs(coupling, count=10)
    crosstalk = CrosstalkModel(coupling, pairs, seed=650)
    return Device("ibm_hummingbird_65q", coupling, calibration, crosstalk,
                  seed=65)


def simulated_fleet(count: int = 6, qubits: int = 6,
                    seed: int = 0) -> List[Device]:
    """A fleet of small drifting devices for fleet-scale simulation.

    ``count`` line-topology devices named ``sim00``, ``sim01``, ... —
    deliberately tiny (default 6 qubits) so a multi-day multi-device
    soak stays test-sized.  Each device gets its own stable seed
    (calibration, drift, and crosstalk RNG all derive from the fleet
    seed and the device name), plus one or two planted high-crosstalk
    pairs at factors safely above the 3x detection cut, rotated around
    the line so the fleet's planted sets differ.
    """
    from repro.parallel.seeding import stable_entropy

    if qubits < 4:
        raise ValueError("fleet devices need at least 4 qubits")
    devices: List[Device] = []
    factor_cycle = ((10.0, 8.0), (8.0, 11.0), (9.0, 9.0), (11.0, 7.0))
    for index in range(count):
        name = f"sim{index:02d}"
        device_seed = stable_entropy("fleet.preset", seed, name) % 2 ** 31
        coupling = CouplingMap(qubits, [(q, q + 1) for q in range(qubits - 1)])
        calibration = synthesize_calibration(
            coupling, seed=device_seed % 100_003,
        )
        one_hop = sorted(
            tuple(sorted(pair)) for pair in coupling.one_hop_gate_pairs()
        )
        wanted = 1 + index % 2
        pairs: List[CrosstalkPair] = []
        used: set = set()
        offset = device_seed % len(one_hop)
        for step in range(len(one_hop)):
            edge_a, edge_b = one_hop[(offset + step) % len(one_hop)]
            if edge_a in used or edge_b in used:
                continue
            fa, fb = factor_cycle[(index + len(pairs)) % len(factor_cycle)]
            pairs.append(CrosstalkPair(edge_a, edge_b, factor_a=fa,
                                       factor_b=fb))
            used.update((edge_a, edge_b))
            if len(pairs) == wanted:
                break
        crosstalk = CrosstalkModel(coupling, pairs, seed=device_seed % 9_973)
        devices.append(Device(
            name, coupling, calibration, crosstalk,
            seed=device_seed % 65_521,
        ))
    return devices


def ibm_eagle_127q() -> Device:
    """A 127-qubit heavy-hex device (the Eagle r1 generation,
    e.g. ``ibm_washington``): 7 rows x 15 columns, 144 coupling edges.

    The largest scheduling stress target: 16 planted high-crosstalk pairs
    make supremacy-style workloads produce decision counts far beyond the
    exact limit, so ``strategy="auto"`` must decompose to finish under a
    real ``max_solve_seconds`` budget.
    """
    coupling = heavy_hex_coupling_map(7, 15)
    calibration = synthesize_calibration(coupling, seed=127)
    pairs = _spread_crosstalk_pairs(coupling, count=16)
    crosstalk = CrosstalkModel(coupling, pairs, seed=1270)
    return Device("ibm_eagle_127q", coupling, calibration, crosstalk,
                  seed=127)
