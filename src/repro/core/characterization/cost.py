"""Machine-time cost model for characterization campaigns (Figure 10).

The paper reports that the all-pairs baseline needs 22.6M hardware
executions and over 8 hours of machine time per device — an effective
throughput of roughly 785 executions per second, which we adopt as the
device execution-rate constant.  An *experiment* is one parallel RB run of
100 random sequences x 1024 trials (the random sequences span the RB
lengths); bin-packed experiments measure several units for the price of
one.  Check: ~221 pair experiments x 102,400 executions ≈ 22.6M, the
paper's number.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Converts experiment counts into hardware executions and hours."""

    sequences_per_experiment: int = 100
    trials_per_sequence: int = 1024
    executions_per_second: float = 785.0

    def executions_per_experiment(self) -> int:
        return self.sequences_per_experiment * self.trials_per_sequence

    def executions(self, num_experiments: int) -> int:
        return num_experiments * self.executions_per_experiment()

    def hours(self, num_experiments: int) -> float:
        return self.executions(num_experiments) / self.executions_per_second / 3600.0

    def minutes(self, num_experiments: int) -> float:
        return self.hours(num_experiments) * 60.0


#: The paper's nominal protocol sizing (Section 8.1).
PAPER_COST_MODEL = CostModel()
