"""The characterization output consumed by the scheduler.

A :class:`CrosstalkReport` holds measured independent rates ``E(g)`` and
conditional rates ``E(gi|gj)``.  The paper's Figure 3 criterion classifies
a pair as *high crosstalk* when either direction exceeds three times its
independent rate; the scheduler only creates decision variables for those
pairs (Section 7.2's pruning of ``CanOlp``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

from repro.device.topology import Edge, normalize_edge

ConditionalKey = Tuple[Edge, Edge]  # (target gate, simultaneous gate)


@dataclass
class CrosstalkReport:
    """Measured crosstalk characterization data.

    Attributes:
        independent: measured ``E(g)`` per hardware gate.
        conditional: measured ``E(gi|gj)`` keyed by ``(gi, gj)``.
        high_ratio: the Figure 3 classification threshold (3x).
        day: calibration day the measurements were taken on.
    """

    independent: Dict[Edge, float] = field(default_factory=dict)
    conditional: Dict[ConditionalKey, float] = field(default_factory=dict)
    high_ratio: float = 3.0
    day: int = 0

    # ------------------------------------------------------------------
    def record_independent(self, gate: Sequence[int], error: float) -> None:
        self.independent[normalize_edge(gate)] = float(error)

    def record_conditional(self, gate: Sequence[int], other: Sequence[int],
                           error: float) -> None:
        key = (normalize_edge(gate), normalize_edge(other))
        self.conditional[key] = float(error)

    # ------------------------------------------------------------------
    def independent_error(self, gate: Sequence[int]) -> float:
        edge = normalize_edge(gate)
        try:
            return self.independent[edge]
        except KeyError:
            raise KeyError(f"gate {edge} has no independent measurement") from None

    def conditional_error(self, gate: Sequence[int], other: Sequence[int]) -> float:
        """``E(gate|other)``; falls back to the independent rate when the
        pair was never measured (the compiler's only safe assumption)."""
        key = (normalize_edge(gate), normalize_edge(other))
        if key in self.conditional:
            return self.conditional[key]
        return self.independent_error(gate)

    def ratio(self, gate: Sequence[int], other: Sequence[int]) -> float:
        """Degradation factor ``E(g|other) / E(g)``."""
        return self.conditional_error(gate, other) / max(
            self.independent_error(gate), 1e-9
        )

    # ------------------------------------------------------------------
    def is_high_pair(self, gate_a: Sequence[int], gate_b: Sequence[int]) -> bool:
        """Figure 3 criterion: either direction degrades more than 3x."""
        a, b = normalize_edge(gate_a), normalize_edge(gate_b)
        if (a, b) not in self.conditional and (b, a) not in self.conditional:
            return False
        return (
            self.ratio(a, b) > self.high_ratio
            or self.ratio(b, a) > self.high_ratio
        )

    def high_pairs(self) -> Tuple[FrozenSet[Edge], ...]:
        """All measured pairs classified as high crosstalk."""
        seen = set()
        out = []
        for (a, b) in self.conditional:
            key = frozenset((a, b))
            if key in seen:
                continue
            seen.add(key)
            if self.is_high_pair(a, b):
                out.append(key)
        return tuple(sorted(out, key=sorted))

    def measured_pairs(self) -> Tuple[FrozenSet[Edge], ...]:
        seen = {frozenset(k) for k in self.conditional}
        return tuple(sorted(seen, key=sorted))

    # ------------------------------------------------------------------
    def merged_with(self, other: "CrosstalkReport") -> "CrosstalkReport":
        """Overlay ``other``'s (newer) measurements onto this report.

        Used by the high-pairs-only daily policy: today's re-measurements
        of the known high pairs refresh an older full 1-hop report.
        """
        merged = CrosstalkReport(
            independent=dict(self.independent),
            conditional=dict(self.conditional),
            high_ratio=self.high_ratio,
            day=other.day,
        )
        merged.independent.update(other.independent)
        merged.conditional.update(other.conditional)
        return merged

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize for the daily-workflow use case (save after the full
        campaign, reload for HIGH_ONLY refreshes on later days)."""
        import json

        return json.dumps({
            "day": self.day,
            "high_ratio": self.high_ratio,
            "independent": [
                [list(edge), err] for edge, err in sorted(self.independent.items())
            ],
            "conditional": [
                [list(target), list(other), err]
                for (target, other), err in sorted(self.conditional.items())
            ],
        }, indent=2)

    @classmethod
    def from_json(cls, payload: str) -> "CrosstalkReport":
        import json

        data = json.loads(payload)
        report = cls(high_ratio=data["high_ratio"], day=data["day"])
        for edge, err in data["independent"]:
            report.record_independent(tuple(edge), err)
        for target, other, err in data["conditional"]:
            report.record_conditional(tuple(target), tuple(other), err)
        return report

    def summary(self) -> str:
        lines = [
            f"crosstalk report (day {self.day}): "
            f"{len(self.independent)} gates, "
            f"{len(self.conditional)} conditional measurements"
        ]
        for pair in self.high_pairs():
            a, b = sorted(pair)
            lines.append(
                f"  HIGH {a}|{b}: E(a|b)={self.conditional_error(a, b):.3f} "
                f"({self.ratio(a, b):.1f}x), "
                f"E(b|a)={self.conditional_error(b, a):.3f} "
                f"({self.ratio(b, a):.1f}x)"
            )
        return "\n".join(lines)
