"""Fast crosstalk characterization (Section 5)."""

from repro.core.characterization.report import CrosstalkReport
from repro.core.characterization.binpacking import pack_pairs_first_fit
from repro.core.characterization.campaign import (
    CharacterizationPolicy,
    CharacterizationPlan,
    CharacterizationCampaign,
    CampaignOutcome,
)
from repro.core.characterization.cost import CostModel
from repro.core.characterization.drift import ReportDiff, diff_reports, format_diff

__all__ = [
    "CrosstalkReport",
    "pack_pairs_first_fit",
    "CharacterizationPolicy",
    "CharacterizationPlan",
    "CharacterizationCampaign",
    "CampaignOutcome",
    "CostModel",
    "ReportDiff",
    "diff_reports",
    "format_diff",
]
