"""Randomized first-fit bin packing of SRB experiments (Optimization 2).

Gate pairs whose members are all at least ``min_hops`` (2) apart can be
measured in the same parallel experiment without perturbing each other.
The paper packs pairs with a randomized first-fit heuristic: iterate the
pairs, place each into the first compatible bin, open a new bin when none
fits; repeat under random shuffles and keep the fewest-bins packing.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.device.topology import CouplingMap, Edge

Unit = Tuple[Edge, ...]  # one SRB unit: a gate pair (or single gate)


def _compatible_with_bin(coupling: CouplingMap, unit: Unit,
                         bin_units: Sequence[Unit], min_hops: int) -> bool:
    return all(
        coupling.pairs_compatible(unit, placed, min_hops=min_hops)
        for placed in bin_units
    )


def first_fit(coupling: CouplingMap, units: Sequence[Unit],
              min_hops: int = 2) -> List[List[Unit]]:
    """Single first-fit pass in the given order."""
    bins: List[List[Unit]] = []
    for unit in units:
        for bin_units in bins:
            if _compatible_with_bin(coupling, unit, bin_units, min_hops):
                bin_units.append(unit)
                break
        else:
            bins.append([unit])
    return bins


def pack_pairs_first_fit(coupling: CouplingMap, units: Iterable[Unit],
                         min_hops: int = 2, restarts: int = 20,
                         seed: int = 0) -> List[List[Unit]]:
    """Randomized first-fit: best packing over ``restarts`` shuffles.

    Returns a list of bins; each bin is a list of units that one parallel
    experiment can measure simultaneously.
    """
    units = list(units)
    if not units:
        return []
    if restarts < 1:
        raise ValueError("need at least one restart")
    rng = np.random.default_rng(seed)
    best: Optional[List[List[Unit]]] = None
    order = list(units)
    for attempt in range(restarts):
        if attempt > 0:
            rng.shuffle(order)
        bins = first_fit(coupling, order, min_hops)
        if best is None or len(bins) < len(best):
            best = bins
    return best


def validate_packing(coupling: CouplingMap, bins: Sequence[Sequence[Unit]],
                     min_hops: int = 2) -> bool:
    """Every pair of units within a bin must be mutually compatible."""
    for bin_units in bins:
        for i, a in enumerate(bin_units):
            for b in bin_units[i + 1:]:
                if not coupling.pairs_compatible(a, b, min_hops=min_hops):
                    return False
    return True
