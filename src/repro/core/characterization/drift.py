"""Drift monitoring between characterization reports.

The daily workflow (Optimization 3) re-measures only the known high pairs.
That is safe while the high-pair *set* is stable — the paper observes it
is, but a production deployment should verify rather than assume.  This
module compares two reports and decides when the cheap daily policy is no
longer trustworthy and a full 1-hop campaign should be re-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.core.characterization.report import CrosstalkReport
from repro.device.topology import Edge

PairKey = FrozenSet[Edge]


@dataclass
class ReportDiff:
    """Structured difference between an older and a newer report."""

    appeared: Tuple[PairKey, ...]       #: high in new, not in old
    vanished: Tuple[PairKey, ...]       #: high in old, not in new
    stable: Tuple[PairKey, ...]         #: high in both
    #: max over stable pairs of (new conditional / old conditional), per
    #: direction; empty when nothing is stable
    conditional_drift: Dict[Tuple[Edge, Edge], float] = field(default_factory=dict)

    @property
    def set_stable(self) -> bool:
        return not self.appeared and not self.vanished

    @property
    def max_drift(self) -> float:
        if not self.conditional_drift:
            return 1.0
        return max(
            max(r, 1.0 / r) for r in self.conditional_drift.values()
        )

    def needs_full_recharacterization(self, drift_threshold: float = 3.0) -> bool:
        """True when the cheap daily policy should be abandoned for a full
        1-hop campaign: the high-pair set changed, or a stable pair's
        conditional rate moved by more than ``drift_threshold``x (beyond
        the paper's observed 2-3x envelope)."""
        return (not self.set_stable) or self.max_drift > drift_threshold


def diff_reports(old: CrosstalkReport, new: CrosstalkReport) -> ReportDiff:
    """Compare the high-pair structure and conditional magnitudes."""
    old_high = set(old.high_pairs())
    new_high = set(new.high_pairs())
    stable = tuple(sorted(old_high & new_high, key=sorted))

    drift: Dict[Tuple[Edge, Edge], float] = {}
    for pair in stable:
        a, b = sorted(pair)
        for target, other in ((a, b), (b, a)):
            key = (target, other)
            if key in old.conditional and key in new.conditional:
                old_rate = max(old.conditional[key], 1e-9)
                drift[key] = new.conditional[key] / old_rate
    return ReportDiff(
        appeared=tuple(sorted(new_high - old_high, key=sorted)),
        vanished=tuple(sorted(old_high - new_high, key=sorted)),
        stable=stable,
        conditional_drift=drift,
    )


def format_diff(diff: ReportDiff) -> str:
    lines = ["characterization drift report"]
    lines.append(f"  high-pair set stable: {diff.set_stable}")
    for pair in diff.appeared:
        a, b = sorted(pair)
        lines.append(f"  NEW    {a} | {b}")
    for pair in diff.vanished:
        a, b = sorted(pair)
        lines.append(f"  GONE   {a} | {b}")
    lines.append(f"  max conditional drift on stable pairs: "
                 f"{diff.max_drift:.2f}x")
    lines.append(
        f"  full re-characterization recommended: "
        f"{diff.needs_full_recharacterization()}"
    )
    return "\n".join(lines)
