"""Characterization campaign planning and execution (Section 5).

A campaign plans which SRB experiments to run under one of the paper's four
policies, executes them against a device, and produces the
:class:`~repro.core.characterization.report.CrosstalkReport` the scheduler
consumes.

Policies (each one experiment-count-dominates the next):

* ``ALL_PAIRS`` — SRB on every parallel-drivable gate pair (baseline);
* ``ONE_HOP`` — Optimization 1: only pairs separated by 1 hop;
* ``ONE_HOP_PACKED`` — Optimization 2: 1-hop pairs, bin-packed so mutually
  far pairs share an experiment;
* ``HIGH_ONLY`` — Optimization 3: re-measure only the high-crosstalk pairs
  found by a previous full campaign (packed), merging into the prior
  report.

Resilience (see ``docs/resilience.md``):

* ``retry=`` and ``faults=`` thread a
  :class:`~repro.resilience.retry.RetryPolicy` and
  :class:`~repro.resilience.faults.FaultInjector` into the parallel
  engine, so transient experiment failures re-run deterministically;
* ``checkpoint=`` streams each completed experiment to a
  :class:`~repro.resilience.checkpoint.JsonlCheckpoint` keyed by the
  campaign's content hash — a killed campaign resumed against the same
  checkpoint re-executes only the missing experiments and produces a
  report bitwise-identical to the uninterrupted run;
* ``degradation="partial"`` turns exhausted retries into a *partial*
  report instead of an exception: failed units fall back to the prior
  day's measurement (the paper's Opt 3 reuse semantics) and the outcome's
  :class:`~repro.resilience.degrade.CampaignCoverage` annotates every
  planned unit as fresh, stale, or missing.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.core.characterization.binpacking import Unit, pack_pairs_first_fit
from repro.core.characterization.cost import CostModel, PAPER_COST_MODEL
from repro.core.characterization.report import CrosstalkReport
from repro.device.device import Device
from repro.device.topology import CouplingMap, Edge, normalize_edge
from repro.obs.events import current_run_id, log_event
from repro.obs.live.heartbeat import heartbeat, heartbeat_step
from repro.obs.registry import get_registry
from repro.parallel import ParallelEngine
from repro.parallel.seeding import stable_entropy
from repro.pipeline.trace import PipelineTrace, SpanRecorder
from repro.rb.executor import RBConfig, RBExecutor, normalize_target
from repro.resilience.checkpoint import JsonlCheckpoint
from repro.resilience.degrade import CampaignCoverage, CoverageEntry
from repro.resilience.errors import TaskFailure
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy


class CharacterizationPolicy(enum.Enum):
    ALL_PAIRS = "all_pairs"
    ONE_HOP = "one_hop"
    ONE_HOP_PACKED = "one_hop_packed"
    HIGH_ONLY = "high_only"


@dataclass
class CharacterizationPlan:
    """The experiments a policy schedules.

    ``pair_experiments`` and ``independent_experiments`` are lists of
    experiments; each experiment is a list of units run in parallel (a unit
    is a gate pair for SRB or a single gate for independent RB).
    """

    policy: CharacterizationPolicy
    pair_experiments: List[List[Unit]]
    independent_experiments: List[List[Unit]]

    @property
    def num_experiments(self) -> int:
        return len(self.pair_experiments) + len(self.independent_experiments)

    def units_measured(self) -> int:
        return sum(len(exp) for exp in self.pair_experiments)


@dataclass
class CampaignOutcome:
    """A finished campaign: the report plus its cost accounting.

    ``trace`` reports per-stage wall time and counters (planning,
    independent RB, pair SRB) in the same
    :class:`~repro.pipeline.trace.PipelineTrace` format the compile
    pipeline emits, so campaign cost and compile cost read identically.

    ``coverage`` annotates every planned unit as fresh, stale, or missing
    (all fresh unless the campaign degraded); ``failures`` holds the
    :class:`~repro.resilience.errors.TaskFailure` records of experiments
    that exhausted their retries; ``checkpoint_hits`` counts experiments
    served from a resume checkpoint instead of re-executed.
    """

    plan: CharacterizationPlan
    report: CrosstalkReport
    cost_model: CostModel = field(default_factory=lambda: PAPER_COST_MODEL)
    trace: Optional[PipelineTrace] = None
    coverage: Optional[CampaignCoverage] = None
    failures: Tuple[TaskFailure, ...] = ()
    checkpoint_hits: int = 0

    @property
    def num_experiments(self) -> int:
        return self.plan.num_experiments

    @property
    def machine_hours(self) -> float:
        return self.cost_model.hours(self.num_experiments)

    @property
    def machine_minutes(self) -> float:
        return self.cost_model.minutes(self.num_experiments)

    @property
    def executions(self) -> int:
        return self.cost_model.executions(self.num_experiments)

    @property
    def degraded(self) -> bool:
        """True when any planned unit fell back to stale data or is missing."""
        return self.coverage is not None and not self.coverage.complete

    def scorecard(self, device: Device, name: Optional[str] = None):
        """Score this campaign against the device's hidden ground truth.

        Compares the measured report's high-crosstalk pairs with
        ``device.true_high_pairs()`` (evaluation-only data the compiler
        never sees) and returns a
        :class:`~repro.obs.scorecard.Scorecard` carrying detection
        recall/precision plus the campaign's cost and coverage counts —
        the ``repro.obs.scorecard/v1`` quality record every figure run
        can append to history.
        """
        from repro.obs.events import current_run_id
        from repro.obs.scorecard import campaign_scorecard

        stale = len(self.coverage.stale) if self.coverage is not None else 0
        missing = (len(self.coverage.missing)
                   if self.coverage is not None else 0)
        return campaign_scorecard(
            name or f"campaign[{self.plan.policy.value}]",
            detected_pairs=self.report.high_pairs(),
            truth_pairs=device.true_high_pairs(),
            run_id=current_run_id(),
            experiments=self.num_experiments,
            pairs_measured=self.plan.units_measured(),
            stale_units=stale,
            missing_units=missing,
            extra_metrics={
                "machine_hours": self.machine_hours,
                "failures": float(len(self.failures)),
                "checkpoint_hits": float(self.checkpoint_hits),
            },
        )


def _campaign_experiment_task(context, experiment: List[Unit]):
    """Run one characterization experiment in a (possibly worker) process.

    ``context`` ships the campaign's execution parameters once per worker:
    ``(device, day, rb_config, executor_seed)``.  A fresh
    :class:`~repro.rb.executor.RBExecutor` is built per task; because the
    executor derives every experiment's RNG from a stable key rather than a
    shared stream, the measured rates are identical no matter which process
    (or in which order) the experiment runs.  Returns the per-target error
    rates plus the executor's ``rb.*`` cost counters.
    """
    device, day, config, seed = context
    executor = RBExecutor(device, day=day, config=config, seed=seed)
    result = executor.run_units(experiment)
    rates = {}
    for unit in experiment:
        for gate in unit:
            target = normalize_target(gate)
            rates[target] = result.error_rate(target)
    return rates, executor.counters


def _experiment_key(stage: str, experiment: List[Unit]) -> str:
    """The stable identity of one experiment: its stage plus its units.

    Used both for fault selection / retry jitter in the engine and as the
    checkpoint record key, so a resumed campaign recognizes completed
    experiments by *content*, independent of plan ordering.
    """
    units = [[list(gate) for gate in unit] for unit in experiment]
    return json.dumps([stage, units], separators=(",", ":"))


def _encode_result(value) -> dict:
    """JSON-friendly rendering of an experiment result for the checkpoint."""
    rates, counters = value
    return {
        "rates": [[list(target), rate] for target, rate in sorted(rates.items())],
        "counters": dict(counters),
    }


def _decode_result(record: dict):
    """Inverse of :func:`_encode_result` (exact: JSON floats round-trip)."""
    rates = {tuple(target): rate for target, rate in record["rates"]}
    return rates, dict(record["counters"])


class CharacterizationCampaign:
    """Plans and runs crosstalk characterization on one device.

    ``workers`` fans the independent experiments of each stage over a
    process pool (see :mod:`repro.parallel`); the default of ``None`` defers
    to the ``REPRO_WORKERS`` environment variable, falling back to serial.
    Reports are identical for every worker count.
    """

    def __init__(self, device: Device, rb_config: Optional[RBConfig] = None,
                 seed: int = 0, workers: Optional[int] = None):
        self.device = device
        self.rb_config = rb_config or RBConfig()
        self.seed = seed
        self.workers = workers

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, policy: CharacterizationPolicy,
             prior: Optional[CrosstalkReport] = None) -> CharacterizationPlan:
        coupling = self.device.coupling
        if policy is CharacterizationPolicy.ALL_PAIRS:
            pairs = [tuple(sorted(p)) for p in coupling.simultaneous_gate_pairs()]
            pair_experiments = [[pair] for pair in sorted(pairs)]
            independent = [[(edge,)] for edge in coupling.edges]
        elif policy is CharacterizationPolicy.ONE_HOP:
            pairs = [tuple(sorted(p)) for p in coupling.one_hop_gate_pairs()]
            pair_experiments = [[pair] for pair in sorted(pairs)]
            independent = [[(edge,)] for edge in coupling.edges]
        elif policy is CharacterizationPolicy.ONE_HOP_PACKED:
            pairs = [tuple(sorted(p)) for p in coupling.one_hop_gate_pairs()]
            pair_experiments = pack_pairs_first_fit(
                coupling, sorted(pairs), seed=self.seed
            )
            independent = pack_pairs_first_fit(
                coupling, [(edge,) for edge in coupling.edges], seed=self.seed
            )
        elif policy is CharacterizationPolicy.HIGH_ONLY:
            if prior is None:
                raise ValueError("HIGH_ONLY needs a prior report")
            pairs = [tuple(sorted(p)) for p in prior.high_pairs()]
            pair_experiments = pack_pairs_first_fit(
                coupling, sorted(pairs), seed=self.seed
            )
            # Only the gates involved in high pairs need fresh independent
            # rates; everything else is reused from the prior report.
            edges = sorted({e for pair in pairs for e in pair})
            independent = pack_pairs_first_fit(
                coupling, [(e,) for e in edges], seed=self.seed
            )
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown policy {policy}")
        return CharacterizationPlan(policy, pair_experiments, independent)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def checkpoint_key(self, policy: CharacterizationPolicy,
                       day: int = 0) -> str:
        """The content hash identifying this campaign's checkpoint.

        Derived from the same inputs as the result cache's campaign key
        (device fingerprint, day, seed, RB sizing, policy), so two
        campaigns share a checkpoint exactly when they would produce the
        same measurements.
        """
        from repro.pipeline.cache import campaign_cache_key

        key = campaign_cache_key(
            self.device, day, self.seed, self.rb_config, policy.value
        )
        return f"{stable_entropy('campaign.checkpoint', key):032x}"

    def _open_checkpoint(self, checkpoint, policy: CharacterizationPolicy,
                         day: int, on_mismatch: str) -> Optional[JsonlCheckpoint]:
        if checkpoint is None or isinstance(checkpoint, JsonlCheckpoint):
            return checkpoint
        return JsonlCheckpoint(
            str(checkpoint),
            campaign_key=self.checkpoint_key(policy, day),
            run_id=current_run_id(),
            on_mismatch=on_mismatch,
        )

    def _run_stage(self, engine: ParallelEngine, recorder: SpanRecorder,
                   span_name: str, stage: str, experiments: List[List[Unit]],
                   context, checkpoint: Optional[JsonlCheckpoint],
                   degradation: str) -> List:
        """Execute one campaign stage, resuming from the checkpoint.

        Returns one entry per experiment: ``(rates, counters)`` on success
        or a :class:`TaskFailure` when retries were exhausted under
        ``degradation="partial"``.  Results are placed by plan index, so
        the merge order — and therefore the report — is identical whether
        an experiment ran now, ran before the resume, or ran on a retry.
        """
        with recorder.span(span_name) as span:
            baseline = dict(engine.counters)
            keys = [_experiment_key(stage, exp) for exp in experiments]
            results: List = [None] * len(experiments)
            to_run: List[int] = []
            skipped = 0
            for i, key in enumerate(keys):
                if checkpoint is not None and key in checkpoint:
                    results[i] = _decode_result(checkpoint.get(key))
                    skipped += 1
                else:
                    to_run.append(i)
            if skipped:
                log_event(
                    "resilience.checkpoint.resume", stage=span_name,
                    skipped=skipped, remaining=len(to_run),
                    path=checkpoint.path,
                )
            # Stage progress for the live plane: checkpoint hits count as
            # done immediately; fresh experiments step as they complete.
            beat_source = f"campaign[{stage}]"
            heartbeat(beat_source, stage=span_name, done=skipped,
                      total=len(experiments))
            if to_run:
                run_keys = [keys[i] for i in to_run]

                def on_result(j: int, value) -> None:
                    if checkpoint is not None:
                        checkpoint.append(run_keys[j], _encode_result(value))
                    heartbeat_step(beat_source, "done")

                fresh = engine.map(
                    _campaign_experiment_task,
                    [experiments[i] for i in to_run],
                    context,
                    keys=run_keys,
                    on_result=on_result,
                    return_failures=(degradation == "partial"),
                )
                for j, i in enumerate(to_run):
                    results[i] = fresh[j]
            for value in results:
                if not isinstance(value, TaskFailure):
                    span.add_counters(value[1])
            span.counters.update(engine.counters_since(baseline))
            if skipped:
                span.counters["resilience.checkpoint.hits"] = float(skipped)
        return results

    def run(self, policy: CharacterizationPolicy, day: int = 0,
            prior: Optional[CrosstalkReport] = None,
            cost_model: Optional[CostModel] = None,
            workers: Optional[int] = None, *,
            checkpoint: Union[None, str, JsonlCheckpoint] = None,
            retry: Optional[RetryPolicy] = None,
            faults: Optional[FaultInjector] = None,
            degradation: str = "strict",
            on_mismatch: str = "raise") -> CampaignOutcome:
        from repro.pipeline.cache import device_fingerprint

        if degradation not in ("strict", "partial"):
            raise ValueError("degradation must be 'strict' or 'partial'")
        registry = get_registry()
        fingerprint = device_fingerprint(self.device)
        recorder = SpanRecorder(f"characterize[{policy.value}]")
        recorder.trace.meta.update({
            "device": fingerprint,
            "policy": policy.value,
            "day": day,
        })
        log_event("campaign.start", policy=policy.value, day=day,
                  device=fingerprint)

        with recorder.span("plan") as span:
            plan = self.plan(policy, prior)
            span.counters["campaign.experiments_planned"] = float(
                plan.num_experiments
            )
            span.counters["campaign.pairs_measured"] = float(
                plan.units_measured()
            )
        checkpoint = self._open_checkpoint(checkpoint, policy, day, on_mismatch)
        engine = ParallelEngine(
            workers if workers is not None else self.workers,
            name=f"characterize[{policy.value}]",
            retry=retry,
            faults=faults,
        )
        context = (self.device, day, self.rb_config, self.seed * 65537 + day)
        report = CrosstalkReport(day=day)
        failures: List[TaskFailure] = []
        entries: List[CoverageEntry] = []
        hits_before = checkpoint.hits if checkpoint is not None else 0

        with engine:
            independent_results = self._run_stage(
                engine, recorder, "independent_rb", "independent",
                plan.independent_experiments, context, checkpoint, degradation,
            )
            for experiment, value in zip(plan.independent_experiments,
                                         independent_results):
                if isinstance(value, TaskFailure):
                    failures.append(value)
                    entries.extend(self._degrade_independent(
                        report, experiment, prior,
                    ))
                    continue
                rates, _counters = value
                for unit in experiment:
                    (edge,) = unit
                    report.record_independent(edge, rates[normalize_target(edge)])
                    entries.append(CoverageEntry(
                        "edge", (normalize_edge(edge),), "fresh",
                        source_day=day,
                    ))

            pair_results = self._run_stage(
                engine, recorder, "pair_srb", "pair",
                plan.pair_experiments, context, checkpoint, degradation,
            )
            for experiment, value in zip(plan.pair_experiments, pair_results):
                if isinstance(value, TaskFailure):
                    failures.append(value)
                    entries.extend(self._degrade_pairs(
                        report, experiment, prior,
                    ))
                    continue
                rates, _counters = value
                for unit in experiment:
                    a, b = unit
                    report.record_conditional(a, b, rates[normalize_target(a)])
                    report.record_conditional(b, a, rates[normalize_target(b)])
                    entries.append(CoverageEntry(
                        "pair", (normalize_edge(a), normalize_edge(b)), "fresh",
                        source_day=day,
                    ))

        with recorder.span("merge") as span:
            if policy is CharacterizationPolicy.HIGH_ONLY and prior is not None:
                report = prior.merged_with(report)
                span.counters["campaign.merged_with_prior"] = 1.0

        coverage = CampaignCoverage(tuple(entries))
        checkpoint_hits = (checkpoint.hits - hits_before
                           if checkpoint is not None else 0)
        if not coverage.complete:
            degraded_units = len(coverage.stale) + len(coverage.missing)
            registry.inc("resilience.degraded_pairs", degraded_units)
            log_event(
                "campaign.degraded", policy=policy.value, day=day,
                device=fingerprint, **coverage.summary(),
            )

        trace = recorder.finish()
        registry.inc("campaign.runs")
        registry.inc("campaign.experiments", plan.num_experiments)
        registry.observe("campaign.run_seconds", trace.total_seconds)
        log_event(
            "campaign.end", policy=policy.value, day=day, device=fingerprint,
            experiments=plan.num_experiments,
            pairs_measured=plan.units_measured(),
            seconds=trace.total_seconds,
        )
        return CampaignOutcome(
            plan=plan,
            report=report,
            cost_model=cost_model or PAPER_COST_MODEL,
            trace=trace,
            coverage=coverage,
            failures=tuple(failures),
            checkpoint_hits=checkpoint_hits,
        )

    # ------------------------------------------------------------------
    # graceful degradation (paper Opt 3 reuse semantics)
    # ------------------------------------------------------------------
    @staticmethod
    def _degrade_independent(report: CrosstalkReport,
                             experiment: List[Unit],
                             prior: Optional[CrosstalkReport]
                             ) -> List[CoverageEntry]:
        """Fall back to the prior report for a failed independent-RB
        experiment; every unit becomes ``stale`` or ``missing``."""
        entries = []
        for unit in experiment:
            (edge,) = unit
            edge = normalize_edge(edge)
            if prior is not None and edge in prior.independent:
                report.record_independent(edge, prior.independent[edge])
                entries.append(CoverageEntry(
                    "edge", (edge,), "stale", source_day=prior.day,
                ))
            else:
                entries.append(CoverageEntry("edge", (edge,), "missing"))
        return entries

    @staticmethod
    def _degrade_pairs(report: CrosstalkReport, experiment: List[Unit],
                       prior: Optional[CrosstalkReport]
                       ) -> List[CoverageEntry]:
        """Fall back to the prior report for a failed SRB experiment."""
        entries = []
        for unit in experiment:
            a, b = (normalize_edge(g) for g in unit)
            copied = False
            if prior is not None:
                for key in ((a, b), (b, a)):
                    if key in prior.conditional:
                        report.record_conditional(
                            key[0], key[1], prior.conditional[key],
                        )
                        copied = True
            if copied:
                entries.append(CoverageEntry(
                    "pair", (a, b), "stale", source_day=prior.day,
                ))
            else:
                entries.append(CoverageEntry("pair", (a, b), "missing"))
        return entries
