"""Characterization campaign planning and execution (Section 5).

A campaign plans which SRB experiments to run under one of the paper's four
policies, executes them against a device, and produces the
:class:`~repro.core.characterization.report.CrosstalkReport` the scheduler
consumes.

Policies (each one experiment-count-dominates the next):

* ``ALL_PAIRS`` — SRB on every parallel-drivable gate pair (baseline);
* ``ONE_HOP`` — Optimization 1: only pairs separated by 1 hop;
* ``ONE_HOP_PACKED`` — Optimization 2: 1-hop pairs, bin-packed so mutually
  far pairs share an experiment;
* ``HIGH_ONLY`` — Optimization 3: re-measure only the high-crosstalk pairs
  found by a previous full campaign (packed), merging into the prior
  report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.characterization.binpacking import Unit, pack_pairs_first_fit
from repro.core.characterization.cost import CostModel, PAPER_COST_MODEL
from repro.core.characterization.report import CrosstalkReport
from repro.device.device import Device
from repro.device.topology import CouplingMap, Edge
from repro.obs.events import log_event
from repro.obs.registry import get_registry
from repro.parallel import ParallelEngine
from repro.pipeline.trace import PipelineTrace, SpanRecorder
from repro.rb.executor import RBConfig, RBExecutor, normalize_target


class CharacterizationPolicy(enum.Enum):
    ALL_PAIRS = "all_pairs"
    ONE_HOP = "one_hop"
    ONE_HOP_PACKED = "one_hop_packed"
    HIGH_ONLY = "high_only"


@dataclass
class CharacterizationPlan:
    """The experiments a policy schedules.

    ``pair_experiments`` and ``independent_experiments`` are lists of
    experiments; each experiment is a list of units run in parallel (a unit
    is a gate pair for SRB or a single gate for independent RB).
    """

    policy: CharacterizationPolicy
    pair_experiments: List[List[Unit]]
    independent_experiments: List[List[Unit]]

    @property
    def num_experiments(self) -> int:
        return len(self.pair_experiments) + len(self.independent_experiments)

    def units_measured(self) -> int:
        return sum(len(exp) for exp in self.pair_experiments)


@dataclass
class CampaignOutcome:
    """A finished campaign: the report plus its cost accounting.

    ``trace`` reports per-stage wall time and counters (planning,
    independent RB, pair SRB) in the same
    :class:`~repro.pipeline.trace.PipelineTrace` format the compile
    pipeline emits, so campaign cost and compile cost read identically.
    """

    plan: CharacterizationPlan
    report: CrosstalkReport
    cost_model: CostModel = field(default_factory=lambda: PAPER_COST_MODEL)
    trace: Optional[PipelineTrace] = None

    @property
    def num_experiments(self) -> int:
        return self.plan.num_experiments

    @property
    def machine_hours(self) -> float:
        return self.cost_model.hours(self.num_experiments)

    @property
    def machine_minutes(self) -> float:
        return self.cost_model.minutes(self.num_experiments)

    @property
    def executions(self) -> int:
        return self.cost_model.executions(self.num_experiments)


def _campaign_experiment_task(context, experiment: List[Unit]):
    """Run one characterization experiment in a (possibly worker) process.

    ``context`` ships the campaign's execution parameters once per worker:
    ``(device, day, rb_config, executor_seed)``.  A fresh
    :class:`~repro.rb.executor.RBExecutor` is built per task; because the
    executor derives every experiment's RNG from a stable key rather than a
    shared stream, the measured rates are identical no matter which process
    (or in which order) the experiment runs.  Returns the per-target error
    rates plus the executor's ``rb.*`` cost counters.
    """
    device, day, config, seed = context
    executor = RBExecutor(device, day=day, config=config, seed=seed)
    result = executor.run_units(experiment)
    rates = {}
    for unit in experiment:
        for gate in unit:
            target = normalize_target(gate)
            rates[target] = result.error_rate(target)
    return rates, executor.counters


class CharacterizationCampaign:
    """Plans and runs crosstalk characterization on one device.

    ``workers`` fans the independent experiments of each stage over a
    process pool (see :mod:`repro.parallel`); the default of ``None`` defers
    to the ``REPRO_WORKERS`` environment variable, falling back to serial.
    Reports are identical for every worker count.
    """

    def __init__(self, device: Device, rb_config: Optional[RBConfig] = None,
                 seed: int = 0, workers: Optional[int] = None):
        self.device = device
        self.rb_config = rb_config or RBConfig()
        self.seed = seed
        self.workers = workers

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, policy: CharacterizationPolicy,
             prior: Optional[CrosstalkReport] = None) -> CharacterizationPlan:
        coupling = self.device.coupling
        if policy is CharacterizationPolicy.ALL_PAIRS:
            pairs = [tuple(sorted(p)) for p in coupling.simultaneous_gate_pairs()]
            pair_experiments = [[pair] for pair in sorted(pairs)]
            independent = [[(edge,)] for edge in coupling.edges]
        elif policy is CharacterizationPolicy.ONE_HOP:
            pairs = [tuple(sorted(p)) for p in coupling.one_hop_gate_pairs()]
            pair_experiments = [[pair] for pair in sorted(pairs)]
            independent = [[(edge,)] for edge in coupling.edges]
        elif policy is CharacterizationPolicy.ONE_HOP_PACKED:
            pairs = [tuple(sorted(p)) for p in coupling.one_hop_gate_pairs()]
            pair_experiments = pack_pairs_first_fit(
                coupling, sorted(pairs), seed=self.seed
            )
            independent = pack_pairs_first_fit(
                coupling, [(edge,) for edge in coupling.edges], seed=self.seed
            )
        elif policy is CharacterizationPolicy.HIGH_ONLY:
            if prior is None:
                raise ValueError("HIGH_ONLY needs a prior report")
            pairs = [tuple(sorted(p)) for p in prior.high_pairs()]
            pair_experiments = pack_pairs_first_fit(
                coupling, sorted(pairs), seed=self.seed
            )
            # Only the gates involved in high pairs need fresh independent
            # rates; everything else is reused from the prior report.
            edges = sorted({e for pair in pairs for e in pair})
            independent = pack_pairs_first_fit(
                coupling, [(e,) for e in edges], seed=self.seed
            )
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown policy {policy}")
        return CharacterizationPlan(policy, pair_experiments, independent)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, policy: CharacterizationPolicy, day: int = 0,
            prior: Optional[CrosstalkReport] = None,
            cost_model: Optional[CostModel] = None,
            workers: Optional[int] = None) -> CampaignOutcome:
        from repro.pipeline.cache import device_fingerprint

        registry = get_registry()
        fingerprint = device_fingerprint(self.device)
        recorder = SpanRecorder(f"characterize[{policy.value}]")
        recorder.trace.meta.update({
            "device": fingerprint,
            "policy": policy.value,
            "day": day,
        })
        log_event("campaign.start", policy=policy.value, day=day,
                  device=fingerprint)

        with recorder.span("plan") as span:
            plan = self.plan(policy, prior)
            span.counters["campaign.experiments_planned"] = float(
                plan.num_experiments
            )
            span.counters["campaign.pairs_measured"] = float(
                plan.units_measured()
            )
        engine = ParallelEngine(
            workers if workers is not None else self.workers,
            name=f"characterize[{policy.value}]",
        )
        context = (self.device, day, self.rb_config, self.seed * 65537 + day)
        report = CrosstalkReport(day=day)

        with engine:
            with recorder.span("independent_rb") as span:
                baseline = dict(engine.counters)
                results = engine.map(_campaign_experiment_task,
                                     plan.independent_experiments, context)
                for experiment, (rates, counters) in zip(
                        plan.independent_experiments, results):
                    for unit in experiment:
                        (edge,) = unit
                        report.record_independent(
                            edge, rates[normalize_target(edge)]
                        )
                    span.add_counters(counters)
                span.counters.update(engine.counters_since(baseline))

            with recorder.span("pair_srb") as span:
                baseline = dict(engine.counters)
                results = engine.map(_campaign_experiment_task,
                                     plan.pair_experiments, context)
                for experiment, (rates, counters) in zip(
                        plan.pair_experiments, results):
                    for unit in experiment:
                        a, b = unit
                        report.record_conditional(
                            a, b, rates[normalize_target(a)]
                        )
                        report.record_conditional(
                            b, a, rates[normalize_target(b)]
                        )
                    span.add_counters(counters)
                span.counters.update(engine.counters_since(baseline))

        with recorder.span("merge") as span:
            if policy is CharacterizationPolicy.HIGH_ONLY and prior is not None:
                report = prior.merged_with(report)
                span.counters["campaign.merged_with_prior"] = 1.0

        trace = recorder.finish()
        registry.inc("campaign.runs")
        registry.inc("campaign.experiments", plan.num_experiments)
        registry.observe("campaign.run_seconds", trace.total_seconds)
        log_event(
            "campaign.end", policy=policy.value, day=day, device=fingerprint,
            experiments=plan.num_experiments,
            pairs_measured=plan.units_measured(),
            seconds=trace.total_seconds,
        )
        return CampaignOutcome(
            plan=plan,
            report=report,
            cost_model=cost_model or PAPER_COST_MODEL,
            trace=trace,
        )
