"""``XtalkSched``: the crosstalk-adaptive instruction scheduler.

Implements the optimization of Section 7 on top of
:mod:`repro.smt`:

* a start-time variable per gate (all readouts share one variable —
  the IBMQ simultaneous-readout constraint);
* data-dependency difference constraints (eq. 1);
* one categorical decision per *candidate pair* — two-qubit gates that are
  DAG-concurrent and whose edges the characterization report classifies as
  high crosstalk (the pruning of ``CanOlp`` described in Section 7.2) —
  with options {gi first, gj first, overlap-with-containment}, covering
  the IBMQ-valid disjunction (eqs. 11–13);
* gate-error terms ``ω Σ log g.ε`` where ``g.ε`` is the max conditional
  rate over partners decided to overlap (the powerset constraints (3)–(8)
  collapse to this max once the overlap indicators are decided);
* decoherence terms ``(1-ω) Σ q.t / q.T`` with ``q.t`` the first-gate to
  last-operation lifetime (eqs. 9–10, linearized as in eq. 16).

Note on the objective's sign (documented in DESIGN.md): the paper prints
``min ω Σ log g.ε − (1-ω) Σ q.t/q.T`` (eq. 17), which would *reward* long
lifetimes and contradicts the stated ω=0 ≡ ParSched behaviour; we implement
the evidently intended ``+``.

The solver's optimal start times are then realized with barriers
(:func:`repro.transpiler.barriers.reorder_and_barrier`) and the result is
re-timed by the hardware's right-aligned scheduler at execution.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import CircuitDag
from repro.core.characterization.report import CrosstalkReport
from repro.device.calibration import Calibration
from repro.device.topology import normalize_edge
from repro.smt.budget import Budget
from repro.smt.model import Decision, DiffConstraint, Option, ScheduleModel
from repro.smt.portfolio import PortfolioSolver
from repro.smt.solver import OptimizingSolver, Solution
from repro.smt.windows import WindowedSolver
from repro.transpiler.barriers import reorder_and_barrier, strip_barriers
from repro.transpiler.schedule import Schedule

_MIN_ERROR = 1e-6
_OVERLAP = "overlap"

#: Valid ``strategy=`` values for :class:`XtalkScheduler`.
STRATEGIES = ("auto", "monolithic", "windowed", "portfolio")

#: ``schedule.strategy`` gauge encoding (the *resolved* strategy — auto
#: reports as whichever mode it picked).
STRATEGY_CODES = {"monolithic": 0, "windowed": 1, "portfolio": 2}


@dataclass
class CandidatePair:
    """One high-crosstalk decision pair."""

    gate_i: int
    gate_j: int
    conditional_i: float  # E(gi | gj)
    conditional_j: float  # E(gj | gi)


class XtalkPartialCost:
    """The ω Σ log g.ε objective part, monotone in overlap decisions.

    A module-level callable class (not a closure) so solve requests
    carrying it pickle cleanly into portfolio pool workers.  It holds only
    plain floats extracted from the calibration/report at build time — no
    reference back to the scheduler.
    """

    def __init__(self, omega: float, base: float,
                 independent: Dict[int, float],
                 pairs: Tuple[CandidatePair, ...]):
        self.omega = omega
        self.base = base
        self.independent = independent
        self.pairs = pairs

    def __call__(self, assignment: Tuple[int, ...]) -> float:
        if self.omega == 0.0:
            return 0.0
        eps = dict(self.independent)
        for k, choice in enumerate(assignment):
            if choice == 2:  # overlap option index
                pair = self.pairs[k]
                eps[pair.gate_i] = max(eps[pair.gate_i], pair.conditional_i)
                eps[pair.gate_j] = max(eps[pair.gate_j], pair.conditional_j)
        return self.base + self.omega * sum(
            math.log(max(e, _MIN_ERROR)) for e in eps.values()
        )


@dataclass
class ScheduledCircuit:
    """XtalkSched output: the barriered circuit plus solver artifacts.

    ``fallback_reason`` is ``None`` for a normal solve; otherwise it names
    why the scheduler degraded (``"solve_budget:incumbent"`` — the solver
    budget expired and the incumbent was kept; ``"solve_budget:par"`` —
    the budget expired and the circuit was submitted ParSched-style;
    ``"solver_error:<Type>"`` — the solver raised and ParSched was used).
    The circuit is valid and submittable in every case.
    """

    circuit: QuantumCircuit
    intended_schedule: Schedule
    solution: Solution
    candidate_pairs: Tuple[CandidatePair, ...]
    option_labels: Tuple[str, ...]
    compile_seconds: float
    fallback_reason: Optional[str] = None
    #: The *resolved* solve strategy ("monolithic", "windowed", or
    #: "portfolio" — ``strategy="auto"`` reports whichever it picked).
    strategy: str = "monolithic"

    def warm_start_hint(self) -> Dict[str, str]:
        """This schedule as a warm-start hint for the next epoch's solve.

        Maps decision names (``pair_{i}_{j}``) to the option labels this
        schedule chose; feed it to ``XtalkScheduler(warm_start=...)`` when
        re-scheduling the same circuit against refreshed calibration data
        so local search and the portfolio's warm entrants start from it.
        """
        return {
            f"pair_{pair.gate_i}_{pair.gate_j}": label
            for pair, label in zip(self.candidate_pairs, self.option_labels)
        }

    @property
    def serialized_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """Candidate pairs the solver chose to serialize (not overlap)."""
        return tuple(
            (pair.gate_i, pair.gate_j)
            for pair, label in zip(self.candidate_pairs, self.option_labels)
            if label != _OVERLAP
        )

    @property
    def overlapped_pairs(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(
            (pair.gate_i, pair.gate_j)
            for pair, label in zip(self.candidate_pairs, self.option_labels)
            if label == _OVERLAP
        )

    def audit(self) -> Dict[str, int]:
        """Decision-audit counts: what the solver was offered vs. took.

        ``warranted`` is the number of candidate pairs (DAG-concurrent,
        high-crosstalk — serialization was on the table), ``taken`` how
        many the solver actually serialized, ``overlapped`` the rest, and
        ``fallbacks`` whether this schedule degraded.  These counts feed
        the ``schedule.*`` counters and the scheduler scorecard, so a
        solver that silently stops serializing shows up in run diffs.
        """
        return {
            "warranted": len(self.candidate_pairs),
            "taken": len(self.serialized_pairs),
            "overlapped": len(self.overlapped_pairs),
            "fallbacks": 1 if self.fallback_reason is not None else 0,
        }

    def audit_scorecard(self, name: str = "xtalk_sched"):
        """This schedule's audit as a ``repro.obs.scorecard/v1`` record."""
        from repro.obs.events import current_run_id
        from repro.obs.scorecard import schedule_audit_scorecard

        counts = self.audit()
        return schedule_audit_scorecard(
            name,
            serializations_taken=counts["taken"],
            serializations_warranted=counts["warranted"],
            fallbacks=counts["fallbacks"],
            run_id=current_run_id(),
            strategy=self.strategy,
        )


class XtalkScheduler:
    """Builds and solves the Section 7 model for one circuit."""

    def __init__(self, calibration: Calibration, report: CrosstalkReport,
                 omega: float = 0.5, exact_decision_limit: int = 14,
                 max_nodes: int = 200_000, time_limit: Optional[float] = None,
                 minimal_barriers: bool = True, isa: str = "barrier",
                 max_solve_seconds: Optional[float] = None,
                 fallback: str = "incumbent",
                 strategy: str = "auto",
                 warm_start: Optional[Union[Mapping[str, str],
                                            "ScheduledCircuit"]] = None,
                 portfolio_workers: Optional[int] = None):
        if not 0.0 <= omega <= 1.0:
            raise ValueError("omega must be in [0, 1]")
        if isa not in ("barrier", "pulse"):
            raise ValueError("isa must be 'barrier' or 'pulse'")
        if fallback not in ("incumbent", "par"):
            raise ValueError("fallback must be 'incumbent' or 'par'")
        if strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}"
            )
        self.calibration = calibration
        self.report = report
        self.omega = omega
        self.exact_decision_limit = exact_decision_limit
        self.max_nodes = max_nodes
        self.time_limit = time_limit
        #: Solve-time budget in seconds.  When the solver exhausts it, the
        #: scheduler degrades instead of running arbitrarily long: with
        #: ``fallback="incumbent"`` (default) it realizes the solver's
        #: best-so-far valid schedule; with ``fallback="par"`` it submits
        #: the circuit unchanged (ParSched).  Either way the fallback is
        #: counted (``resilience.fallbacks``) and logged
        #: (``resilience.fallback``) rather than raised.
        self.max_solve_seconds = max_solve_seconds
        self.fallback = fallback
        #: How the model is solved.  ``"monolithic"`` is the historical
        #: single-model solve (exact below ``exact_decision_limit``
        #: decisions, greedy above); ``"windowed"`` decomposes the
        #: decision list into budget-shared exact windows
        #: (:class:`~repro.smt.windows.WindowedSolver`); ``"portfolio"``
        #: races backends (:class:`~repro.smt.portfolio.PortfolioSolver`);
        #: ``"auto"`` (default) stays monolithic within the exact limit
        #: and switches to windowed above it.
        self.strategy = strategy
        #: Warm start for the solve: a mapping of decision name to option
        #: label, or a previous :class:`ScheduledCircuit` (typically the
        #: same circuit scheduled against the previous calibration epoch),
        #: whose choices seed local search and the portfolio's warm
        #: entrants.
        self.warm_start = warm_start
        #: Worker cap for the portfolio race (None: ``REPRO_WORKERS``).
        self.portfolio_workers = portfolio_workers
        #: True (default): iterative realization that only barriers pairs
        #: still overlapping under the hardware re-schedule.  False: one
        #: barrier per serialized pair (the naive realization; kept for the
        #: ablation study — it over-constrains barrier-granularity hardware).
        self.minimal_barriers = minimal_barriers
        #: ``"barrier"`` (default): circuit-level ISA — overlapping gates
        #: must fully contain one another (eqs. 11-13) and the solved
        #: schedule is enforced with barriers, then re-timed by the
        #: hardware.  ``"pulse"``: OpenPulse-style control (footnote 2 of
        #: the paper) — overlap is unconstrained, no barriers are emitted,
        #: and the intended schedule executes verbatim via
        #: :meth:`NoisyBackend.run_schedule`.
        self.isa = isa

    # ------------------------------------------------------------------
    def schedule(self, circuit: QuantumCircuit) -> ScheduledCircuit:
        """Schedule a hardware-compliant circuit; returns the barriered
        circuit ready for submission plus the intended schedule."""
        started = time.perf_counter()
        circuit = strip_barriers(circuit)
        dag = CircuitDag(circuit)
        durations = self.calibration.durations

        var_of, num_vars, measure_var = self._assign_variables(circuit)
        model = ScheduleModel(num_vars)
        self._add_dependency_constraints(model, circuit, dag, var_of, durations)
        pairs = self._candidate_pairs(circuit, dag)
        self._add_decisions(model, circuit, pairs, var_of, durations)
        self._add_decoherence_objective(model, circuit, dag, var_of, durations)
        cost_fn = self._make_partial_cost(circuit, pairs)

        # One Budget owns the clock for every layer of the solve — the
        # façade, nested incumbents, windows, and portfolio entrants all
        # share it via first-caller-wins arming, so the effective limit
        # can never be extended by nesting.  ``max_solve_seconds`` (the
        # resilience budget) wins over the legacy ``time_limit``.
        effective_limit = (self.max_solve_seconds
                          if self.max_solve_seconds is not None
                          else self.time_limit)
        budget = Budget(effective_limit)
        resolved, backend = self._select_backend(model)
        solver = OptimizingSolver(
            model, cost_fn,
            exact_decision_limit=self.exact_decision_limit,
            max_nodes=self.max_nodes,
            budget=budget,
            backend=backend,
            hint=self._warm_hint(),
        )
        fallback_reason: Optional[str] = None
        try:
            solution = solver.solve()
        except Exception as error:
            reason = f"solver_error:{type(error).__name__}"
            self._note_fallback(reason, pairs)
            return self._record_audit(
                self._par_fallback(circuit, pairs, started, reason,
                                   strategy=resolved)
            )
        if (solution.interrupt == "deadline"
                and self.max_solve_seconds is not None):
            fallback_reason = f"solve_budget:{self.fallback}"
            self._note_fallback(fallback_reason, pairs)
            if self.fallback == "par":
                return self._record_audit(self._par_fallback(
                    circuit, pairs, started, fallback_reason,
                    strategy=resolved,
                ))
            # fallback == "incumbent": the interrupted solution is still a
            # valid schedule (every constraint holds); realize it.

        starts = [solution.times[var_of[idx]] for idx in range(len(circuit))]
        intended = Schedule(circuit, durations, starts)
        order = sorted(range(len(circuit)), key=lambda idx: (starts[idx], idx))
        labels = tuple(
            model.decisions[k].options[choice].label
            for k, choice in enumerate(solution.assignment)
        )
        serialized = [
            (pair.gate_i, pair.gate_j)
            for pair, label in zip(pairs, labels)
            if label != _OVERLAP
        ]
        if self.isa == "pulse":
            # Pulse-level control executes the intended times verbatim; the
            # reordered circuit is returned for inspection only.
            final = reorder_and_barrier(circuit, order, [])
        elif self.minimal_barriers:
            final = self._realize_with_barriers(circuit, order, serialized)
        else:
            final = reorder_and_barrier(circuit, order, serialized)
        final.name = f"{circuit.name}_xtalk"

        return self._record_audit(ScheduledCircuit(
            circuit=final,
            intended_schedule=intended,
            solution=solution,
            candidate_pairs=tuple(pairs),
            option_labels=labels,
            compile_seconds=time.perf_counter() - started,
            fallback_reason=fallback_reason,
            strategy=resolved,
        ))

    # ------------------------------------------------------------------
    # strategy resolution
    # ------------------------------------------------------------------
    def _select_backend(self, model: ScheduleModel):
        """Resolve the strategy knob against the built model.

        Returns ``(resolved_name, backend)`` where ``backend`` is None for
        the monolithic path (the façade's historical exact/greedy
        auto-switch).  ``"auto"`` stays monolithic while the model is
        within the exact-decision limit — identical to the historical
        behavior — and switches to windowed decomposition above it, where
        monolithic would have silently degraded to a pure greedy dive.
        """
        if self.strategy == "monolithic":
            return "monolithic", None
        if self.strategy == "windowed":
            return "windowed", WindowedSolver(cap=self.exact_decision_limit)
        if self.strategy == "portfolio":
            return "portfolio", PortfolioSolver(
                workers=self.portfolio_workers,
                window_cap=self.exact_decision_limit,
            )
        # auto
        if len(model.decisions) <= self.exact_decision_limit:
            return "monolithic", None
        return "windowed", WindowedSolver(cap=self.exact_decision_limit)

    def _warm_hint(self) -> Optional[Mapping[str, str]]:
        """The warm start normalized to a decision-name -> label mapping."""
        if self.warm_start is None:
            return None
        if isinstance(self.warm_start, ScheduledCircuit):
            return self.warm_start.warm_start_hint()
        return dict(self.warm_start)

    # ------------------------------------------------------------------
    # decision audit
    # ------------------------------------------------------------------
    def _record_audit(self, scheduled: ScheduledCircuit) -> ScheduledCircuit:
        """Record the schedule's decision audit in the telemetry spine.

        Counters ``schedule.pairs_candidate`` / ``schedule.pairs_serialized``
        accumulate serializations warranted vs. taken across every schedule
        of the run, and a ``schedule.audit`` event carries the per-circuit
        counts — the raw material of the scheduler scorecard.
        """
        from repro.obs.events import log_event
        from repro.obs.registry import get_registry

        counts = scheduled.audit()
        registry = get_registry()
        registry.inc("schedule.pairs_candidate", counts["warranted"])
        registry.inc("schedule.pairs_serialized", counts["taken"])
        registry.set(
            "schedule.strategy",
            STRATEGY_CODES.get(scheduled.strategy, -1),
        )
        log_event(
            "schedule.audit", component="xtalk_sched",
            fallback_reason=scheduled.fallback_reason,
            strategy=scheduled.strategy, **counts,
        )
        return scheduled

    # ------------------------------------------------------------------
    # graceful degradation
    # ------------------------------------------------------------------
    def _note_fallback(self, reason: str, pairs: Sequence[CandidatePair]) -> None:
        from repro.obs.events import log_event
        from repro.obs.registry import get_registry

        get_registry().inc("resilience.fallbacks")
        log_event(
            "resilience.fallback", component="xtalk_sched", reason=reason,
            candidate_pairs=len(pairs),
            budget_seconds=self.max_solve_seconds,
        )

    def _par_fallback(self, circuit: QuantumCircuit,
                      pairs: Sequence[CandidatePair], started: float,
                      reason: str,
                      strategy: str = "monolithic") -> ScheduledCircuit:
        """ParSched degradation: submit the circuit unchanged.

        Every candidate pair is labeled ``overlap`` (maximum parallelism
        accepts all conditional rates), the intended schedule is the
        hardware's own right-aligned timing, and the trivial
        :class:`Solution` is marked inexact with zero nodes explored.
        """
        from repro.transpiler.scheduling import hardware_schedule

        final = circuit.copy(name=f"{circuit.name}_xtalk")
        intended = hardware_schedule(final, self.calibration.durations)
        solution = Solution(
            assignment=tuple(2 for _ in pairs),
            times=(),
            objective=float("nan"),
            constant_part=0.0,
            linear_part=0.0,
            nodes_explored=0,
            exact=False,
            interrupt="fallback",
        )
        return ScheduledCircuit(
            circuit=final,
            intended_schedule=intended,
            solution=solution,
            candidate_pairs=tuple(pairs),
            option_labels=tuple(_OVERLAP for _ in pairs),
            compile_seconds=time.perf_counter() - started,
            fallback_reason=reason,
            strategy=strategy,
        )

    # ------------------------------------------------------------------
    def _realize_with_barriers(self, circuit: QuantumCircuit,
                               order: Sequence[int],
                               serialized: Sequence[Tuple[int, int]]) -> QuantumCircuit:
        """Enforce the solved schedule with the fewest barriers that work.

        A barrier for every serialized pair would over-constrain the
        hardware's right-aligned re-schedule (barriers span whole qubit
        sets, so they are much blunter than the solver's difference
        constraints).  Instead, barriers are added iteratively: re-time the
        circuit as the hardware would, and only barrier the serialized
        pairs that still overlap.  Each round adds at least one barrier, so
        the loop terminates within ``len(serialized)`` rounds.
        """
        from repro.transpiler.barriers import reorder_with_barriers
        from repro.transpiler.scheduling import hardware_schedule

        active: set = set()
        durations = self.calibration.durations
        for _ in range(len(serialized) + 1):
            final, positions = reorder_with_barriers(circuit, order, sorted(active))
            hw = hardware_schedule(final, durations)
            violations = [
                (i, j) for (i, j) in serialized
                if (i, j) not in active
                and hw[positions[i]].overlaps(hw[positions[j]])
            ]
            if not violations:
                return final
            active.update(violations)
        return final  # pragma: no cover - loop always converges earlier

    # ------------------------------------------------------------------
    def _assign_variables(self, circuit: QuantumCircuit) -> Tuple[List[int], int, Optional[int]]:
        """One var per instruction; all measures share a single variable."""
        var_of: List[int] = [-1] * len(circuit)
        next_var = 0
        measure_var: Optional[int] = None
        for idx, instr in enumerate(circuit):
            if instr.is_measure:
                if measure_var is None:
                    measure_var = next_var
                    next_var += 1
                var_of[idx] = measure_var
            else:
                var_of[idx] = next_var
                next_var += 1
        return var_of, next_var, measure_var

    def _add_dependency_constraints(self, model: ScheduleModel,
                                    circuit: QuantumCircuit, dag: CircuitDag,
                                    var_of: Sequence[int], durations) -> None:
        for u, v in dag.graph.edges:
            if var_of[u] == var_of[v]:
                continue  # measure-to-measure through the shared variable
            model.add_constraint(
                DiffConstraint.after(var_of[v], var_of[u], durations.of(circuit[u]))
            )

    # ------------------------------------------------------------------
    def _candidate_pairs(self, circuit: QuantumCircuit,
                         dag: CircuitDag) -> List[CandidatePair]:
        """High-crosstalk, DAG-concurrent two-qubit gate pairs.

        At ω = 0 the objective has no gate-error term, so no serialization
        can ever pay off; the model then has no decisions and XtalkSched
        degenerates to ParSched exactly (Table 1's equivalence).
        """
        if self.omega == 0.0:
            return []
        two_q = dag.two_qubit_gate_indices()
        pairs: List[CandidatePair] = []
        for a_pos, i in enumerate(two_q):
            edge_i = normalize_edge(circuit[i].qubits)
            for j in two_q[a_pos + 1:]:
                edge_j = normalize_edge(circuit[j].qubits)
                if edge_i == edge_j:
                    continue
                # Cheap dictionary test first: at device scale most edge
                # pairs are not high-crosstalk, and ``dag.concurrent``
                # walks cached ancestor/descendant sets.
                if not self.report.is_high_pair(edge_i, edge_j):
                    continue
                if not dag.concurrent(i, j):
                    continue
                pairs.append(
                    CandidatePair(
                        gate_i=i,
                        gate_j=j,
                        conditional_i=self.report.conditional_error(edge_i, edge_j),
                        conditional_j=self.report.conditional_error(edge_j, edge_i),
                    )
                )
        return pairs

    def _add_decisions(self, model: ScheduleModel, circuit: QuantumCircuit,
                       pairs: Sequence[CandidatePair], var_of: Sequence[int],
                       durations) -> None:
        for pair in pairs:
            i, j = pair.gate_i, pair.gate_j
            vi, vj = var_of[i], var_of[j]
            di, dj = durations.of(circuit[i]), durations.of(circuit[j])
            if self.isa == "pulse":
                # Pulse-level control allows arbitrary partial overlap;
                # choosing "overlap" just accepts the conditional rate.
                overlap_constraints: Tuple[DiffConstraint, ...] = ()
            else:
                # Circuit-level ISA: overlapping gates must fully contain
                # one another (the shorter inside the longer, eqs. 11-13).
                if di <= dj:
                    short_v, long_v, short_d, long_d = vi, vj, di, dj
                else:
                    short_v, long_v, short_d, long_d = vj, vi, dj, di
                overlap_constraints = (
                    DiffConstraint.after(short_v, long_v, 0.0),
                    DiffConstraint(long_v, short_v, short_d - long_d),
                )
            options = (
                Option(f"g{i}_first", (DiffConstraint.after(vj, vi, di),)),
                Option(f"g{j}_first", (DiffConstraint.after(vi, vj, dj),)),
                Option(_OVERLAP, overlap_constraints),
            )
            model.add_decision(Decision(f"pair_{i}_{j}", options, payload=(i, j)))

    # ------------------------------------------------------------------
    def _add_decoherence_objective(self, model: ScheduleModel,
                                   circuit: QuantumCircuit, dag: CircuitDag,
                                   var_of: Sequence[int], durations) -> None:
        if self.omega >= 1.0:
            return  # pure-crosstalk mode: no decoherence terms
        weight = 1.0 - self.omega
        for q in circuit.active_qubits():
            chain = dag.qubit_chain(q)
            first, last = chain[0], chain[-1]
            t_limit = self.calibration.coherence_limit(q)
            coeff = weight / t_limit
            model.objective_offset += coeff * durations.of(circuit[last])
            if var_of[first] == var_of[last]:
                continue  # single operation: lifetime is a constant
            model.add_objective_term(var_of[last], coeff)
            model.add_objective_term(var_of[first], -coeff)

    # ------------------------------------------------------------------
    def _make_partial_cost(self, circuit: QuantumCircuit,
                           pairs: Sequence[CandidatePair]) -> XtalkPartialCost:
        """Build the :class:`XtalkPartialCost` callable for this circuit."""
        omega = self.omega
        independent: Dict[int, float] = {}
        for pair in pairs:
            for gate in (pair.gate_i, pair.gate_j):
                if gate not in independent:
                    edge = normalize_edge(circuit[gate].qubits)
                    try:
                        independent[gate] = self.report.independent_error(edge)
                    except KeyError:
                        independent[gate] = self.calibration.cnot_error_of(*edge)
        # Constant base over all two-qubit gates not in any candidate pair.
        base = 0.0
        in_pairs = set(independent)
        for idx, instr in enumerate(circuit):
            if instr.is_two_qubit and idx not in in_pairs:
                edge = normalize_edge(instr.qubits)
                try:
                    err = self.report.independent_error(edge)
                except KeyError:
                    err = self.calibration.cnot_error_of(*edge)
                base += math.log(max(err, _MIN_ERROR))
        base *= omega
        return XtalkPartialCost(omega, base, independent, tuple(pairs))
