"""The Table 1 baseline schedulers behind the same interface as XtalkSched.

Both baselines are realized purely through barriers (or their absence),
because barriers are the only ordering control the circuit-level ISA
offers; the hardware's right-aligned scheduler then times the result.
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import CircuitDag
from repro.device.topology import CouplingMap
from repro.transpiler.barriers import reorder_and_barrier
from repro.transpiler.scheduling import fully_barriered


def par_sched(circuit: QuantumCircuit) -> QuantumCircuit:
    """``ParSched``: maximum parallelism — submit the circuit unchanged.

    The IBM hardware scheduler already parallelizes maximally and
    right-aligns (Figure 1c); this is the state of the art the paper
    compares against.
    """
    return circuit.copy(name=f"{circuit.name}_par")


def serial_sched(circuit: QuantumCircuit) -> QuantumCircuit:
    """``SerialSched``: a barrier after every gate serializes everything."""
    return fully_barriered(circuit)


def disable_sched(circuit: QuantumCircuit, coupling: CouplingMap,
                  min_hops: int = 2) -> QuantumCircuit:
    """The hardware-disable policy of Rigetti / Google Bristlecone [5, 6].

    Those systems forbid *any* simultaneous nearby gates at the hardware
    level, irrespective of whether the pair actually interferes.  This
    baseline reproduces that policy in software: every DAG-concurrent
    two-qubit gate pair closer than ``min_hops`` is serialized with a
    barrier — no characterization data consulted.  The paper's argument
    (Section 1) is that this blanket rule over-serializes; comparing it to
    XtalkSched quantifies how much selectivity buys.
    """
    dag = CircuitDag(circuit)
    two_q = dag.two_qubit_gate_indices()
    serialized = []
    for a_pos, i in enumerate(two_q):
        for j in two_q[a_pos + 1:]:
            if not dag.concurrent(i, j):
                continue
            distance = coupling.gate_distance(circuit[i].qubits,
                                              circuit[j].qubits)
            if 0 < distance < min_hops:
                serialized.append((i, j))
    order = dag.topological_order()
    out = reorder_and_barrier(circuit, order, serialized)
    out.name = f"{circuit.name}_disable"
    return out
