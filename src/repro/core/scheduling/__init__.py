"""Crosstalk-adaptive instruction scheduling (Sections 6–7)."""

from repro.core.scheduling.xtalk import XtalkScheduler, ScheduledCircuit
from repro.core.scheduling.baselines import par_sched, serial_sched, disable_sched
from repro.core.scheduling.predictor import (
    SuccessPrediction,
    OmegaChoice,
    predict_success,
    tune_omega,
)

__all__ = [
    "XtalkScheduler",
    "ScheduledCircuit",
    "par_sched",
    "serial_sched",
    "disable_sched",
    "SuccessPrediction",
    "OmegaChoice",
    "predict_success",
    "tune_omega",
]
