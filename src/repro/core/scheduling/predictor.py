"""Compiler-side success prediction and ω auto-tuning.

The paper leaves ω a per-application knob (Section 9.3 shows its
sensitivity).  This module adds the natural extension: predict a
schedule's success probability *from compiler-visible data only* — the
characterization report and daily calibration — and pick ω by minimizing
the prediction over a sweep.  The predictor mirrors the executor's error
accounting (conditional rates for actually-overlapping gate pairs, idle
T1/T2 decay, readout error), but sees measured conditional rates instead
of the hidden ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.core.characterization.report import CrosstalkReport
from repro.core.scheduling.xtalk import ScheduledCircuit, XtalkScheduler
from repro.device.calibration import Calibration
from repro.device.topology import normalize_edge
from repro.sim.channels import decay_probabilities
from repro.transpiler.schedule import Schedule
from repro.transpiler.scheduling import hardware_schedule


@dataclass(frozen=True)
class SuccessPrediction:
    """Breakdown of a schedule's predicted success probability."""

    gate_success: float
    decoherence_success: float
    readout_success: float

    @property
    def total(self) -> float:
        return self.gate_success * self.decoherence_success * self.readout_success

    @property
    def predicted_error(self) -> float:
        return 1.0 - self.total


def predict_success(schedule: Schedule, calibration: Calibration,
                    report: CrosstalkReport,
                    include_readout: bool = True) -> SuccessPrediction:
    """Estimate the success probability of a timed schedule.

    * every two-qubit gate contributes ``1 - E(g | overlapping partners)``
      using the report's measured conditional rates (worst overlapping
      partner, like the scheduler's own model);
    * every idle window on an active qubit contributes the T1/T2 no-decay
      probability;
    * every measured qubit contributes its readout fidelity.
    """
    gate_success = 1.0
    two_qubit_ops = schedule.two_qubit_ops()
    for op in schedule:
        instr = op.instruction
        if instr.is_directive or instr.is_measure:
            continue
        if instr.is_two_qubit:
            edge = normalize_edge(instr.qubits)
            try:
                rate = report.independent_error(edge)
            except KeyError:
                rate = calibration.cnot_error_of(*edge)
            for other in two_qubit_ops:
                if other.index == op.index or not other.overlaps(op):
                    continue
                rate = max(
                    rate,
                    report.conditional_error(
                        edge, normalize_edge(other.instruction.qubits)
                    ),
                )
            gate_success *= 1.0 - rate
        else:
            gate_success *= 1.0 - calibration.single_qubit_error[instr.qubits[0]]

    decoherence_success = 1.0
    for qubit in schedule.circuit.active_qubits():
        for start, end in schedule.idle_windows(qubit):
            gamma, p_z = decay_probabilities(
                end - start, calibration.t1[qubit], calibration.t2[qubit]
            )
            decoherence_success *= (1.0 - gamma) * (1.0 - p_z)

    readout_success = 1.0
    if include_readout:
        for instr in schedule.circuit:
            if instr.is_measure:
                readout_success *= 1.0 - calibration.readout_error[instr.qubits[0]]

    return SuccessPrediction(gate_success, decoherence_success, readout_success)


def explain_schedule(schedule: Schedule, calibration: Calibration,
                     report: CrosstalkReport, top: int = 10) -> str:
    """Human-readable error-budget breakdown of a timed schedule.

    Lists the ``top`` largest error contributors — two-qubit gates with
    their (conditional) rates and the overlapping partner that set them,
    and idle windows with their decay probabilities — so a user can see
    *why* a schedule is predicted to fail.
    """
    contributions = []  # (error_mass, description)
    two_qubit_ops = schedule.two_qubit_ops()
    for op in two_qubit_ops:
        edge = normalize_edge(op.instruction.qubits)
        try:
            rate = report.independent_error(edge)
        except KeyError:
            rate = calibration.cnot_error_of(*edge)
        culprit = None
        for other in two_qubit_ops:
            if other.index == op.index or not other.overlaps(op):
                continue
            conditional = report.conditional_error(
                edge, normalize_edge(other.instruction.qubits)
            )
            if conditional > rate:
                rate = conditional
                culprit = normalize_edge(other.instruction.qubits)
        note = f" (crosstalk with cx{culprit})" if culprit else ""
        contributions.append(
            (rate, f"cx{edge} @ {op.start:.0f} ns: {rate:.4f}{note}")
        )
    for qubit in schedule.circuit.active_qubits():
        for start, end in schedule.idle_windows(qubit):
            gamma, p_z = decay_probabilities(
                end - start, calibration.t1[qubit], calibration.t2[qubit]
            )
            mass = gamma + p_z
            if mass > 1e-6:
                contributions.append((
                    mass,
                    f"q{qubit} idle {end - start:.0f} ns "
                    f"[{start:.0f}, {end:.0f}]: decay {mass:.4f}",
                ))
    contributions.sort(reverse=True)
    prediction = predict_success(schedule, calibration, report)
    lines = [
        f"schedule error budget (predicted success {prediction.total:.3f}; "
        f"gates {prediction.gate_success:.3f}, decoherence "
        f"{prediction.decoherence_success:.3f}, readout "
        f"{prediction.readout_success:.3f})",
    ]
    for mass, description in contributions[:top]:
        lines.append(f"  {description}")
    if len(contributions) > top:
        lines.append(f"  ... and {len(contributions) - top} smaller terms")
    return "\n".join(lines)


@dataclass
class OmegaChoice:
    """Result of an ω sweep."""

    omega: float
    prediction: SuccessPrediction
    scheduled: ScheduledCircuit
    sweep: Tuple[Tuple[float, float], ...]  # (omega, predicted success)


def tune_omega(circuit: QuantumCircuit, calibration: Calibration,
               report: CrosstalkReport,
               omegas: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.35, 0.5,
                                          0.75, 1.0),
               **scheduler_kwargs) -> OmegaChoice:
    """Pick ω by maximizing predicted success over a sweep.

    The prediction is evaluated on the *realized* hardware schedule of the
    barriered output — not the solver's intended schedule — so it accounts
    for barrier-granularity effects.  Purely compile-time: no execution.
    """
    best: Optional[OmegaChoice] = None
    sweep = []
    for omega in omegas:
        scheduler = XtalkScheduler(calibration, report, omega=omega,
                                   **scheduler_kwargs)
        scheduled = scheduler.schedule(circuit)
        hw = hardware_schedule(scheduled.circuit, calibration.durations)
        prediction = predict_success(hw, calibration, report)
        sweep.append((omega, prediction.total))
        if best is None or prediction.total > best.prediction.total:
            best = OmegaChoice(omega, prediction, scheduled, ())
    best.sweep = tuple(sweep)
    return best
