"""The paper's primary contribution.

* :mod:`repro.core.characterization` — fast crosstalk characterization:
  SRB campaign planning under the four policies of Section 5 (all pairs,
  1-hop only, 1-hop + bin packing, high-crosstalk pairs only), the
  randomized first-fit bin packer, the machine-time cost model, and the
  :class:`~repro.core.characterization.report.CrosstalkReport` the
  scheduler consumes.
* :mod:`repro.core.scheduling` — the crosstalk-adaptive instruction
  scheduler ``XtalkSched`` (SMT formulation of Section 7) plus the
  ``SerialSched``/``ParSched`` baselines of Table 1 behind one interface.
"""

from repro.core.characterization import (
    CrosstalkReport,
    CharacterizationPolicy,
    CharacterizationPlan,
    CharacterizationCampaign,
    CampaignOutcome,
    pack_pairs_first_fit,
)
from repro.core.scheduling import (
    XtalkScheduler,
    ScheduledCircuit,
    par_sched,
    serial_sched,
)

__all__ = [
    "CrosstalkReport",
    "CharacterizationPolicy",
    "CharacterizationPlan",
    "CharacterizationCampaign",
    "CampaignOutcome",
    "pack_pairs_first_fit",
    "XtalkScheduler",
    "ScheduledCircuit",
    "par_sched",
    "serial_sched",
]
