"""Compilation pipeline: layout, routing, decomposition, baseline scheduling.

This package re-implements the Qiskit Terra stages the paper's toolflow
invokes before (and after) the crosstalk-adaptive scheduler:

* :mod:`repro.transpiler.routing` — SWAP insertion for non-adjacent CNOTs
  (including the meet-in-the-middle paths of the SWAP-circuit study);
* :mod:`repro.transpiler.decompose` — lowering SWAP/CZ onto the CNOT basis;
* :mod:`repro.transpiler.schedule` — the timed-schedule data structure;
* :mod:`repro.transpiler.scheduling` — ASAP / right-aligned-ALAP
  (``ParSched``, the IBM default) and fully serial (``SerialSched``)
  baseline schedulers, plus the barrier-respecting hardware scheduler that
  models how IBMQ control electronics time a submitted circuit;
* :mod:`repro.transpiler.barriers` — post-processing that realizes a target
  schedule's orderings with barrier instructions (the only control knob the
  circuit-level ISA offers, Section 7.2).
"""

from repro.transpiler.schedule import TimedInstruction, Schedule
from repro.transpiler.scheduling import (
    asap_schedule,
    alap_schedule,
    serial_schedule,
    hardware_schedule,
)
from repro.transpiler.routing import (
    swap_path_circuit,
    route_circuit,
)
from repro.transpiler.decompose import decompose_to_basis

__all__ = [
    "TimedInstruction",
    "Schedule",
    "asap_schedule",
    "alap_schedule",
    "serial_schedule",
    "hardware_schedule",
    "swap_path_circuit",
    "route_circuit",
    "decompose_to_basis",
]
