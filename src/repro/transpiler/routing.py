"""SWAP insertion for nearest-neighbour architectures.

Two entry points:

* :func:`swap_path_circuit` — the paper's meet-in-the-middle communication
  pattern (Section 8.3): to interact two far-apart qubits, SWAP both toward
  the middle of the shortest path and apply the CNOT where they meet.
* :func:`route_circuit` — a greedy general router used to make arbitrary
  workloads hardware-compliant: for every non-adjacent two-qubit gate it
  swaps the control along the shortest path until adjacency holds.

Both return circuits whose two-qubit gates all lie on coupling-map edges,
which is the hardware-compliant IR the schedulers take as input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Instruction
from repro.device.topology import CouplingMap


@dataclass(frozen=True)
class MeetInMiddlePlan:
    """The SWAP plan for one long-range CNOT.

    ``left_swaps`` move the source toward the middle, ``right_swaps`` move
    the destination; ``cnot`` is the adjacent pair where they meet.  The two
    swap chains are logically independent, which is exactly what gives
    ParSched parallelism to exploit — and crosstalk to suffer.
    """

    path: Tuple[int, ...]
    left_swaps: Tuple[Tuple[int, int], ...]
    right_swaps: Tuple[Tuple[int, int], ...]
    cnot: Tuple[int, int]


def meet_in_middle_plan(coupling: CouplingMap, source: int, dest: int,
                        path: Optional[Sequence[int]] = None) -> MeetInMiddlePlan:
    """Compute the meet-in-the-middle SWAP plan along a shortest path.

    ``path`` pins an explicit route (it must be a valid path from source to
    dest over coupling edges); by default the deterministic shortest path
    is used.
    """
    if source == dest:
        raise ValueError("source and destination must differ")
    if path is not None:
        path = tuple(path)
        if path[0] != source or path[-1] != dest:
            raise ValueError("explicit path must run from source to dest")
        for a, b in zip(path, path[1:]):
            if not coupling.has_edge(a, b):
                raise ValueError(f"path step ({a},{b}) is not a coupling edge")
    else:
        path = tuple(coupling.shortest_path(source, dest))
    # After the swaps, the source payload sits at path[meet_left] and the
    # destination payload at path[meet_left + 1].
    hops = len(path) - 1  # number of edges on the path
    left_count = (hops - 1) // 2          # swaps applied from the source side
    right_count = hops - 1 - left_count   # swaps applied from the dest side
    left_swaps = tuple(
        (path[i], path[i + 1]) for i in range(left_count)
    )
    right_swaps = tuple(
        (path[len(path) - 1 - i], path[len(path) - 2 - i]) for i in range(right_count)
    )
    cnot = (path[left_count], path[left_count + 1])
    return MeetInMiddlePlan(path, left_swaps, right_swaps, cnot)


def swap_path_circuit(coupling: CouplingMap, source: int, dest: int,
                      num_qubits: Optional[int] = None,
                      path: Optional[Sequence[int]] = None) -> QuantumCircuit:
    """The paper's SWAP benchmark circuit between ``source`` and ``dest``.

    Prepares a Bell pair between the two payloads (a U2 on the source
    creates the superposition, as in Figure 6), moves them together with
    meet-in-the-middle SWAPs, and applies the entangling CNOT.  The final
    state on the meeting qubits is a Bell state measured by tomography.
    """
    plan = meet_in_middle_plan(coupling, source, dest, path=path)
    n = num_qubits if num_qubits is not None else coupling.num_qubits
    circ = QuantumCircuit(n, name=f"swap_{source}_{dest}")
    circ.u2(0.0, 3.141592653589793, source)  # H via the IBM basis, as in Fig. 6
    for a, b in plan.left_swaps:
        circ.swap(a, b)
    for a, b in plan.right_swaps:
        circ.swap(a, b)
    circ.cx(*plan.cnot)
    return circ


def min_crosstalk_path(coupling: CouplingMap, source: int, dest: int,
                       high_pairs) -> Tuple[int, ...]:
    """The shortest path whose meet-in-the-middle chains cross the fewest
    high-crosstalk pairs (ties broken lexicographically).

    A routing-level complement to XtalkSched: when an equally short route
    avoids the interfering region entirely, taking it beats scheduling
    around the interference (DESIGN.md lists this as an ablation).
    """
    import networkx as nx

    from repro.device.topology import normalize_edge as _norm

    high_pairs = [frozenset(p) for p in high_pairs]

    def crossings(path) -> int:
        plan = meet_in_middle_plan(coupling, source, dest, path=path)
        left = {_norm(s) for s in plan.left_swaps}
        right = {_norm(s) for s in plan.right_swaps}
        count = 0
        for pair in high_pairs:
            a, b = tuple(pair)
            if (a in left and b in right) or (b in left and a in right):
                count += 1
        return count

    candidates = sorted(nx.all_shortest_paths(coupling.graph, source, dest))
    return tuple(min(candidates, key=lambda p: (crossings(p), p)))


def route_circuit(circuit: QuantumCircuit, coupling: CouplingMap,
                  initial_layout: Optional[Sequence[int]] = None) -> Tuple[QuantumCircuit, List[int]]:
    """Greedy SWAP-insertion router.

    ``initial_layout[logical] = physical``.  Returns the physical circuit
    plus the final layout (so callers can map measured clbits back).  The
    router moves the first operand of each non-adjacent gate along the
    shortest physical path; simple, deterministic, and sufficient for the
    paper's small benchmark circuits.
    """
    n_phys = coupling.num_qubits
    if initial_layout is None:
        initial_layout = list(range(circuit.num_qubits))
    if len(initial_layout) != circuit.num_qubits:
        raise ValueError("layout must place every logical qubit")
    layout = list(initial_layout)  # logical -> physical
    phys_of = dict(enumerate(layout))

    out = QuantumCircuit(n_phys, max(circuit.num_clbits, 0), name=f"{circuit.name}_routed")

    def physical(logical: int) -> int:
        return layout[logical]

    for instr in circuit:
        if instr.is_barrier:
            out.barrier(*(physical(q) for q in instr.qubits))
            continue
        if len(instr.qubits) <= 1:
            out.append(Instruction(instr.name, (physical(instr.qubits[0]),),
                                   instr.params, clbit=instr.clbit, label=instr.label))
            continue
        la, lb = instr.qubits
        pa, pb = physical(la), physical(lb)
        if not coupling.has_edge(pa, pb):
            path = coupling.shortest_path(pa, pb)
            # Swap the first operand down the path until adjacent.
            for step in path[1:-1]:
                out.swap(pa, step)
                # update layout: whichever logical qubits sit on pa/step swap
                for logical, phys in enumerate(layout):
                    if phys == pa:
                        layout[logical] = step
                    elif phys == step:
                        layout[logical] = pa
                pa = step
        out.append(Instruction(instr.name, (pa, layout[lb]), instr.params,
                               clbit=instr.clbit, label=instr.label))
    return out, layout
