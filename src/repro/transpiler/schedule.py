"""Timed schedules over circuit instructions.

A :class:`Schedule` binds every instruction of a circuit to a start time
(ns).  It is the object the noisy backend executes, and the object whose
overlap structure determines which conditional error rates apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Instruction
from repro.device.calibration import GateDurations

#: Slack below which two intervals are considered non-overlapping; keeps
#: floating-point boundary touches (end == start) from counting as overlap.
_EPS = 1e-6


@dataclass(frozen=True)
class TimedInstruction:
    """An instruction with its scheduled start time and duration (ns)."""

    index: int
    instruction: Instruction
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration

    def overlaps(self, other: "TimedInstruction") -> bool:
        """True when the two intervals intersect with positive measure."""
        return (
            self.start < other.end - _EPS and other.start < self.end - _EPS
        )

    def format(self) -> str:
        return f"[{self.start:8.1f}, {self.end:8.1f}] {self.instruction.format()}"


class Schedule:
    """An immutable assignment of start times to a circuit's instructions."""

    def __init__(self, circuit: QuantumCircuit, durations: GateDurations,
                 start_times: Sequence[float]):
        if len(start_times) != len(circuit):
            raise ValueError("need one start time per instruction")
        self.circuit = circuit
        self.durations = durations
        self._timed: List[TimedInstruction] = [
            TimedInstruction(i, instr, float(start_times[i]), durations.of(instr))
            for i, instr in enumerate(circuit)
        ]
        for t in self._timed:
            if t.start < -_EPS:
                raise ValueError(f"negative start time for {t.instruction.format()}")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._timed)

    def __iter__(self):
        return iter(self._timed)

    def __getitem__(self, index: int) -> TimedInstruction:
        return self._timed[index]

    @property
    def start_times(self) -> Tuple[float, ...]:
        return tuple(t.start for t in self._timed)

    def makespan(self) -> float:
        """Total program duration (ns) — Figure 5d's metric."""
        return max((t.end for t in self._timed), default=0.0)

    # ------------------------------------------------------------------
    def qubit_timeline(self, qubit: int) -> Tuple[TimedInstruction, ...]:
        """Non-directive operations on ``qubit``, ordered by start time."""
        ops = [
            t for t in self._timed
            if qubit in t.instruction.qubits and not t.instruction.is_barrier
        ]
        return tuple(sorted(ops, key=lambda t: (t.start, t.index)))

    def qubit_lifetime(self, qubit: int) -> float:
        """Elapsed time from the qubit's first operation to its last end.

        This is the paper's lifetime ``q.t`` (constraint 9): decoherence on
        IBM systems only starts once the first gate is applied.
        """
        timeline = self.qubit_timeline(qubit)
        if not timeline:
            return 0.0
        return max(t.end for t in timeline) - min(t.start for t in timeline)

    def idle_windows(self, qubit: int) -> Tuple[Tuple[float, float], ...]:
        """Gaps between consecutive operations on ``qubit``.

        These are the windows in which decoherence noise is applied by the
        executor.
        """
        timeline = self.qubit_timeline(qubit)
        windows = []
        for prev, nxt in zip(timeline, timeline[1:]):
            if nxt.start > prev.end + _EPS:
                windows.append((prev.end, nxt.start))
        return tuple(windows)

    # ------------------------------------------------------------------
    def two_qubit_ops(self) -> Tuple[TimedInstruction, ...]:
        return tuple(t for t in self._timed if t.instruction.is_two_qubit)

    def overlapping_two_qubit_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """Index pairs of two-qubit gates that overlap in time."""
        ops = self.two_qubit_ops()
        pairs = []
        for i, a in enumerate(ops):
            for b in ops[i + 1:]:
                if a.overlaps(b):
                    pairs.append((a.index, b.index))
        return tuple(pairs)

    def simultaneous_partners(self, index: int) -> Tuple[TimedInstruction, ...]:
        """Two-qubit gates overlapping the two-qubit gate at ``index``."""
        target = self._timed[index]
        if not target.instruction.is_two_qubit:
            raise ValueError("overlap analysis applies to two-qubit gates")
        return tuple(
            t for t in self.two_qubit_ops()
            if t.index != index and t.overlaps(target)
        )

    def validate_dependencies(self, dag) -> bool:
        """Check every DAG edge is respected (predecessor ends before
        successor starts, up to float slack)."""
        for u, v in dag.graph.edges:
            if self._timed[u].end > self._timed[v].start + _EPS:
                return False
        return True

    # ------------------------------------------------------------------
    def format(self, qubits: Optional[Iterable[int]] = None) -> str:
        """Per-qubit timeline rendering for humans (Figure 6 style)."""
        show = sorted(qubits) if qubits is not None else sorted(
            self.circuit.active_qubits()
        )
        lines = [f"schedule of {self.circuit.name}: makespan {self.makespan():.0f} ns"]
        for q in show:
            entries = ", ".join(
                f"{t.instruction.name}{t.instruction.qubits}@{t.start:.0f}"
                for t in self.qubit_timeline(q)
            )
            lines.append(f"  q{q}: {entries}")
        return "\n".join(lines)

    def shifted(self, offset: float) -> "Schedule":
        """A copy with every start time shifted by ``offset``."""
        return Schedule(
            self.circuit, self.durations,
            [t.start + offset for t in self._timed],
        )

    def gantt(self, qubits: Optional[Iterable[int]] = None,
              width: int = 72) -> str:
        """ASCII Gantt chart of the schedule (Figure 6 style).

        One row per qubit; ``#`` spans two-qubit gates, ``=`` single-qubit
        gates, ``M`` measurements, ``.`` idle time inside the qubit's
        lifetime.
        """
        show = sorted(qubits) if qubits is not None else sorted(
            self.circuit.active_qubits()
        )
        span = max(self.makespan(), 1e-9)
        scale = (width - 1) / span

        def col(t: float) -> int:
            return min(width - 1, int(t * scale))

        lines = [f"0 ns {'-' * (width - 12)} {span:.0f} ns"]
        for q in show:
            row = [" "] * width
            timeline = self.qubit_timeline(q)
            if timeline:
                first = col(min(t.start for t in timeline))
                last = col(max(t.end for t in timeline))
                for i in range(first, last + 1):
                    row[i] = "."
            for t in timeline:
                if t.instruction.is_measure:
                    mark = "M"
                elif t.instruction.is_two_qubit:
                    mark = "#"
                else:
                    mark = "="
                for i in range(col(t.start), max(col(t.end), col(t.start) + 1)):
                    row[i] = mark
            lines.append(f"q{q:<3d} {''.join(row)}")
        return "\n".join(lines)
