"""Lowering to the device basis (1q rotations + CNOT).

IBMQ devices natively implement single-qubit rotations and CNOT; SWAP is a
macro of three CNOTs (footnote 3 of the paper) and CZ conjugates a CNOT
with Hadamards on the target.  The schedulers operate on the lowered form
so that durations and error rates always refer to physical operations.
"""

from __future__ import annotations

from typing import List

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Instruction


def decompose_to_basis(circuit: QuantumCircuit) -> QuantumCircuit:
    """Expand swap/cz macros into CNOT-based sequences.

    Labels are propagated to the emitted CNOTs so workload studies (e.g.
    the redundant-CNOT Hidden Shift variant) can still identify their gates.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    for instr in circuit:
        if instr.name == "swap":
            a, b = instr.qubits
            # SWAP a,b := CNOT a,b; CNOT b,a; CNOT a,b
            out.append(Instruction("cx", (a, b), label=instr.label))
            out.append(Instruction("cx", (b, a), label=instr.label))
            out.append(Instruction("cx", (a, b), label=instr.label))
        elif instr.name == "cz":
            a, b = instr.qubits
            out.h(b)
            out.append(Instruction("cx", (a, b), label=instr.label))
            out.h(b)
        else:
            out.append(instr)
    return out


def count_physical_cnots(circuit: QuantumCircuit) -> int:
    """CNOT count after basis decomposition (swap = 3, cz = 1)."""
    total = 0
    for instr in circuit:
        if instr.name == "cx" or instr.name == "cz":
            total += 1
        elif instr.name == "swap":
            total += 3
    return total
