"""Noise-aware region selection (layout).

The paper builds on noise-adaptive mapping [43]: *where* a circuit runs
matters as much as *how* it is scheduled.  This module selects a k-qubit
path region for line-shaped workloads (QAOA ansatz, Hidden Shift) by
scoring every path in the coupling map with compiler-visible data:
calibrated CNOT/readout errors, coherence limits, and — the crosstalk-aware
part — the characterized conditional rates between the region's own edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.characterization.report import CrosstalkReport
from repro.device.calibration import Calibration
from repro.device.topology import CouplingMap, normalize_edge


@dataclass(frozen=True)
class RegionScore:
    """Predicted per-shot error mass of running on one path region."""

    region: Tuple[int, ...]
    gate_error: float
    crosstalk_penalty: float
    coherence_penalty: float
    readout_error: float

    @property
    def total(self) -> float:
        return (self.gate_error + self.crosstalk_penalty
                + self.coherence_penalty + self.readout_error)


def enumerate_path_regions(coupling: CouplingMap, length: int) -> List[Tuple[int, ...]]:
    """All simple paths of ``length`` qubits (each direction once)."""
    paths: List[Tuple[int, ...]] = []

    def extend(path: List[int]) -> None:
        if len(path) == length:
            if path[0] < path[-1]:  # canonical direction only
                paths.append(tuple(path))
            return
        for nxt in coupling.neighbors(path[-1]):
            if nxt not in path:
                path.append(nxt)
                extend(path)
                path.pop()

    for start in range(coupling.num_qubits):
        extend([start])
    return sorted(paths)


def score_region(region: Sequence[int], coupling: CouplingMap,
                 calibration: Calibration,
                 report: Optional[CrosstalkReport] = None,
                 reference_duration: float = 5_000.0) -> RegionScore:
    """Score a path region by compiler-visible error sources.

    ``reference_duration`` approximates the workload's makespan for the
    coherence penalty (error mass ≈ duration / min T over the region).
    """
    edges = [normalize_edge((a, b)) for a, b in zip(region, region[1:])]
    gate_error = sum(calibration.cnot_error_of(*e) for e in edges)
    readout = sum(calibration.readout_error[q] for q in region)
    coherence = sum(
        reference_duration / calibration.coherence_limit(q) for q in region
    )
    crosstalk = 0.0
    if report is not None:
        for i, a in enumerate(edges):
            for b in edges[i + 1:]:
                if len({*a, *b}) < 4:
                    continue  # share a qubit: can never run simultaneously
                crosstalk += max(
                    report.conditional_error(a, b) - report.independent_error(a),
                    0.0,
                ) + max(
                    report.conditional_error(b, a) - report.independent_error(b),
                    0.0,
                )
    return RegionScore(tuple(region), gate_error, crosstalk, coherence, readout)


def best_path_region(coupling: CouplingMap, calibration: Calibration,
                     length: int, report: Optional[CrosstalkReport] = None,
                     reference_duration: float = 5_000.0) -> RegionScore:
    """The path region with the lowest predicted error mass."""
    regions = enumerate_path_regions(coupling, length)
    if not regions:
        raise ValueError(f"no path of {length} qubits in this coupling map")
    scores = [
        score_region(r, coupling, calibration, report, reference_duration)
        for r in regions
    ]
    return min(scores, key=lambda s: (s.total, s.region))


def rank_path_regions(coupling: CouplingMap, calibration: Calibration,
                      length: int, report: Optional[CrosstalkReport] = None,
                      top: int = 5) -> List[RegionScore]:
    """The ``top`` best regions, ascending by predicted error."""
    regions = enumerate_path_regions(coupling, length)
    scores = [
        score_region(r, coupling, calibration, report) for r in regions
    ]
    return sorted(scores, key=lambda s: (s.total, s.region))[:top]
