"""Realizing a target schedule with barrier instructions.

The circuit-level IBMQ ISA cannot express start times; the only ordering
control is the barrier (Section 7.2, "IBMQ-specific constraints").  The
XtalkSched post-processing step therefore re-emits the circuit in intended
start-time order and drops a barrier across each serialized gate pair so
the hardware's right-aligned scheduler cannot re-parallelize them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Instruction


def reorder_and_barrier(circuit: QuantumCircuit,
                        order: Sequence[int],
                        serialized_pairs: Iterable[Tuple[int, int]]) -> QuantumCircuit:
    """Like :func:`reorder_with_barriers` but returns only the circuit."""
    return reorder_with_barriers(circuit, order, serialized_pairs)[0]


def reorder_with_barriers(circuit: QuantumCircuit,
                          order: Sequence[int],
                          serialized_pairs: Iterable[Tuple[int, int]]
                          ) -> Tuple[QuantumCircuit, Dict[int, int]]:
    """Rebuild ``circuit`` in ``order`` with barriers enforcing serialization.

    Args:
        circuit: the hardware-compliant input circuit (no barriers yet).
        order: a topological order of instruction indices — normally the
            intended schedule sorted by start time.
        serialized_pairs: instruction index pairs ``(i, j)`` that must not
            overlap; whichever comes later in ``order`` gets a barrier over
            the union of both gates' qubits immediately before it.

    Returns:
        The new circuit plus a map from original instruction index to its
        position in the new circuit (barriers shift positions).
    """
    if sorted(order) != list(range(len(circuit))):
        raise ValueError("order must be a permutation of all instructions")
    position = {idx: pos for pos, idx in enumerate(order)}
    # For each instruction, the serialized partners that must precede it.
    barrier_before: Dict[int, Set[int]] = {}
    for i, j in serialized_pairs:
        first, second = (i, j) if position[i] < position[j] else (j, i)
        barrier_before.setdefault(second, set()).add(first)

    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    emitted: Set[int] = set()
    new_position: Dict[int, int] = {}
    for idx in order:
        partners = barrier_before.get(idx, ())
        ready = [p for p in partners if p in emitted]
        if ready:
            span: Set[int] = set(circuit[idx].qubits)
            for p in ready:
                span.update(circuit[p].qubits)
            out.barrier(*sorted(span))
        new_position[idx] = len(out)
        out.append(circuit[idx])
        emitted.add(idx)
    return out, new_position


def strip_barriers(circuit: QuantumCircuit) -> QuantumCircuit:
    """A copy of ``circuit`` without any barrier instructions."""
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    for instr in circuit:
        if not instr.is_barrier:
            out.append(instr)
    return out
