"""Baseline schedulers and the IBMQ hardware-timing model.

Three timing policies appear in the paper (Table 1):

* ``SerialSched`` — every instruction strictly after the previous one;
* ``ParSched`` — maximum parallelism.  On IBM hardware this is additionally
  *right-aligned*: readout of all qubits happens simultaneously at the end,
  and every gate is pushed as late as its dependencies allow (Figure 1c).
  :func:`hardware_schedule` implements exactly this and is what the noisy
  backend uses to time any submitted circuit — including circuits that
  XtalkSched has post-processed with barriers;
* ``XtalkSched`` — lives in :mod:`repro.core.scheduling`; its output is
  enforced through barriers and then timed by the same hardware model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import CircuitDag
from repro.device.calibration import GateDurations
from repro.transpiler.schedule import Schedule


def asap_schedule(circuit: QuantumCircuit, durations: GateDurations,
                  dag: Optional[CircuitDag] = None) -> Schedule:
    """As-soon-as-possible schedule respecting the dependency DAG."""
    dag = dag or CircuitDag(circuit)
    start = [0.0] * len(circuit)
    for idx in dag.topological_order():
        preds = dag.predecessors(idx)
        if preds:
            start[idx] = max(
                start[p] + durations.of(circuit[p]) for p in preds
            )
    return Schedule(circuit, durations, start)


def alap_schedule(circuit: QuantumCircuit, durations: GateDurations,
                  dag: Optional[CircuitDag] = None,
                  align_measurements: bool = True) -> Schedule:
    """As-late-as-possible (right-aligned) schedule.

    With ``align_measurements`` (the IBMQ behaviour), all measure operations
    start simultaneously at the common readout time, and every other gate is
    pushed right against its earliest successor.  The overall makespan is
    the ASAP makespan — right alignment never stretches the program.
    """
    dag = dag or CircuitDag(circuit)
    asap = asap_schedule(circuit, durations, dag)

    measure_indices = [i for i, ins in enumerate(circuit) if ins.is_measure]
    if align_measurements and measure_indices:
        readout_start = max(asap[i].start for i in measure_indices)
        horizon = readout_start
    else:
        readout_start = None
        horizon = asap.makespan()

    start = [0.0] * len(circuit)
    for idx in reversed(dag.topological_order()):
        instr = circuit[idx]
        dur = durations.of(instr)
        if instr.is_measure and readout_start is not None:
            start[idx] = readout_start
            continue
        succs = dag.successors(idx)
        if succs:
            start[idx] = min(start[s] for s in succs) - dur
        else:
            start[idx] = horizon - dur
    # Barriers may land at negative times when a barrier has no
    # predecessors; clamp directives (they are zero-duration markers).
    for idx, instr in enumerate(circuit):
        if instr.is_directive and start[idx] < 0.0:
            start[idx] = 0.0
    shift = -min(start) if min(start) < 0.0 else 0.0
    return Schedule(circuit, durations, [s + shift for s in start])


def serial_schedule(circuit: QuantumCircuit, durations: GateDurations) -> Schedule:
    """Fully serialized schedule (``SerialSched``).

    Every non-measure instruction runs strictly after the previous one in
    program order; all measurements then fire simultaneously (the hardware
    performs readout of every qubit at once).
    """
    start = [0.0] * len(circuit)
    clock = 0.0
    for idx, instr in enumerate(circuit):
        if instr.is_measure:
            continue
        start[idx] = clock
        clock += durations.of(instr)
    for idx, instr in enumerate(circuit):
        if instr.is_measure:
            start[idx] = clock
    return Schedule(circuit, durations, start)


def hardware_schedule(circuit: QuantumCircuit, durations: GateDurations) -> Schedule:
    """How IBMQ control hardware times a submitted circuit.

    Maximum parallelism, right alignment, simultaneous readout — i.e. the
    ParSched policy — while honouring any barriers present in the circuit.
    This single entry point is used by the noisy backend for *every*
    scheduler: the baselines and XtalkSched differ only in the barriers
    they insert (and, for SerialSched, in barriers after each gate).
    """
    return alap_schedule(circuit, durations, align_measurements=True)


def fully_barriered(circuit: QuantumCircuit) -> QuantumCircuit:
    """Insert a global barrier after every instruction (``SerialSched``'s
    circuit-level encoding)."""
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                         f"{circuit.name}_serial")
    pending_measures = [ins for ins in circuit if ins.is_measure]
    for instr in circuit:
        if instr.is_barrier or instr.is_measure:
            continue
        out.append(instr)
        out.barrier()
    for instr in pending_measures:
        out.append(instr)
    return out
