"""Measurement post-processing and figures of merit (Section 8.4).

* :mod:`repro.metrics.readout` — readout-error mitigation via confusion
  matrix inversion (the paper applies Qiskit Ignis' mitigation to every
  experiment);
* :mod:`repro.metrics.tomography` — two-qubit state tomography (9 basis
  settings, 1024 trials each) with linear inversion and PSD projection,
  producing the SWAP-circuit error rate;
* :mod:`repro.metrics.distributions` — cross entropy (QAOA), success
  probability (Hidden Shift), Hellinger/TVD helpers.
"""

from repro.metrics.readout import (
    mitigate_distribution,
    mitigate_counts,
    measure_readout_model,
)
from repro.metrics.tomography import (
    TomographyResult,
    tomography_settings,
    tomography_circuits,
    run_state_tomography,
    density_from_expectations,
    state_fidelity,
    bell_state_vector,
)
from repro.metrics.distributions import (
    cross_entropy,
    cross_entropy_loss,
    ideal_cross_entropy,
    success_probability,
    total_variation_distance,
    hellinger_distance,
)

__all__ = [
    "mitigate_distribution",
    "mitigate_counts",
    "measure_readout_model",
    "TomographyResult",
    "tomography_settings",
    "tomography_circuits",
    "run_state_tomography",
    "density_from_expectations",
    "state_fidelity",
    "bell_state_vector",
    "cross_entropy",
    "cross_entropy_loss",
    "ideal_cross_entropy",
    "success_probability",
    "total_variation_distance",
    "hellinger_distance",
]
