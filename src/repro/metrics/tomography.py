"""Two-qubit state tomography (the SWAP-circuit metric, Section 8.4).

The paper measures SWAP-circuit quality by preparing a known Bell state and
running state tomography with 9 basis-pair settings x 1024 trials.  This
module builds the 9 measurement circuits, estimates all 16 two-qubit Pauli
expectations, reconstructs the density matrix by linear inversion, projects
it onto the physical (PSD, trace-1) set, and reports the error rate
``1 - F(rho, |psi_target>)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.sim.channels import counts_to_distribution
from repro.sim.unitaries import pauli_matrix

BASES = ("X", "Y", "Z")


def tomography_settings() -> Tuple[Tuple[str, str], ...]:
    """The 9 measurement settings (basis for qubit a, basis for qubit b)."""
    return tuple(itertools.product(BASES, repeat=2))


def _basis_rotation(circ: QuantumCircuit, qubit: int, basis: str) -> None:
    """Rotate ``basis`` eigenstates onto the Z axis before measurement."""
    if basis == "X":
        circ.h(qubit)
    elif basis == "Y":
        circ.sdg(qubit)
        circ.h(qubit)
    elif basis != "Z":
        raise ValueError(f"unknown basis {basis!r}")


def tomography_circuits(base: QuantumCircuit, qubit_a: int, qubit_b: int
                        ) -> Dict[Tuple[str, str], QuantumCircuit]:
    """The 9 measurement circuits for tomography of ``(qubit_a, qubit_b)``.

    Each circuit is ``base`` plus basis rotations and measurements of the
    two target qubits into clbits 0 and 1.
    """
    circuits = {}
    for setting in tomography_settings():
        circ = base.copy(name=f"{base.name}_tomo_{setting[0]}{setting[1]}")
        if circ.num_clbits < 2:
            circ.num_clbits = 2
        _basis_rotation(circ, qubit_a, setting[0])
        _basis_rotation(circ, qubit_b, setting[1])
        circ.measure(qubit_a, 0)
        circ.measure(qubit_b, 1)
        circuits[setting] = circ
    return circuits


def expectations_from_distributions(
    dists: Dict[Tuple[str, str], np.ndarray]
) -> Dict[Tuple[str, str], float]:
    """All 16 Pauli expectations from the 9 setting distributions.

    Distribution arrays index outcomes little-endian: bit 0 = qubit a.
    Marginal expectations (e.g. <X I>) are averaged over the three settings
    that share the relevant basis, reducing shot noise.
    """
    exps: Dict[Tuple[str, str], float] = {("I", "I"): 1.0}
    signs = np.array([1.0, -1.0, -1.0, 1.0])      # (-1)^(b0+b1)
    sign_a = np.array([1.0, -1.0, 1.0, -1.0])     # (-1)^b0
    sign_b = np.array([1.0, 1.0, -1.0, -1.0])     # (-1)^b1
    for (ba, bb), dist in dists.items():
        exps[(ba, bb)] = float(np.dot(signs, dist))
    for basis in BASES:
        vals_a = [float(np.dot(sign_a, dists[(basis, bb)])) for bb in BASES]
        exps[(basis, "I")] = float(np.mean(vals_a))
        vals_b = [float(np.dot(sign_b, dists[(ba, basis)])) for ba in BASES]
        exps[("I", basis)] = float(np.mean(vals_b))
    return exps


def density_from_expectations(exps: Dict[Tuple[str, str], float]) -> np.ndarray:
    """Linear-inversion density matrix, projected onto PSD and trace one.

    The Pauli label for qubits (a, b) maps to ``pauli_matrix(pa + pb)``
    where position 0 of the label acts on qubit a (the little-endian
    convention of :func:`repro.sim.unitaries.pauli_matrix`).
    """
    rho = np.zeros((4, 4), dtype=complex)
    for (pa, pb), value in exps.items():
        rho += value * pauli_matrix(pa + pb)
    rho /= 4.0
    # PSD projection: clip negative eigenvalues, renormalize.
    rho = (rho + rho.conj().T) / 2.0
    vals, vecs = np.linalg.eigh(rho)
    vals = np.clip(vals, 0.0, None)
    if vals.sum() <= 0:
        raise ValueError("tomography produced a zero state")
    vals /= vals.sum()
    return (vecs * vals) @ vecs.conj().T


def state_fidelity(rho: np.ndarray, target: np.ndarray) -> float:
    """``<psi| rho |psi>`` for a pure target statevector."""
    target = np.asarray(target, dtype=complex)
    target = target / np.linalg.norm(target)
    return float(np.real(target.conj() @ rho @ target))


def bell_state_vector() -> np.ndarray:
    """``(|00> + |11>) / sqrt(2)`` — the SWAP-circuit target state."""
    return np.array([1.0, 0.0, 0.0, 1.0]) / np.sqrt(2.0)


@dataclass
class TomographyResult:
    """Reconstructed state and derived figures."""

    rho: np.ndarray
    expectations: Dict[Tuple[str, str], float]
    fidelity: float

    @property
    def error_rate(self) -> float:
        """The paper's SWAP-circuit error metric: ``1 - fidelity``."""
        return 1.0 - self.fidelity


def run_state_tomography(run_circuit: Callable[[QuantumCircuit], np.ndarray],
                         base: QuantumCircuit, qubit_a: int, qubit_b: int,
                         target: Optional[np.ndarray] = None) -> TomographyResult:
    """Full tomography loop.

    ``run_circuit`` executes one measurement circuit and returns the
    (mitigated) outcome distribution over clbits (bit 0 = qubit a).  This
    indirection lets callers choose scheduler, shots, and mitigation.
    """
    dists = {}
    for setting, circ in tomography_circuits(base, qubit_a, qubit_b).items():
        dists[setting] = np.asarray(run_circuit(circ), dtype=float)
    exps = expectations_from_distributions(dists)
    rho = density_from_expectations(exps)
    target = target if target is not None else bell_state_vector()
    return TomographyResult(rho, exps, state_fidelity(rho, target))
