"""Distribution-level figures of merit.

* **Cross entropy** (QAOA, Figure 8): ``CE(q, p) = -sum_x q(x) log p(x)``
  of the measured distribution ``q`` against the ideal distribution ``p``
  from noise-free simulation; lower is better and the noise-free optimum
  is the ideal distribution's self cross entropy (its Shannon entropy).
* **Success probability** (Hidden Shift, Figure 9): the fraction of trials
  returning the expected bitstring; reported as error rate = 1 - success.
* Hellinger / total-variation distances for tests and sanity checks.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

import numpy as np

_LOG_FLOOR = 1e-12


def _as_dict(dist) -> Dict[str, float]:
    if isinstance(dist, Mapping):
        return dict(dist)
    raise TypeError("distribution must be a mapping bitstring -> probability")


def cross_entropy(measured: Mapping[str, float],
                  ideal: Mapping[str, float]) -> float:
    """``-sum_x measured(x) * log ideal(x)`` (natural log).

    Outcomes the ideal distribution assigns (near-)zero probability are
    clamped at a floor, matching the standard empirical estimator.
    """
    measured = _as_dict(measured)
    total = sum(measured.values())
    if total <= 0:
        raise ValueError("measured distribution is empty")
    ce = 0.0
    for bits, q in measured.items():
        if q <= 0:
            continue
        p = max(float(ideal.get(bits, 0.0)), _LOG_FLOOR)
        ce -= (q / total) * math.log(p)
    return ce


def ideal_cross_entropy(ideal: Mapping[str, float]) -> float:
    """Self cross entropy (Shannon entropy) — Figure 8's dotted line."""
    return cross_entropy(ideal, ideal)


def cross_entropy_loss(measured: Mapping[str, float],
                       ideal: Mapping[str, float]) -> float:
    """Excess cross entropy over the noise-free optimum (lower is better)."""
    return cross_entropy(measured, ideal) - ideal_cross_entropy(ideal)


def success_probability(counts: Mapping[str, float], expected: str) -> float:
    """Fraction of trials yielding ``expected``."""
    total = sum(counts.values())
    if total <= 0:
        raise ValueError("empty counts")
    return counts.get(expected, 0) / total


def total_variation_distance(p: Mapping[str, float],
                             q: Mapping[str, float]) -> float:
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def hellinger_distance(p: Mapping[str, float], q: Mapping[str, float]) -> float:
    keys = set(p) | set(q)
    acc = sum(
        (math.sqrt(p.get(k, 0.0)) - math.sqrt(q.get(k, 0.0))) ** 2 for k in keys
    )
    return math.sqrt(acc / 2.0)
