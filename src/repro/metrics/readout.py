"""Readout-error mitigation (confusion-matrix inversion).

The paper applies readout mitigation [25] to every application experiment.
Given the per-qubit confusion matrices (from calibration, or measured with
basis-state preparation circuits), the measured distribution ``q = M p`` is
inverted by constrained least squares to recover the true distribution
``p`` (clipped to the simplex).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np
from scipy import optimize

from repro.circuit.circuit import QuantumCircuit
from repro.sim.channels import ReadoutModel, counts_to_distribution


def mitigate_distribution(probs: np.ndarray, confusion: np.ndarray) -> np.ndarray:
    """Invert a confusion matrix on a measured distribution.

    Solves ``min ||M p - q||`` subject to ``p >= 0, sum p = 1`` — the
    standard least-squares mitigation, robust when ``M`` is ill-conditioned.
    """
    probs = np.asarray(probs, dtype=float)
    n = len(probs)
    if confusion.shape != (n, n):
        raise ValueError("confusion matrix does not match distribution size")

    # Fast path: plain inversion already valid.
    try:
        candidate = np.linalg.solve(confusion, probs)
    except np.linalg.LinAlgError:
        candidate = None
    if candidate is not None and candidate.min() >= -1e-9:
        candidate = np.clip(candidate, 0.0, None)
        return candidate / candidate.sum()

    result = optimize.lsq_linear(
        confusion, probs, bounds=(0.0, 1.0), method="bvls"
    )
    mitigated = np.clip(result.x, 0.0, None)
    total = mitigated.sum()
    if total <= 0:
        raise ValueError("mitigation collapsed the distribution")
    return mitigated / total


def mitigate_counts(counts: Dict[str, int], qubits: Sequence[int],
                    readout: ReadoutModel) -> np.ndarray:
    """Counts (bitstring keys, qubit 0 of ``qubits`` rightmost) ->
    mitigated probability array."""
    probs = counts_to_distribution(counts, len(qubits))
    return mitigate_distribution(probs, readout.confusion_matrix(qubits))


def measure_readout_model(backend, qubits: Sequence[int],
                          shots: int = 2048) -> ReadoutModel:
    """Estimate per-qubit confusion by preparing |0> and |1| on each qubit.

    This mirrors the calibration-circuit approach of Ignis: for each qubit,
    run a bare measurement and an X-then-measure circuit, estimating
    ``P(1|0)`` and ``P(0|1)`` from the flip fractions.
    """
    num = backend.device.num_qubits
    p1_given_0 = []
    p0_given_1 = []
    for q in qubits:
        circ0 = QuantumCircuit(num, 1, name=f"ro_cal0_q{q}")
        circ0.id(q)
        circ0.measure(q, 0)
        res0 = backend.run(circ0, shots=shots, trajectories=1)
        ones = sum(c for bits, c in res0.counts.items() if bits[-1] == "1")
        p1_given_0.append(ones / shots)

        circ1 = QuantumCircuit(num, 1, name=f"ro_cal1_q{q}")
        circ1.x(q)
        circ1.measure(q, 0)
        res1 = backend.run(circ1, shots=shots, trajectories=1)
        zeros = sum(c for bits, c in res1.counts.items() if bits[-1] == "0")
        p0_given_1.append(zeros / shots)
    return ReadoutModel(tuple(p1_given_0), tuple(p0_given_1))
