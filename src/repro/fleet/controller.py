"""The fleet controller: online Opt-3 characterization over many devices.

:class:`FleetController` ticks simulated days over a fleet of drifting
devices, keeping every device's crosstalk report fresh under a global
per-day experiment budget.  Each tick it:

1. **prioritizes** devices by staleness lag (days since the last good
   epoch) and by the drift metrics of their published history
   (``drift_lag_days`` and pair stability from
   :func:`repro.obs.scorecard.drift_scorecard`) — the stalest, least
   stable device measures first;
2. **admits** each device through its
   :class:`~repro.fleet.supervisor.DeviceSupervisor` (quarantine and
   circuit-breaker gates) and the remaining budget;
3. **runs** the campaign — ``ONE_HOP_PACKED`` until a device has a good
   epoch, ``HIGH_ONLY`` refreshes (the paper's Opt 3) afterwards — over
   :mod:`repro.parallel` with the configured retry policy and fault
   plan, in ``degradation="partial"`` mode so unit failures degrade
   coverage instead of aborting;
4. **publishes** exactly one :class:`~repro.fleet.epoch.CalibrationEpoch`
   per device per day, no matter what failed — refused or failed devices
   republish their prior epoch with all-stale coverage
   (:func:`~repro.resilience.degrade.carried_forward_coverage`).

**Checkpoint/resume.**  Every *executed* epoch streams to a fleet-level
:class:`~repro.resilience.checkpoint.JsonlCheckpoint` keyed by the
fleet's content hash.  A resumed controller re-runs the identical
control-loop decisions (admission, priority, budget) but substitutes the
cached epoch for campaign execution — re-charging the virtual clock and
budget from the record — so the published epoch sequence is
bitwise-identical to the uninterrupted run.  Carried/missing epochs are
deterministic recomputations and are not cached.

All timing runs on a :class:`~repro.resilience.clock.VirtualClock`
counting simulated days; campaign execution charges
``experiment_ticks`` days per experiment, so breaker cooldowns and
watchdog timeouts replay exactly.
"""

from __future__ import annotations

import os
from dataclasses import astuple, dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.characterization.campaign import (
    CharacterizationCampaign,
    CharacterizationPolicy,
)
from repro.core.characterization.report import CrosstalkReport
from repro.device.device import Device
from repro.obs.events import current_run_id, log_event
from repro.obs.live.heartbeat import heartbeat
from repro.obs.live.plane import get_plane
from repro.obs.registry import get_registry
from repro.obs.scorecard import DriftDay, Scorecard, drift_scorecard
from repro.parallel.seeding import stable_entropy
from repro.pipeline.trace import PipelineTrace, SpanRecorder
from repro.rb.executor import RBConfig
from repro.resilience.checkpoint import JsonlCheckpoint
from repro.resilience.degrade import carried_forward_coverage
from repro.resilience.errors import FleetInterrupted, ResilienceError
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.retry import RetryPolicy

from repro.fleet.epoch import CalibrationEpoch
from repro.fleet.supervisor import DeviceSupervisor


@dataclass
class DeviceTrack:
    """The controller's published history for one device."""

    name: str
    epochs: List[CalibrationEpoch] = field(default_factory=list)

    def append(self, epoch: CalibrationEpoch) -> None:
        self.epochs.append(epoch)

    @property
    def last_good(self) -> Optional[CalibrationEpoch]:
        """The most recent fresh/degraded epoch (the Opt-3 prior)."""
        for epoch in reversed(self.epochs):
            if epoch.good:
                return epoch
        return None

    @property
    def last_good_day(self) -> Optional[int]:
        epoch = self.last_good
        return epoch.day if epoch is not None else None


@dataclass
class FleetOutcome:
    """A finished (or interrupted) fleet run.

    ``epochs`` maps device name → the per-day epoch sequence; exactly
    one epoch per device per completed day (the zero-lost-epochs
    invariant).  ``published_json()`` is the canonical rendering used by
    the kill-and-resume identity tests: two runs are *the same run* iff
    their published JSON matches byte for byte.
    """

    start_day: int
    days: int
    epochs: Dict[str, Tuple[CalibrationEpoch, ...]]
    quarantined: Tuple[str, ...]
    replays: int = 0
    trace: Optional[PipelineTrace] = None

    def epoch(self, device: str, day: int) -> CalibrationEpoch:
        """The epoch published for ``device`` on ``day``."""
        for epoch in self.epochs[device]:
            if epoch.day == day:
                return epoch
        raise KeyError(f"no epoch for {device!r} on day {day}")

    def published_json(self) -> str:
        """Canonical JSON of every published epoch (identity checks)."""
        import json

        return json.dumps(
            {name: [e.to_dict() for e in sorted(epochs, key=lambda e: e.day)]
             for name, epochs in self.epochs.items()},
            sort_keys=True,
        )

    def scorecard(self, devices: Sequence[Device],
                  name: str = "fleet") -> Scorecard:
        """Grade the run against each device's hidden planted truth."""
        from repro.obs.scorecard import fleet_scorecard

        device_days = {
            device.name: [
                DriftDay.build(e.day, e.high_pairs(), device.true_high_pairs())
                for e in self.epochs[device.name]
            ]
            for device in devices if device.name in self.epochs
        }
        return fleet_scorecard(
            name, device_days, quarantined=len(self.quarantined),
            run_id=current_run_id(),
        )


class FleetController:
    """Online characterization over a fleet of devices (module docstring).

    Parameters
    ----------
    devices:
        The fleet; device names must be unique.
    rb_config:
        RB sizing shared by every campaign (default :class:`RBConfig`).
    seed:
        Fleet seed; per-device campaign seeds derive from it stably.
    workers:
        Per-campaign parallelism (``None`` → ``REPRO_WORKERS``).
    daily_budget:
        Global experiments available per simulated day (``None`` →
        unbounded).  A device whose planned campaign exceeds the
        remainder is deferred with a carried epoch.
    checkpoint_dir:
        Directory for the fleet checkpoint (``fleet.jsonl``); ``None``
        disables checkpointing.
    retry:
        :class:`RetryPolicy` threaded into every campaign.
    fault_plans:
        Per-device :class:`FaultPlan` (or prebuilt
        :class:`FaultInjector`) keyed by device name — campaign-level
        faults plus ``fleet.stall`` rules.
    interrupt_after:
        Raise :class:`FleetInterrupted` after publishing this many
        epochs (the deterministic kill switch for resume tests).
    """

    CHECKPOINT_FILE = "fleet.jsonl"

    def __init__(self, devices: Sequence[Device], *,
                 rb_config: Optional[RBConfig] = None, seed: int = 0,
                 workers: Optional[int] = None,
                 daily_budget: Optional[int] = None,
                 checkpoint_dir: Optional[str] = None,
                 retry: Optional[RetryPolicy] = None,
                 fault_plans: Optional[Mapping[str, Union[FaultPlan,
                                                          FaultInjector]]] = None,
                 experiment_ticks: float = 0.002,
                 stall_timeout: float = 0.5,
                 failure_threshold: int = 2, cooldown: float = 1.5,
                 cooldown_factor: float = 2.0, max_cooldown: float = 6.0,
                 quarantine_after: int = 2,
                 min_fresh_fraction: float = 0.5,
                 interrupt_after: Optional[int] = None,
                 on_mismatch: str = "raise"):
        names = [device.name for device in devices]
        if len(set(names)) != len(names):
            raise ValueError(f"device names must be unique, got {names}")
        from repro.resilience.clock import VirtualClock

        self.devices: Dict[str, Device] = {d.name: d for d in devices}
        self.rb_config = rb_config or RBConfig()
        self.seed = seed
        self.workers = workers
        self.daily_budget = daily_budget
        self.checkpoint_dir = checkpoint_dir
        self.retry = retry
        self.experiment_ticks = float(experiment_ticks)
        self.min_fresh_fraction = float(min_fresh_fraction)
        self.interrupt_after = interrupt_after
        self.on_mismatch = on_mismatch
        self.clock = VirtualClock()
        self.injectors: Dict[str, FaultInjector] = {}
        for name, plan in (fault_plans or {}).items():
            if name not in self.devices:
                raise ValueError(f"fault plan for unknown device {name!r}")
            self.injectors[name] = (
                plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
            )
        self._fault_signature = {
            name: (inj.plan.seed,
                   [astuple(rule) for rule in inj.plan.rules])
            for name, inj in sorted(self.injectors.items())
        }
        self.supervisors: Dict[str, DeviceSupervisor] = {
            name: DeviceSupervisor(
                name, self.clock,
                failure_threshold=failure_threshold, cooldown=cooldown,
                cooldown_factor=cooldown_factor, max_cooldown=max_cooldown,
                stall_timeout=stall_timeout,
                quarantine_after=quarantine_after,
                faults=self.injectors.get(name),
            )
            for name in names
        }
        self._tracks: Dict[str, DeviceTrack] = {
            name: DeviceTrack(name) for name in names
        }
        self._device_seeds = {
            name: stable_entropy("fleet.device.seed", seed, name) % 2 ** 31
            for name in names
        }
        self._names = names
        self._published = 0
        self._replays = 0

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def fleet_key(self) -> str:
        """Content hash of everything that determines the published epochs.

        Covers device fingerprints, the fleet seed, RB sizing, budget,
        supervision timing, and the fault plans — so a checkpoint from a
        differently-configured run (different faults, different budget)
        is rejected instead of silently mixed in.
        """
        from repro.pipeline.cache import device_fingerprint

        supervisor = next(iter(self.supervisors.values()))
        payload = {
            "devices": [device_fingerprint(self.devices[n])
                        for n in self._names],
            "seed": self.seed,
            "rb": (type(self.rb_config).__name__, astuple(self.rb_config)),
            "daily_budget": self.daily_budget,
            "experiment_ticks": self.experiment_ticks,
            "min_fresh_fraction": self.min_fresh_fraction,
            "supervision": [
                supervisor.breaker.failure_threshold,
                supervisor.breaker.cooldown,
                supervisor.breaker.cooldown_factor,
                supervisor.breaker.max_cooldown,
                supervisor.watchdog.timeout,
                supervisor.quarantine_after,
            ],
            "faults": self._fault_signature,
        }
        return f"{stable_entropy('fleet.checkpoint', payload):032x}"

    def _open_checkpoint(self) -> Optional[JsonlCheckpoint]:
        if self.checkpoint_dir is None:
            return None
        path = os.path.join(self.checkpoint_dir, self.CHECKPOINT_FILE)
        return JsonlCheckpoint(
            path, campaign_key=self.fleet_key(), run_id=current_run_id(),
            on_mismatch=self.on_mismatch,
        )

    # ------------------------------------------------------------------
    # prioritization
    # ------------------------------------------------------------------
    def _priority_order(self, day: int) -> List[str]:
        """Devices for today, stalest and least stable first.

        Primary key: staleness lag (days since the last good epoch; a
        never-measured device outranks everything).  Secondary keys come
        from :func:`drift_scorecard` over the device's recent good
        epochs — consecutive-epoch churn read as detected-vs-previous —
        so a device whose high-pair set keeps moving is refreshed before
        one that has been stable for a week.  Name breaks ties, keeping
        the order fully deterministic.
        """
        def sort_key(name: str):
            track = self._tracks[name]
            last_good = track.last_good_day
            lag = float(day - last_good) if last_good is not None \
                else float(day) + 1.0
            drift_lag = 0.0
            instability = 0.0
            good = [e for e in track.epochs if e.good][-6:]
            if len(good) >= 2:
                churn = [
                    DriftDay.build(cur.day, cur.high_pairs(),
                                   prev.high_pairs())
                    for prev, cur in zip(good, good[1:])
                ]
                card = drift_scorecard(f"fleet[{name}]", churn)
                drift_lag = card.metrics["drift_lag_days"]
                instability = 1.0 - card.metrics["stable_days_fraction"]
            return (-lag, -drift_lag, -instability, name)

        return sorted(self._names, key=sort_key)

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def run(self, days: int, start_day: int = 0) -> FleetOutcome:
        """Tick ``days`` simulated days; one epoch per device per day.

        Raises :class:`FleetInterrupted` when ``interrupt_after``
        publishes have happened — everything already published is in the
        checkpoint, and a fresh controller pointed at the same
        ``checkpoint_dir`` resumes bitwise-identically.
        """
        registry = get_registry()
        registry.set("fleet.devices", len(self._names))
        recorder = SpanRecorder("fleet.run")
        recorder.trace.meta.update({
            "fleet_key": self.fleet_key(),
            "devices": list(self._names),
            "days": days,
            "start_day": start_day,
        })
        checkpoint = self._open_checkpoint()
        log_event(
            "fleet.start", devices=list(self._names), days=days,
            start_day=start_day, budget=self.daily_budget,
            fleet_key=self.fleet_key(),
        )
        for day in range(start_day, start_day + days):
            with recorder.span(f"fleet.tick[{day}]") as span:
                self.clock.advance_to(float(day))
                order = self._priority_order(day)
                remaining = self.daily_budget
                log_event("fleet.tick", day=day, order=order,
                          budget=remaining)
                for name in order:
                    remaining = self._run_device(
                        day, name, remaining, checkpoint,
                    )
                registry.inc("fleet.ticks")
                span.counters["fleet.budget_left"] = float(
                    remaining if remaining is not None else -1
                )
                self._tick_telemetry(day, remaining)
        trace = recorder.finish()
        outcome = self._outcome(start_day, days, trace)
        log_event(
            "fleet.end", days=days, published=self._published,
            replays=self._replays, quarantined=list(outcome.quarantined),
        )
        return outcome

    def _tick_telemetry(self, day: int, remaining: Optional[int]) -> None:
        """End-of-tick fleet health gauges (the live plane's alert feed).

        ``fleet.max_staleness`` and ``fleet.breakers_open`` cover only
        non-quarantined devices: a quarantined device is a *decided*
        failure the operator already sees in ``fleet.quarantined``, so
        excluding it lets the corresponding alert resolve once the fleet
        has isolated the fault.  ``fleet.budget_left`` is only set on
        budgeted runs (the budget alert never fires spuriously).  Pure
        observer: gauges and heartbeats feed snapshots, never decisions.
        """
        registry = get_registry()
        registry.set("fleet.day", float(day))
        breakers_open = 0
        max_staleness = 0.0
        for name in self._names:
            supervisor = self.supervisors[name]
            if supervisor.quarantined:
                continue
            if supervisor.breaker.state != "closed":
                breakers_open += 1
            last_good = self._tracks[name].last_good_day
            staleness = (float(day - last_good) if last_good is not None
                         else float(day) + 1.0)
            max_staleness = max(max_staleness, staleness)
        registry.set("fleet.breakers_open", float(breakers_open))
        registry.set("fleet.max_staleness", max_staleness)
        registry.set("fleet.quarantined_devices", float(sum(
            1 for name in self._names if self.supervisors[name].quarantined
        )))
        if remaining is not None:
            registry.set("fleet.budget_left", float(remaining))
        heartbeat("fleet", day=day, published=self._published,
                  breakers_open=breakers_open,
                  max_staleness=max_staleness)
        plane = get_plane()
        if plane is not None:
            plane.tick()

    def _outcome(self, start_day: int, days: int,
                 trace: Optional[PipelineTrace]) -> FleetOutcome:
        return FleetOutcome(
            start_day=start_day, days=days,
            epochs={name: tuple(track.epochs)
                    for name, track in self._tracks.items()},
            quarantined=tuple(
                name for name in self._names
                if self.supervisors[name].quarantined
            ),
            replays=self._replays,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # one device-day
    # ------------------------------------------------------------------
    def _run_device(self, day: int, name: str, remaining: Optional[int],
                    checkpoint: Optional[JsonlCheckpoint]) -> Optional[int]:
        supervisor = self.supervisors[name]
        track = self._tracks[name]
        prior = track.last_good
        admitted, refusal = supervisor.admit(day)
        cost = 0
        policy = None
        if admitted:
            policy, cost = self._plan_for(name, prior)
            if remaining is not None and cost > remaining:
                supervisor.cancel()
                admitted, refusal = False, "budget"
                get_registry().inc("fleet.deferred")
                log_event("fleet.defer", device=name, day=day,
                          cost=cost, remaining=remaining)
        if not admitted:
            epoch = self._carried_epoch(name, day, refusal, prior)
        else:
            key = f"{name}:day{day}"
            cached = (checkpoint.get(key)
                      if checkpoint is not None and key in checkpoint
                      else None)
            if cached is not None:
                epoch = CalibrationEpoch.from_dict(cached)
                self.clock.advance(epoch.ticks)
                if epoch.good:
                    supervisor.note_success(day)
                else:
                    supervisor.note_failure(day, epoch.reason or "failed")
                self._replays += 1
                get_registry().inc("fleet.replays")
            else:
                epoch = self._execute(name, day, policy, prior, cost)
                if checkpoint is not None:
                    checkpoint.append(key, epoch.to_dict())
            if remaining is not None:
                remaining -= epoch.experiments
        self._publish(name, day, epoch)
        return remaining

    def _plan_for(self, name: str,
                  prior: Optional[CalibrationEpoch]
                  ) -> Tuple[CharacterizationPolicy, int]:
        """Today's policy and its planned experiment cost (both cheap).

        Until a device has a good epoch it needs the full packed 1-hop
        campaign; afterwards the paper's Opt 3 applies — re-measure only
        the known high pairs against the prior report.  A prior whose
        high-pair set is *empty* forces a full re-characterization too:
        a HIGH_ONLY refresh of nothing would publish free "fresh" epochs
        forever while real crosstalk drifted back in unobserved.
        """
        campaign = self._campaign(name)
        policy = CharacterizationPolicy.ONE_HOP_PACKED
        if prior is not None:
            prior_report = prior.report()
            if prior_report.high_pairs():
                policy = CharacterizationPolicy.HIGH_ONLY
                return policy, campaign.plan(policy,
                                             prior_report).num_experiments
        return policy, campaign.plan(policy).num_experiments

    def _campaign(self, name: str) -> CharacterizationCampaign:
        return CharacterizationCampaign(
            self.devices[name], rb_config=self.rb_config,
            seed=self._device_seeds[name], workers=self.workers,
        )

    def _execute(self, name: str, day: int,
                 policy: CharacterizationPolicy,
                 prior: Optional[CalibrationEpoch],
                 cost: int) -> CalibrationEpoch:
        """Run today's campaign under supervision and classify the result."""
        supervisor = self.supervisors[name]
        prior_report = prior.report() if prior is not None else None
        # Epoch ticks are the exact charges made here, never a difference
        # of the shared clock: other devices' stalls shift its absolute
        # value, and float rounding of (now + delta) - now would leak
        # that shift into healthy devices' published epochs.
        try:
            supervisor.heartbeat(day)
            outcome = self._campaign(name).run(
                policy, day=day, prior=prior_report,
                retry=self.retry, faults=self.injectors.get(name),
                degradation="partial",
            )
            ticks = outcome.num_experiments * self.experiment_ticks
            self.clock.advance(ticks)
            supervisor.complete()
        except ResilienceError as exc:
            # The campaign never produced a report (a stall, a pool that
            # could not be rebuilt, a checkpoint conflict): the day is a
            # failure and the prior epoch carries forward.
            get_registry().inc("fleet.failures")
            reason = f"{type(exc).__name__}: {exc}"
            supervisor.note_failure(day, reason)
            return self._degraded_epoch(
                name, day, "failed", reason, prior, cost,
                ticks=supervisor.stall_charge,
            )
        coverage = outcome.coverage
        fraction = coverage.fresh_fraction
        if coverage.complete:
            status, reason = "fresh", None
        elif fraction >= self.min_fresh_fraction:
            status, reason = "degraded", f"coverage:{fraction:.3f}"
        else:
            status, reason = "failed", f"coverage:{fraction:.3f}"
        epoch = CalibrationEpoch(
            device=name, day=day, status=status,
            report_json=outcome.report.to_json(),
            coverage=coverage.to_dict(),
            source_day=day, reason=reason,
            ticks=ticks,
            experiments=outcome.num_experiments,
        )
        if epoch.good:
            supervisor.note_success(day)
        else:
            get_registry().inc("fleet.failures")
            supervisor.note_failure(day, reason or "failed")
        return epoch

    # ------------------------------------------------------------------
    # degraded paths (the Opt-3 carry-forward)
    # ------------------------------------------------------------------
    def _carried_epoch(self, name: str, day: int, reason: Optional[str],
                       prior: Optional[CalibrationEpoch]
                       ) -> CalibrationEpoch:
        get_registry().inc("fleet.carried")
        return self._degraded_epoch(name, day, "carried", reason, prior, 0,
                                    ticks=0.0)

    def _degraded_epoch(self, name: str, day: int, status: str,
                        reason: Optional[str],
                        prior: Optional[CalibrationEpoch],
                        cost: int, ticks: float) -> CalibrationEpoch:
        """An epoch that republishes the prior report (or nothing).

        ``status`` is ``"carried"`` for refused devices and ``"failed"``
        for campaigns that died mid-run; either way every carried value
        is annotated stale from its original measurement day, and a
        device with no good history publishes an explicit ``missing``
        epoch with an empty report.
        """
        if prior is None:
            empty = CrosstalkReport(day=day)
            return CalibrationEpoch(
                device=name, day=day, status="missing",
                report_json=empty.to_json(), coverage={},
                source_day=None, reason=reason, ticks=ticks,
                experiments=cost,
            )
        coverage = carried_forward_coverage(prior.report(), prior.source_day)
        return CalibrationEpoch(
            device=name, day=day, status=status,
            report_json=prior.report_json,
            coverage=coverage.to_dict(),
            source_day=prior.source_day, reason=reason,
            ticks=ticks, experiments=cost,
        )

    # ------------------------------------------------------------------
    def _publish(self, name: str, day: int,
                 epoch: CalibrationEpoch) -> None:
        track = self._tracks[name]
        track.append(epoch)
        registry = get_registry()
        registry.inc("fleet.epochs_published")
        registry.set(f"fleet.staleness[{name}]",
                     float(epoch.staleness if epoch.staleness is not None
                           else -1))
        log_event(
            "fleet.epoch.publish", device=name, day=day,
            status=epoch.status, source_day=epoch.source_day,
            reason=epoch.reason,
            high_pairs=len(epoch.high_pairs()),
            coverage=epoch.coverage.get("summary"),
            experiments=epoch.experiments,
            fingerprint=epoch.fingerprint(),
        )
        self._published += 1
        if (self.interrupt_after is not None
                and self._published >= self.interrupt_after):
            raise FleetInterrupted(
                f"fleet controller interrupted after {self._published} "
                f"published epochs (day {day}, device {name!r})"
            )
