"""Calibration epochs: what the fleet publishes, one device-day at a time.

A :class:`CalibrationEpoch` is the fleet controller's unit of output —
the crosstalk report a device's consumers (the scheduler, a dashboard)
should use for one simulated day, stamped with *how* it was produced:

* ``fresh`` — today's campaign ran and every planned unit measured;
* ``degraded`` — the campaign ran but some units fell back to stale or
  missing values (coverage says which);
* ``failed`` — the campaign ran (or stalled) and produced mostly dead
  coverage; the report still carries the best available data;
* ``carried`` — the device was not measured (quarantined, breaker open,
  or budget-deferred) and the prior good epoch is republished with
  all-stale coverage — the paper's Opt-3 reuse path, made explicit;
* ``missing`` — nothing to publish at all (no campaign has ever
  succeeded on this device).

Epochs serialize exactly (`to_dict`/`from_dict` round-trip the report's
JSON text verbatim), which is what makes the controller's kill-and-resume
guarantee *bitwise*: a replayed epoch is the cached record, not a
recomputation.  ``ticks`` and ``experiments`` record what the epoch cost
(virtual days and budget units) so a resumed run can re-charge the
virtual clock and the daily budget identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.characterization.report import CrosstalkReport
from repro.parallel.seeding import stable_entropy

#: Schema identifier stamped into every serialized epoch.
EPOCH_SCHEMA = "repro.fleet.epoch/v1"

#: Every status an epoch may carry (see module docstring).
EPOCH_STATUSES = ("fresh", "degraded", "failed", "carried", "missing")

#: Statuses that count as a *successful* device-day for supervision.
GOOD_STATUSES = ("fresh", "degraded")


@dataclass(frozen=True)
class CalibrationEpoch:
    """One published device-day: report, provenance, and cost.

    Attributes:
        device: the device name the epoch belongs to.
        day: the simulated day it was published for.
        status: one of :data:`EPOCH_STATUSES`.
        report_json: the :class:`CrosstalkReport` serialized by its own
            ``to_json`` (kept as text so republishing is byte-identical).
        coverage: a :class:`~repro.resilience.degrade.CampaignCoverage`
            ``to_dict()`` annotating every value's freshness.
        source_day: the day the report's data was (last) measured on —
            equals ``day`` for fresh epochs, lags behind for carried
            ones, ``None`` for missing.
        reason: why the epoch is not fresh (``"quarantined"``,
            ``"breaker_open"``, ``"budget"``, ``"stall"``, ...).
        ticks: virtual days the controller's clock advanced producing
            this epoch (0 for carried/missing).
        experiments: budget units charged (0 for carried/missing).
    """

    device: str
    day: int
    status: str
    report_json: str
    coverage: Dict[str, Any] = field(default_factory=dict)
    source_day: Optional[int] = None
    reason: Optional[str] = None
    ticks: float = 0.0
    experiments: int = 0

    def __post_init__(self):
        if self.status not in EPOCH_STATUSES:
            raise ValueError(
                f"status must be one of {EPOCH_STATUSES}, got {self.status!r}"
            )

    # ------------------------------------------------------------------
    @property
    def good(self) -> bool:
        """True for the statuses that count as a successful device-day."""
        return self.status in GOOD_STATUSES

    def report(self) -> CrosstalkReport:
        """The epoch's crosstalk report (exact: JSON floats round-trip).

        This is what downstream consumers feed to
        :class:`~repro.core.scheduling.xtalk.XtalkScheduler` as its
        ``report=`` input; a schedule built on the previous epoch can
        seed the next one through the scheduler's ``warm_start=`` path.
        """
        return CrosstalkReport.from_json(self.report_json)

    def high_pairs(self) -> Tuple:
        """The report's high-crosstalk pairs (drift-metric input)."""
        return self.report().high_pairs()

    @property
    def staleness(self) -> Optional[int]:
        """Days between publication and the data's measurement day."""
        if self.source_day is None:
            return None
        return self.day - self.source_day

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The epoch as a ``repro.fleet.epoch/v1`` record (exact)."""
        return {
            "schema": EPOCH_SCHEMA,
            "device": self.device,
            "day": self.day,
            "status": self.status,
            "report": self.report_json,
            "coverage": self.coverage,
            "source_day": self.source_day,
            "reason": self.reason,
            "ticks": self.ticks,
            "experiments": self.experiments,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "CalibrationEpoch":
        """Rebuild an epoch from its record form (exact round-trip)."""
        if doc.get("schema") != EPOCH_SCHEMA:
            raise ValueError(
                f"not an epoch record (schema={doc.get('schema')!r})"
            )
        return cls(
            device=doc["device"],
            day=doc["day"],
            status=doc["status"],
            report_json=doc["report"],
            coverage=doc.get("coverage", {}),
            source_day=doc.get("source_day"),
            reason=doc.get("reason"),
            ticks=doc.get("ticks", 0.0),
            experiments=doc.get("experiments", 0),
        )

    def fingerprint(self) -> str:
        """A stable content hash of the full record (identity checks)."""
        return f"{stable_entropy('fleet.epoch', self.to_dict()):032x}"
