"""repro.fleet — fleet-scale continuous characterization (online Opt 3).

The paper's Optimization 3 reuses a prior day's characterization instead
of re-measuring everything; this package runs that idea as an *online
service* over a fleet of drifting devices, with robustness as the
headline.  A :class:`~repro.fleet.controller.FleetController` ticks
simulated days, prioritizes devices by staleness and drift metrics,
dispatches campaigns over :mod:`repro.parallel`, and publishes exactly
one :class:`~repro.fleet.epoch.CalibrationEpoch` per device per day —
under worker deaths, backend faults, stalls, and kill-and-resume.

Layers:

* :mod:`repro.fleet.epoch` — the published unit: a crosstalk report
  plus provenance (fresh/degraded/failed/carried/missing), exact
  serialization for bitwise resume identity;
* :mod:`repro.fleet.supervisor` — per-device health: heartbeat
  watchdog, circuit breaker, quarantine (built on
  :mod:`repro.resilience`'s clock and breaker primitives);
* :mod:`repro.fleet.controller` — the event loop: priority, budget,
  checkpoint/resume, ``fleet.*`` observability;
* :mod:`repro.fleet.soak` — the chaos-soak harness CI runs: a small
  fleet under deterministic fault injection, asserting convergence,
  zero lost epochs, quarantine, and resume identity.

See ``docs/resilience.md`` ("Fleet supervision") and
``docs/observability.md`` for the name registry.
"""

from repro.fleet.controller import DeviceTrack, FleetController, FleetOutcome
from repro.fleet.epoch import (
    CalibrationEpoch,
    EPOCH_SCHEMA,
    EPOCH_STATUSES,
    GOOD_STATUSES,
)
from repro.fleet.supervisor import STALL_SITE, DeviceSupervisor

__all__ = [
    "CalibrationEpoch",
    "DeviceSupervisor",
    "DeviceTrack",
    "EPOCH_SCHEMA",
    "EPOCH_STATUSES",
    "FleetController",
    "FleetOutcome",
    "GOOD_STATUSES",
    "run_soak",
    "SoakConfig",
    "SoakResult",
    "STALL_SITE",
]


def __getattr__(name: str):
    # Lazy so ``python -m repro.fleet.soak`` does not trip the runpy
    # double-import warning (the package importing the module it runs).
    if name in ("SoakConfig", "SoakResult", "run_soak"):
        from repro.fleet import soak

        return getattr(soak, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
