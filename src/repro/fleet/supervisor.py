"""Per-device supervision: watchdog, circuit breaker, quarantine.

A :class:`DeviceSupervisor` is the fleet controller's health authority
for one device.  It owns the device's
:class:`~repro.resilience.breaker.CircuitBreaker` (admission control with
deterministic cooldown/probe timing on the shared virtual clock), its
heartbeat :class:`~repro.resilience.clock.Watchdog` (stalled measurements
surface as :class:`~repro.resilience.errors.MeasurementStall` instead of
hanging the fleet), and the **quarantine** decision: a device whose
breaker has tripped ``quarantine_after`` times is parked permanently —
it keeps publishing carried epochs, but no further measurement budget is
ever spent on it.

The supervisor never runs campaigns itself; the controller calls

* :meth:`admit` before spending budget (quarantine / breaker gate),
* :meth:`heartbeat` at campaign start (beats the watchdog and applies
  any injected ``fleet.stall`` fault — a stall ages the heartbeat past
  the timeout and the check raises),
* :meth:`complete` on campaign completion,
* :meth:`note_success` / :meth:`note_failure` with the day's verdict.

All state transitions are pure functions of the call sequence and the
virtual clock, so a resumed controller that replays the same verdicts
reconstructs identical supervision state.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.obs.events import log_event
from repro.obs.registry import get_registry
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import VirtualClock, Watchdog
from repro.resilience.faults import FaultInjector

#: Fault site consulted by :meth:`DeviceSupervisor.heartbeat` — rules
#: targeting it (any kind) model a measurement that stops progressing.
STALL_SITE = "fleet.stall"


class DeviceSupervisor:
    """Health authority for one fleet device (see module docstring)."""

    def __init__(self, name: str, clock: VirtualClock, *,
                 failure_threshold: int = 2, cooldown: float = 1.5,
                 cooldown_factor: float = 2.0, max_cooldown: float = 6.0,
                 stall_timeout: float = 0.5, quarantine_after: int = 2,
                 faults: Optional[FaultInjector] = None):
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        self.name = name
        self.clock = clock
        self.faults = faults
        self.quarantine_after = int(quarantine_after)
        self.breaker = CircuitBreaker(
            clock, name=f"breaker[{name}]",
            failure_threshold=failure_threshold, cooldown=cooldown,
            cooldown_factor=cooldown_factor, max_cooldown=max_cooldown,
        )
        self.watchdog = Watchdog(clock, stall_timeout, name=f"watchdog[{name}]")
        #: Virtual days the last :meth:`heartbeat` charged the clock
        #: (nonzero only when an injected stall fired).  The controller
        #: reads this instead of differencing the shared clock, which
        #: would pick up float rounding from other devices' activity.
        self.stall_charge = 0.0
        #: True once the device has been parked permanently.
        self.quarantined = False
        #: Every recorded failure, as ``(day, reason)``.
        self.failures: List[Tuple[int, str]] = []

    # ------------------------------------------------------------------
    def admit(self, day: int) -> Tuple[bool, Optional[str]]:
        """May this device be measured today?  ``(ok, refusal_reason)``.

        A refused device still publishes (a carried epoch); refusal only
        saves the measurement budget.  Calling this may transition an
        open breaker to half-open — the admitted call *is* the probe.
        """
        if self.quarantined:
            return False, "quarantined"
        if not self.breaker.allow():
            return False, "breaker_open"
        return True, None

    def cancel(self) -> None:
        """The admitted campaign never ran (e.g. budget deferral).

        Returns a half-open probe admission to the open state without
        counting a trip, so deferral cannot wedge the breaker.
        """
        self.breaker.cancel_probe()

    # ------------------------------------------------------------------
    def heartbeat(self, day: int) -> None:
        """Start-of-campaign heartbeat, with injected-stall handling.

        A fault rule at :data:`STALL_SITE` models a measurement that
        accepts the job but never returns: the virtual clock is advanced
        past the watchdog timeout, and the heartbeat check raises
        :class:`~repro.resilience.errors.MeasurementStall` — which the
        controller records as the day's failure.  Deterministic: the
        stall draw is keyed on ``(device, day)`` only.
        """
        self.watchdog.beat()
        self.stall_charge = 0.0
        if self.faults is not None:
            directive = self.faults.directive(
                STALL_SITE, f"{self.name}:day{day}"
            )
            if directive is not None:
                self.faults.record(directive)
                get_registry().inc("fleet.stalls")
                self.stall_charge = self.watchdog.timeout * 1.25
                self.clock.advance(self.stall_charge)
        self.watchdog.check()

    def complete(self) -> None:
        """End-of-campaign heartbeat."""
        self.watchdog.beat()

    # ------------------------------------------------------------------
    def note_success(self, day: int) -> None:
        """Record a good device-day (closes a half-open breaker)."""
        self.breaker.record_success()

    def note_failure(self, day: int, reason: str) -> None:
        """Record a failed device-day; quarantine on repeated trips."""
        self.failures.append((day, reason))
        self.breaker.record_failure()
        if (not self.quarantined
                and self.breaker.state == "open"
                and self.breaker.trips >= self.quarantine_after):
            self.quarantined = True
            get_registry().inc("fleet.quarantined")
            log_event(
                "fleet.quarantine", device=self.name, day=day,
                reason=reason, trips=self.breaker.trips,
                failures=len(self.failures),
            )
