"""The fleet chaos soak: run a small fleet through faults and prove it.

This is the acceptance harness CI runs (the ``chaos-soak`` job): a fleet
of :func:`~repro.device.presets.simulated_fleet` devices ticks several
days three times —

1. a **fault-free reference** run,
2. a **chaos** run under deterministic fault injection: one device that
   always fails (every experiment raises ``FatalTaskError``), one flaky
   device with injected ``fleet.stall`` heartbeat stalls, and transient
   task errors / real worker deaths / backend job rejections on the
   healthy majority,
3. a **kill-and-resume** pair: the chaos run again, interrupted after a
   fraction of its publishes (:class:`FleetInterrupted`), then resumed
   from its checkpoint to completion —

and asserts the robustness contract: every device publishes exactly one
epoch per day (zero lost epochs), the always-failing device is
quarantined without stalling the rest, healthy devices' epochs are
bitwise-identical to the fault-free reference (retries fully absorb
their faults), and the resumed run's published epochs are
bitwise-identical to the uninterrupted chaos run.

The **chaos leg runs inside a live telemetry plane**
(:class:`repro.obs.live.LivePlane` with
:func:`~repro.obs.live.alerts.default_fleet_rules`): the soak then also
checks that a tail-readable snapshot stream was produced mid-run, that
the drift-lag / breaker alerts both *fired* (device 0 failing) and
*resolved* (device 0 quarantined), and that the final Prometheus
exposition parses clean.  Because the reference and resume legs run
*without* the plane, the existing ``healthy_identity`` and
``resume_identity`` checks double as proof that the live plane never
perturbs published epochs — live-on and live-off runs are
bitwise-identical.

``python -m repro.fleet.soak`` runs it from the command line and exits
nonzero if any check fails.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.device.presets import simulated_fleet
from repro.obs.live import (
    LivePlane, default_fleet_rules, read_snapshots, validate_exposition,
)
from repro.obs.scorecard import Scorecard
from repro.parallel.seeding import stable_entropy
from repro.rb.executor import RBConfig
from repro.resilience.errors import FleetInterrupted
from repro.resilience.faults import FaultPlan, FaultRule
from repro.resilience.retry import RetryPolicy

from repro.fleet.controller import FleetController, FleetOutcome
from repro.fleet.supervisor import STALL_SITE

#: Site pattern scoping campaign-level fault rules to engine tasks (and
#: away from the supervisor's stall site).  The engine names its fault
#: site ``characterize[<policy>].task``; a plain ``*`` spans the bracket
#: characters, which :mod:`fnmatch` would otherwise read as a character
#: class.
CAMPAIGN_SITE = "characterize*"


@dataclass
class SoakConfig:
    """Sizing and fault mix for one soak (defaults match the CI job)."""

    devices: int = 6
    days: int = 5
    qubits: int = 6
    seed: int = 0
    workers: Optional[int] = None
    fault_rate: float = 0.22
    stall_rate: float = 0.35
    daily_budget: Optional[int] = None
    interrupt_fraction: float = 0.4
    rb_config: RBConfig = field(
        default_factory=lambda: RBConfig(lengths=(2, 4, 8), num_sequences=2)
    )
    #: Directory for the chaos leg's live-plane artifacts (snapshot JSONL
    #: + Prometheus exposition); None keeps them in the soak's tempdir.
    live_dir: Optional[str] = None
    #: Background snapshot interval for the chaos leg's live plane.
    live_interval: float = 0.2

    def __post_init__(self):
        if self.devices < 3:
            raise ValueError(
                "soak needs >= 3 devices (always-fail, flaky, healthy)"
            )


@dataclass
class SoakResult:
    """Every check's verdict plus the chaos run's quality evidence."""

    config: SoakConfig
    checks: List[Tuple[str, bool, str]]
    quarantined: Tuple[str, ...]
    injected: Dict[str, int]
    scorecard: Scorecard
    seconds: float
    device_days_per_sec: float

    @property
    def ok(self) -> bool:
        return all(passed for _name, passed, _detail in self.checks)

    def format(self) -> str:
        lines = [
            f"fleet soak: {self.config.devices} devices x "
            f"{self.config.days} days, fault_rate={self.config.fault_rate}",
            f"  {self.device_days_per_sec:.2f} device-days/sec "
            f"({self.seconds:.1f}s)",
            f"  injected: {dict(sorted(self.injected.items()))}",
            f"  quarantined: {list(self.quarantined)}",
        ]
        for name, passed, detail in self.checks:
            mark = "PASS" if passed else "FAIL"
            lines.append(f"  [{mark}] {name}: {detail}")
        return "\n".join(lines)


def soak_fault_plans(config: SoakConfig,
                     names: List[str]) -> Dict[str, FaultPlan]:
    """The deterministic fault mix, keyed per device.

    Device 0 always fails (quarantine target), device 1 is the flaky
    staller, the rest share a transient mix — task errors, worker deaths
    (real ``os._exit`` under a pool), and backend job rejections — whose
    combined rate is ``config.fault_rate``.  Plan seeds derive from the
    soak seed and the device name, so two devices never share a fault
    schedule.
    """
    rate = config.fault_rate
    plans: Dict[str, FaultPlan] = {}
    for index, name in enumerate(names):
        plan_seed = stable_entropy("fleet.soak.faults", config.seed,
                                   name) % 2 ** 31
        if index == 0:
            rules = (FaultRule("fatal", rate=1.0, max_failures=10 ** 6,
                               site=CAMPAIGN_SITE),)
        elif index == 1:
            rules = (
                FaultRule("job_timeout", rate=config.stall_rate,
                          max_failures=1, site=STALL_SITE),
                FaultRule("task_error", rate=rate / 2, max_failures=1,
                          site=CAMPAIGN_SITE),
            )
        else:
            rules = (
                FaultRule("task_error", rate=rate / 2, max_failures=1,
                          site=CAMPAIGN_SITE),
                FaultRule("worker_death", rate=rate / 4, max_failures=1,
                          site=CAMPAIGN_SITE),
                FaultRule("job_rejection", rate=rate / 4, max_failures=1,
                          site=CAMPAIGN_SITE),
            )
        plans[name] = FaultPlan(seed=plan_seed, rules=rules)
    return plans


def _controller(config: SoakConfig, *, fault_plans=None,
                checkpoint_dir=None, interrupt_after=None) -> FleetController:
    """A fresh controller (fresh devices, fresh injectors) for one run."""
    return FleetController(
        simulated_fleet(config.devices, qubits=config.qubits,
                        seed=config.seed),
        rb_config=config.rb_config, seed=config.seed,
        workers=config.workers, daily_budget=config.daily_budget,
        checkpoint_dir=checkpoint_dir, retry=RetryPolicy.fast(),
        fault_plans=fault_plans, interrupt_after=interrupt_after,
    )


def run_soak(config: Optional[SoakConfig] = None) -> SoakResult:
    """Run reference, chaos, and kill-and-resume; check the contract."""
    config = config or SoakConfig()
    devices = simulated_fleet(config.devices, qubits=config.qubits,
                              seed=config.seed)
    names = [device.name for device in devices]
    always_fail, flaky = names[0], names[1]
    healthy = names[2:]
    plans = soak_fault_plans(config, names)
    checks: List[Tuple[str, bool, str]] = []

    with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
        reference = _controller(config).run(config.days)

        # Only the chaos leg runs under the live plane; the reference and
        # resume legs stay live-off, so healthy_identity/resume_identity
        # also prove live-on == live-off epoch identity.
        live_dir = config.live_dir or f"{tmp}/live"
        started = time.perf_counter()
        chaos_controller = _controller(
            config, fault_plans=plans, checkpoint_dir=f"{tmp}/chaos",
        )
        plane = LivePlane(
            live_dir, interval=config.live_interval,
            rules=default_fleet_rules(), source="fleet-soak",
        )
        with plane:
            chaos = chaos_controller.run(config.days)
        seconds = time.perf_counter() - started
        # Evaluate the live-plane artifacts now: when live_dir was not
        # pinned they live inside this (about to vanish) tempdir.
        live_checks = _check_live_plane(plane, config)

        total = config.devices * config.days
        cut = max(1, int(total * config.interrupt_fraction))
        interrupted = False
        try:
            _controller(
                config, fault_plans=plans, checkpoint_dir=f"{tmp}/resume",
                interrupt_after=cut,
            ).run(config.days)
        except FleetInterrupted:
            interrupted = True
        resumed = _controller(
            config, fault_plans=plans, checkpoint_dir=f"{tmp}/resume",
        ).run(config.days)

    injected: Dict[str, int] = {}
    for injector in chaos_controller.injectors.values():
        for directive in injector.injected:
            injected[directive.kind] = injected.get(directive.kind, 0) + 1

    checks.append(_check_lost_epochs(chaos, names, config.days))
    checks.append((
        "quarantined_always_fail", always_fail in chaos.quarantined,
        f"{always_fail!r} quarantined={always_fail in chaos.quarantined}",
    ))
    parked_healthy = [n for n in healthy if n in chaos.quarantined]
    checks.append((
        "healthy_not_quarantined", not parked_healthy,
        f"unexpected quarantines: {parked_healthy or 'none'}",
    ))
    checks.append(_check_healthy_identity(chaos, reference, healthy))
    checks.append(_check_convergence(chaos, healthy, flaky))
    checks.append((
        "interrupted_mid_run", interrupted,
        f"interrupt_after={cut} of {total} publishes",
    ))
    checks.append((
        "resume_identity",
        resumed.published_json() == chaos.published_json(),
        f"replays={resumed.replays}",
    ))
    checks.append((
        "worker_death_injected", injected.get("worker_death", 0) > 0,
        f"{injected.get('worker_death', 0)} worker deaths",
    ))
    checks.append((
        "backend_faults_injected",
        injected.get("job_rejection", 0) + injected.get("job_timeout", 0) > 0,
        f"{injected.get('job_rejection', 0)} rejections, "
        f"{injected.get('job_timeout', 0)} timeouts/stalls",
    ))
    checks.extend(live_checks)

    return SoakResult(
        config=config, checks=checks, quarantined=chaos.quarantined,
        injected=injected, scorecard=chaos.scorecard(devices),
        seconds=seconds,
        device_days_per_sec=(config.devices * config.days) / seconds,
    )


def _check_live_plane(plane: LivePlane,
                      config: SoakConfig) -> List[Tuple[str, bool, str]]:
    """The three live-plane checks (stream, alert lifecycle, exporter).

    The controller publishes one snapshot per tick (plus the background
    interval and the plane's final sample), so a full chaos leg must
    leave at least ``days`` snapshot documents.  Device 0 failing every
    admission makes ``drift_lag``/``breaker_open`` fire; its quarantine
    removes it from the non-quarantined gauges, so at least one of the
    two must also resolve before the run ends.
    """
    checks: List[Tuple[str, bool, str]] = []
    snapshots = read_snapshots(plane.snapshot_path)
    checks.append((
        "live_snapshots", len(snapshots) >= config.days,
        f"{len(snapshots)} snapshot documents "
        f"(>= {config.days} ticks expected) in {plane.snapshot_path}",
    ))
    summary = plane.alerts.summary()["rules"]
    lifecycle = {
        name: (summary[name]["fired"], summary[name]["resolved"])
        for name in ("drift_lag", "breaker_open")
    }
    cycled = any(fired > 0 and resolved > 0
                 for fired, resolved in lifecycle.values())
    checks.append((
        "live_alert_lifecycle", cycled,
        f"fired/resolved per rule: {lifecycle}",
    ))
    try:
        with open(plane.prometheus_path, "r", encoding="utf-8") as handle:
            problems = validate_exposition(handle.read())
    except OSError as error:
        problems = [repr(error)]
    checks.append((
        "live_prometheus", not problems,
        "exposition parses clean" if not problems
        else f"problems: {problems[:3]}",
    ))
    return checks


def _check_lost_epochs(chaos: FleetOutcome, names: List[str],
                       days: int) -> Tuple[str, bool, str]:
    bad = [
        name for name in names
        if [e.day for e in chaos.epochs[name]] != list(range(days))
    ]
    return ("zero_lost_epochs", not bad,
            f"every device published {days} epochs"
            if not bad else f"gaps on {bad}")


def _check_healthy_identity(chaos: FleetOutcome, reference: FleetOutcome,
                            healthy: List[str]) -> Tuple[str, bool, str]:
    diverged = [
        name for name in healthy
        if [e.to_dict() for e in chaos.epochs[name]]
        != [e.to_dict() for e in reference.epochs[name]]
    ]
    return ("healthy_identity", not diverged,
            "retries absorbed every healthy-device fault"
            if not diverged else f"diverged from reference: {diverged}")


def _check_convergence(chaos: FleetOutcome, healthy: List[str],
                       flaky: str) -> Tuple[str, bool, str]:
    stale_healthy = [
        name for name in healthy
        if not all(e.status == "fresh" for e in chaos.epochs[name])
    ]
    flaky_good = sum(1 for e in chaos.epochs[flaky] if e.good)
    ok = not stale_healthy and flaky_good > 0
    return ("convergence", ok,
            f"healthy all fresh={not stale_healthy}, "
            f"flaky good epochs={flaky_good}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--devices", type=int, default=6)
    parser.add_argument("--days", type=int, default=5)
    parser.add_argument("--qubits", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--fault-rate", type=float, default=0.22)
    parser.add_argument("--stall-rate", type=float, default=0.35)
    parser.add_argument("--budget", type=int, default=None,
                        help="global experiments per simulated day")
    parser.add_argument("--out", default=None,
                        help="write the result document as JSON")
    parser.add_argument("--live-dir", default=None,
                        help="keep the chaos leg's live-plane artifacts "
                             "(snapshots.jsonl, metrics.prom) here instead "
                             "of the soak tempdir")
    parser.add_argument("--live-interval", type=float, default=0.2,
                        help="live-plane background snapshot interval "
                             "(seconds, default 0.2)")
    args = parser.parse_args(argv)
    config = SoakConfig(
        devices=args.devices, days=args.days, qubits=args.qubits,
        seed=args.seed, workers=args.workers, fault_rate=args.fault_rate,
        stall_rate=args.stall_rate, daily_budget=args.budget,
        live_dir=args.live_dir, live_interval=args.live_interval,
    )
    result = run_soak(config)
    print(result.format())
    print(result.scorecard.format())
    if args.out:
        document = {
            "checks": [list(check) for check in result.checks],
            "quarantined": list(result.quarantined),
            "injected": result.injected,
            "scorecard": result.scorecard.to_dict(),
            "device_days_per_sec": result.device_days_per_sec,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
