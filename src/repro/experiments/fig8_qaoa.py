"""Figure 8: QAOA cross entropy vs the crosstalk weight factor ω.

Four 4-qubit QAOA circuits on crosstalk-prone Poughkeepsie regions are
scheduled by XtalkSched with ω swept over [0, 1].  ω = 0 degenerates to
ParSched, ω = 1 to (near-)SerialSched; intermediate ω should beat both and
approach the cross entropy achievable on crosstalk-free regions of the
device (the grey band), whose lower bound is the noise-free theoretical
cross entropy (the dotted line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device.backend import NoisyBackend
from repro.device.device import Device
from repro.device.presets import ibmq_poughkeepsie
from repro.experiments.common import (
    ExperimentConfig,
    distribution_as_dict,
    ground_truth_report,
    prepare_circuit,
    run_distribution,
)
from repro.metrics.distributions import cross_entropy, ideal_cross_entropy
from repro.sim.statevector import ideal_distribution
from repro.workloads.qaoa import QAOA_REGIONS, qaoa_on_region

DEFAULT_OMEGAS: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0)

#: Crosstalk-free 4-qubit paths on Poughkeepsie used for the grey band.
CLEAN_REGIONS: Tuple[Tuple[int, ...], ...] = (
    (0, 1, 2, 3),
    (1, 2, 3, 4),
    (6, 7, 8, 9),
    (16, 17, 18, 19),
)


@dataclass
class Fig8Row:
    region: Tuple[int, ...]
    omega: float
    cross_entropy: float


@dataclass
class Fig8Result:
    rows: List[Fig8Row]
    theoretical_ideal: float
    clean_band_mean: float
    clean_band_std: float

    def series(self, region: Tuple[int, ...]) -> List[Tuple[float, float]]:
        return [(r.omega, r.cross_entropy) for r in self.rows if r.region == region]

    def best_omega(self, region: Tuple[int, ...]) -> float:
        series = self.series(region)
        return min(series, key=lambda t: t[1])[0]


def _region_cross_entropy(device: Device, backend: NoisyBackend, report,
                          region: Sequence[int], omega: float,
                          config: ExperimentConfig, seed: int) -> float:
    circuit = qaoa_on_region(device.coupling, region, seed=seed)
    ideal = ideal_distribution(circuit)
    prepared = prepare_circuit("XtalkSched", circuit, device, report, omega=omega)
    probs = run_distribution(backend, prepared, config)
    return cross_entropy(distribution_as_dict(probs), ideal)


def run_fig8(device: Optional[Device] = None,
             config: Optional[ExperimentConfig] = None,
             omegas: Sequence[float] = DEFAULT_OMEGAS,
             regions: Sequence[Sequence[int]] = QAOA_REGIONS,
             ansatz_seed: int = 11) -> Fig8Result:
    device = device or ibmq_poughkeepsie()
    config = config or ExperimentConfig()
    report = ground_truth_report(device)
    backend = NoisyBackend(device)

    rows: List[Fig8Row] = []
    for region in regions:
        for omega in omegas:
            ce = _region_cross_entropy(
                device, backend, report, region, omega, config, ansatz_seed
            )
            rows.append(Fig8Row(tuple(region), omega, ce))

    # Theoretical ideal: entropy of the noise-free distribution.
    sample = qaoa_on_region(device.coupling, regions[0], seed=ansatz_seed)
    theoretical = ideal_cross_entropy(ideal_distribution(sample))

    # Grey band: best-ω cross entropy on crosstalk-free regions.
    clean_values = []
    for region in CLEAN_REGIONS:
        ce = _region_cross_entropy(
            device, backend, report, region, 0.0, config, ansatz_seed
        )
        clean_values.append(ce)
    return Fig8Result(
        rows=rows,
        theoretical_ideal=theoretical,
        clean_band_mean=float(np.mean(clean_values)),
        clean_band_std=float(np.std(clean_values)),
    )


@dataclass
class Fig8Summary:
    loss_improvement_vs_par: float     # geomean over regions
    max_loss_improvement_vs_par: float
    loss_improvement_vs_serial: float
    max_loss_improvement_vs_serial: float
    interior_beats_endpoints: int      # regions where some 0<ω<1 beats both


def summarize(result: Fig8Result) -> Fig8Summary:
    regions = sorted({r.region for r in result.rows})
    ideal = result.theoretical_ideal
    vs_par, vs_serial = [], []
    interior_wins = 0
    for region in regions:
        series = dict(result.series(region))
        par = series[0.0]
        serial = series[1.0]
        interior = {w: ce for w, ce in series.items() if 0.0 < w < 1.0}
        best = min(interior.values())
        vs_par.append(max(par - ideal, 1e-9) / max(best - ideal, 1e-9))
        vs_serial.append(max(serial - ideal, 1e-9) / max(best - ideal, 1e-9))
        if best < par and best < serial:
            interior_wins += 1
    return Fig8Summary(
        loss_improvement_vs_par=float(np.exp(np.mean(np.log(vs_par)))),
        max_loss_improvement_vs_par=float(np.max(vs_par)),
        loss_improvement_vs_serial=float(np.exp(np.mean(np.log(vs_serial)))),
        max_loss_improvement_vs_serial=float(np.max(vs_serial)),
        interior_beats_endpoints=interior_wins,
    )


def format_table(result: Fig8Result) -> str:
    regions = sorted({r.region for r in result.rows})
    omegas = sorted({r.omega for r in result.rows})
    lines = [
        "Figure 8: QAOA cross entropy vs crosstalk weight factor (lower is better)",
        "omega  " + "  ".join(f"{str(region):>18s}" for region in regions),
    ]
    table = {(r.region, r.omega): r.cross_entropy for r in result.rows}
    for omega in omegas:
        lines.append(
            f"{omega:5.2f}  "
            + "  ".join(f"{table[(region, omega)]:18.3f}" for region in regions)
        )
    lines.append(f"\ntheoretical (noise-free) ideal: {result.theoretical_ideal:.3f}")
    lines.append(
        f"crosstalk-free region band: {result.clean_band_mean:.3f} "
        f"+- {result.clean_band_std:.3f}"
    )
    s = summarize(result)
    lines.append(
        f"cross-entropy-loss improvement vs ParSched (w=0): geomean "
        f"{s.loss_improvement_vs_par:.2f}x, max {s.max_loss_improvement_vs_par:.2f}x "
        f"(paper: 1.8x / 3.6x)"
    )
    lines.append(
        f"vs SerialSched (w=1): geomean {s.loss_improvement_vs_serial:.2f}x, "
        f"max {s.max_loss_improvement_vs_serial:.2f}x (paper: 2x / 4.3x)"
    )
    lines.append(
        f"regions where interior omega beats both endpoints: "
        f"{s.interior_beats_endpoints}/{len(regions)}"
    )
    return "\n".join(lines)


def main() -> Fig8Result:
    result = run_fig8()
    print(format_table(result))
    return result


if __name__ == "__main__":
    main()
