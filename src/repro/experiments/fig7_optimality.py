"""Figure 7: XtalkSched error rates vs the crosstalk-free ideal.

The paper checks optimality empirically: for each crosstalk-affected SWAP
path, compare XtalkSched's error against the average error of same-length
SWAP paths on crosstalk-free regions of the device (best schedule per
path).  XtalkSched lands within the ideal band — near-optimal mitigation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device.backend import NoisyBackend
from repro.device.device import Device
from repro.device.presets import ibmq_poughkeepsie
from repro.experiments.common import (
    ExperimentConfig,
    ground_truth_report,
    swap_error_rate,
)
from repro.workloads.swap import (
    crosstalk_affected_endpoints,
    crosstalk_free_endpoints,
    crosstalk_route,
    swap_benchmark,
)


@dataclass
class Fig7Row:
    qubit_pair: Tuple[int, int]
    path_length: int
    xtalk_error: float
    ideal_mean: float
    ideal_std: float

    @property
    def within_band(self) -> bool:
        return self.xtalk_error <= self.ideal_mean + 2 * self.ideal_std


def _ideal_band(device: Device, backend: NoisyBackend, report,
                config: ExperimentConfig, length: int,
                max_paths: int) -> Tuple[float, float]:
    """Mean/std of best-schedule error over crosstalk-free paths."""
    endpoints = crosstalk_free_endpoints(
        device.coupling, report.high_pairs(), length
    )[:max_paths]
    errors: List[float] = []
    for (s, d) in endpoints:
        bench = swap_benchmark(device.coupling, s, d)
        per_sched = []
        for scheduler in ("ParSched", "XtalkSched"):
            err, _ = swap_error_rate(backend, bench, scheduler, report, config)
            per_sched.append(err)
        errors.append(min(per_sched))  # "selecting the lowest error schedule"
    if not errors:
        return float("nan"), float("nan")
    return float(np.mean(errors)), float(np.std(errors))


def run_fig7(device: Optional[Device] = None,
             config: Optional[ExperimentConfig] = None,
             max_pairs: Optional[int] = None,
             max_ideal_paths_per_length: int = 3) -> List[Fig7Row]:
    device = device or ibmq_poughkeepsie()
    config = config or ExperimentConfig()
    report = ground_truth_report(device)
    backend = NoisyBackend(device)

    endpoints = crosstalk_affected_endpoints(device.coupling, report.high_pairs())
    if max_pairs is not None:
        endpoints = endpoints[:max_pairs]

    bands: Dict[int, Tuple[float, float]] = {}
    rows: List[Fig7Row] = []
    for (s, d) in endpoints:
        route = crosstalk_route(device.coupling, s, d, report.high_pairs())
        bench = swap_benchmark(device.coupling, s, d, path=route)
        length = bench.path_length
        if length not in bands:
            bands[length] = _ideal_band(
                device, backend, report, config, length,
                max_ideal_paths_per_length,
            )
        err, _ = swap_error_rate(backend, bench, "XtalkSched", report, config)
        mean, std = bands[length]
        rows.append(Fig7Row((s, d), length, err, mean, std))
    return rows


def format_table(rows: Sequence[Fig7Row]) -> str:
    lines = [
        "Figure 7: XtalkSched vs crosstalk-free ideal error rates",
        f"{'pair':>10s} {'len':>4s} {'XtalkSched':>11s} "
        f"{'ideal mean':>11s} {'ideal std':>10s} {'in band':>8s}",
    ]
    for r in rows:
        lines.append(
            f"{str(r.qubit_pair):>10s} {r.path_length:4d} {r.xtalk_error:11.3f} "
            f"{r.ideal_mean:11.3f} {r.ideal_std:10.3f} {str(r.within_band):>8s}"
        )
    in_band = sum(1 for r in rows if r.within_band)
    lines.append(
        f"\n{in_band}/{len(rows)} circuits within the crosstalk-free band "
        f"(paper: within 1% +- 16% of ideal)"
    )
    return "\n".join(lines)


def main(max_pairs: Optional[int] = None) -> List[Fig7Row]:
    rows = run_fig7(max_pairs=max_pairs)
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
