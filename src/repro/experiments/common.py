"""Shared experiment pipeline.

The pipeline mirrors Figure 2 of the paper: characterize the device (or,
for experiments isolating scheduling effects, read the ground truth as a
perfect characterization), schedule the workload with one of the three
policies, execute it on the noisy backend, mitigate readout, and score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.core.characterization.campaign import (
    CampaignOutcome,
    CharacterizationCampaign,
    CharacterizationPolicy,
)
from repro.core.characterization.report import CrosstalkReport
from repro.device.backend import NoisyBackend
from repro.device.device import Device
from repro.metrics.readout import mitigate_distribution
from repro.metrics.tomography import bell_state_vector
from repro.parallel import ParallelEngine
from repro.pipeline.cache import ResultCache, campaign_cache_key
from repro.pipeline.context import PassContext
from repro.pipeline.trace import SpanRecorder
from repro.pipeline.passes import scheduling_pass
from repro.pipeline.runner import Pipeline
from repro.rb.executor import RBConfig
from repro.workloads.swap import SwapBenchmark

SCHEDULERS = ("SerialSched", "ParSched", "XtalkSched")


@dataclass
class ExperimentConfig:
    """Execution sizing shared by the figure drivers.

    The paper's shot counts (9216 for tomography, 8192 for distributions)
    are kept; trajectory counts trade simulation accuracy for wall time.
    """

    shots: int = 4096
    trajectories: int = 160
    omega: float = 0.5
    mitigate_readout: bool = True
    #: Sample finite shots (paper-faithful) instead of using the exact
    #: trajectory-averaged distribution.  Benches default to exact
    #: distributions so scheduler differences are not buried in shot noise.
    use_sampled_counts: bool = False
    seed: int = 7
    #: Worker processes for trajectory / tomography fan-out (``None`` defers
    #: to ``REPRO_WORKERS``, falling back to serial).  Results are identical
    #: for every worker count.
    workers: Optional[int] = None

    @classmethod
    def fast(cls) -> "ExperimentConfig":
        return cls(shots=512, trajectories=32)

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        return cls(shots=8192, trajectories=400, use_sampled_counts=True)


# ----------------------------------------------------------------------
# characterization inputs
# ----------------------------------------------------------------------
def ground_truth_report(device: Device, day: int = 0) -> CrosstalkReport:
    """A perfect characterization: the ground truth, read as if measured.

    Used by scheduling experiments to isolate scheduler quality from RB
    measurement noise (the paper's scheduler likewise consumes the best
    characterization available).  Only 1-hop conditional rates are
    recorded, mirroring what a real campaign would measure.
    """
    cal = device.calibration(day)
    report = CrosstalkReport(day=day)
    for edge in device.coupling.edges:
        report.record_independent(edge, cal.cnot_error_of(*edge))
    for pair in device.coupling.one_hop_gate_pairs():
        a, b = sorted(pair)
        report.record_conditional(a, b, device.crosstalk.conditional_error(a, b, cal, day))
        report.record_conditional(b, a, device.crosstalk.conditional_error(b, a, cal, day))
    return report


#: Campaign outcomes are expensive (minutes of SRB simulation), so the
#: drivers share a content-keyed LRU.  The key covers the device
#: fingerprint, day, seed, *and the full RB config* — the historical
#: ``(device.name, day, seed)`` dict silently served one RB config's
#: outcome for another.
campaign_cache = ResultCache(max_entries=32)


def characterized_report(device: Device, day: int = 0,
                         rb_config: Optional[RBConfig] = None,
                         seed: int = 3, use_cache: bool = True,
                         workers: Optional[int] = None) -> CampaignOutcome:
    """Run (and cache) a 1-hop bin-packed SRB campaign on the device.

    ``workers`` only affects wall time, never the outcome, so it is
    deliberately not part of the cache key.
    """
    config = rb_config if rb_config is not None else RBConfig()

    def run_campaign() -> CampaignOutcome:
        campaign = CharacterizationCampaign(device, rb_config=config, seed=seed,
                                            workers=workers)
        return campaign.run(CharacterizationPolicy.ONE_HOP_PACKED, day=day)

    if not use_cache:
        return run_campaign()
    key = campaign_cache_key(device, day=day, seed=seed, rb_config=config,
                             policy=CharacterizationPolicy.ONE_HOP_PACKED)
    return campaign_cache.get_or_compute(key, run_campaign)


# ----------------------------------------------------------------------
# scheduling
# ----------------------------------------------------------------------
def prepare_circuit(scheduler: str, circuit: QuantumCircuit, device: Device,
                    report: CrosstalkReport, omega: float = 0.5,
                    day: int = 0) -> QuantumCircuit:
    """Apply one of the Table 1 scheduling policies.

    Runs a one-pass :class:`~repro.pipeline.runner.Pipeline` so every
    figure driver gets per-pass instrumentation for free (traces flow to
    any active :class:`~repro.pipeline.trace.TraceCollector`).
    """
    if scheduler not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; pick from {SCHEDULERS}"
        )
    context = PassContext(device=device, day=day, report=report,
                          omega=omega, circuit=circuit)
    Pipeline([scheduling_pass(scheduler)],
             name=f"schedule[{scheduler}]").run(context)
    return context.circuit


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def run_distribution(backend: NoisyBackend, circuit: QuantumCircuit,
                     config: ExperimentConfig) -> np.ndarray:
    """Execute and return the (optionally mitigated) clbit distribution."""
    result = backend.run(
        circuit, shots=config.shots, trajectories=config.trajectories,
        readout_error=True, seed=config.seed, workers=config.workers,
    )
    if config.use_sampled_counts:
        total = sum(result.counts.values())
        probs = np.zeros(len(result.probabilities))
        for bits, c in result.counts.items():
            probs[int(bits, 2)] = c / total
    else:
        probs = result.probabilities
    if config.mitigate_readout:
        readout = backend.device.readout_model(backend.day)
        confusion = readout.confusion_matrix(result.measured_qubits)
        probs = mitigate_distribution(probs, confusion)
    return probs


def distribution_as_dict(probs: np.ndarray) -> Dict[str, float]:
    n = int(round(np.log2(len(probs))))
    return {format(i, f"0{n}b"): float(p) for i, p in enumerate(probs) if p > 0}


# ----------------------------------------------------------------------
# SWAP-circuit scoring
# ----------------------------------------------------------------------
def _insert_rotations_before_measures(circuit: QuantumCircuit,
                                      rotations: Sequence) -> QuantumCircuit:
    """Insert instructions immediately before the first measurement.

    Scheduled circuits keep their measurements last (simultaneous readout),
    so basis rotations inserted there follow every gate on the measured
    qubits.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    inserted = False
    for instr in circuit:
        if instr.is_measure and not inserted:
            for rot in rotations:
                out.append(rot)
            inserted = True
        out.append(instr)
    if not inserted:
        raise ValueError("circuit has no measurements")
    return out


def _tomography_setting_task(context, setting):
    """Execute one tomography basis setting (module-level for pickling).

    Each setting's backend run is seeded from ``config.seed`` alone, so the
    measured distribution does not depend on which process (or in which
    order) the setting runs.
    """
    from repro.metrics.tomography import _basis_rotation

    backend, prepared, qubit_pair, config = context
    qa, qb = qubit_pair
    rot = QuantumCircuit(backend.device.num_qubits)
    _basis_rotation(rot, qa, setting[0])
    _basis_rotation(rot, qb, setting[1])
    variant = _insert_rotations_before_measures(prepared, rot.instructions)
    return run_distribution(backend, variant, config)


def tomography_error(backend: NoisyBackend, prepared: QuantumCircuit,
                     qubit_pair: Tuple[int, int], config: ExperimentConfig,
                     target: Optional[np.ndarray] = None,
                     workers: Optional[int] = None) -> float:
    """Tomography error of an already-scheduled circuit.

    Builds the 9 tomography variants by inserting basis rotations ahead of
    the measurements (the two-qubit structure — and hence any scheduling
    decisions — are identical across settings), executes each —
    concurrently when ``workers`` (or ``config.workers``) asks for a pool —
    and reconstructs the two-qubit state.
    """
    from repro.metrics.tomography import (
        density_from_expectations,
        expectations_from_distributions,
        state_fidelity,
        tomography_settings,
    )

    settings = list(tomography_settings())
    recorder = SpanRecorder("tomography")
    with ParallelEngine(
        workers if workers is not None else config.workers,
        name="tomography",
    ) as engine:
        with recorder.span("settings") as span:
            results = engine.map(
                _tomography_setting_task, settings,
                context=(backend, prepared, qubit_pair, config),
            )
            span.counters.update(engine.counters)
    recorder.finish()
    dists = dict(zip(settings, results))

    rho = density_from_expectations(expectations_from_distributions(dists))
    target = target if target is not None else bell_state_vector()
    return 1.0 - state_fidelity(rho, target)


def swap_error_rate(backend: NoisyBackend, bench: SwapBenchmark, scheduler: str,
                    report: CrosstalkReport, config: ExperimentConfig,
                    omega: Optional[float] = None) -> Tuple[float, float]:
    """Tomography error rate and program duration for one SWAP benchmark."""
    omega = config.omega if omega is None else omega
    prepared = prepare_circuit(
        scheduler, bench.circuit, backend.device, report, omega=omega,
        day=backend.day,
    )
    duration = backend.schedule_of(prepared).makespan()
    error = tomography_error(backend, prepared, bench.meeting_pair, config)
    return error, duration
